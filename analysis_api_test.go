package yask

import "testing"

func whyNotFixture(t *testing.T) (*Engine, Query, ObjectID) {
	t.Helper()
	e, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}, K: 2}
	return e, q, 3 // Far Cafe, guaranteed outside the top-2
}

func TestRankProfile(t *testing.T) {
	e, q, missing := whyNotFixture(t)
	steps, err := e.RankProfile(q, missing)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || steps[0].FromWt != 0 || steps[len(steps)-1].ToWt != 1 {
		t.Fatalf("bad profile: %+v", steps)
	}
	// The initial weight 0.5 must fall into a step whose rank matches
	// the Rank accessor.
	rank, err := e.Rank(q, missing)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if 0.5 >= s.FromWt && 0.5 < s.ToWt {
			if s.Rank != rank {
				t.Fatalf("profile rank %d at wt=0.5, Rank() says %d", s.Rank, rank)
			}
			return
		}
	}
	t.Fatal("wt=0.5 not covered")
}

func TestRankProfileRejectsResultMembers(t *testing.T) {
	e, q, _ := whyNotFixture(t)
	res, _ := e.TopK(q)
	if _, err := e.RankProfile(q, res[0].ID); err == nil {
		t.Fatal("result member accepted")
	}
}

func TestSuggestKeywords(t *testing.T) {
	e, q, missing := whyNotFixture(t)
	sugs, err := e.SuggestKeywords(q, []ObjectID{missing})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	for i := 1; i < len(sugs); i++ {
		if sugs[i].Improvement > sugs[i-1].Improvement {
			t.Fatal("suggestions not sorted best-first")
		}
	}
	for _, s := range sugs {
		if s.Keyword == "" {
			t.Fatal("empty keyword in suggestion")
		}
	}
}

func TestWhyNotBest(t *testing.T) {
	e, q, missing := whyNotFixture(t)
	best, err := e.WhyNotBest(q, []ObjectID{missing}, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Model != "preference" && best.Model != "keyword" && best.Model != "combined" {
		t.Fatalf("unexpected model %q", best.Model)
	}
	if best.Penalty > best.PreferencePenalty+1e-12 || best.Penalty > best.KeywordPenalty+1e-12 {
		t.Fatalf("best penalty %v worse than singles", best.Penalty)
	}
	// The winning query must revive the missing object.
	res, err := e.TopK(best.Query)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("WhyNotBest result %+v did not revive %d", best, missing)
	}
}
