package yask_test

import (
	"fmt"

	"github.com/yask-engine/yask"
)

// The examples run on a fixed block of cafes so their output is stable.
func exampleEngine() *yask.Engine {
	engine, err := yask.NewEngine([]yask.Object{
		{Name: "Cafe Uno", X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}},
		{Name: "Cafe Duo", X: 1, Y: 0, Keywords: []string{"coffee", "wifi"}},
		{Name: "Tea House", X: 0, Y: 1, Keywords: []string{"tea"}},
		{Name: "Far Cafe", X: 50, Y: 50, Keywords: []string{"coffee", "cafe"}},
		{Name: "Book Shop", X: 2, Y: 2, Keywords: []string{"books"}},
	})
	if err != nil {
		panic(err)
	}
	return engine
}

func ExampleEngine_TopK() {
	engine := exampleEngine()
	results, err := engine.TopK(yask.Query{
		X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2,
	})
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("%d. %s\n", i+1, r.Name)
	}
	// Output:
	// 1. Cafe Uno
	// 2. Cafe Duo
}

func ExampleEngine_Explain() {
	engine := exampleEngine()
	query := yask.Query{X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}, K: 2}
	// Why is "Far Cafe" (ID 3) not in the top-2?
	explanations, err := engine.Explain(query, []yask.ObjectID{3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank %d, reason: %s\n", explanations[0].Rank, explanations[0].Reason)
	// Output:
	// rank 3, reason: too-far
}

func ExampleEngine_WhyNotPreference() {
	engine := exampleEngine()
	query := yask.Query{X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}, K: 2}
	refined, err := engine.WhyNotPreference(query, []yask.ObjectID{3}, yask.RefineOptions{})
	if err != nil {
		panic(err)
	}
	// The refined query's result contains the missing cafe.
	results, err := engine.TopK(refined.Query)
	if err != nil {
		panic(err)
	}
	found := false
	for _, r := range results {
		if r.ID == 3 {
			found = true
		}
	}
	fmt.Printf("revived: %v (rank %d -> %d)\n", found, refined.RankBefore, refined.RankAfter)
	// Output:
	// revived: true (rank 3 -> 2)
}

func ExampleEngine_WhyNotKeywords() {
	engine := exampleEngine()
	// "wifi" does not describe Cafe Uno; the adapter edits the keywords
	// minimally so the expected cafe enters the result.
	query := yask.Query{X: 0.4, Y: 0.1, Keywords: []string{"coffee", "wifi"}, K: 1}
	refined, err := engine.WhyNotKeywords(query, []yask.ObjectID{0}, yask.RefineOptions{})
	if err != nil {
		panic(err)
	}
	results, err := engine.TopK(refined.Query)
	if err != nil {
		panic(err)
	}
	found := false
	for _, r := range results {
		if r.ID == 0 {
			found = true
		}
	}
	fmt.Printf("revived: %v with %d keyword edit(s)\n", found, refined.DeltaDoc)
	// Output:
	// revived: true with 1 keyword edit(s)
}
