package yask_test

// testing.B benchmarks, one family per experiment of DESIGN.md's
// experiment index. `go test -bench=. -benchmem` measures single
// operations; `cmd/yaskbench` prints the full parameter-sweep tables.

import (
	"fmt"
	"testing"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/bench"
	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/irtree"
	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

const benchN = 20_000

var benchEnv = struct {
	env *bench.Env
}{}

func env(tb testing.TB) *bench.Env {
	tb.Helper()
	if benchEnv.env == nil {
		benchEnv.env = bench.NewEnv(benchN)
	}
	return benchEnv.env
}

// E1 — top-k query engines. The benchmarks measure the warm serving
// path — a caller reusing its result buffer across queries — which with
// the pooled traversal scratch runs allocation-free.

func BenchmarkE1TopKSetRTree(b *testing.B) {
	for _, k := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e := env(b)
			qs := e.Queries(64, k, 2)
			var buf []score.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = e.Set.TopKAppend(qs[i%len(qs)], buf[:0])
			}
		})
	}
}

func BenchmarkE1TopKIRTree(b *testing.B) {
	for _, k := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e := env(b)
			qs := e.Queries(64, k, 2)
			var buf []score.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = e.Ir.TopKAppend(qs[i%len(qs)], buf[:0])
			}
		})
	}
}

// BenchmarkE1TopKBatch measures the concurrent batch executor end to
// end: one op is a whole batch of queries fanned across the worker
// pool. Throughput scales with GOMAXPROCS; on a single-core host it
// tracks the sequential path.
func BenchmarkE1TopKBatch(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := env(b)
			qs := e.Queries(64, 10, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Engine.TopKBatch(qs, core.BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTopKAllocationGuard is the allocation-regression guard of the
// zero-allocation work: a warm top-k (pooled scratch, reused result
// buffer) must average at most ~1 allocation per query on either
// engine, and the plain TopK path at most a handful (the result slice).
// A regression that reintroduces per-node or per-entry allocations
// shows up here as hundreds of allocs per run.
func TestTopKAllocationGuard(t *testing.T) {
	e := env(t)
	qs := e.Queries(16, 10, 2)

	var buf []score.Result
	warmSet := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = e.Set.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	if warmSet > 1 {
		t.Errorf("warm SetR-tree TopK averaged %.2f allocs/query, want ≤ 1", warmSet)
	}

	warmIr := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = e.Ir.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	if warmIr > 1 {
		t.Errorf("warm IR-tree TopK averaged %.2f allocs/query, want ≤ 1", warmIr)
	}

	coldSet := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			e.Set.TopK(q)
		}
	}) / float64(len(qs))
	if coldSet > 4 {
		t.Errorf("plain SetR-tree TopK averaged %.2f allocs/query, want ≤ 4", coldSet)
	}

	// The engine-level cache-hit path must be exactly allocation-free:
	// after a priming pass every TopKAppend is answered from the
	// epoch-keyed result cache, and a hit that allocates would erase the
	// latency win the e14 rows certify.
	cachedEng := core.NewEngine(e.DS.Objects, core.Options{})
	for _, q := range qs {
		if _, err := cachedEng.TopKAppend(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	hitAllocs := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = cachedEng.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	if hitAllocs != 0 {
		t.Errorf("cached engine TopKAppend averaged %.2f allocs/query, want 0", hitAllocs)
	}
	if st := cachedEng.Stats(); st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatal("allocation guard ran without cache hits")
	}

	// The signature-free fallback path must stay warm-zero too: the
	// e12 off rows join the bench-smoke gate through the baseline.
	offSet := settree.BuildWith(e.DS.Objects, rtree.DefaultMaxEntries, false)
	for _, q := range qs {
		buf, _ = offSet.TopKAppend(q, buf[:0]) // warm the scratch pool
	}
	warmOff := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = offSet.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	if warmOff > 1 {
		t.Errorf("warm signature-free SetR-tree TopK averaged %.2f allocs/query, want ≤ 1", warmOff)
	}
}

func BenchmarkE1TopKScan(b *testing.B) {
	for _, k := range []int{3, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e := env(b)
			qs := e.Queries(64, k, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				settree.ScanTopK(e.DS.Objects, qs[i%len(qs)])
			}
		})
	}
}

// E2 — index construction.

func benchBuild(b *testing.B, build func(*dataset.Dataset)) {
	ds, err := dataset.Generate(dataset.DefaultConfig(benchN, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		build(ds)
	}
}

func BenchmarkE2BuildRTree(b *testing.B) {
	benchBuild(b, func(ds *dataset.Dataset) {
		t := rtree.New(rtree.NoAug[object.Object](), rtree.DefaultMaxEntries)
		entries := make([]rtree.LeafEntry[object.Object], ds.Objects.Len())
		for i, o := range ds.Objects.All() {
			entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
		}
		t.BulkLoad(entries)
	})
}

func BenchmarkE2BuildSetRTree(b *testing.B) {
	benchBuild(b, func(ds *dataset.Dataset) {
		settree.Build(ds.Objects, rtree.DefaultMaxEntries)
	})
}

func BenchmarkE2BuildKcRTree(b *testing.B) {
	benchBuild(b, func(ds *dataset.Dataset) {
		kcrtree.Build(ds.Objects, rtree.DefaultMaxEntries)
	})
}

func BenchmarkE2BuildIRTree(b *testing.B) {
	benchBuild(b, func(ds *dataset.Dataset) {
		irtree.Build(ds.Objects, ds.Vocab.Len(), rtree.DefaultMaxEntries)
	})
}

// E3 — preference adjustment.

func benchPreference(b *testing.B, alg core.PreferenceAlgorithm, nMiss int) {
	e := env(b)
	qs := e.Queries(32, 5, 2)
	type job struct {
		q score.Query
		m []object.ID
	}
	jobs := make([]job, 0, len(qs))
	for _, q := range qs {
		if m := e.MissingFor(q, nMiss); len(m) == nMiss {
			jobs = append(jobs, job{q, m})
		}
	}
	if len(jobs) == 0 {
		b.Skip("no valid why-not jobs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		if _, err := e.Engine.AdjustPreference(j.q, j.m, core.PreferenceOptions{
			Lambda: 0.5, Algorithm: alg, Samples: 64,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3PreferenceSweepIndexed(b *testing.B) {
	for _, m := range []int{1, 4} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) { benchPreference(b, core.PrefSweepIndexed, m) })
	}
}

func BenchmarkE3PreferenceSweepScan(b *testing.B) {
	for _, m := range []int{1, 4} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) { benchPreference(b, core.PrefSweep, m) })
	}
}

func BenchmarkE3PreferenceSampling(b *testing.B) {
	b.Run("M=1", func(b *testing.B) { benchPreference(b, core.PrefSampling, 1) })
}

// E4 — keyword adaption.

func benchKeyword(b *testing.B, alg core.KeywordAlgorithm, kw int) {
	e := env(b)
	qs := e.Queries(16, 5, kw)
	type job struct {
		q score.Query
		m []object.ID
	}
	jobs := make([]job, 0, len(qs))
	for _, q := range qs {
		if m := e.MissingFor(q, 1); len(m) == 1 {
			jobs = append(jobs, job{q, m})
		}
	}
	if len(jobs) == 0 {
		b.Skip("no valid why-not jobs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		if _, err := e.Engine.AdaptKeywords(j.q, j.m, core.KeywordOptions{
			Lambda: 0.5, Algorithm: alg,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4KeywordBoundPrune(b *testing.B) {
	for _, kw := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("kw=%d", kw), func(b *testing.B) { benchKeyword(b, core.KwBoundPrune, kw) })
	}
}

func BenchmarkE4KeywordExhaustive(b *testing.B) {
	for _, kw := range []int{1, 2} {
		b.Run(fmt.Sprintf("kw=%d", kw), func(b *testing.B) { benchKeyword(b, core.KwExhaustive, kw) })
	}
}

// E5 — λ impact (latency is flat; the bench exists to regenerate the
// quality table cheaply — run cmd/yaskbench -exp e5 for the table).

func BenchmarkE5LambdaSweep(b *testing.B) {
	e := env(b)
	q := e.Queries(1, 5, 2)[0]
	missing := e.MissingFor(q, 2)
	if len(missing) < 2 {
		b.Skip("no valid why-not job")
	}
	lambdas := []float64{0.1, 0.5, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := lambdas[i%len(lambdas)]
		if _, err := e.Engine.AdjustPreference(q, missing, core.PreferenceOptions{Lambda: l}); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — scalability of the top-k engine across N.

func BenchmarkE6ScaleTopK(b *testing.B) {
	for _, n := range []int{2_000, 20_000, 100_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			e := bench.NewEnv(n)
			qs := e.Queries(64, 5, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Set.TopK(qs[i%len(qs)])
			}
		})
	}
}

// E7 — end-to-end public API round trip (query → explain → refine).

func BenchmarkE7WhyNotRoundTrip(b *testing.B) {
	engine := yask.HKDemoEngine()
	q := yask.Query{X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3}
	res, err := engine.TopK(q)
	if err != nil {
		b.Fatal(err)
	}
	inResult := map[yask.ObjectID]bool{}
	for _, r := range res {
		inResult[r.ID] = true
	}
	var missing yask.ObjectID
	for id := yask.ObjectID(0); int(id) < engine.Len(); id++ {
		if !inResult[id] {
			missing = id
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TopK(q); err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Explain(q, []yask.ObjectID{missing}); err != nil {
			b.Fatal(err)
		}
		if _, err := engine.WhyNotPreference(q, []yask.ObjectID{missing}, yask.RefineOptions{}); err != nil {
			b.Fatal(err)
		}
		if _, err := engine.WhyNotKeywords(q, []yask.ObjectID{missing}, yask.RefineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — SetR-tree bound ablation (full vs textbook Jaccard bound).

func BenchmarkE8BoundAblation(b *testing.B) {
	e := env(b)
	basic := settree.Build(e.DS.Objects, rtree.DefaultMaxEntries)
	basic.SetBoundMode(settree.BoundBasic)
	qs := e.Queries(64, 10, 2)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Set.TopK(qs[i%len(qs)])
		}
	})
	b.Run("basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			basic.TopK(qs[i%len(qs)])
		}
	})
}
