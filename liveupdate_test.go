package yask

import (
	"sync"
	"sync/atomic"
	"testing"
)

func liveTestObjects() []Object {
	return []Object{
		{Name: "alpha", X: 0, Y: 0, Keywords: []string{"coffee", "wifi"}},
		{Name: "beta", X: 1, Y: 0, Keywords: []string{"coffee"}},
		{Name: "gamma", X: 0, Y: 1, Keywords: []string{"tea"}},
		{Name: "delta", X: 5, Y: 5, Keywords: []string{"coffee", "cake"}},
	}
}

func TestEngineInsertAndRemove(t *testing.T) {
	e, err := NewEngine(liveTestObjects())
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 || e.LiveLen() != 4 {
		t.Fatalf("Len %d LiveLen %d", e.Len(), e.LiveLen())
	}

	id, err := e.Insert(Object{Name: "epsilon", X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("assigned ID %d, want 4", id)
	}
	res, err := e.TopK(Query{X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != id {
		t.Fatalf("top result %d (%s), want inserted %d", res[0].ID, res[0].Name, id)
	}

	// Insert with brand-new vocabulary must work and be queryable.
	id2, err := e.Insert(Object{Name: "zeta", X: 9, Y: 9, Keywords: []string{"karaoke"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = e.TopK(Query{X: 9, Y: 9, Keywords: []string{"karaoke"}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != id2 {
		t.Fatalf("new-keyword query returned %v", res)
	}

	if err := e.Remove(id); err != nil {
		t.Fatal(err)
	}
	if e.LiveLen() != 5 {
		t.Fatalf("LiveLen %d after remove", e.LiveLen())
	}
	res, err = e.TopK(Query{X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == id {
			t.Fatalf("removed object %d still returned", id)
		}
	}
	// Objects() lists only live objects; Object() still resolves the ID.
	for _, o := range e.Objects() {
		if o.ID == id {
			t.Fatal("Objects() lists the removed object")
		}
	}
	if _, err := e.Object(id); err != nil {
		t.Fatalf("removed ID no longer addressable: %v", err)
	}

	if _, err := e.Insert(Object{Name: "nokw"}); err == nil {
		t.Fatal("keywordless insert accepted")
	}
	if err := e.Remove(999); err == nil {
		t.Fatal("unknown remove accepted")
	}

	// Rank over a removed object must error, not fabricate a rank.
	if _, err := e.Rank(Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2}, id); err == nil {
		t.Fatal("Rank over a removed object returned a number")
	}
}

// TestConcurrentTopKDuringPublicMutations is the acceptance-criteria
// race test at the public API: after Insert, a concurrent TopK returns
// the new object with zero failed queries.
func TestConcurrentTopKDuringPublicMutations(t *testing.T) {
	e, err := NewEngine(liveTestObjects())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 3}

	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.TopK(q); err != nil {
					failed.Add(1)
					t.Errorf("TopK during mutations: %v", err)
					return
				}
			}
		}()
	}
	var lastID ObjectID
	for i := 0; i < 100; i++ {
		id, err := e.Insert(Object{X: float64(i % 10), Y: float64(i % 3), Keywords: []string{"coffee"}})
		if err != nil {
			t.Errorf("Insert: %v", err)
			break
		}
		lastID = id
		if i%4 == 0 {
			if err := e.Remove(id); err != nil {
				t.Errorf("Remove: %v", err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d concurrent queries failed", failed.Load())
	}

	// The last inserted object must be visible; earlier objects at the
	// same location legitimately outrank it via the ID tie-break, so
	// check membership with k = live count.
	res, err := e.TopK(Query{X: float64(99 % 10), Y: float64(99 % 3), Keywords: []string{"coffee"}, K: e.LiveLen()})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == lastID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("last inserted object %d missing from a full result", lastID)
	}
}
