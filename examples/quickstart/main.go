// Quickstart: index a handful of objects, run a spatial keyword top-k
// query, ask a why-not question, and apply both refinement models.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/yask-engine/yask"
)

func main() {
	// A tiny city block: cafes, a tea house, a book shop.
	objects := []yask.Object{
		{Name: "Cafe Aroma", X: 0.1, Y: 0.2, Keywords: []string{"coffee", "cafe", "wifi"}},
		{Name: "Espresso Bar", X: 0.3, Y: 0.1, Keywords: []string{"coffee", "espresso"}},
		{Name: "Tea Pavilion", X: 0.2, Y: 0.4, Keywords: []string{"tea", "quiet"}},
		{Name: "Roastery", X: 4.0, Y: 4.2, Keywords: []string{"coffee", "roastery", "beans"}},
		{Name: "Book & Bean", X: 0.5, Y: 0.5, Keywords: []string{"books", "coffee"}},
		{Name: "Night Owl Diner", X: 1.0, Y: 1.1, Keywords: []string{"diner", "late"}},
	}
	engine, err := yask.NewEngine(objects)
	if err != nil {
		log.Fatal(err)
	}

	// A top-3 "coffee" query from the corner of the block.
	query := yask.Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 3}
	results, err := engine.TopK(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top-3 for \"coffee\":")
	for i, r := range results {
		fmt.Printf("  %d. %-16s score %.4f (SDist %.3f, TSim %.3f)\n",
			i+1, r.Name, r.Score, r.SDist, r.TSim)
	}

	// The Roastery (ID 3) is missing — why?
	missing := []yask.ObjectID{3}
	exps, err := engine.Explain(query, missing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhy not %q?\n  %s\n", exps[0].Name, exps[0].Detail)

	// Refinement model 1: adjust the spatial/textual preference.
	pref, err := engine.WhyNotPreference(query, missing, yask.RefineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPreference adjustment: weights ⟨%.4f, %.4f⟩, k=%d (penalty %.4f)\n",
		pref.Ws, pref.Wt, pref.K, pref.Penalty)
	showRevived(engine, pref.Query, 3)

	// Refinement model 2: adapt the query keywords.
	kw, err := engine.WhyNotKeywords(query, missing, yask.RefineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKeyword adaption: keywords %v, k=%d (penalty %.4f; added %v, removed %v)\n",
		kw.Keywords, kw.K, kw.Penalty, kw.Added, kw.Removed)
	showRevived(engine, kw.Query, 3)
}

func showRevived(engine *yask.Engine, q yask.Query, want yask.ObjectID) {
	res, err := engine.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		marker := " "
		if r.ID == want {
			marker = "*"
		}
		fmt.Printf("  %s %d. %-16s score %.4f\n", marker, i+1, r.Name, r.Score)
	}
}
