// Example 2 of the paper (Carol's scenario): a top-3 hotel query for
// "clean comfortable" near a conference venue returns only local hotels;
// the well-known international hotel is missing because it is described
// by "luxury" rather than the query terms. The keyword-adapted why-not
// query finds the minimal keyword edit that revives it.
//
// Run with: go run ./examples/hotel-keyword
package main

import (
	"fmt"
	"log"

	"github.com/yask-engine/yask"
)

func main() {
	// Hotels around the conference venue at the origin.
	objects := []yask.Object{
		{Name: "Conference Inn", X: 0.1, Y: 0.1, Keywords: []string{"clean", "comfortable", "budget"}},
		{Name: "Expo Lodge", X: 0.2, Y: 0.05, Keywords: []string{"clean", "comfortable", "shuttle"}},
		{Name: "Hall Residence", X: 0.05, Y: 0.25, Keywords: []string{"clean", "comfortable"}},
		{Name: "The Peninsula", X: 0.3, Y: 0.3, Keywords: []string{"luxury", "spa", "harbour", "concierge"}},
		{Name: "Backpacker Hub", X: 0.15, Y: 0.2, Keywords: []string{"hostel", "budget"}},
		{Name: "Airport Motel", X: 5.0, Y: 5.0, Keywords: []string{"clean", "parking"}},
	}
	engine, err := yask.NewEngine(objects)
	if err != nil {
		log.Fatal(err)
	}

	query := yask.Query{X: 0, Y: 0, Keywords: []string{"clean", "comfortable"}, K: 3}
	results, err := engine.TopK(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Carol's top-3 for \"clean comfortable\":")
	for i, r := range results {
		fmt.Printf("  %d. %s (score %.4f) %v\n", i+1, r.Name, r.Score, r.Keywords)
	}

	const peninsula = yask.ObjectID(3)
	exps, err := engine.Explain(query, []yask.ObjectID{peninsula})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhy is The Peninsula missing?\n  %s\n", exps[0].Detail)
	if !exps[0].SuggestKeyword {
		log.Fatal("scenario broken: explanation should suggest keyword adaption")
	}

	// "How can the query keywords be minimally modified?"
	for _, lambda := range []float64{0.2, 0.5, 0.8} {
		ref, err := engine.WhyNotKeywords(query, []yask.ObjectID{peninsula},
			yask.RefineOptions{Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nλ=%.1f → keywords %v, k=%d, penalty %.4f (Δk=%d, Δdoc=%d; added %v, removed %v)\n",
			lambda, ref.Keywords, ref.K, ref.Penalty, ref.DeltaK, ref.DeltaDoc, ref.Added, ref.Removed)
		refined, err := engine.TopK(ref.Query)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range refined {
			marker := "  "
			if r.ID == peninsula {
				marker = "→ "
			}
			fmt.Printf("  %s%d. %s (score %.4f)\n", marker, i+1, r.Name, r.Score)
		}
	}
}
