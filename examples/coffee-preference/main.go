// Example 1 of the paper (Bob's scenario): a top-3 query with keyword
// "coffee" misses the Starbucks down the street because spatial
// proximity carries too little weight. The preference-adjusted why-not
// query finds the minimally modified weighting that revives it.
//
// Run with: go run ./examples/coffee-preference
package main

import (
	"fmt"
	"log"

	"github.com/yask-engine/yask"
)

func main() {
	// Midtown block: Bob stands at the origin. The Starbucks is one
	// street away and a perfect keyword match; three specialty cafes are
	// textually richer matches for "coffee" but farther uptown.
	objects := []yask.Object{
		{Name: "Starbucks 5th Ave", X: 0.08, Y: 0.05, Keywords: []string{"coffee", "starbucks", "chain"}},
		{Name: "Blue Bottle", X: 0.9, Y: 1.0, Keywords: []string{"coffee"}},
		{Name: "Third Rail", X: 1.1, Y: 0.8, Keywords: []string{"coffee"}},
		{Name: "Stumptown", X: 0.8, Y: 1.2, Keywords: []string{"coffee"}},
		{Name: "Joe's Pizza", X: 0.2, Y: 0.1, Keywords: []string{"pizza", "slice"}},
		{Name: "Grand Central Deli", X: 2.0, Y: 2.0, Keywords: []string{"deli", "sandwich", "coffee", "bagel"}},
	}
	engine, err := yask.NewEngine(objects)
	if err != nil {
		log.Fatal(err)
	}

	query := yask.Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 3}
	results, err := engine.TopK(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob's top-3 for \"coffee\":")
	inResult := map[yask.ObjectID]bool{}
	for i, r := range results {
		inResult[r.ID] = true
		fmt.Printf("  %d. %s (score %.4f)\n", i+1, r.Name, r.Score)
	}
	const starbucks = yask.ObjectID(0)
	if inResult[starbucks] {
		log.Fatal("scenario broken: Starbucks already in the result")
	}

	// "Why is the Starbucks cafe not in the result?"
	exps, err := engine.Explain(query, []yask.ObjectID{starbucks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExplanation: %s\n", exps[0].Detail)

	// "How can the ranking function be adjusted so that it appears?"
	for _, lambda := range []float64{0.1, 0.5, 0.9} {
		ref, err := engine.WhyNotPreference(query, []yask.ObjectID{starbucks},
			yask.RefineOptions{Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nλ=%.1f → weights ⟨ws=%.4f, wt=%.4f⟩, k=%d, penalty %.4f (Δk=%d, Δw=%.4f)\n",
			lambda, ref.Ws, ref.Wt, ref.K, ref.Penalty, ref.DeltaK, ref.DeltaW)
		refined, err := engine.TopK(ref.Query)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range refined {
			marker := "  "
			if r.ID == starbucks {
				marker = "→ "
			}
			fmt.Printf("  %s%d. %s (score %.4f)\n", marker, i+1, r.Name, r.Score)
		}
	}
}
