// The paper's demonstration walk-through (Section 4) over the built-in
// synthetic stand-in for the 539 Hong Kong hotels: issue an initial
// query, pick an expected-but-missing hotel, get the explanation, and
// compare both refinement models and the impact of λ — the "Query
// Refinement Effectiveness" scenario.
//
// Run with: go run ./examples/hongkong-demo
package main

import (
	"fmt"
	"log"

	"github.com/yask-engine/yask"
)

func main() {
	engine := yask.HKDemoEngine()
	fmt.Printf("YASK demo dataset: %d Hong Kong hotels\n\n", engine.Len())

	// A visitor near Tsim Sha Tsui wants a clean hotel with wifi.
	query := yask.Query{X: 114.172, Y: 22.298, Keywords: []string{"clean", "wifi"}, K: 3}
	results, err := engine.TopK(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top-3 hotels for \"clean wifi\" near Tsim Sha Tsui:")
	inResult := map[yask.ObjectID]bool{}
	for i, r := range results {
		inResult[r.ID] = true
		fmt.Printf("  %d. %-34s score %.4f\n", i+1, r.Name, r.Score)
	}

	// Expected hotel: the highest-ranked "luxury harbour" hotel that is
	// NOT in the result (the hotel Carol knows by reputation).
	luxury, err := engine.TopK(yask.Query{
		X: query.X, Y: query.Y, Keywords: []string{"luxury", "harbour"}, K: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	var missing yask.ObjectID
	var missingName string
	for _, r := range luxury {
		if !inResult[r.ID] {
			missing, missingName = r.ID, r.Name
			break
		}
	}
	fmt.Printf("\nExpected but missing: %s (#%d)\n", missingName, missing)

	exps, err := engine.Explain(query, []yask.ObjectID{missing})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Explanation: %s\n", exps[0].Detail)

	// Impact of λ on both refinement models (Fig. 5's comparison).
	fmt.Println("\nλ sweep — preference adjustment vs keyword adaption:")
	fmt.Printf("%6s | %28s | %28s\n", "λ", "preference (penalty, Δk, Δw)", "keyword (penalty, Δk, Δdoc)")
	for _, lambda := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		opts := yask.RefineOptions{Lambda: lambda}
		pref, err := engine.WhyNotPreference(query, []yask.ObjectID{missing}, opts)
		if err != nil {
			log.Fatal(err)
		}
		kw, err := engine.WhyNotKeywords(query, []yask.ObjectID{missing}, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f | %10.4f  Δk=%-3d Δw=%.4f | %10.4f  Δk=%-3d Δdoc=%d\n",
			lambda, pref.Penalty, pref.DeltaK, pref.DeltaW,
			kw.Penalty, kw.DeltaK, kw.DeltaDoc)
	}

	// Users "can apply the two refinement functions simultaneously to
	// find better solutions": run keyword adaption on top of the
	// preference-refined query.
	pref, err := engine.WhyNotPreference(query, []yask.ObjectID{missing}, yask.RefineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPreference refinement first: weights ⟨%.4f, %.4f⟩, k=%d → rank %d\n",
		pref.Ws, pref.Wt, pref.K, pref.RankAfter)
	final, err := engine.TopK(pref.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Refined result:")
	for i, r := range final {
		marker := "  "
		if r.ID == missing {
			marker = "→ "
		}
		fmt.Printf("  %s%d. %-34s score %.4f\n", marker, i+1, r.Name, r.Score)
	}
}
