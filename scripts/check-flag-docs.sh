#!/bin/sh
# Fails if any yaskd flag is missing from README.md's operations table.
#
# The flag inventory comes from the flag.* registrations in
# cmd/yaskd/main.go; the README table documents each as a `-name` row.
# This keeps the operations docs from silently drifting as flags are
# added.
set -eu
cd "$(dirname "$0")/.."

flags=$(sed -n 's/.*flag\.[A-Za-z0-9]*(\"\([a-z][a-z0-9-]*\)\".*/\1/p' cmd/yaskd/main.go)
if [ -z "$flags" ]; then
    echo "check-flag-docs: found no flags in cmd/yaskd/main.go (pattern broken?)" >&2
    exit 2
fi

missing=0
for f in $flags; do
    if ! grep -q "| \`-$f\`" README.md; then
        echo "check-flag-docs: yaskd flag -$f has no row in README.md's operations table" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi
echo "check-flag-docs: all $(echo "$flags" | wc -l | tr -d ' ') yaskd flags documented"
