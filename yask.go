// Package yask is a whY-not question Answering engine for Spatial
// Keyword query services — a Go implementation of the system presented
// in "YASK: A Why-Not Question Answering Engine for Spatial Keyword
// Query Services" (Chen, Xu, Jensen, Li; PVLDB 9(13), 2016).
//
// The engine answers spatial keyword top-k queries — "the k objects
// ranked highest by a mix of spatial proximity and textual similarity" —
// and, when a user asks why an expected object is missing from a result,
// explains the absence and produces a minimally modified refined query
// that revives the missing object, under two refinement models:
//
//   - Preference adjustment: move the weighting between spatial distance
//     and textual similarity (and enlarge k if needed).
//   - Keyword adaption: edit the query keyword set (and enlarge k if
//     needed).
//
// Quick start:
//
//	eng, err := yask.NewEngine(objects)
//	res, err := eng.TopK(yask.Query{X: 114.17, Y: 22.30, Keywords: []string{"coffee"}, K: 3})
//	exp, err := eng.Explain(query, []yask.ObjectID{missingID})
//	ref, err := eng.WhyNotPreference(query, []yask.ObjectID{missingID}, yask.RefineOptions{})
//
// All engine methods are safe for concurrent use.
package yask

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/shard"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// ErrNotDurable is returned by Checkpoint on a memory-only engine
// (EngineOptions.DataDir unset).
var ErrNotDurable = core.ErrNotDurable

// ObjectID identifies an object within an engine. IDs are assigned
// densely, in input order, at engine construction.
type ObjectID = uint32

// Object is one spatial web object handed to NewEngine: a planar
// location (for geographic data, X is longitude and Y latitude) and the
// keywords describing it. Keywords are case-folded; duplicates are
// dropped.
type Object struct {
	Name     string
	X, Y     float64
	Keywords []string
}

// Query is a spatial keyword top-k query. The weighting Wt between
// textual similarity (Wt) and spatial proximity (1−Wt) is a system
// parameter per the paper; the zero value selects the default ⟨0.5, 0.5⟩.
type Query struct {
	// X, Y is the query location.
	X, Y float64
	// Keywords is the query keyword set (at least one keyword).
	Keywords []string
	// K is the number of objects to retrieve.
	K int
	// Wt is the textual-similarity weight in (0, 1); 0 means the
	// default 0.5. The spatial weight is 1 − Wt.
	Wt float64
	// Similarity selects the textual similarity model: "" or "jaccard"
	// for the paper's default Jaccard coefficient, "dice" for the
	// Dice–Sørensen coefficient.
	Similarity string
}

// Result is one ranked answer.
type Result struct {
	ID    ObjectID
	Name  string
	X, Y  float64
	Score float64
	// SDist and TSim are the normalized components behind Score.
	SDist, TSim float64
	Keywords    []string
}

// Explanation mirrors core's explanation generator output with
// human-readable keywords.
type Explanation struct {
	ID     ObjectID
	Name   string
	Rank   int
	Score  float64
	SDist  float64
	TSim   float64
	Reason string
	Detail string
	// SuggestPreference / SuggestKeyword indicate which refinement model
	// the explanation generator expects to revive the object.
	SuggestPreference, SuggestKeyword bool
}

// RefineOptions configures the why-not refinement calls.
type RefineOptions struct {
	// Lambda is the penalty trade-off λ ∈ [0, 1] between enlarging k
	// and modifying the query (Eqns 3/4 of the paper). The zero value
	// selects the paper's default 0.5. To request a true λ = 0, set
	// LambdaIsZero.
	Lambda       float64
	LambdaIsZero bool
}

func (o RefineOptions) lambda() float64 {
	if o.LambdaIsZero {
		return 0
	}
	if o.Lambda == 0 {
		return core.DefaultLambda
	}
	return o.Lambda
}

// PreferenceRefinement is a preference-adjusted refined query.
type PreferenceRefinement struct {
	// Ws, Wt are the refined weights; K is the refined result size.
	Ws, Wt float64
	K      int
	// Penalty is Eqn 3 for this refinement; DeltaK and DeltaW are its
	// components.
	Penalty float64
	DeltaK  int
	DeltaW  float64
	// RankBefore/RankAfter are the worst missing-object ranks under the
	// initial and refined query.
	RankBefore, RankAfter int
	// Query is the ready-to-run refined query.
	Query Query
}

// KeywordRefinement is a keyword-adapted refined query.
type KeywordRefinement struct {
	// Keywords is the refined keyword set; K the refined result size.
	Keywords []string
	K        int
	// Added and Removed are the edits applied to the original keywords.
	Added, Removed []string
	// Penalty is Eqn 4; DeltaK and DeltaDoc are its components.
	Penalty  float64
	DeltaK   int
	DeltaDoc int
	// RankBefore/RankAfter are the worst missing-object ranks under the
	// initial and refined query.
	RankBefore, RankAfter int
	// Query is the ready-to-run refined query.
	Query Query
}

// Engine is the public YASK engine: a spatial keyword top-k query
// processor with why-not question answering.
type Engine struct {
	core  *core.Engine
	vocab *vocab.Vocabulary
}

// EngineOptions configures NewEngineWith.
type EngineOptions struct {
	// RefreshEvery batches live-update snapshot refreshes: the engine
	// re-freezes its index arenas after every RefreshEvery mutations
	// instead of after each one, amortizing the freeze over a mutation
	// storm (call Refresh to force publication early). Zero or one
	// refreshes on every mutation.
	RefreshEvery int
	// RefreshInterval rate-limits mutation-triggered refreshes: under a
	// mutation storm the engine re-freezes at most once per interval
	// even when RefreshEvery fires, bounding the freeze work a storm
	// can cause. Mutations deferred inside the window publish
	// automatically at its trailing edge, so staleness is bounded by
	// the interval; an explicit Refresh is never rate-limited. Zero
	// disables the rate limit.
	RefreshInterval time.Duration
	// Shards partitions the collection into this many spatial shards
	// with independently built and refreshed indexes; queries execute
	// by scatter-gather across them and return results identical to the
	// unsharded engine. Values ≤ 1 select the single-index fast path.
	Shards int
	// Splitter selects the sharding strategy: "" or "grid" freezes a
	// uniform grid over the data space at build time, "str" sort-tile-
	// recursive-packs a sample of the collection into balanced
	// rectangles, so skewed (clustered) datasets keep even shard
	// populations. Ignored for Shards ≤ 1.
	Splitter string
	// RebalanceFactor enables online shard rebalancing: when the
	// max/mean live-population ratio across shards exceeds this factor
	// after a mutation, a background rebalance re-splits the collection
	// with the configured splitter and publishes the new partition
	// atomically — queries are never disturbed and answers stay
	// identical to the unsharded engine throughout. Must exceed 1 when
	// set; zero disables. Ignored for Shards ≤ 1.
	RebalanceFactor float64
	// DisableSignatures turns off the keyword-signature pruning layer —
	// the fixed-width hashed bitmaps frozen into every index arena that
	// let traversals skip exact keyword merge-walks whenever a
	// constant-time bitmap bound is decisive. On by default; answers
	// are byte-identical either way. The switch exists for ablation
	// measurements and as an operational escape hatch.
	DisableSignatures bool
	// CacheEntries and CacheBytes bound the epoch-keyed result cache:
	// repeated queries against an unchanged published snapshot are
	// answered from memory instead of re-traversing the indexes. Zero
	// selects the defaults (4096 entries, 64 MiB). The cache never
	// changes answers — entries are keyed by the snapshot's epoch
	// identity, so every refresh, rebalance, or recovery silently
	// orphans stale entries. DisableCache turns it off entirely (the
	// ablation and escape hatch, mirroring DisableSignatures).
	CacheEntries int
	CacheBytes   int64
	DisableCache bool
	// DataDir enables crash-safe durability: every accepted
	// Insert/Remove is appended to a write-ahead log in this directory
	// before it mutates the engine, and checkpoints snapshot the whole
	// collection. On construction the engine recovers from the newest
	// valid checkpoint plus the WAL; the constructor's objects/dataset
	// seed the very first boot only. Empty means memory-only.
	DataDir string
	// Fsync selects when a mutation is acknowledged as durable:
	// "always" (default — fsync before every mutation returns),
	// "interval" (write immediately, fsync on a timer: a process crash
	// loses nothing, a power cut at most FsyncInterval of acknowledged
	// mutations), or "none" (leave flushing to the OS).
	Fsync string
	// FsyncInterval is the flush period of Fsync "interval"; zero
	// selects a 100ms default.
	FsyncInterval time.Duration
	// CheckpointEvery writes a checkpoint (and retires the WAL segments
	// it covers) automatically after this many logged mutations; zero
	// means checkpoints happen only through explicit Checkpoint calls
	// and at graceful shutdown.
	CheckpointEvery int
	// MmapArenas persists the frozen index arenas alongside every
	// checkpoint (arena-<family>-<lsn>.yar, docs/FORMATS.md) and boots
	// by memory-mapping them instead of re-bulk-loading the indexes: the
	// query structures come up in O(file open), not O(n log n), and warm
	// top-k stays allocation-free on the mapped columns. Any damaged or
	// mismatched arena falls back to the ordinary rebuild — the option
	// trades boot time, never correctness. Ignored for sharded engines
	// and without DataDir.
	//
	// Mapping requires the arena's embedded keyword labeling to pin into
	// the booting engine's vocabulary, so reopen with the same seed
	// objects the directory was created with (as a restarted server
	// reloading its dataset naturally does); a conflicting seed
	// vocabulary boots by rebuild with the reason recorded in the
	// durability.arena stats.
	MmapArenas bool
}

// coreOptions maps the public options onto the internal engine,
// resolving the splitter name and fsync policy. v is the vocabulary the
// engine's documents are interned in; the durability layer needs it to
// spell keywords back into strings for its log records.
func (opts EngineOptions) coreOptions(v *vocab.Vocabulary) (core.Options, error) {
	sp, err := shard.SplitterByName(opts.Splitter)
	if err != nil {
		return core.Options{}, fmt.Errorf("yask: %w", err)
	}
	if opts.RebalanceFactor != 0 && opts.RebalanceFactor <= 1 {
		return core.Options{}, fmt.Errorf("yask: rebalance factor %v must exceed 1", opts.RebalanceFactor)
	}
	fsync, err := wal.ParseSyncPolicy(opts.Fsync)
	if err != nil {
		return core.Options{}, fmt.Errorf("yask: %w", err)
	}
	return core.Options{
		RefreshEvery:      opts.RefreshEvery,
		RefreshInterval:   opts.RefreshInterval,
		Shards:            opts.Shards,
		Splitter:          sp,
		RebalanceFactor:   opts.RebalanceFactor,
		DisableSignatures: opts.DisableSignatures,
		CacheEntries:      opts.CacheEntries,
		CacheBytes:        opts.CacheBytes,
		DisableCache:      opts.DisableCache,
		DataDir:           opts.DataDir,
		Fsync:             fsync,
		FsyncInterval:     opts.FsyncInterval,
		CheckpointEvery:   opts.CheckpointEvery,
		MmapArenas:        opts.MmapArenas,
		Vocab:             v,
	}, nil
}

// buildCore constructs the internal engine: memory-only through
// core.NewEngine, durable (Options.DataDir set) through core.Open with
// initial as the first-boot seed.
func buildCore(initial []object.Object, coll *object.Collection, copts core.Options) (*core.Engine, error) {
	if copts.DataDir == "" {
		return core.NewEngine(coll, copts), nil
	}
	return core.Open(initial, copts)
}

// NewEngine indexes the given objects and returns a ready engine.
func NewEngine(objects []Object) (*Engine, error) {
	return NewEngineWith(objects, EngineOptions{})
}

// NewEngineWith is NewEngine with explicit engine options.
func NewEngineWith(objects []Object, opts EngineOptions) (*Engine, error) {
	if len(objects) == 0 {
		return nil, errors.New("yask: need at least one object")
	}
	v := vocab.NewVocabulary()
	copts, err := opts.coreOptions(v)
	if err != nil {
		return nil, err
	}
	objs := make([]object.Object, len(objects))
	for i, o := range objects {
		objs[i] = object.Object{
			ID:   object.ID(i),
			Name: o.Name,
			Loc:  geo.Point{X: o.X, Y: o.Y},
			Doc:  v.InternSet(o.Keywords...),
		}
		if objs[i].Doc.Empty() {
			return nil, fmt.Errorf("yask: object %d (%q) has no keywords", i, o.Name)
		}
	}
	c, err := buildCore(objs, object.NewCollection(objs), copts)
	if err != nil {
		return nil, err
	}
	return &Engine{core: c, vocab: v}, nil
}

// newFromDataset wraps an internal dataset; used by the demo constructor
// and the server.
func newFromDataset(ds *dataset.Dataset, opts EngineOptions) (*Engine, error) {
	copts, err := opts.coreOptions(ds.Vocab)
	if err != nil {
		return nil, err
	}
	c, err := buildCore(ds.Objects.All(), ds.Objects, copts)
	if err != nil {
		return nil, err
	}
	return &Engine{core: c, vocab: ds.Vocab}, nil
}

// HKDemoEngine returns an engine over the built-in demo dataset: a
// deterministic synthetic stand-in for the paper's 539 Hong Kong hotels.
func HKDemoEngine() *Engine {
	return HKDemoEngineWith(EngineOptions{})
}

// HKDemoEngineWith is HKDemoEngine with explicit engine options. It
// panics on invalid options (an unknown splitter name, a rebalance
// factor ≤ 1): the demo constructor takes configuration, not data, so a
// bad value is a programming error. When options carry a DataDir —
// where construction can fail for operational I/O reasons — use
// OpenHKDemoEngine instead.
func HKDemoEngineWith(opts EngineOptions) *Engine {
	e, err := OpenHKDemoEngine(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// OpenHKDemoEngine is HKDemoEngineWith returning errors instead of
// panicking — the form for durable configurations, where a bad data
// directory is an operational error, not a programming one.
func OpenHKDemoEngine(opts EngineOptions) (*Engine, error) {
	return newFromDataset(dataset.HKHotels(), opts)
}

// LoadEngine reads a dataset file (.json or .csv, as written by the
// yaskgen tool) and indexes it.
func LoadEngine(path string) (*Engine, error) {
	return LoadEngineWith(path, EngineOptions{})
}

// LoadEngineWith is LoadEngine with explicit engine options.
func LoadEngineWith(path string, opts EngineOptions) (*Engine, error) {
	ds, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if ds.Objects.Len() == 0 {
		return nil, fmt.Errorf("yask: dataset %q is empty", path)
	}
	return newFromDataset(ds, opts)
}

// Len returns the size of the engine's ID space: live objects plus
// removed (tombstoned) ones, whose IDs stay addressable.
func (e *Engine) Len() int { return e.core.Collection().Len() }

// LiveLen returns the number of live (not removed) objects.
func (e *Engine) LiveLen() int { return e.core.Collection().LiveLen() }

// Insert adds a new object to the running engine and returns its
// assigned ID. The object becomes visible to queries at the next
// snapshot refresh — immediately under the default construction, after
// at most Options.RefreshEvery mutations when batching is configured.
// Concurrent queries are never disturbed: they keep reading the last
// complete snapshot until the new one is atomically published.
func (e *Engine) Insert(o Object) (ObjectID, error) {
	doc := e.vocab.InternSet(o.Keywords...)
	if doc.Empty() {
		return 0, fmt.Errorf("yask: object %q has no keywords", o.Name)
	}
	id, err := e.core.Insert(object.Object{
		Name: o.Name,
		Loc:  geo.Point{X: o.X, Y: o.Y},
		Doc:  doc,
	})
	if err != nil {
		return 0, err
	}
	return uint32(id), nil
}

// Remove deletes the object from the running engine. The ID remains
// known (old sessions referencing it keep resolving) but the object
// stops appearing in results at the next snapshot refresh.
func (e *Engine) Remove(id ObjectID) error {
	return e.core.Remove(object.ID(id))
}

// Refresh forces a snapshot refresh, publishing any mutations still
// buffered by Options.RefreshEvery batching.
func (e *Engine) Refresh() { e.core.Refresh() }

// Checkpoint forces a durable snapshot of the whole collection and
// retires the WAL segments it covers, independent of the automatic
// EngineOptions.CheckpointEvery trigger. It returns an error wrapping
// ErrNotDurable on a memory-only engine.
func (e *Engine) Checkpoint() error { return e.core.Checkpoint() }

// Close releases the engine's durability resources: it flushes and
// closes the write-ahead log, after which Insert and Remove fail.
// Queries keep working on the last published snapshot. Close is
// idempotent and a no-op for memory-only engines.
func (e *Engine) Close() error { return e.core.Close() }

// Rebalance forces a synchronous re-split of a sharded engine with its
// configured splitter — useful after a bulk load has skewed the shard
// populations, independent of the automatic RebalanceFactor trigger.
// It reports whether a rebalance ran (false for an unsharded engine).
// Queries keep their consistent view throughout; answers before and
// after are identical.
func (e *Engine) Rebalance() bool { return e.core.Rebalance() }

// Object returns the indexed object with the given ID, including
// removed ones (check with Objects for the live set).
func (e *Engine) Object(id ObjectID) (Object, error) {
	if int(id) >= e.Len() {
		return Object{}, fmt.Errorf("yask: unknown object ID %d", id)
	}
	o := e.core.Collection().Get(object.ID(id))
	return Object{
		Name:     o.Name,
		X:        o.Loc.X,
		Y:        o.Loc.Y,
		Keywords: e.vocab.Words(o.Doc),
	}, nil
}

// Objects returns all live indexed objects with their IDs, in ID order.
func (e *Engine) Objects() []Result {
	coll := e.core.Collection()
	all := coll.All()
	out := make([]Result, 0, coll.LiveLen())
	for _, o := range all {
		if !coll.Alive(o.ID) {
			continue
		}
		out = append(out, Result{
			ID: uint32(o.ID), Name: o.Name, X: o.Loc.X, Y: o.Loc.Y,
			Keywords: e.vocab.Words(o.Doc),
		})
	}
	return out
}

// buildQuery converts and validates a public query. Keywords unknown to
// the engine's vocabulary are still interned — they simply match no
// object, exactly as a user typing a novel word experiences.
func (e *Engine) buildQuery(q Query) (score.Query, error) {
	wt := q.Wt
	if wt == 0 {
		wt = 0.5
	}
	var sim score.TextSim
	switch q.Similarity {
	case "", "jaccard":
		sim = score.SimJaccard
	case "dice":
		sim = score.SimDice
	default:
		return score.Query{}, fmt.Errorf("yask: unknown similarity model %q (want jaccard or dice)", q.Similarity)
	}
	sq := score.Query{
		Loc: geo.Point{X: q.X, Y: q.Y},
		Doc: e.vocab.InternSet(q.Keywords...),
		K:   q.K,
		W:   score.WeightsFromWt(wt),
		Sim: sim,
	}
	if err := sq.Validate(); err != nil {
		return score.Query{}, err
	}
	return sq, nil
}

func (e *Engine) publicQuery(sq score.Query) Query {
	sim := ""
	if sq.Sim == score.SimDice {
		sim = "dice"
	}
	return Query{
		X: sq.Loc.X, Y: sq.Loc.Y,
		Keywords:   e.vocab.Words(sq.Doc),
		K:          sq.K,
		Wt:         sq.W.Wt,
		Similarity: sim,
	}
}

// TopK answers a spatial keyword top-k query.
func (e *Engine) TopK(q Query) ([]Result, error) {
	return e.TopKCtx(context.Background(), q)
}

// TopKCtx is TopK under a context: the index search polls the
// context's cancellation signal every bounded number of node visits,
// so a canceled or deadline-expired query returns ctx.Err() promptly
// instead of running to completion. Serving layers derive per-request
// deadlines and pass them here.
func (e *Engine) TopKCtx(ctx context.Context, q Query) ([]Result, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	res, err := e.core.TopKCtx(ctx, sq)
	if err != nil {
		return nil, err
	}
	s := score.NewScorer(sq, e.core.Collection())
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{
			ID: uint32(r.Obj.ID), Name: r.Obj.Name,
			X: r.Obj.Loc.X, Y: r.Obj.Loc.Y,
			Score: r.Score, SDist: s.SDist(r.Obj), TSim: s.TSim(r.Obj),
			Keywords: e.vocab.Words(r.Obj.Doc),
		}
	}
	return out, nil
}

// TopKBatch answers many top-k queries concurrently over a bounded
// worker pool (workers ≤ 0 selects GOMAXPROCS) and returns one result
// slice per query, index-aligned with queries. The batch fails as a
// whole if any query is invalid. Heavy-traffic callers should prefer it
// over a TopK loop: queries share per-worker traversal scratch and the
// pool bounds concurrency no matter how large the batch is.
func (e *Engine) TopKBatch(queries []Query, workers int) ([][]Result, error) {
	return e.TopKBatchCtx(context.Background(), queries, workers)
}

// TopKBatchCtx is TopKBatch under a context: one cancellation signal
// covers every work unit of the batch, so an expired deadline stops
// in-flight shard traversals and keeps queued units from starting. A
// canceled batch fails wholesale with ctx.Err().
func (e *Engine) TopKBatchCtx(ctx context.Context, queries []Query, workers int) ([][]Result, error) {
	sqs := make([]score.Query, len(queries))
	for i, q := range queries {
		sq, err := e.buildQuery(q)
		if err != nil {
			return nil, fmt.Errorf("yask: batch query %d: %w", i, err)
		}
		sqs[i] = sq
	}
	opts := core.BatchOptions{Workers: workers}
	batches, err := e.core.TopKBatchCtx(ctx, sqs, opts)
	if err != nil {
		return nil, err
	}
	// Converting to the public form (keyword materialization, score
	// components) is itself per-query work; fan it over the same pool so
	// it doesn't become a serial tail after the parallel query phase.
	out := make([][]Result, len(batches))
	core.RunBatch(len(batches), opts.Workers, func(i int) {
		res := batches[i]
		s := score.NewScorer(sqs[i], e.core.Collection())
		rs := make([]Result, len(res))
		for j, r := range res {
			rs[j] = Result{
				ID: uint32(r.Obj.ID), Name: r.Obj.Name,
				X: r.Obj.Loc.X, Y: r.Obj.Loc.Y,
				Score: r.Score, SDist: s.SDist(r.Obj), TSim: s.TSim(r.Obj),
				Keywords: e.vocab.Words(r.Obj.Doc),
			}
		}
		out[i] = rs
	})
	return out, nil
}

// SubscriptionUpdate is one pushed continuous-query result: the new
// top-k of a subscribed query and the engine epoch it was computed at.
type SubscriptionUpdate struct {
	// Epoch identifies the published snapshot behind Results; it
	// strictly increases across the updates of one subscription.
	Epoch   uint64   `json:"epoch"`
	Results []Result `json:"results"`
}

// Subscription is a registered continuous top-k query. Receive pushed
// results from Updates; the channel closes when the subscription is
// cancelled with Close or force-dropped because the receiver fell too
// far behind (slow-client disconnect).
type Subscription struct {
	sub     *core.Subscription
	updates chan SubscriptionUpdate
}

// Updates returns the subscription's update channel. The initial
// result arrives as the first update.
func (s *Subscription) Updates() <-chan SubscriptionUpdate { return s.updates }

// Close cancels the subscription; idempotent.
func (s *Subscription) Close() { s.sub.Close() }

// Subscribe registers q as a continuous top-k query: the engine
// computes the initial result immediately and thereafter re-evaluates
// the query after each published mutation batch whose delta could have
// changed the answer (a signature-and-distance prefilter skips the
// rest), pushing an update whenever the result actually changes.
// buffer bounds undelivered updates (≤ 0 selects the default 8); a
// subscriber that falls behind is disconnected rather than allowed to
// stall the engine.
func (e *Engine) Subscribe(q Query, buffer int) (*Subscription, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	cs, err := e.core.Subscribe(sq, core.SubscribeOptions{Buffer: buffer})
	if err != nil {
		return nil, err
	}
	if buffer <= 0 {
		buffer = core.DefaultSubscribeBuffer
	}
	s := &Subscription{sub: cs, updates: make(chan SubscriptionUpdate, buffer)}
	// The forwarder converts internal updates to the public form. It
	// never blocks on the public channel: a full buffer means the
	// consumer fell behind, and the subscription is dropped exactly as
	// the core layer drops its own slow clients — so a stalled consumer
	// can neither stall the engine nor leak this goroutine.
	go func() {
		defer close(s.updates)
		for u := range cs.Updates() {
			sc := score.NewScorer(sq, e.core.Collection())
			pu := SubscriptionUpdate{Epoch: u.Epoch, Results: make([]Result, len(u.Results))}
			for i, r := range u.Results {
				pu.Results[i] = Result{
					ID: uint32(r.Obj.ID), Name: r.Obj.Name,
					X: r.Obj.Loc.X, Y: r.Obj.Loc.Y,
					Score: r.Score, SDist: sc.SDist(r.Obj), TSim: sc.TSim(r.Obj),
					Keywords: e.vocab.Words(r.Obj.Doc),
				}
			}
			select {
			case s.updates <- pu:
			default:
				cs.Close()
				return
			}
		}
	}()
	return s, nil
}

// WhyNotKeywordsJob is one keyword-adaption why-not question of a
// WhyNotKeywordsBatch call.
type WhyNotKeywordsJob struct {
	Query   Query
	Missing []ObjectID
}

// WhyNotKeywordsBatch answers many keyword-adapted why-not questions
// concurrently (workers ≤ 0 selects GOMAXPROCS). Refinements and errors
// are index-aligned with jobs; a job that fails — a malformed query, or
// a "missing" object that is already in the result — reports its error
// without failing the rest of the batch.
func (e *Engine) WhyNotKeywordsBatch(jobs []WhyNotKeywordsJob, opts RefineOptions, workers int) ([]*KeywordRefinement, []error) {
	coreJobs := make([]core.KeywordJob, len(jobs))
	errs := make([]error, len(jobs))
	valid := make([]bool, len(jobs))
	for i, j := range jobs {
		sq, err := e.buildQuery(j.Query)
		if err != nil {
			errs[i] = err
			continue
		}
		coreJobs[i] = core.KeywordJob{Query: sq, Missing: toInternalIDs(j.Missing)}
		valid[i] = true
	}
	// Run only the well-formed jobs; invalid ones already carry errors.
	idx := make([]int, 0, len(jobs))
	run := make([]core.KeywordJob, 0, len(jobs))
	for i, ok := range valid {
		if ok {
			idx = append(idx, i)
			run = append(run, coreJobs[i])
		}
	}
	results, runErrs := e.core.AdaptKeywordsBatch(run, core.KeywordOptions{
		Lambda:    opts.lambda(),
		Algorithm: core.KwBoundPrune,
	}, core.BatchOptions{Workers: workers})
	out := make([]*KeywordRefinement, len(jobs))
	for n, i := range idx {
		if runErrs[n] != nil {
			errs[i] = runErrs[n]
			continue
		}
		res := results[n]
		out[i] = &KeywordRefinement{
			Keywords: e.vocab.Words(res.Refined.Doc),
			K:        res.Refined.K,
			Added:    e.vocab.Words(res.Added),
			Removed:  e.vocab.Words(res.Removed),
			Penalty:  res.Penalty, DeltaK: res.DeltaK, DeltaDoc: res.DeltaDoc,
			RankBefore: res.RankBefore, RankAfter: res.RankAfter,
			Query: e.publicQuery(res.Refined),
		}
	}
	return out, errs
}

func toInternalIDs(missing []ObjectID) []object.ID {
	ids := make([]object.ID, len(missing))
	for i, m := range missing {
		ids[i] = object.ID(m)
	}
	return ids
}

// Explain asks why the given objects are missing from the query's
// result and returns one explanation per object.
func (e *Engine) Explain(q Query, missing []ObjectID) ([]Explanation, error) {
	return e.ExplainCtx(context.Background(), q, missing)
}

// ExplainCtx is Explain under a context; see TopKCtx for the
// cancellation contract.
func (e *Engine) ExplainCtx(ctx context.Context, q Query, missing []ObjectID) ([]Explanation, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	exps, err := e.core.ExplainCtx(ctx, sq, toInternalIDs(missing))
	if err != nil {
		return nil, err
	}
	out := make([]Explanation, len(exps))
	for i, ex := range exps {
		out[i] = Explanation{
			ID: uint32(ex.Missing.ID), Name: ex.Missing.Name,
			Rank: ex.Rank, Score: ex.Score, SDist: ex.SDist, TSim: ex.TSim,
			Reason: ex.Reason.String(), Detail: ex.Detail,
			SuggestPreference: ex.SuggestPreference,
			SuggestKeyword:    ex.SuggestKeyword,
		}
	}
	return out, nil
}

// WhyNotPreference answers the preference-adjusted why-not question: it
// returns the minimum-penalty refined query (adjusted weights, possibly
// enlarged k) whose result contains every missing object.
func (e *Engine) WhyNotPreference(q Query, missing []ObjectID, opts RefineOptions) (*PreferenceRefinement, error) {
	return e.WhyNotPreferenceCtx(context.Background(), q, missing, opts)
}

// WhyNotPreferenceCtx is WhyNotPreference under a context; see TopKCtx
// for the cancellation contract.
func (e *Engine) WhyNotPreferenceCtx(ctx context.Context, q Query, missing []ObjectID, opts RefineOptions) (*PreferenceRefinement, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	res, err := e.core.AdjustPreferenceCtx(ctx, sq, toInternalIDs(missing), core.PreferenceOptions{
		Lambda:    opts.lambda(),
		Algorithm: core.PrefSweepIndexed,
	})
	if err != nil {
		return nil, err
	}
	return &PreferenceRefinement{
		Ws: res.Refined.W.Ws, Wt: res.Refined.W.Wt, K: res.Refined.K,
		Penalty: res.Penalty, DeltaK: res.DeltaK, DeltaW: res.DeltaW,
		RankBefore: res.RankBefore, RankAfter: res.RankAfter,
		Query: e.publicQuery(res.Refined),
	}, nil
}

// WhyNotKeywords answers the keyword-adapted why-not question: it
// returns the minimum-penalty refined query (edited keyword set,
// possibly enlarged k) whose result contains every missing object.
func (e *Engine) WhyNotKeywords(q Query, missing []ObjectID, opts RefineOptions) (*KeywordRefinement, error) {
	return e.WhyNotKeywordsCtx(context.Background(), q, missing, opts)
}

// WhyNotKeywordsCtx is WhyNotKeywords under a context; see TopKCtx for
// the cancellation contract.
func (e *Engine) WhyNotKeywordsCtx(ctx context.Context, q Query, missing []ObjectID, opts RefineOptions) (*KeywordRefinement, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	res, err := e.core.AdaptKeywordsCtx(ctx, sq, toInternalIDs(missing), core.KeywordOptions{
		Lambda:    opts.lambda(),
		Algorithm: core.KwBoundPrune,
	})
	if err != nil {
		return nil, err
	}
	return &KeywordRefinement{
		Keywords: e.vocab.Words(res.Refined.Doc),
		K:        res.Refined.K,
		Added:    e.vocab.Words(res.Added),
		Removed:  e.vocab.Words(res.Removed),
		Penalty:  res.Penalty, DeltaK: res.DeltaK, DeltaDoc: res.DeltaDoc,
		RankBefore: res.RankBefore, RankAfter: res.RankAfter,
		Query: e.publicQuery(res.Refined),
	}, nil
}

// Rank returns the true rank of an object under the query — the number
// the explanation panel of the demo UI reports.
func (e *Engine) Rank(q Query, id ObjectID) (int, error) {
	return e.RankCtx(context.Background(), q, id)
}

// RankCtx is Rank under a context; see TopKCtx for the cancellation
// contract.
func (e *Engine) RankCtx(ctx context.Context, q Query, id ObjectID) (int, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return 0, err
	}
	if int(id) >= e.Len() {
		return 0, fmt.Errorf("yask: unknown object ID %d", id)
	}
	if !e.core.Collection().Alive(object.ID(id)) {
		return 0, fmt.Errorf("yask: object %d has been removed", id)
	}
	return e.core.RankCtx(ctx, sq, object.ID(id))
}

// ShardStats is one shard's execution statistics.
type ShardStats struct {
	// Shard is the shard number (0 for an unsharded engine).
	Shard int `json:"shard"`
	// Objects is the shard's ID-space size; Live the number of live
	// (not removed) objects in it.
	Objects int `json:"objects"`
	Live    int `json:"live"`
	// SetNodeAccesses and KcNodeAccesses are the cumulative index node
	// accesses of the shard's SetR- and KcR-trees.
	SetNodeAccesses int64 `json:"setNodeAccesses"`
	KcNodeAccesses  int64 `json:"kcNodeAccesses"`
	// SetSigProbes/SetSigHits and KcSigProbes/KcSigHits are the shard's
	// keyword-signature pruning counters per index family: probes are
	// signature bounds consulted, hits the decisive ones (each an exact
	// keyword set operation skipped).
	SetSigProbes int64 `json:"setSigProbes"`
	SetSigHits   int64 `json:"setSigHits"`
	KcSigProbes  int64 `json:"kcSigProbes"`
	KcSigHits    int64 `json:"kcSigHits"`
	// Balance is the shard's live population relative to the ideal
	// (total live / shards): 1.0 is a perfectly balanced shard, 0 an
	// empty one.
	Balance float64 `json:"balance"`
}

// EngineStats is the engine's execution snapshot: shard layout,
// buffered mutations, and per-shard index statistics.
type EngineStats struct {
	Shards           int     `json:"shards"`
	Objects          int     `json:"objects"`
	Live             int     `json:"live"`
	PendingMutations int     `json:"pendingMutations"`
	MaxDist          float64 `json:"maxDist"`
	// Splitter names the sharding strategy ("grid", "str"); empty for
	// an unsharded engine.
	Splitter string `json:"splitter,omitempty"`
	// ImbalanceFactor is the max/mean live-population ratio across
	// shards — the skew signal operators watch: 1.0 is perfectly
	// balanced, Shards means one shard holds everything.
	ImbalanceFactor float64 `json:"imbalanceFactor"`
	// Rebalances counts the online rebalances published so far.
	Rebalances int64 `json:"rebalances"`
	// Signatures reports whether the keyword-signature pruning layer is
	// active; SigProbes/SigHits aggregate the per-shard, per-family
	// counters and SigHitRate is hits/probes — the fraction of textual
	// evaluations answered by a constant-time bitmap bound instead of
	// an exact keyword merge-walk.
	Signatures bool         `json:"signatures"`
	SigProbes  int64        `json:"sigProbes"`
	SigHits    int64        `json:"sigHits"`
	SigHitRate float64      `json:"sigHitRate"`
	PerShard   []ShardStats `json:"perShard"`
	// Cache reports the epoch-keyed result cache; nil when the engine was
	// built with DisableCache.
	Cache *CacheStats `json:"cache,omitempty"`
	// Subscriptions reports the continuous-query counters.
	Subscriptions *SubscriptionStats `json:"subscriptions,omitempty"`
	// Durability reports the write-ahead log and checkpoint state of a
	// durable engine; nil when the engine is memory-only.
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// CacheStats is the result-cache section of EngineStats.
type CacheStats struct {
	// Entries and Bytes size the cache's current contents.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count lookups; HitRate is Hits / (Hits + Misses),
	// 0 before any lookup.
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hitRate"`
	// Evictions counts LRU evictions under the entry/byte bounds;
	// OrphanedEpochs counts epochs that still held entries when a
	// publish-triggered purge dropped them.
	Evictions      int64 `json:"evictions"`
	OrphanedEpochs int64 `json:"orphanedEpochs"`
}

// SubscriptionStats is the continuous-query section of EngineStats.
type SubscriptionStats struct {
	// Active is the number of live subscriptions.
	Active int `json:"active"`
	// Reevaluated counts full top-k re-evaluations across all published
	// epochs; SigSkipped counts the ones the mutation-delta signature
	// prefilter proved unnecessary.
	Reevaluated int64 `json:"reevaluated"`
	SigSkipped  int64 `json:"sigSkipped"`
	// Pushed counts updates actually delivered (changed results);
	// Dropped counts slow-client force-disconnects.
	Pushed  int64 `json:"pushed"`
	Dropped int64 `json:"dropped"`
}

// DurabilityStats is the durability section of EngineStats.
type DurabilityStats struct {
	// Dir is the data directory; Fsync the acknowledgement policy
	// ("always", "interval", "none").
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WalAppends, WalFsyncs, and WalRotations count log records written,
	// fsync calls issued, and segment rotations since boot.
	WalAppends   int64 `json:"walAppends"`
	WalFsyncs    int64 `json:"walFsyncs"`
	WalRotations int64 `json:"walRotations"`
	// Segments and WalBytes size the live log: segment files on disk and
	// their total bytes.
	Segments int   `json:"segments"`
	WalBytes int64 `json:"walBytes"`
	// LastLSN is the newest logged mutation; LastCheckpoint the LSN the
	// newest checkpoint covers; SinceCheckpoint the mutations logged
	// since then; Checkpoints the checkpoints written since boot.
	LastLSN         uint64 `json:"lastLSN"`
	LastCheckpoint  uint64 `json:"lastCheckpoint"`
	SinceCheckpoint int    `json:"sinceCheckpoint"`
	Checkpoints     int64  `json:"checkpoints"`
	// ReplayedRecords is the number of WAL records replayed at boot.
	ReplayedRecords int `json:"replayedRecords"`
	// Arena reports the mmap arena persistence state; nil unless
	// MmapArenas is on (or a boot attempted and declined to map).
	Arena *ArenaStats `json:"arena,omitempty"`
}

// ArenaStats is the arena subsection of DurabilityStats: the state of
// the mmap index-arena persistence layer (EngineOptions.MmapArenas).
// See docs/FORMATS.md for the on-disk format.
type ArenaStats struct {
	// Enabled reports whether this engine writes arena files at
	// checkpoints and tries to map them at boot.
	Enabled bool `json:"enabled"`
	// MmapBoot reports whether this boot mapped arena files;
	// RebuildSkipped additionally requires that no WAL records had to be
	// replayed on top, i.e. the index rebuild was skipped entirely.
	MmapBoot       bool `json:"mmapBoot"`
	RebuildSkipped bool `json:"rebuildSkipped"`
	// MappedNow counts index families currently serving a mapped arena
	// (drops to 0 after the first post-boot mutation thaws them).
	MappedNow int `json:"mappedNow"`
	// FallbackReason records why a boot declined to map (empty when it
	// mapped, or when no attempt was made).
	FallbackReason string `json:"fallbackReason,omitempty"`
	// SetsWritten and BytesWritten count arena sets and bytes written by
	// checkpoints since boot; LastWriteError records the most recent
	// (non-fatal) arena write failure.
	SetsWritten    int64  `json:"setsWritten"`
	BytesWritten   int64  `json:"bytesWritten"`
	LastWriteError string `json:"lastWriteError,omitempty"`
}

// Stats reports the engine's execution statistics, one row per spatial
// shard (a single row for an unsharded engine).
func (e *Engine) Stats() EngineStats {
	st := e.core.Stats()
	out := EngineStats{
		Shards:           st.Shards,
		Objects:          st.Objects,
		Live:             st.Live,
		PendingMutations: st.Pending,
		MaxDist:          st.MaxDist,
		Splitter:         st.Splitter,
		ImbalanceFactor:  st.ImbalanceFactor,
		Rebalances:       st.Rebalances,
		Signatures:       st.Signatures,
		SigProbes:        st.SigProbes,
		SigHits:          st.SigHits,
		SigHitRate:       st.SigHitRate,
		PerShard:         make([]ShardStats, len(st.PerShard)),
	}
	for i, sh := range st.PerShard {
		out.PerShard[i] = ShardStats{
			Shard: sh.Shard, Objects: sh.Objects, Live: sh.Live,
			SetNodeAccesses: sh.SetNodeAccesses, KcNodeAccesses: sh.KcNodeAccesses,
			SetSigProbes: sh.SetSigProbes, SetSigHits: sh.SetSigHits,
			KcSigProbes: sh.KcSigProbes, KcSigHits: sh.KcSigHits,
			Balance: sh.Balance,
		}
	}
	if c := st.Cache; c != nil {
		out.Cache = &CacheStats{
			Entries: c.Entries, Bytes: c.Bytes,
			Hits: c.Hits, Misses: c.Misses, HitRate: c.HitRate,
			Evictions: c.Evictions, OrphanedEpochs: c.OrphanedEpochs,
		}
	}
	if s := st.Subscriptions; s != nil {
		out.Subscriptions = &SubscriptionStats{
			Active: s.Active, Reevaluated: s.Reevaluated,
			SigSkipped: s.SigSkipped, Pushed: s.Pushed, Dropped: s.Dropped,
		}
	}
	if d := st.Durability; d != nil {
		out.Durability = &DurabilityStats{
			Dir: d.Dir, Fsync: d.Fsync,
			WalAppends: d.WalAppends, WalFsyncs: d.WalFsyncs, WalRotations: d.WalRotations,
			Segments: d.Segments, WalBytes: d.WalBytes,
			LastLSN: d.LastLSN, LastCheckpoint: d.LastCheckpoint,
			SinceCheckpoint: d.SinceCheckpoint, Checkpoints: d.Checkpoints,
			ReplayedRecords: d.ReplayedRecords,
		}
		if a := d.Arena; a != nil {
			out.Durability.Arena = &ArenaStats{
				Enabled: a.Enabled, MmapBoot: a.MmapBoot,
				RebuildSkipped: a.RebuildSkipped, MappedNow: a.MappedNow,
				FallbackReason: a.FallbackReason,
				SetsWritten:    a.SetsWritten, BytesWritten: a.BytesWritten,
				LastWriteError: a.LastWriteError,
			}
		}
	}
	return out
}
