module github.com/yask-engine/yask

go 1.22
