package yask

import (
	"testing"

	"github.com/yask-engine/yask/internal/qcache"
)

// TestCanonicalCacheKey proves that semantically identical public
// queries collapse to one cache key: keyword order, duplicates, and
// case vanish in canonicalization, and an omitted similarity model or
// weight equals its explicit default. Without this property the result
// cache would fragment across spellings of the same question.
func TestCanonicalCacheKey(t *testing.T) {
	e := HKDemoEngine()
	base := Query{X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3}
	variants := map[string]Query{
		"keyword order":       {X: 114.17, Y: 22.30, Keywords: []string{"cafe", "bar"}, K: 3},
		"duplicate keyword":   {X: 114.17, Y: 22.30, Keywords: []string{"cafe", "bar", "cafe"}, K: 3},
		"keyword case":        {X: 114.17, Y: 22.30, Keywords: []string{"Bar", "CAFE"}, K: 3},
		"explicit similarity": {X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3, Similarity: "jaccard"},
		"explicit weight":     {X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3, Wt: 0.5},
	}
	bq, err := e.buildQuery(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range variants {
		vq, err := e.buildQuery(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !qcache.EqualQueries(bq, vq) {
			t.Errorf("%s: canonical queries differ: %+v vs %+v", name, bq, vq)
		}
		if qcache.HashQuery(bq) != qcache.HashQuery(vq) {
			t.Errorf("%s: canonical queries hash apart", name)
		}
	}

	// Genuinely different questions must keep distinct keys.
	for name, d := range map[string]Query{
		"similarity": {X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3, Similarity: "dice"},
		"k":          {X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 4},
		"weight":     {X: 114.17, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3, Wt: 0.7},
		"keywords":   {X: 114.17, Y: 22.30, Keywords: []string{"bar", "wifi"}, K: 3},
		"location":   {X: 114.18, Y: 22.30, Keywords: []string{"bar", "cafe"}, K: 3},
	} {
		dq, err := e.buildQuery(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if qcache.EqualQueries(bq, dq) {
			t.Errorf("distinct %s compared equal", name)
		}
	}

	// End to end: every variant must be served from the entry the base
	// query filled — same key, same epoch, so all of them hit.
	want, err := e.TopK(base)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Cache.Hits
	for name, v := range variants {
		got, err := e.TopK(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("%s rank %d: (%d, %v), want (%d, %v)",
					name, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
	if hits := e.Stats().Cache.Hits - before; hits < int64(len(variants)) {
		t.Fatalf("variants hit the cache %d times, want %d", hits, len(variants))
	}
}
