package yask

import (
	"testing"
)

func demoObjects() []Object {
	return []Object{
		{Name: "Cafe Uno", X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}},
		{Name: "Cafe Duo", X: 1, Y: 0, Keywords: []string{"coffee", "wifi"}},
		{Name: "Tea House", X: 0, Y: 1, Keywords: []string{"tea"}},
		{Name: "Far Cafe", X: 50, Y: 50, Keywords: []string{"coffee", "cafe"}},
		{Name: "Book Shop", X: 2, Y: 2, Keywords: []string{"books"}},
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Fatal("empty object list accepted")
	}
	if _, err := NewEngine([]Object{{Name: "x", Keywords: nil}}); err == nil {
		t.Fatal("keyword-less object accepted")
	}
}

func TestTopKPublicAPI(t *testing.T) {
	e, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 5 {
		t.Fatalf("Len = %d", e.Len())
	}
	res, err := e.TopK(Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Score < res[1].Score {
		t.Fatal("results not sorted by score")
	}
	for _, r := range res {
		if r.SDist < 0 || r.SDist > 1 || r.TSim < 0 || r.TSim > 1 {
			t.Fatalf("components out of range: %+v", r)
		}
		if len(r.Keywords) == 0 || r.Name == "" {
			t.Fatalf("result missing metadata: %+v", r)
		}
	}
}

func TestTopKRejectsBadQueries(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	if _, err := e.TopK(Query{Keywords: []string{"coffee"}, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := e.TopK(Query{K: 2}); err == nil {
		t.Error("no keywords accepted")
	}
	if _, err := e.TopK(Query{Keywords: []string{"coffee"}, K: 2, Wt: 1.5}); err == nil {
		t.Error("wt=1.5 accepted")
	}
}

func TestUnknownKeywordMatchesNothing(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	res, err := e.TopK(Query{X: 0, Y: 0, Keywords: []string{"zebra"}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.TSim != 0 {
			t.Fatalf("unknown keyword matched %+v", r)
		}
	}
}

func TestObjectAccessors(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	o, err := e.Object(0)
	if err != nil || o.Name != "Cafe Uno" {
		t.Fatalf("Object(0) = %+v, %v", o, err)
	}
	if _, err := e.Object(99); err == nil {
		t.Fatal("unknown ID accepted")
	}
	all := e.Objects()
	if len(all) != 5 || all[3].Name != "Far Cafe" {
		t.Fatalf("Objects() = %v", all)
	}
}

func TestWhyNotRoundTrip(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee", "cafe"}, K: 2}
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	inResult := map[ObjectID]bool{}
	for _, r := range res {
		inResult[r.ID] = true
	}
	if inResult[3] {
		t.Fatal("Far Cafe unexpectedly in top-2")
	}

	// Explanation.
	exps, err := e.Explain(q, []ObjectID{3})
	if err != nil {
		t.Fatal(err)
	}
	if exps[0].Rank <= 2 || exps[0].Detail == "" {
		t.Fatalf("bad explanation: %+v", exps[0])
	}

	// Rank accessor agrees with the explanation.
	rank, err := e.Rank(q, 3)
	if err != nil || rank != exps[0].Rank {
		t.Fatalf("Rank = %d, %v; explanation says %d", rank, err, exps[0].Rank)
	}

	// Preference refinement revives the missing cafe.
	pref, err := e.WhyNotPreference(q, []ObjectID{3}, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.TopK(pref.Query)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range got {
		if r.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("preference refinement %+v did not revive object 3 (result %v)", pref, got)
	}

	// Keyword refinement revives it too.
	kw, err := e.WhyNotKeywords(q, []ObjectID{3}, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = e.TopK(kw.Query)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, r := range got {
		if r.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("keyword refinement %+v did not revive object 3 (result %v)", kw, got)
	}
}

func TestWhyNotRejectsResultMembers(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2}
	res, _ := e.TopK(q)
	if _, err := e.Explain(q, []ObjectID{res[0].ID}); err == nil {
		t.Fatal("result member accepted as missing")
	}
}

func TestRefineOptionsLambda(t *testing.T) {
	if got := (RefineOptions{}).lambda(); got != 0.5 {
		t.Fatalf("default lambda = %v", got)
	}
	if got := (RefineOptions{Lambda: 0.7}).lambda(); got != 0.7 {
		t.Fatalf("explicit lambda = %v", got)
	}
	if got := (RefineOptions{LambdaIsZero: true}).lambda(); got != 0 {
		t.Fatalf("zero lambda = %v", got)
	}
}

func TestHKDemoEngine(t *testing.T) {
	e := HKDemoEngine()
	if e.Len() != 539 {
		t.Fatalf("demo engine has %d objects", e.Len())
	}
	// Bob's scenario (Example 1): top-3 coffee-ish query near TST.
	q := Query{X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3}
	res, err := e.TopK(q)
	if err != nil || len(res) != 3 {
		t.Fatalf("demo query failed: %v (%d results)", err, len(res))
	}
	// Any object outside the result can be asked about.
	var missing ObjectID
	inResult := map[ObjectID]bool{}
	for _, r := range res {
		inResult[r.ID] = true
	}
	for id := ObjectID(0); int(id) < e.Len(); id++ {
		if !inResult[id] {
			missing = id
			break
		}
	}
	if _, err := e.Explain(q, []ObjectID{missing}); err != nil {
		t.Fatalf("Explain failed: %v", err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := HKDemoEngine()
	q := Query{X: 114.17, Y: 22.30, Keywords: []string{"wifi"}, K: 5}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := e.TopK(q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimilarityModelSelection(t *testing.T) {
	e, _ := NewEngine(demoObjects())
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 3}
	jac, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Similarity = "dice"
	dice, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(jac) != len(dice) {
		t.Fatalf("result sizes differ: %d vs %d", len(jac), len(dice))
	}
	q.Similarity = "cosine"
	if _, err := e.TopK(q); err == nil {
		t.Fatal("unknown similarity model accepted")
	}
}

func TestTopKBatchPublicAPI(t *testing.T) {
	e, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2},
		{X: 0, Y: 1, Keywords: []string{"tea"}, K: 1},
		{X: 2, Y: 2, Keywords: []string{"books"}, K: 3},
	}
	batch, err := e.TopKBatch(queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d result sets, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		want, err := e.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j].ID != want[j].ID || batch[i][j].Score != want[j].Score {
				t.Fatalf("query %d rank %d: batch %+v != sequential %+v", i, j, batch[i][j], want[j])
			}
		}
	}

	// An invalid query fails the whole batch.
	bad := append([]Query{}, queries...)
	bad[1].K = 0
	if _, err := e.TopKBatch(bad, 2); err == nil {
		t.Fatal("batch with invalid query accepted")
	}
}

func TestWhyNotKeywordsBatchPublicAPI(t *testing.T) {
	e, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0, Y: 0, Keywords: []string{"coffee"}, K: 2}
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	inResult := map[ObjectID]bool{}
	for _, r := range res {
		inResult[r.ID] = true
	}
	var missing, present ObjectID
	for id := ObjectID(0); int(id) < e.Len(); id++ {
		if inResult[id] {
			present = id
		} else {
			missing = id
		}
	}

	jobs := []WhyNotKeywordsJob{
		{Query: q, Missing: []ObjectID{missing}},
		{Query: q, Missing: []ObjectID{present}},           // already in result: per-job error
		{Query: Query{K: 1}, Missing: []ObjectID{missing}}, // malformed query: per-job error
	}
	refs, errs := e.WhyNotKeywordsBatch(jobs, RefineOptions{}, 2)
	if errs[0] != nil {
		t.Fatalf("valid job failed: %v", errs[0])
	}
	want, err := e.WhyNotKeywords(q, []ObjectID{missing}, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if refs[0] == nil || refs[0].Penalty != want.Penalty || refs[0].K != want.K {
		t.Fatalf("batch refinement %+v != sequential %+v", refs[0], want)
	}
	if errs[1] == nil || refs[1] != nil {
		t.Fatal("in-result missing object should fail its job only")
	}
	if errs[2] == nil || refs[2] != nil {
		t.Fatal("malformed query should fail its job only")
	}
}

// TestShardedEnginePublicAPI: an engine built with Shards > 1 serves
// identical answers through the whole public surface — top-k, batch,
// rank, explain, both why-not models, live updates — and reports
// per-shard statistics.
func TestShardedEnginePublicAPI(t *testing.T) {
	single, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewEngineWith(demoObjects(), EngineOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0.2, Y: 0.2, Keywords: []string{"coffee", "cafe"}, K: 2}

	want, err := single.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded TopK %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("rank %d: got (%d, %v), want (%d, %v)", i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}

	missing := ObjectID(3) // Far Cafe: textually perfect, spatially out
	wr, err1 := single.Rank(q, missing)
	gr, err2 := sharded.Rank(q, missing)
	if err1 != nil || err2 != nil || wr != gr {
		t.Fatalf("rank: %d (%v) vs %d (%v)", wr, err1, gr, err2)
	}
	wk, err1 := single.WhyNotKeywords(q, []ObjectID{missing}, RefineOptions{})
	gk, err2 := sharded.WhyNotKeywords(q, []ObjectID{missing}, RefineOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("whynot keywords: %v / %v", err1, err2)
	}
	if gk.Penalty != wk.Penalty || gk.K != wk.K || gk.DeltaDoc != wk.DeltaDoc {
		t.Fatalf("keyword refinement diverges: %+v vs %+v", gk, wk)
	}
	wp, err1 := single.WhyNotPreference(q, []ObjectID{missing}, RefineOptions{})
	gp, err2 := sharded.WhyNotPreference(q, []ObjectID{missing}, RefineOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("whynot preference: %v / %v", err1, err2)
	}
	if gp.Penalty != wp.Penalty || gp.Wt != wp.Wt || gp.K != wp.K {
		t.Fatalf("preference refinement diverges: %+v vs %+v", gp, wp)
	}

	// Live updates route through the shards and stay equivalent.
	no := Object{Name: "New Cafe", X: 0.2, Y: 0.2, Keywords: []string{"coffee", "cafe"}}
	id1, err1 := single.Insert(no)
	id2, err2 := sharded.Insert(no)
	if err1 != nil || err2 != nil || id1 != id2 {
		t.Fatalf("insert: (%d, %v) vs (%d, %v)", id1, err1, id2, err2)
	}
	want, _ = single.TopK(q)
	got, _ = sharded.TopK(q)
	if got[0].ID != id2 || want[0].ID != id1 {
		t.Fatalf("inserted winner not first: got %d/%d", got[0].ID, want[0].ID)
	}
	if err := sharded.Remove(id2); err != nil {
		t.Fatal(err)
	}
	if err := single.Remove(id1); err != nil {
		t.Fatal(err)
	}

	st := sharded.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("stats: %+v", st)
	}
	sum, live := 0, 0
	for _, sh := range st.PerShard {
		sum += sh.Objects
		live += sh.Live
	}
	if sum != sharded.Len() || live != sharded.LiveLen() {
		t.Fatalf("per-shard sums %d/%d, want %d/%d", sum, live, sharded.Len(), sharded.LiveLen())
	}

	// Batch equivalence through the public API.
	batchW, err1 := single.TopKBatch([]Query{q, q}, 2)
	batchG, err2 := sharded.TopKBatch([]Query{q, q}, 2)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch: %v / %v", err1, err2)
	}
	for i := range batchW {
		for j := range batchW[i] {
			if batchG[i][j].ID != batchW[i][j].ID {
				t.Fatalf("batch %d rank %d diverges", i, j)
			}
		}
	}
}

// TestSplitterPublicAPI: the STR splitter and online rebalancing are
// selectable through EngineOptions, reported through Stats, and never
// change answers; bad configurations are rejected up front.
func TestSplitterPublicAPI(t *testing.T) {
	single, err := NewEngine(demoObjects())
	if err != nil {
		t.Fatal(err)
	}
	str, err := NewEngineWith(demoObjects(), EngineOptions{
		Shards: 3, Splitter: "str", RebalanceFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := str.Stats(); st.Splitter != "str" || st.ImbalanceFactor < 1 {
		t.Fatalf("stats: %+v", st)
	}
	q := Query{X: 0.2, Y: 0.2, Keywords: []string{"coffee", "cafe"}, K: 3}
	want, err := single.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIDs := func(ctx string) {
		t.Helper()
		got, err := str.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("%s rank %d: got (%d, %v), want (%d, %v)",
					ctx, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
	assertSameIDs("str")
	if !str.Rebalance() {
		t.Fatal("Rebalance() = false on a sharded engine")
	}
	assertSameIDs("rebalanced")
	if got := str.Stats().Rebalances; got < 1 {
		t.Fatalf("Stats().Rebalances = %d, want ≥ 1", got)
	}
	if single.Rebalance() {
		t.Fatal("Rebalance() = true on an unsharded engine")
	}

	if _, err := NewEngineWith(demoObjects(), EngineOptions{Shards: 2, Splitter: "hilbert"}); err == nil {
		t.Fatal("unknown splitter accepted")
	}
	if _, err := NewEngineWith(demoObjects(), EngineOptions{Shards: 2, RebalanceFactor: 0.5}); err == nil {
		t.Fatal("rebalance factor 0.5 accepted")
	}
}
