// Package score defines the spatial keyword top-k query model of Section
// 2.1 of the paper: the query tuple q = (loc, doc, k, w⃗), the ranking
// function ST (Eqn 1) with normalized Euclidean distance and Jaccard
// textual similarity (Eqn 2), and the deterministic ranking order every
// engine and index in YASK agrees on.
package score

import (
	"errors"
	"fmt"
	"math"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/vocab"
)

// Weights is the user preference w⃗ = ⟨ws, wt⟩ between spatial proximity
// and textual similarity. Valid weights satisfy 0 < ws, wt < 1 and
// ws + wt = 1.
type Weights struct {
	Ws, Wt float64
}

// DefaultWeights is the paper's default server-side setting w⃗ = ⟨0.5, 0.5⟩.
var DefaultWeights = Weights{Ws: 0.5, Wt: 0.5}

// WeightsFromWt returns the weight vector with the given textual weight.
func WeightsFromWt(wt float64) Weights { return Weights{Ws: 1 - wt, Wt: wt} }

// Validate returns an error unless both weights are finite, 0 < ws,wt < 1
// and ws + wt = 1 (within floating-point tolerance). Non-finite weights
// must never reach the ranking heaps: NaN comparisons violate the strict
// weak ordering the heap invariant depends on, turning rankings into
// arbitrary orderings instead of an error.
func (w Weights) Validate() error {
	if math.IsNaN(w.Ws) || math.IsNaN(w.Wt) || math.IsInf(w.Ws, 0) || math.IsInf(w.Wt, 0) {
		return fmt.Errorf("score: weights %v are not finite", w)
	}
	if !(w.Ws > 0 && w.Ws < 1 && w.Wt > 0 && w.Wt < 1) {
		return fmt.Errorf("score: weights %v outside (0,1)", w)
	}
	if math.Abs(w.Ws+w.Wt-1) > 1e-9 {
		return fmt.Errorf("score: weights %v do not sum to 1", w)
	}
	return nil
}

// Dist returns the Euclidean norm ‖w − o‖₂ between two weight vectors,
// the Δw⃗ of penalty Eqn 3.
func (w Weights) Dist(o Weights) float64 {
	ds := w.Ws - o.Ws
	dt := w.Wt - o.Wt
	return math.Sqrt(ds*ds + dt*dt)
}

// String implements fmt.Stringer.
func (w Weights) String() string { return fmt.Sprintf("⟨%.4g, %.4g⟩", w.Ws, w.Wt) }

// TextSim selects the textual similarity model of Eqn 2. Jaccard is the
// paper's default; Dice is the alternative its footnote 1 allows. Both
// are set-based, so the SetR-tree and KcR-tree bounds adapt to either.
type TextSim int

const (
	// SimJaccard is |o ∩ q| / |o ∪ q| (Eqn 2), the default.
	SimJaccard TextSim = iota
	// SimDice is 2|o ∩ q| / (|o| + |q|).
	SimDice
)

// String implements fmt.Stringer.
func (t TextSim) String() string {
	switch t {
	case SimJaccard:
		return "jaccard"
	case SimDice:
		return "dice"
	default:
		return fmt.Sprintf("TextSim(%d)", int(t))
	}
}

// Query is a spatial keyword top-k query.
type Query struct {
	Loc geo.Point
	Doc vocab.KeywordSet
	K   int
	W   Weights
	// Sim selects the textual similarity model; the zero value is the
	// paper's Jaccard.
	Sim TextSim
}

// Validate checks the query parameters. Non-finite coordinates are
// rejected for the same reason as non-finite weights: a NaN location
// makes every distance NaN, which corrupts the best-first heap order and
// produces arbitrary rankings instead of an error.
func (q Query) Validate() error {
	if math.IsNaN(q.Loc.X) || math.IsNaN(q.Loc.Y) || math.IsInf(q.Loc.X, 0) || math.IsInf(q.Loc.Y, 0) {
		return fmt.Errorf("score: query location %v is not finite", q.Loc)
	}
	if q.K <= 0 {
		return errors.New("score: query k must be positive")
	}
	if q.Doc.Empty() {
		return errors.New("score: query keyword set must not be empty")
	}
	if !q.Doc.Canonical() {
		return errors.New("score: query keyword set not canonical")
	}
	if q.Sim != SimJaccard && q.Sim != SimDice {
		return fmt.Errorf("score: unknown similarity model %d", int(q.Sim))
	}
	return q.W.Validate()
}

// WithWeights returns a copy of q with the weight vector replaced.
func (q Query) WithWeights(w Weights) Query {
	q.W = w
	return q
}

// WithDoc returns a copy of q with the keyword set replaced.
func (q Query) WithDoc(doc vocab.KeywordSet) Query {
	q.Doc = doc
	return q
}

// Scorer evaluates the ranking function for one query against one
// collection. It fixes the spatial normalization constant (the data-space
// diagonal) so that SDist ∈ [0, 1] for every object. Scorer is immutable
// and safe for concurrent use.
type Scorer struct {
	Query   Query
	MaxDist float64
}

// NewScorer returns a Scorer for q over the collection's space.
func NewScorer(q Query, c *object.Collection) Scorer {
	return Scorer{Query: q, MaxDist: c.MaxDist()}
}

// SDist returns the normalized spatial distance of o, clamped to [0, 1].
// Clamping matters only when the query point lies outside the data space.
//
//yask:hotpath
func (s Scorer) SDist(o object.Object) float64 {
	return s.SDistAt(o.Loc)
}

// SDistAt returns the normalized spatial distance of a location.
//
//yask:hotpath
func (s Scorer) SDistAt(p geo.Point) float64 {
	d := s.Query.Loc.Dist(p) / s.MaxDist
	if d > 1 {
		return 1
	}
	return d
}

// SDistRectMin returns a lower bound on the normalized spatial distance
// of every location inside r, clamped to [0, 1]. Index traversals use it
// to upper-bound the spatial component ws·(1 − SDist) of a subtree.
//
//yask:hotpath
func (s Scorer) SDistRectMin(r geo.Rect) float64 {
	d := r.MinDist(s.Query.Loc) / s.MaxDist
	if d > 1 {
		return 1
	}
	return d
}

// SDistRectMax returns an upper bound on the normalized spatial distance
// of every location inside r, clamped to [0, 1].
//
//yask:hotpath
func (s Scorer) SDistRectMax(r geo.Rect) float64 {
	d := r.MaxDist(s.Query.Loc) / s.MaxDist
	if d > 1 {
		return 1
	}
	return d
}

// TSim returns the textual similarity of o to the query keywords under
// the query's similarity model (Eqn 2; Jaccard by default).
//
//yask:hotpath
func (s Scorer) TSim(o object.Object) float64 {
	if s.Query.Sim == SimDice {
		return s.Query.Doc.Dice(o.Doc)
	}
	return s.Query.Doc.Jaccard(o.Doc)
}

// Score returns ST(o, q) per Eqn 1.
//
//yask:hotpath
func (s Scorer) Score(o object.Object) float64 {
	return s.Query.W.Ws*(1-s.SDist(o)) + s.Query.W.Wt*s.TSim(o)
}

// Components returns (1 − SDist) and TSim separately; the why-not engines
// need both to build the per-object score lines of the weight plane.
func (s Scorer) Components(o object.Object) (spatial, textual float64) {
	return 1 - s.SDist(o), s.TSim(o)
}

// SigSimUpperBound returns an upper bound on the textual similarity
// between a query of qlen keywords and any document d with
// minLen ≤ |d| ≤ maxLen sharing at most m keywords with the query,
// where the documents additionally contain a common core of interLen
// keywords (pass |d| itself for a single document; a node's
// intersection-set size for a subtree). It is the O(1) bound the
// keyword-signature pruning layer evaluates in place of the exact
// merge-walk bounds:
//
//	Jaccard: |d ∩ q| ≤ min(m, maxLen) and
//	         |d ∪ q| ≥ max(minLen + qlen − m, interLen, qlen)
//	Dice:    2·min(m, maxLen) / (minLen + qlen), capped at 1
//
// Both are admissible whenever m truly bounds |d ∩ q| — the signature
// soundness invariant (vocab.Signature) — so every family's exact bound
// is ≤ this one, and pruning on it never changes results.
//
//yask:hotpath
func SigSimUpperBound(sim TextSim, m, minLen, maxLen, interLen, qlen int) float64 {
	num := m
	if maxLen < num {
		num = maxLen
	}
	if num <= 0 {
		return 0
	}
	if sim == SimDice {
		den := minLen + qlen
		if den <= 0 {
			return 0
		}
		if ub := 2 * float64(num) / float64(den); ub < 1 {
			return ub
		}
		return 1
	}
	den := minLen + qlen - m
	if interLen > den {
		den = interLen
	}
	if qlen > den {
		den = qlen
	}
	if den < num {
		den = num
	}
	return float64(num) / float64(den)
}

// Better reports whether object a with score sa ranks strictly above
// object b with score sb. Ties break by ascending object ID, which makes
// the total ranking order deterministic — Definition 1 admits any
// tie-break, and every engine here must use the same one.
//
//yask:hotpath
func Better(sa float64, a object.ID, sb float64, b object.ID) bool {
	if sa != sb {
		return sa > sb
	}
	return a < b
}

// Result is one ranked answer.
type Result struct {
	Obj   object.Object
	Score float64
}

// WorstFirst orders results worst-ranked first — the ordering of the
// bounded min-heap every top-k engine keeps its k best candidates in.
//
//yask:hotpath
func WorstFirst(a, b Result) bool {
	return Better(b.Score, b.Obj.ID, a.Score, a.Obj.ID)
}

// ResultIDs projects results to their object IDs, a convenience for
// tests and result diffing.
func ResultIDs(rs []Result) []object.ID {
	ids := make([]object.ID, len(rs))
	for i, r := range rs {
		ids[i] = r.Obj.ID
	}
	return ids
}
