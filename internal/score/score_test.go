package score

import (
	"math"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/vocab"
)

func collection() *object.Collection {
	return object.NewCollection([]object.Object{
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(1, 2)},
		{ID: 1, Loc: geo.Point{X: 3, Y: 4}, Doc: vocab.NewKeywordSet(1)},
		{ID: 2, Loc: geo.Point{X: 6, Y: 8}, Doc: vocab.NewKeywordSet(3, 4)},
	})
}

func TestWeightsValidate(t *testing.T) {
	valid := []Weights{{0.5, 0.5}, {0.1, 0.9}, {0.999, 0.001}}
	for _, w := range valid {
		if err := w.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", w, err)
		}
	}
	invalid := []Weights{{0, 1}, {1, 0}, {0.5, 0.6}, {-0.1, 1.1}, {0.3, 0.3}}
	for _, w := range invalid {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", w)
		}
	}
}

func TestWeightsFromWt(t *testing.T) {
	w := WeightsFromWt(0.3)
	if w.Wt != 0.3 || math.Abs(w.Ws-0.7) > 1e-12 {
		t.Fatalf("WeightsFromWt = %v", w)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsDist(t *testing.T) {
	a := Weights{0.5, 0.5}
	b := Weights{0.2, 0.8}
	want := math.Sqrt(0.09 + 0.09)
	if got := a.Dist(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Dist = %v, want %v", got, want)
	}
	if a.Dist(a) != 0 {
		t.Fatal("Dist to self should be 0")
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(1), K: 3, W: DefaultWeights}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := []Query{
		{Doc: vocab.NewKeywordSet(1), K: 0, W: DefaultWeights},
		{Doc: nil, K: 3, W: DefaultWeights},
		{Doc: vocab.NewKeywordSet(1), K: 3, W: Weights{0.5, 0.6}},
		{Doc: vocab.KeywordSet{2, 1}, K: 3, W: DefaultWeights},
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func TestSDistNormalization(t *testing.T) {
	c := collection()
	q := Query{Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(1), K: 1, W: DefaultWeights}
	s := NewScorer(q, c)
	// Space diagonal is dist((0,0),(6,8)) = 10.
	if s.MaxDist != 10 {
		t.Fatalf("MaxDist = %v, want 10", s.MaxDist)
	}
	if got := s.SDist(c.Get(0)); got != 0 {
		t.Errorf("SDist(self) = %v", got)
	}
	if got := s.SDist(c.Get(1)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SDist(o1) = %v, want 0.5", got)
	}
	if got := s.SDist(c.Get(2)); math.Abs(got-1) > 1e-12 {
		t.Errorf("SDist(o2) = %v, want 1", got)
	}
}

func TestSDistClamped(t *testing.T) {
	c := collection()
	q := Query{Loc: geo.Point{X: 100, Y: 100}, Doc: vocab.NewKeywordSet(1), K: 1, W: DefaultWeights}
	s := NewScorer(q, c)
	for _, o := range c.All() {
		if d := s.SDist(o); d != 1 {
			t.Errorf("far query SDist(%v) = %v, want clamped 1", o.ID, d)
		}
	}
}

func TestScoreMatchesEqn1(t *testing.T) {
	c := collection()
	q := Query{Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(1, 2), K: 1, W: Weights{0.3, 0.7}}
	s := NewScorer(q, c)
	// o0: SDist 0, TSim 1 → 0.3*1 + 0.7*1 = 1.
	if got := s.Score(c.Get(0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Score(o0) = %v, want 1", got)
	}
	// o1: SDist 0.5, TSim |{1}|/|{1,2}| = 0.5 → 0.3*0.5 + 0.7*0.5 = 0.5.
	if got := s.Score(c.Get(1)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Score(o1) = %v, want 0.5", got)
	}
	// o2: SDist 1, TSim 0 → 0.
	if got := s.Score(c.Get(2)); got != 0 {
		t.Errorf("Score(o2) = %v, want 0", got)
	}
}

func TestComponents(t *testing.T) {
	c := collection()
	q := Query{Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(1, 2), K: 1, W: DefaultWeights}
	s := NewScorer(q, c)
	sp, tx := s.Components(c.Get(1))
	if math.Abs(sp-0.5) > 1e-12 || math.Abs(tx-0.5) > 1e-12 {
		t.Fatalf("Components = %v, %v", sp, tx)
	}
	// Score must equal ws*spatial + wt*textual for any weights.
	for _, w := range []Weights{{0.2, 0.8}, {0.5, 0.5}, {0.9, 0.1}} {
		s2 := Scorer{Query: q.WithWeights(w), MaxDist: s.MaxDist}
		want := w.Ws*sp + w.Wt*tx
		if got := s2.Score(c.Get(1)); math.Abs(got-want) > 1e-12 {
			t.Errorf("weights %v: Score = %v, want %v", w, got, want)
		}
	}
}

func TestBetterTieBreak(t *testing.T) {
	if !Better(0.5, 1, 0.4, 0) {
		t.Error("higher score should rank above")
	}
	if Better(0.4, 0, 0.5, 1) {
		t.Error("lower score should not rank above")
	}
	if !Better(0.5, 1, 0.5, 2) {
		t.Error("equal score: lower ID should rank above")
	}
	if Better(0.5, 2, 0.5, 1) {
		t.Error("equal score: higher ID should not rank above")
	}
	if Better(0.5, 1, 0.5, 1) {
		t.Error("object should not rank above itself")
	}
}

func TestWithHelpers(t *testing.T) {
	q := Query{Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(1), K: 3, W: DefaultWeights}
	q2 := q.WithWeights(Weights{0.2, 0.8})
	if q.W != DefaultWeights {
		t.Fatal("WithWeights mutated receiver")
	}
	if q2.W != (Weights{0.2, 0.8}) || q2.K != 3 {
		t.Fatal("WithWeights result wrong")
	}
	q3 := q.WithDoc(vocab.NewKeywordSet(7, 8))
	if !q.Doc.Equal(vocab.NewKeywordSet(1)) || !q3.Doc.Equal(vocab.NewKeywordSet(7, 8)) {
		t.Fatal("WithDoc wrong")
	}
}

func TestResultIDs(t *testing.T) {
	c := collection()
	rs := []Result{{Obj: c.Get(2), Score: 0.9}, {Obj: c.Get(0), Score: 0.8}}
	ids := ResultIDs(rs)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 0 {
		t.Fatalf("ResultIDs = %v", ids)
	}
}

func TestDegenerateSpaceMaxDist(t *testing.T) {
	c := object.NewCollection([]object.Object{
		{ID: 0, Loc: geo.Point{X: 5, Y: 5}, Doc: vocab.NewKeywordSet(1)},
	})
	if c.MaxDist() != 1 {
		t.Fatalf("degenerate space MaxDist = %v, want 1", c.MaxDist())
	}
	q := Query{Loc: geo.Point{X: 5, Y: 5}, Doc: vocab.NewKeywordSet(1), K: 1, W: DefaultWeights}
	s := NewScorer(q, c)
	if got := s.Score(c.Get(0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Score = %v, want 1", got)
	}
}
