package score

import (
	"math"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

// TestValidateRejectsNonFinite: NaN/Inf coordinates and weights must be
// rejected up front — inside the best-first heaps a NaN comparison
// violates the strict weak ordering and silently corrupts rankings.
func TestValidateRejectsNonFinite(t *testing.T) {
	base := Query{
		Loc: geo.Point{X: 1, Y: 2},
		Doc: vocab.NewKeywordSet(1, 2),
		K:   3,
		W:   DefaultWeights,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("finite base query rejected: %v", err)
	}

	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bads {
		q := base
		q.Loc.X = v
		if err := q.Validate(); err == nil {
			t.Errorf("X=%v accepted", v)
		}
		q = base
		q.Loc.Y = v
		if err := q.Validate(); err == nil {
			t.Errorf("Y=%v accepted", v)
		}
		w := Weights{Ws: v, Wt: 0.5}
		if err := w.Validate(); err == nil {
			t.Errorf("Ws=%v accepted", v)
		}
		w = Weights{Ws: 0.5, Wt: v}
		if err := w.Validate(); err == nil {
			t.Errorf("Wt=%v accepted", v)
		}
	}

	// WeightsFromWt(NaN) must also fail validation downstream.
	if err := WeightsFromWt(math.NaN()).Validate(); err == nil {
		t.Error("WeightsFromWt(NaN) accepted")
	}
}
