package server

// indexHTML is the embedded single-page client: a canvas map with the
// three panels of the demo UI (Figs. 3–5). Grey markers are objects, the
// red marker is the query location, green markers are results, black
// markers are selected missing objects. It replaces the Google Maps
// dependency of the original demo so the module stays offline.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>YASK — Why-Not Spatial Keyword Queries</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 0; display: flex; height: 100vh; }
 #map-panel { flex: 1; position: relative; }
 #map { width: 100%; height: 100%; background: #f3f0e9; cursor: crosshair; }
 #side { width: 380px; padding: 12px; overflow-y: auto; border-left: 1px solid #ccc; }
 fieldset { margin-bottom: 12px; border: 1px solid #bbb; border-radius: 6px; }
 legend { font-weight: 600; }
 label { display: block; margin: 6px 0 2px; font-size: 13px; }
 input, select { width: 95%; padding: 4px; }
 button { margin: 6px 4px 0 0; padding: 6px 10px; cursor: pointer; }
 #results li, #log li { font-size: 13px; margin-bottom: 4px; }
 .pill { display: inline-block; background: #e8e8e8; border-radius: 8px; padding: 0 6px; margin: 1px; font-size: 12px; }
 #explain { background: #fffbe8; border: 1px solid #e5d97a; padding: 8px; border-radius: 6px; font-size: 13px; white-space: pre-wrap; }
 .hidden { display: none; }
</style>
</head>
<body>
<div id="map-panel"><canvas id="map"></canvas></div>
<div id="side">
 <h2>YASK</h2>
 <p style="font-size:13px">A whY-not question Answering engine for Spatial Keyword query services.
 Click the map to set the query location (red). Results are green; click a grey marker to mark it
 as an expected-but-missing object (black), then ask <em>why not?</em></p>

 <fieldset>
  <legend>Panel 2 — Spatial keyword top-k query</legend>
  <label>Keywords (space separated)</label>
  <input id="keywords" value="wifi breakfast">
  <label>k</label>
  <input id="k" type="number" value="3" min="1">
  <button id="run">Run query</button>
  <ol id="results"></ol>
 </fieldset>

 <fieldset>
  <legend>Panel 3 — Why-not question</legend>
  <div>Selected missing: <span id="missing-list">none</span></div>
  <label>λ (penalty trade-off)</label>
  <input id="lambda" type="number" value="0.5" min="0" max="1" step="0.1">
  <button id="explain-btn" title="Why are these objects missing?">?</button>
  <button id="refine-pref">Refine: preference</button>
  <button id="refine-kw">Refine: keywords</button>
 </fieldset>

 <fieldset id="explain-panel" class="hidden">
  <legend>Panel 4 — Explanation</legend>
  <div id="explain"></div>
 </fieldset>

 <fieldset>
  <legend>Panel 5 — Query log (i)</legend>
  <button id="log-btn">Refresh log</button>
  <ul id="log"></ul>
 </fieldset>
</div>
<script>
'use strict';
const canvas = document.getElementById('map');
const ctx = canvas.getContext('2d');
let objects = [], results = [], missing = new Set(), queryLoc = null, sessionId = null;
let bounds = null;

function resize() {
  canvas.width = canvas.parentElement.clientWidth;
  canvas.height = canvas.parentElement.clientHeight;
  draw();
}
window.addEventListener('resize', resize);

function computeBounds() {
  if (!objects.length) return;
  let minX = Infinity, maxX = -Infinity, minY = Infinity, maxY = -Infinity;
  for (const o of objects) {
    minX = Math.min(minX, o.X); maxX = Math.max(maxX, o.X);
    minY = Math.min(minY, o.Y); maxY = Math.max(maxY, o.Y);
  }
  const padX = (maxX - minX) * 0.05 || 1, padY = (maxY - minY) * 0.05 || 1;
  bounds = {minX: minX - padX, maxX: maxX + padX, minY: minY - padY, maxY: maxY + padY};
}
function toPx(o) {
  return {
    x: (o.X - bounds.minX) / (bounds.maxX - bounds.minX) * canvas.width,
    y: canvas.height - (o.Y - bounds.minY) / (bounds.maxY - bounds.minY) * canvas.height,
  };
}
function toWorld(px, py) {
  return {
    X: bounds.minX + px / canvas.width * (bounds.maxX - bounds.minX),
    Y: bounds.minY + (canvas.height - py) / canvas.height * (bounds.maxY - bounds.minY),
  };
}
function draw() {
  if (!bounds) return;
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const resultIds = new Set(results.map(r => r.ID));
  for (const o of objects) {
    const p = toPx(o);
    ctx.beginPath();
    ctx.arc(p.x, p.y, missing.has(o.ID) ? 7 : resultIds.has(o.ID) ? 6 : 3.5, 0, 7);
    ctx.fillStyle = missing.has(o.ID) ? '#111' : resultIds.has(o.ID) ? '#1a9641' : '#9a9a9a';
    ctx.fill();
  }
  if (queryLoc) {
    const p = toPx(queryLoc);
    ctx.beginPath(); ctx.arc(p.x, p.y, 8, 0, 7);
    ctx.fillStyle = '#d7191c'; ctx.fill();
    ctx.strokeStyle = '#fff'; ctx.lineWidth = 2; ctx.stroke();
  }
}
canvas.addEventListener('click', ev => {
  const rect = canvas.getBoundingClientRect();
  const px = ev.clientX - rect.left, py = ev.clientY - rect.top;
  // Near a marker? toggle missing. Otherwise set query location.
  let nearest = null, nd = 1e9;
  for (const o of objects) {
    const p = toPx(o);
    const d = Math.hypot(p.x - px, p.y - py);
    if (d < nd) { nd = d; nearest = o; }
  }
  if (nearest && nd < 8) {
    if (missing.has(nearest.ID)) missing.delete(nearest.ID); else missing.add(nearest.ID);
    renderMissing();
  } else {
    queryLoc = toWorld(px, py);
  }
  draw();
});
function renderMissing() {
  const el = document.getElementById('missing-list');
  el.innerHTML = missing.size
    ? [...missing].map(id => '<span class="pill">#' + id + '</span>').join('')
    : 'none';
}
async function api(path, body, method) {
  const res = await fetch(path, {
    method: method || (body ? 'POST' : 'GET'),
    headers: {'Content-Type': 'application/json'},
    body: body ? JSON.stringify(body) : undefined,
  });
  const data = await res.json().catch(() => ({}));
  if (!res.ok) throw new Error(data.error || res.statusText);
  return data;
}
function renderResults(rs) {
  results = rs;
  document.getElementById('results').innerHTML = rs.map(r =>
    '<li><b>' + (r.Name || '#' + r.ID) + '</b> score ' + r.Score.toFixed(4) +
    '<br>' + (r.Keywords || []).map(k => '<span class="pill">' + k + '</span>').join('') + '</li>'
  ).join('');
  draw();
}
document.getElementById('run').onclick = async () => {
  if (!queryLoc) { alert('Click the map to set the query location first.'); return; }
  try {
    const data = await api('/api/query', {
      x: queryLoc.X, y: queryLoc.Y,
      keywords: document.getElementById('keywords').value.trim().split(/\s+/),
      k: parseInt(document.getElementById('k').value, 10),
    });
    sessionId = data.sessionId;
    missing.clear(); renderMissing();
    renderResults(data.results);
  } catch (e) { alert(e.message); }
};
document.getElementById('explain-btn').onclick = async () => {
  if (!sessionId || !missing.size) { alert('Run a query and select missing objects first.'); return; }
  try {
    const data = await api('/api/explain', {sessionId, missing: [...missing]});
    document.getElementById('explain-panel').classList.remove('hidden');
    document.getElementById('explain').textContent =
      data.explanations.map(e => 'rank ' + e.Rank + ' — ' + e.Detail).join('\n\n');
  } catch (e) { alert(e.message); }
};
async function refine(model) {
  if (!sessionId || !missing.size) { alert('Run a query and select missing objects first.'); return; }
  try {
    const data = await api('/api/whynot', {
      sessionId, missing: [...missing], model,
      lambda: parseFloat(document.getElementById('lambda').value),
    });
    const ref = data.preference || data.keyword;
    document.getElementById('explain-panel').classList.remove('hidden');
    document.getElementById('explain').textContent =
      'Refined (' + model + '): ' + JSON.stringify(ref.Query) +
      '\npenalty ' + ref.Penalty.toFixed(4) + ', ' + data.elapsedMs.toFixed(2) + ' ms';
    renderResults(data.results);
  } catch (e) { alert(e.message); }
}
document.getElementById('refine-pref').onclick = () => refine('preference');
document.getElementById('refine-kw').onclick = () => refine('keyword');
document.getElementById('log-btn').onclick = async () => {
  const entries = await api('/api/log');
  document.getElementById('log').innerHTML = entries.map(e =>
    '<li>[' + e.kind + '] k=' + e.Query.K + ' kw=' + (e.Query.Keywords || []).join(',') +
    (e.penalty ? ' penalty=' + e.penalty.toFixed(4) : '') +
    ' (' + e.elapsedMs.toFixed(2) + ' ms)</li>'
  ).join('');
};
(async function init() {
  objects = await api('/api/objects');
  computeBounds();
  resize();
})();
</script>
</body>
</html>
`
