// Package server implements YASK's browser–server deployment (Fig. 1 of
// the paper): an HTTP JSON API over the public engine, a server-side
// session cache of users' initial queries (kept until they stop asking
// follow-up why-not questions), a query log exposing refined-query
// parameters, penalties, and response times (Panel 5 of the demo UI),
// and an embedded single-page map client standing in for the Google
// Maps front end.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"github.com/yask-engine/yask"
)

// DefaultSessionTTL is how long a cached initial query survives without
// follow-up why-not activity.
const DefaultSessionTTL = 30 * time.Minute

// session is one cached initial query and its result.
type session struct {
	id       string
	query    yask.Query
	results  []yask.Result
	lastUsed time.Time
}

// sessionStore caches initial queries by session ID, mirroring the
// paper's "the server caches users' initial spatial keyword queries
// until users give up asking follow-up why-not questions".
type sessionStore struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time
	m   map[string]*session
}

func newSessionStore(ttl time.Duration) *sessionStore {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	return &sessionStore{ttl: ttl, now: time.Now, m: make(map[string]*session)}
}

// put stores a new session and returns its ID.
func (st *sessionStore) put(q yask.Query, results []yask.Result) string {
	id := newSessionID()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	st.m[id] = &session{id: id, query: q, results: results, lastUsed: st.now()}
	return id
}

// get fetches a live session and refreshes its TTL.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		return nil, false
	}
	if st.now().Sub(s.lastUsed) > st.ttl {
		delete(st.m, id)
		return nil, false
	}
	s.lastUsed = st.now()
	return s, true
}

// drop removes a session (the user gave up asking why-not questions).
func (st *sessionStore) drop(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.m, id)
}

// len returns the number of live sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	return len(st.m)
}

// evictLocked removes expired sessions. Callers hold st.mu.
func (st *sessionStore) evictLocked() {
	cutoff := st.now().Add(-st.ttl)
	for id, s := range st.m {
		if s.lastUsed.Before(cutoff) {
			delete(st.m, id)
		}
	}
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable environment breakage.
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// logEntry is one record of the query log (Panel 5): query parameters,
// penalty for refined queries, and server response time.
type logEntry struct {
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"` // "query", "batch", "explain", "preference", "keyword"
	SessionID string    `json:"sessionId,omitempty"`
	Query     yask.Query
	// BatchSize is the number of queries of a "batch" entry (the Query
	// field holds only the first); zero for single-query kinds.
	BatchSize int     `json:"batchSize,omitempty"`
	Penalty   float64 `json:"penalty,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// queryLog is a bounded in-memory log of recent operations.
type queryLog struct {
	mu      sync.Mutex
	entries []logEntry
	cap     int
}

func newQueryLog(capacity int) *queryLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &queryLog{cap: capacity}
}

func (l *queryLog) add(e logEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		l.entries = l.entries[len(l.entries)-l.cap:]
	}
}

// recent returns up to n latest entries, newest first.
func (l *queryLog) recent(n int) []logEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]logEntry, n)
	for i := 0; i < n; i++ {
		out[i] = l.entries[len(l.entries)-1-i]
	}
	return out
}
