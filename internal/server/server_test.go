package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/yask-engine/yask"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(yask.HKDemoEngine(), Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

func runQuery(t *testing.T, ts *httptest.Server) queryResponse {
	t.Helper()
	var qr queryResponse
	status, raw := postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3,
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, raw)
	}
	return qr
}

func pickMissing(t *testing.T, ts *httptest.Server, qr queryResponse) yask.ObjectID {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var objs []yask.Result
	if err := json.NewDecoder(resp.Body).Decode(&objs); err != nil {
		t.Fatal(err)
	}
	inResult := map[yask.ObjectID]bool{}
	for _, r := range qr.Results {
		inResult[r.ID] = true
	}
	for _, o := range objs {
		if !inResult[o.ID] {
			return o.ID
		}
	}
	t.Fatal("no missing object available")
	return 0
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	if len(qr.Results) != 3 {
		t.Fatalf("got %d results", len(qr.Results))
	}
	if qr.SessionID == "" {
		t.Fatal("no session ID")
	}
	if qr.ElapsedMS < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestQueryEndpointRejectsBadInput(t *testing.T) {
	_, ts := testServer(t)
	status, _ := postJSON(t, ts.URL+"/api/query", queryRequest{K: 0, Keywords: []string{"x"}}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("k=0 status %d", status)
	}
	status, _ = postJSON(t, ts.URL+"/api/query", map[string]any{"bogus": 1}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", status)
	}
	resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	var er explainResponse
	status, raw := postJSON(t, ts.URL+"/api/explain", explainRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{missing},
	}, &er)
	if status != http.StatusOK {
		t.Fatalf("explain status %d: %s", status, raw)
	}
	if len(er.Explanations) != 1 || er.Explanations[0].Detail == "" {
		t.Fatalf("bad explanations: %+v", er.Explanations)
	}
}

func TestWhyNotEndpointBothModels(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	for _, model := range []string{"preference", "keyword"} {
		var wr whyNotResponse
		status, raw := postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
			SessionID: qr.SessionID, Missing: []yask.ObjectID{missing}, Model: model,
		}, &wr)
		if status != http.StatusOK {
			t.Fatalf("%s status %d: %s", model, status, raw)
		}
		// Refined result must contain the missing object.
		found := false
		for _, r := range wr.Results {
			if r.ID == missing {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s refinement did not revive %d", model, missing)
		}
		if model == "preference" && wr.Preference == nil {
			t.Fatal("preference refinement missing from response")
		}
		if model == "keyword" && wr.Keyword == nil {
			t.Fatal("keyword refinement missing from response")
		}
	}
}

func TestWhyNotUnknownModelAndSession(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	status, _ := postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{0}, Model: "sorcery",
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown model status %d", status)
	}
	status, _ = postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: "nope", Missing: []yask.ObjectID{0}, Model: "preference",
	}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown session status %d", status)
	}
}

func TestSessionLifecycle(t *testing.T) {
	srv, ts := testServer(t)
	qr := runQuery(t, ts)
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/session/"+qr.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop status %d", resp.StatusCode)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions after drop = %d", srv.Sessions())
	}
	// Why-not on a dropped session fails cleanly.
	status, _ := postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{0}, Model: "preference",
	}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("dropped session status %d", status)
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	st := newSessionStore(time.Minute)
	base := time.Unix(1000, 0)
	st.now = func() time.Time { return base }
	id := st.put(yask.Query{}, nil)
	if _, ok := st.get(id); !ok {
		t.Fatal("fresh session missing")
	}
	base = base.Add(2 * time.Minute)
	if _, ok := st.get(id); ok {
		t.Fatal("expired session still served")
	}
	if st.len() != 0 {
		t.Fatalf("store len = %d", st.len())
	}
}

func TestSessionTTLRefreshOnUse(t *testing.T) {
	st := newSessionStore(time.Minute)
	base := time.Unix(1000, 0)
	st.now = func() time.Time { return base }
	id := st.put(yask.Query{}, nil)
	for i := 0; i < 5; i++ {
		base = base.Add(40 * time.Second)
		if _, ok := st.get(id); !ok {
			t.Fatalf("session expired despite activity (step %d)", i)
		}
	}
}

func TestQueryLogBounded(t *testing.T) {
	l := newQueryLog(3)
	for i := 0; i < 10; i++ {
		l.add(logEntry{Kind: fmt.Sprintf("k%d", i)})
	}
	got := l.recent(100)
	if len(got) != 3 {
		t.Fatalf("log kept %d entries", len(got))
	}
	if got[0].Kind != "k9" || got[2].Kind != "k7" {
		t.Fatalf("log order wrong: %+v", got)
	}
}

func TestLogEndpointRecordsActivity(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{missing}, Model: "preference",
	}, nil)
	resp, err := http.Get(ts.URL + "/api/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []logEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("log has %d entries, want >= 2", len(entries))
	}
	if entries[0].Kind != "preference" {
		t.Fatalf("latest entry kind %q", entries[0].Kind)
	}
}

func TestUIServed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("UI status %d", resp.StatusCode)
	}
	for _, needle := range []string{"YASK", "why-not", "/api/query", "canvas"} {
		if !strings.Contains(strings.ToLower(body.String()), strings.ToLower(needle)) {
			t.Fatalf("UI missing %q", needle)
		}
	}
	resp2, _ := http.Get(ts.URL + "/definitely-not-here")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp2.StatusCode)
	}
}

func TestObjectsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var objs []yask.Result
	if err := json.NewDecoder(resp.Body).Decode(&objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 539 {
		t.Fatalf("objects = %d, want 539", len(objs))
	}
}

func TestWhyNotBestModel(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	var wr whyNotResponse
	status, raw := postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{missing}, Model: "best",
	}, &wr)
	if status != http.StatusOK {
		t.Fatalf("best status %d: %s", status, raw)
	}
	if wr.Best == nil {
		t.Fatal("best refinement missing from response")
	}
	found := false
	for _, r := range wr.Results {
		if r.ID == missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("best refinement did not revive %d", missing)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	var steps []yask.RankStep
	status, raw := postJSON(t, ts.URL+"/api/profile", profileRequest{
		SessionID: qr.SessionID, Missing: missing,
	}, &steps)
	if status != http.StatusOK {
		t.Fatalf("profile status %d: %s", status, raw)
	}
	if len(steps) == 0 || steps[0].FromWt != 0 || steps[len(steps)-1].ToWt != 1 {
		t.Fatalf("bad profile: %+v", steps)
	}
	// Unknown session.
	status, _ = postJSON(t, ts.URL+"/api/profile", profileRequest{SessionID: "nope", Missing: missing}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown session status %d", status)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	_, ts := testServer(t)
	qr := runQuery(t, ts)
	missing := pickMissing(t, ts, qr)
	var sugs []yask.KeywordSuggestion
	status, raw := postJSON(t, ts.URL+"/api/suggest", explainRequest{
		SessionID: qr.SessionID, Missing: []yask.ObjectID{missing},
	}, &sugs)
	if status != http.StatusOK {
		t.Fatalf("suggest status %d: %s", status, raw)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
}

func TestBatchQueryEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	req := batchQueryRequest{
		Queries: []queryRequest{
			{X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3},
			{X: 114.158, Y: 22.281, Keywords: []string{"clean", "wifi"}, K: 2},
			{X: 114.184, Y: 22.280, Keywords: []string{"harbour", "view"}, K: 5},
		},
		Workers: 2,
	}
	var br batchQueryResponse
	status, raw := postJSON(t, ts.URL+"/api/batch/query", req, &br)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if len(br.Results) != len(req.Queries) {
		t.Fatalf("got %d result sets, want %d", len(br.Results), len(req.Queries))
	}
	for i, q := range req.Queries {
		var qr queryResponse
		status, raw := postJSON(t, ts.URL+"/api/query", q, &qr)
		if status != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, status, raw)
		}
		if len(br.Results[i]) != len(qr.Results) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(br.Results[i]), len(qr.Results))
		}
		for j := range qr.Results {
			if br.Results[i][j].ID != qr.Results[j].ID {
				t.Fatalf("query %d rank %d: batch ID %d, single ID %d",
					i, j, br.Results[i][j].ID, qr.Results[j].ID)
			}
		}
	}
	// Batch queries are stateless: only the single queries above created
	// sessions.
	if got := srv.Sessions(); got != len(req.Queries) {
		t.Fatalf("batch created sessions: %d live, want %d", got, len(req.Queries))
	}
}

func TestBatchQueryEndpointRejectsBadInput(t *testing.T) {
	_, ts := testServer(t)
	status, _ := postJSON(t, ts.URL+"/api/batch/query", batchQueryRequest{}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", status)
	}
	status, _ = postJSON(t, ts.URL+"/api/batch/query", batchQueryRequest{
		Queries: []queryRequest{{X: 1, Y: 1, Keywords: []string{"wifi"}, K: 0}},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid member query status %d", status)
	}
	oversized := batchQueryRequest{Queries: make([]queryRequest, maxBatchQueries+1)}
	for i := range oversized.Queries {
		oversized.Queries[i] = queryRequest{X: 1, Y: 1, Keywords: []string{"wifi"}, K: 1}
	}
	status, raw := postJSON(t, ts.URL+"/api/batch/query", oversized, nil)
	if status != http.StatusBadRequest || !strings.Contains(raw, "exceeds the limit") {
		t.Fatalf("oversized batch status %d: %s", status, raw)
	}
}

// TestStatsEndpoint: GET /api/stats reports the engine's shard layout
// and per-shard statistics — one row for the demo engine, S rows (with
// shard-local object counts summing to the total) for a sharded one.
func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Shards != 1 || len(st.Engine.PerShard) != 1 {
		t.Fatalf("demo engine stats: %+v", st.Engine)
	}
	if st.Engine.Objects == 0 || st.Engine.PerShard[0].Objects != st.Engine.Objects {
		t.Fatalf("object counts inconsistent: %+v", st.Engine)
	}

	// Sharded engine: rows per shard, counts summing to the total.
	objs := make([]yask.Object, 0, 40)
	for i := 0; i < 40; i++ {
		objs = append(objs, yask.Object{
			Name: fmt.Sprintf("o%d", i),
			X:    float64(i % 8), Y: float64(i / 8),
			Keywords: []string{"kw", fmt.Sprintf("k%d", i%5)},
		})
	}
	eng, err := yask.NewEngineWith(objs, yask.EngineOptions{Shards: 4, Splitter: "str"})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(eng, Config{}))
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 statsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Engine.Shards != 4 || len(st2.Engine.PerShard) != 4 {
		t.Fatalf("sharded stats: %+v", st2.Engine)
	}
	sum := 0
	for _, sh := range st2.Engine.PerShard {
		sum += sh.Objects
	}
	if sum != 40 || st2.Engine.Objects != 40 {
		t.Fatalf("per-shard objects sum %d, total %d, want 40", sum, st2.Engine.Objects)
	}
	// The shard-balance telemetry reaches the wire: splitter name, the
	// engine-level imbalance factor, and one balance value per shard.
	if st2.Engine.Splitter != "str" {
		t.Fatalf("wire splitter %q, want str", st2.Engine.Splitter)
	}
	if st2.Engine.ImbalanceFactor < 1 {
		t.Fatalf("wire imbalance factor %v, want ≥ 1", st2.Engine.ImbalanceFactor)
	}
	balSum := 0.0
	for _, sh := range st2.Engine.PerShard {
		balSum += sh.Balance
	}
	if balSum < 3.99 || balSum > 4.01 {
		t.Fatalf("per-shard balance sums to %v, want shard count 4", balSum)
	}
}

// TestStatsSignatureFields: the keyword-signature telemetry reaches the
// wire — the configuration flag, live probe/hit counters (engine-level
// and per shard, per family), and the hit rate — and a disabled engine
// reports the layer off with zero activity.
func TestStatsSignatureFields(t *testing.T) {
	_, ts := testServer(t)
	runQuery(t, ts) // generate some signature probes

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Engine.Signatures {
		t.Fatalf("signatures off by default: %+v", st.Engine)
	}
	if st.Engine.SigProbes == 0 {
		t.Fatalf("no signature probes after a query: %+v", st.Engine)
	}
	if st.Engine.SigHits > st.Engine.SigProbes {
		t.Fatalf("hits %d exceed probes %d", st.Engine.SigHits, st.Engine.SigProbes)
	}
	if st.Engine.SigHitRate < 0 || st.Engine.SigHitRate > 1 {
		t.Fatalf("hit rate %v outside [0, 1]", st.Engine.SigHitRate)
	}
	var probes int64
	for _, sh := range st.Engine.PerShard {
		probes += sh.SetSigProbes + sh.KcSigProbes
	}
	if probes != st.Engine.SigProbes {
		t.Fatalf("per-shard probes %d != engine total %d", probes, st.Engine.SigProbes)
	}

	// A signature-disabled engine reports the layer off, with zero
	// probe/hit activity, over the same wire fields.
	eng := yask.HKDemoEngineWith(yask.EngineOptions{DisableSignatures: true})
	ts2 := httptest.NewServer(New(eng, Config{}))
	defer ts2.Close()
	runQuery(t, ts2)
	resp2, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 statsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Engine.Signatures || st2.Engine.SigProbes != 0 || st2.Engine.SigHits != 0 {
		t.Fatalf("disabled engine reports signature activity: %+v", st2.Engine)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// Memory-only engine: the endpoint refuses with 409.
	_, ts := testServer(t)
	status, raw := postJSON(t, ts.URL+"/api/checkpoint", struct{}{}, nil)
	if status != http.StatusConflict {
		t.Fatalf("checkpoint on memory engine: status %d: %s", status, raw)
	}

	// Durable engine: 200 plus fresh durability counters, and the stats
	// endpoint carries the same durability section.
	eng, err := yask.OpenHKDemoEngine(yask.EngineOptions{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts2 := httptest.NewServer(New(eng, Config{}))
	defer ts2.Close()
	status, raw = postJSON(t, ts2.URL+"/api/objects", insertObjectRequest{
		Name: "new", X: 114.1, Y: 22.3, Keywords: []string{"wifi"},
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("insert status %d: %s", status, raw)
	}
	var d yask.DurabilityStats
	status, raw = postJSON(t, ts2.URL+"/api/checkpoint", struct{}{}, &d)
	if status != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", status, raw)
	}
	if d.LastCheckpoint != 1 || d.SinceCheckpoint != 0 || d.Checkpoints == 0 {
		t.Fatalf("checkpoint response: %+v", d)
	}
	resp, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Durability == nil || st.Engine.Durability.LastCheckpoint != 1 {
		t.Fatalf("stats durability section: %+v", st.Engine.Durability)
	}
}
