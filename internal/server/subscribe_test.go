package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/yask-engine/yask"
)

// sseEvent reads one server-sent event from the stream, returning its
// decoded data payload.
func sseEvent(t *testing.T, sc *bufio.Scanner) yask.SubscriptionUpdate {
	t.Helper()
	var u yask.SubscriptionUpdate
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &u); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			return u
		}
	}
	t.Fatalf("stream ended mid-event: %v", sc.Err())
	return u
}

// TestSubscribeEndpoint drives a live SSE subscription end to end: the
// initial result arrives as the first event, a mutation that changes
// the subscribed top-k pushes a second event reflecting it, and a
// malformed request is rejected up front.
func TestSubscribeEndpoint(t *testing.T) {
	_, ts := testServer(t)

	resp, err := http.Get(ts.URL + "/api/subscribe?x=114.172&y=22.298&k=3&keywords=wifi,breakfast")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	initial := sseEvent(t, sc)
	if len(initial.Results) != 3 {
		t.Fatalf("initial event has %d results, want 3", len(initial.Results))
	}

	// An unbeatable object at the query location with both keywords must
	// take rank 1 and arrive as a pushed event.
	status, raw := postJSON(t, ts.URL+"/api/objects", insertObjectRequest{
		Name: "takeover", X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"},
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("insert status %d: %s", status, raw)
	}
	update := sseEvent(t, sc)
	if update.Epoch <= initial.Epoch {
		t.Fatalf("update epoch %d did not advance past %d", update.Epoch, initial.Epoch)
	}
	if len(update.Results) != 3 || update.Results[0].Name != "takeover" {
		t.Fatalf("update does not lead with the inserted object: %+v", update.Results)
	}

	// Malformed parameters fail fast with 400, not an empty stream.
	for _, bad := range []string{
		"/api/subscribe", // everything missing
		"/api/subscribe?x=1&y=2&k=0&keywords=wifi", // invalid k
		"/api/subscribe?x=1&y=2&k=nope&keywords=wifi",
		"/api/subscribe?x=1&y=2&k=3", // no keywords
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStatsCacheAndSubscriptionSections: the result-cache and
// subscription telemetry reach the wire — entries, hit counters, and a
// consistent hit rate after a repeated query, subscription counters
// after a subscribe — and a cache-disabled engine omits the section.
func TestStatsCacheAndSubscriptionSections(t *testing.T) {
	_, ts := testServer(t)
	runQuery(t, ts) // fills the cache
	runQuery(t, ts) // must hit it

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	c := st.Engine.Cache
	if c == nil {
		t.Fatalf("no cache section: %+v", st.Engine)
	}
	if c.Entries == 0 || c.Bytes == 0 {
		t.Fatalf("cache empty after queries: %+v", c)
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("repeat query did not hit: %+v", c)
	}
	if want := float64(c.Hits) / float64(c.Hits+c.Misses); c.HitRate != want {
		t.Fatalf("hit rate %v inconsistent with hits %d / misses %d", c.HitRate, c.Hits, c.Misses)
	}
	if st.Engine.Subscriptions == nil {
		t.Fatalf("no subscriptions section: %+v", st.Engine)
	}
	if st.Engine.Subscriptions.Active != 0 {
		t.Fatalf("phantom active subscriptions: %+v", st.Engine.Subscriptions)
	}

	// A live subscription shows up in the active gauge.
	sub, err := http.Get(ts.URL + "/api/subscribe?x=114.172&y=22.298&k=3&keywords=wifi")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	sseEvent(t, bufio.NewScanner(sub.Body)) // initial event: registration done
	resp2, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 statsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if s := st2.Engine.Subscriptions; s == nil || s.Active != 1 {
		t.Fatalf("subscriptions section after subscribe: %+v", s)
	}

	// Cache disabled: the section disappears rather than reporting zeros.
	eng := yask.HKDemoEngineWith(yask.EngineOptions{DisableCache: true})
	ts2 := httptest.NewServer(New(eng, Config{}))
	defer ts2.Close()
	runQuery(t, ts2)
	resp3, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st3 statsResponse
	if err := json.NewDecoder(resp3.Body).Decode(&st3); err != nil {
		t.Fatal(err)
	}
	if st3.Engine.Cache != nil {
		t.Fatalf("disabled engine reports cache section: %+v", st3.Engine.Cache)
	}
}
