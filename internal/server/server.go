package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/admission"
)

// Server is the YASK web service.
type Server struct {
	engine       *yask.Engine
	sessions     *sessionStore
	log          *queryLog
	mux          *http.ServeMux
	admit        *admission.Controller
	queryTimeout time.Duration
	// drainCh closes when graceful shutdown begins: readiness flips to
	// 503 so load balancers stop routing here, and every streaming
	// subscription connection unblocks and returns — a drain can never
	// hang past the shutdown timeout on an idle subscriber.
	drainCh   chan struct{}
	drainOnce sync.Once
	// testDelay, when set, runs inside every admitted query request
	// between admission and the handler — the hook overload-storm tests
	// use to hold slots occupied deterministically.
	testDelay func()
}

// Config configures New.
type Config struct {
	// SessionTTL is the idle lifetime of cached initial queries; zero
	// means DefaultSessionTTL.
	SessionTTL time.Duration
	// LogCapacity bounds the in-memory query log; zero means 256.
	LogCapacity int
	// QueryTimeout is the per-request deadline derived for every query
	// endpoint. Zero means no server-imposed deadline (the client may
	// still cancel).
	QueryTimeout time.Duration
	// MaxInflight, QueueDepth, and QueueWait configure admission
	// control for the query endpoints; see admission.Config.
	// MaxInflight ≤ 0 disables shedding.
	MaxInflight int
	QueueDepth  int
	QueueWait   time.Duration
}

// New returns a Server over the given engine.
func New(engine *yask.Engine, cfg Config) *Server {
	s := &Server{
		engine:   engine,
		sessions: newSessionStore(cfg.SessionTTL),
		log:      newQueryLog(cfg.LogCapacity),
		mux:      http.NewServeMux(),
		admit: admission.New(admission.Config{
			MaxInflight: cfg.MaxInflight,
			QueueDepth:  cfg.QueueDepth,
			QueueWait:   cfg.QueueWait,
		}),
		queryTimeout: cfg.QueryTimeout,
		drainCh:      make(chan struct{}),
	}
	s.mux.HandleFunc("GET /", s.handleUI)
	s.mux.HandleFunc("GET /api/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /api/objects", s.handleObjects)
	s.mux.HandleFunc("POST /api/objects", s.handleInsertObject)
	s.mux.HandleFunc("DELETE /api/objects/{id}", s.handleDeleteObject)
	// The query endpoints — everything that runs index traversals on
	// behalf of one request — go through admission control and get a
	// per-request deadline. Health, readiness, stats, and the log stay
	// exempt so operators can always see a melting server, and the
	// streaming subscribe endpoint manages its own lifecycle (a
	// long-lived stream must not pin an admission slot).
	s.mux.HandleFunc("POST /api/query", s.work(s.handleQuery))
	s.mux.HandleFunc("POST /api/batch/query", s.work(s.handleBatchQuery))
	s.mux.HandleFunc("POST /api/explain", s.work(s.handleExplain))
	s.mux.HandleFunc("POST /api/whynot", s.work(s.handleWhyNot))
	s.mux.HandleFunc("POST /api/profile", s.work(s.handleProfile))
	s.mux.HandleFunc("POST /api/suggest", s.work(s.handleSuggest))
	s.mux.HandleFunc("POST /api/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /api/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/log", s.handleLog)
	s.mux.HandleFunc("DELETE /api/session/{id}", s.handleDropSession)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Sessions returns the number of live cached sessions (for monitoring
// and tests).
func (s *Server) Sessions() int { return s.sessions.len() }

// StartDrain flips the server into draining mode: readiness reports
// 503 and every active subscription stream is force-closed, so the
// HTTP server's graceful Shutdown can finish within its timeout.
// Idempotent; call it before http.Server.Shutdown.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// draining reports whether StartDrain has been called.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// work wraps a query handler with the request lifecycle: admission
// control first (shed as 429 + Retry-After so clients back off and
// retry elsewhere), then a per-request deadline derived from the
// server's query timeout. The release is deferred, so a handler panic
// cannot leak an inflight slot.
func (s *Server) work(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.admit.Acquire(r.Context())
		if err != nil {
			if errors.Is(err, admission.ErrShed) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, err)
				return
			}
			// The client gave up while queued; the status is a formality
			// it will likely never read.
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		defer release()
		ctx := r.Context()
		if s.queryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
			defer cancel()
		}
		if s.testDelay != nil {
			s.testDelay()
		}
		h(w, r.WithContext(ctx))
	}
}

// writeQueryError reports a query-path engine error, classifying the
// request's terminal outcome for the admission counters: an expired
// deadline is the server's own overload signal (503, the client should
// back off), a canceled context means the client is gone, and anything
// else is the caller's bad request.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	s.admit.RecordOutcome(err)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("query deadline exceeded: %w", err))
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It stays 200 during drain — liveness and readiness diverge
// exactly when a draining server should not be restarted.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the server should
// receive traffic, 503 once draining has begun (and, at the daemon
// level, before boot and recovery replay finish — yaskd answers 503
// itself until the engine is open).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is out can only be logged by the
	// client; ignore them here.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody decodes a JSON request body of at most 1 MiB. It needs the
// real ResponseWriter: http.MaxBytesReader uses it to close the
// connection once the limit is hit, so the client stops uploading.
// Callers should surface the error through writeBodyError, which maps an
// oversize body to 413 instead of a generic 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeBodyError reports a decodeBody failure: 413 Request Entity Too
// Large for an oversize body, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// queryRequest is the wire form of a spatial keyword top-k query, the
// payload of the paper's HTTP POST protocol.
type queryRequest struct {
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	// Wt is the textual weight; omitted (0) selects the server default
	// 0.5, matching the paper ("the system ... leaves the weighting
	// vector as a system parameter on the server").
	Wt float64 `json:"wt,omitempty"`
	// Similarity selects the textual similarity model: "" or "jaccard"
	// (default), or "dice".
	Similarity string `json:"similarity,omitempty"`
}

func (qr queryRequest) query() yask.Query {
	return yask.Query{
		X: qr.X, Y: qr.Y, Keywords: qr.Keywords, K: qr.K, Wt: qr.Wt,
		Similarity: qr.Similarity,
	}
}

type queryResponse struct {
	SessionID string        `json:"sessionId"`
	Results   []yask.Result `json:"results"`
	ElapsedMS float64       `json:"elapsedMs"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	q := req.query()
	start := time.Now()
	results, err := s.engine.TopKCtx(r.Context(), q)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	id := s.sessions.put(q, results)
	s.log.add(logEntry{Time: time.Now(), Kind: "query", SessionID: id, Query: q, ElapsedMS: elapsed})
	writeJSON(w, http.StatusOK, queryResponse{SessionID: id, Results: results, ElapsedMS: elapsed})
}

// batchQueryRequest is the wire form of a concurrent top-k batch: many
// queries answered by one round trip over the engine's bounded worker
// pool. Batch queries are stateless — no session is created — so bulk
// clients (tile renderers, offline evaluators) don't flood the session
// store.
type batchQueryRequest struct {
	Queries []queryRequest `json:"queries"`
	// Workers bounds the executor's concurrency; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

type batchQueryResponse struct {
	Results   [][]yask.Result `json:"results"`
	ElapsedMS float64         `json:"elapsedMs"`
}

// maxBatchQueries bounds one batch request so a single client cannot
// amplify one POST into unbounded server work. Bulk loads larger than
// this split into multiple requests.
const maxBatchQueries = 1024

func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	var req batchQueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one query"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	// The worker count is client-supplied; clamp it so a request cannot
	// spawn more goroutines than the host has CPUs.
	workers := req.Workers
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	queries := make([]yask.Query, len(req.Queries))
	for i, qr := range req.Queries {
		queries[i] = qr.query()
	}
	start := time.Now()
	results, err := s.engine.TopKBatchCtx(r.Context(), queries, workers)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	s.log.add(logEntry{Time: time.Now(), Kind: "batch", Query: queries[0],
		BatchSize: len(queries), ElapsedMS: elapsed})
	writeJSON(w, http.StatusOK, batchQueryResponse{Results: results, ElapsedMS: elapsed})
}

// whyNotRequest asks a follow-up question about a cached session's
// initial query. Model selects the refinement module.
type whyNotRequest struct {
	SessionID string          `json:"sessionId"`
	Missing   []yask.ObjectID `json:"missing"`
	Model     string          `json:"model"` // "preference" or "keyword"
	Lambda    float64         `json:"lambda,omitempty"`
}

type whyNotResponse struct {
	Model      string                     `json:"model"`
	Preference *yask.PreferenceRefinement `json:"preference,omitempty"`
	Keyword    *yask.KeywordRefinement    `json:"keyword,omitempty"`
	Best       *yask.BestRefinement       `json:"best,omitempty"`
	// Results is the refined query's result set, displayed directly in
	// the demo UI.
	Results   []yask.Result `json:"results"`
	ElapsedMS float64       `json:"elapsedMs"`
}

func (s *Server) handleWhyNot(w http.ResponseWriter, r *http.Request) {
	var req whyNotRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	opts := yask.RefineOptions{Lambda: req.Lambda}
	start := time.Now()
	resp := whyNotResponse{Model: req.Model}
	var refined yask.Query
	switch req.Model {
	case "preference":
		ref, err := s.engine.WhyNotPreferenceCtx(r.Context(), sess.query, req.Missing, opts)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		resp.Preference = ref
		refined = ref.Query
	case "keyword":
		ref, err := s.engine.WhyNotKeywordsCtx(r.Context(), sess.query, req.Missing, opts)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		resp.Keyword = ref
		refined = ref.Query
	case "best":
		ref, err := s.engine.WhyNotBestCtx(r.Context(), sess.query, req.Missing, opts)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		resp.Best = ref
		refined = ref.Query
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown model %q (want preference, keyword, or best)", req.Model))
		return
	}
	results, err := s.engine.TopKCtx(r.Context(), refined)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeQueryError(w, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp.Results = results
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	penalty := 0.0
	switch {
	case resp.Preference != nil:
		penalty = resp.Preference.Penalty
	case resp.Keyword != nil:
		penalty = resp.Keyword.Penalty
	case resp.Best != nil:
		penalty = resp.Best.Penalty
	}
	s.log.add(logEntry{
		Time: time.Now(), Kind: req.Model, SessionID: req.SessionID,
		Query: refined, Penalty: penalty, ElapsedMS: resp.ElapsedMS,
	})
	writeJSON(w, http.StatusOK, resp)
}

type explainRequest struct {
	SessionID string          `json:"sessionId"`
	Missing   []yask.ObjectID `json:"missing"`
}

type explainResponse struct {
	Explanations []yask.Explanation `json:"explanations"`
	ElapsedMS    float64            `json:"elapsedMs"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	start := time.Now()
	exps, err := s.engine.ExplainCtx(r.Context(), sess.query, req.Missing)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	s.log.add(logEntry{Time: time.Now(), Kind: "explain", SessionID: req.SessionID, Query: sess.query, ElapsedMS: elapsed})
	writeJSON(w, http.StatusOK, explainResponse{Explanations: exps, ElapsedMS: elapsed})
}

// profileRequest asks for a missing object's rank-vs-weight profile.
type profileRequest struct {
	SessionID string        `json:"sessionId"`
	Missing   yask.ObjectID `json:"missing"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req profileRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	steps, err := s.engine.RankProfileCtx(r.Context(), sess.query, req.Missing)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, steps)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}
	sugs, err := s.engine.SuggestKeywordsCtx(r.Context(), sess.query, req.Missing)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sugs)
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Objects())
}

// insertObjectRequest is the wire form of one live object insertion.
type insertObjectRequest struct {
	Name     string   `json:"name,omitempty"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords"`
}

type insertObjectResponse struct {
	ID yask.ObjectID `json:"id"`
}

func (s *Server) handleInsertObject(w http.ResponseWriter, r *http.Request) {
	var req insertObjectRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	id, err := s.engine.Insert(yask.Object{
		Name: req.Name, X: req.X, Y: req.Y, Keywords: req.Keywords,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.log.add(logEntry{Time: time.Now(), Kind: "insert"})
	writeJSON(w, http.StatusCreated, insertObjectResponse{ID: id})
}

func (s *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad object id %q", r.PathValue("id")))
		return
	}
	if err := s.engine.Remove(yask.ObjectID(id64)); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.log.add(logEntry{Time: time.Now(), Kind: "remove"})
	w.WriteHeader(http.StatusNoContent)
}

// parseSubscribeQuery reads a top-k query from URL parameters — the
// subscribe endpoint is a GET (EventSource cannot POST), so the query
// rides in the URL: x, y, k, keywords (comma-separated), and the
// optional wt and similarity.
func parseSubscribeQuery(r *http.Request) (yask.Query, error) {
	p := r.URL.Query()
	var q yask.Query
	var err error
	if q.X, err = strconv.ParseFloat(p.Get("x"), 64); err != nil {
		return q, fmt.Errorf("bad or missing x %q", p.Get("x"))
	}
	if q.Y, err = strconv.ParseFloat(p.Get("y"), 64); err != nil {
		return q, fmt.Errorf("bad or missing y %q", p.Get("y"))
	}
	if q.K, err = strconv.Atoi(p.Get("k")); err != nil {
		return q, fmt.Errorf("bad or missing k %q", p.Get("k"))
	}
	for _, kw := range strings.Split(p.Get("keywords"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			q.Keywords = append(q.Keywords, kw)
		}
	}
	if wt := p.Get("wt"); wt != "" {
		if q.Wt, err = strconv.ParseFloat(wt, 64); err != nil {
			return q, fmt.Errorf("bad wt %q", wt)
		}
	}
	q.Similarity = p.Get("similarity")
	return q, nil
}

// handleSubscribe registers a continuous top-k query and streams its
// pushed updates as server-sent events: one "topk" event per changed
// result, the initial result first. The stream ends when the client
// disconnects or the engine drops a subscriber that stopped reading.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q, err := parseSubscribeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sub, err := s.engine.Subscribe(q, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer sub.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	// The stream outlives any server-wide write timeout by design; clear
	// the deadline so long-idle subscriptions aren't cut mid-stream.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	s.log.add(logEntry{Time: time.Now(), Kind: "subscribe", Query: q})
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Graceful shutdown: force-close the stream so the drain
			// never waits on an idle subscriber.
			return
		case u, ok := <-sub.Updates():
			if !ok {
				return
			}
			data, err := json.Marshal(u)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: topk\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// statsResponse is the wire form of GET /api/stats: the engine's shard
// layout and per-shard execution statistics, plus the server's session
// count. Operators watching a sharded deployment read shard balance
// (objects/live per shard) and index work (node accesses) from it.
type statsResponse struct {
	Engine   yask.EngineStats `json:"engine"`
	Sessions int              `json:"sessions"`
	// Admission is the load-shedding controller's counters: current
	// inflight/queued gauges plus cumulative admitted, shed,
	// deadline-exceeded, and canceled request counts.
	Admission admission.Stats `json:"admission"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Engine:    s.engine.Stats(),
		Sessions:  s.sessions.len(),
		Admission: s.admit.Stats(),
	})
}

// handleCheckpoint forces a durable snapshot of the collection and
// retires the WAL segments it covers. 409 on a memory-only engine (no
// -data-dir), 500 when the checkpoint itself fails; on success it
// returns the engine's fresh durability counters.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.engine.Checkpoint(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, yask.ErrNotDurable) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	s.log.add(logEntry{Time: time.Now(), Kind: "checkpoint"})
	writeJSON(w, http.StatusOK, s.engine.Stats().Durability)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.log.recent(50))
}

func (s *Server) handleDropSession(w http.ResponseWriter, r *http.Request) {
	s.sessions.drop(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
