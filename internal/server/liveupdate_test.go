package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestInsertObjectRoundTrip: POST /api/objects, then a query must see
// the new object.
func TestInsertObjectRoundTrip(t *testing.T) {
	_, ts := testServer(t)

	var ins insertObjectResponse
	status, raw := postJSON(t, ts.URL+"/api/objects", insertObjectRequest{
		Name: "pop-up espresso bar", X: 114.2001, Y: 22.3001,
		Keywords: []string{"espresso", "popup"},
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("insert status %d: %s", status, raw)
	}
	if err := json.Unmarshal([]byte(raw), &ins); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}

	var qr queryResponse
	status, raw = postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.2001, Y: 22.3001, Keywords: []string{"espresso", "popup"}, K: 1,
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, raw)
	}
	if len(qr.Results) != 1 || qr.Results[0].ID != ins.ID {
		t.Fatalf("query after insert returned %+v, want object %d", qr.Results, ins.ID)
	}

	// Keywordless insert is a client error.
	status, _ = postJSON(t, ts.URL+"/api/objects", insertObjectRequest{Name: "nothing"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("keywordless insert status %d, want 400", status)
	}
}

func TestDeleteObjectEndpoint(t *testing.T) {
	_, ts := testServer(t)

	var ins insertObjectResponse
	status, raw := postJSON(t, ts.URL+"/api/objects", insertObjectRequest{
		Name: "doomed", X: 114.21, Y: 22.31, Keywords: []string{"transient"},
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("insert status %d: %s", status, raw)
	}
	if err := json.Unmarshal([]byte(raw), &ins); err != nil {
		t.Fatal(err)
	}

	del := func(path string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := del(fmt.Sprintf("/api/objects/%d", ins.ID)); got != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", got)
	}
	// Deleting twice fails.
	if got := del(fmt.Sprintf("/api/objects/%d", ins.ID)); got != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", got)
	}
	if got := del("/api/objects/notanumber"); got != http.StatusBadRequest {
		t.Fatalf("malformed id delete status %d, want 400", got)
	}

	// The deleted object no longer matches queries.
	var qr queryResponse
	status, raw = postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.21, Y: 22.31, Keywords: []string{"transient"}, K: 1,
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, raw)
	}
	for _, r := range qr.Results {
		if r.ID == ins.ID {
			t.Fatal("deleted object still returned by a query")
		}
	}
}

// TestQuerySimilarityPlumbed: the similarity field must reach the
// engine — "dice" is selectable and an unknown model is a 400, and a
// client sending the field must not be rejected by
// DisallowUnknownFields.
func TestQuerySimilarityPlumbed(t *testing.T) {
	_, ts := testServer(t)

	var qr queryResponse
	status, raw := postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3,
		Similarity: "dice",
	}, &qr)
	if status != http.StatusOK {
		t.Fatalf("dice query status %d: %s", status, raw)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("dice query returned %d results", len(qr.Results))
	}

	status, raw = postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.172, Y: 22.298, Keywords: []string{"wifi"}, K: 3,
		Similarity: "levenshtein",
	}, nil)
	if status != http.StatusBadRequest || !strings.Contains(raw, "similarity") {
		t.Fatalf("unknown similarity: status %d body %s", status, raw)
	}

	// Batch queries carry the field too.
	var br batchQueryResponse
	status, raw = postJSON(t, ts.URL+"/api/batch/query", batchQueryRequest{
		Queries: []queryRequest{
			{X: 114.172, Y: 22.298, Keywords: []string{"wifi"}, K: 2, Similarity: "dice"},
			{X: 114.18, Y: 22.30, Keywords: []string{"breakfast"}, K: 2},
		},
	}, &br)
	if status != http.StatusOK {
		t.Fatalf("batch with similarity status %d: %s", status, raw)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch returned %d result sets", len(br.Results))
	}
}

// TestOversizeBodyIs413: a body past the 1 MiB cap must surface as 413
// Request Entity Too Large, not a generic 400.
func TestOversizeBodyIs413(t *testing.T) {
	_, ts := testServer(t)
	huge := bytes.Repeat([]byte("x"), 1<<20+1024)
	body, _ := json.Marshal(map[string]any{
		"x": 1.0, "y": 2.0, "k": 3, "keywords": []string{string(huge)},
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body status %d, want 413", resp.StatusCode)
	}
}

// TestInsertThenWhyNot: a freshly inserted object can immediately be the
// subject of a why-not question over a new session.
func TestInsertThenWhyNot(t *testing.T) {
	_, ts := testServer(t)

	// Far-away object that shares one query keyword: guaranteed outside
	// a k=3 result near Tsim Sha Tsui.
	var ins insertObjectResponse
	status, raw := postJSON(t, ts.URL+"/api/objects", insertObjectRequest{
		Name: "distant lodge", X: 114.9, Y: 22.9, Keywords: []string{"wifi", "hiking"},
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("insert status %d: %s", status, raw)
	}
	if err := json.Unmarshal([]byte(raw), &ins); err != nil {
		t.Fatal(err)
	}

	qr := runQuery(t, ts)
	var wn whyNotResponse
	status, raw = postJSON(t, ts.URL+"/api/whynot", whyNotRequest{
		SessionID: qr.SessionID, Missing: []uint32{ins.ID}, Model: "preference",
	}, &wn)
	if status != http.StatusOK {
		t.Fatalf("why-not over inserted object: status %d: %s", status, raw)
	}
	if wn.Preference == nil {
		t.Fatal("no preference refinement returned")
	}
}
