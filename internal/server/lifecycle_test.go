package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/yask-engine/yask"
)

func testServerCfg(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(yask.HKDemoEngine(), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSONHeader is postJSON plus one response header, for asserting
// on Retry-After.
func postJSONHeader(t *testing.T, url string, body any, out any, header string) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, resp.Header.Get(header)
}

// TestHealthProbes: liveness is unconditional; readiness flips to 503
// when draining begins while liveness stays 200 — a draining server
// must stop receiving traffic without being restarted.
func TestHealthProbes(t *testing.T) {
	srv, ts := testServer(t)
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/api/healthz"); got != http.StatusOK {
		t.Fatalf("healthz status %d", got)
	}
	if got := get("/api/readyz"); got != http.StatusOK {
		t.Fatalf("readyz status %d", got)
	}
	srv.StartDrain()
	srv.StartDrain() // idempotent
	if got := get("/api/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain: status %d", got)
	}
	if got := get("/api/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", got)
	}
}

// TestDrainClosesSubscriptions: an idle SSE subscriber holds its
// connection open indefinitely; StartDrain must force the stream to
// end so graceful shutdown never hangs on it.
func TestDrainClosesSubscriptions(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/subscribe?x=114.172&y=22.298&k=3&keywords=wifi")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sseEvent(t, sc) // initial snapshot: the stream is live and then idle

	srv.StartDrain()
	closed := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription stream still open after drain")
	}
}

// TestQueryDeadlineExceeded: an already-expired per-request deadline
// surfaces as 503 (the server's own overload signal, distinct from the
// client's 400s), and the admission counters record the outcome.
func TestQueryDeadlineExceeded(t *testing.T) {
	_, ts := testServerCfg(t, Config{QueryTimeout: time.Nanosecond})
	status, raw := postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 3,
	}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d (%s), want 503", status, raw)
	}
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.DeadlineExceeded == 0 {
		t.Fatalf("deadline outcome not recorded: %+v", st.Admission)
	}
	if st.Admission.Admitted == 0 {
		t.Fatalf("request was admitted before expiring, counters disagree: %+v", st.Admission)
	}
}

// TestAdmissionExemptEndpoints: with every query slot occupied, the
// observability endpoints still answer — an operator must be able to
// see a saturated server — while a further query is shed with 429.
func TestAdmissionExemptEndpoints(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := testServerCfg(t, Config{MaxInflight: 1})
	srv.testDelay = func() { <-gate }

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/api/query", queryRequest{
			X: 114.172, Y: 22.298, Keywords: []string{"wifi"}, K: 3,
		}, nil)
	}()
	// Wait until the slot is actually held — via the stats endpoint,
	// which is itself part of what we are testing.
	for {
		resp, err := http.Get(ts.URL + "/api/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		err = jsonDecode(resp, &st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Admission.Inflight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, path := range []string{"/api/healthz", "/api/readyz", "/api/stats", "/api/log"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s while saturated: status %d", path, resp.StatusCode)
		}
	}
	status, _ := postJSON(t, ts.URL+"/api/query", queryRequest{
		X: 114.172, Y: 22.298, Keywords: []string{"wifi"}, K: 3,
	}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("query while saturated: status %d, want 429", status)
	}
	close(gate)
	<-done
}

// TestOverloadStorm floods the query endpoint at many times the
// inflight cap and checks the shedding contract end to end: every shed
// response is a 429 carrying Retry-After, every admitted response is
// correct (identical result list to an unloaded run of the same
// query), and the admission gauges return to zero afterwards. Run
// under -race this also proves shed requests never touch the engine's
// pooled scratch state.
func TestOverloadStorm(t *testing.T) {
	const (
		capacity = 2
		clients  = 40 // 20× the cap
	)
	srv, ts := testServerCfg(t, Config{
		MaxInflight: capacity,
		QueueDepth:  capacity,
		QueueWait:   2 * time.Millisecond,
	})
	req := queryRequest{X: 114.172, Y: 22.298, Keywords: []string{"wifi", "breakfast"}, K: 5}

	// Unloaded baseline answer, before the storm.
	var want queryResponse
	if status, raw := postJSON(t, ts.URL+"/api/query", req, &want); status != http.StatusOK {
		t.Fatalf("baseline status %d: %s", status, raw)
	}
	srv.testDelay = func() { time.Sleep(time.Millisecond) }

	type outcome struct {
		status     int
		retryAfter string
		results    []yask.Result
	}
	outcomes := make([]outcome, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			defer wg.Done()
			<-start
			var qr queryResponse
			status, retryAfter := postJSONHeader(t, ts.URL+"/api/query", req, &qr, "Retry-After")
			outcomes[i] = outcome{status: status, retryAfter: retryAfter, results: qr.Results}
		}()
	}
	close(start)
	wg.Wait()

	admitted, shed := 0, 0
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			admitted++
			if !reflect.DeepEqual(o.results, want.Results) {
				t.Fatalf("client %d: admitted under load but wrong answer:\n got %+v\nwant %+v",
					i, o.results, want.Results)
			}
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Fatalf("client %d: shed without Retry-After", i)
			}
		default:
			t.Fatalf("client %d: unexpected status %d", i, o.status)
		}
	}
	if admitted+shed != clients {
		t.Fatalf("admitted %d + shed %d != %d clients", admitted, shed, clients)
	}
	if shed == 0 {
		t.Fatalf("storm at %d× cap shed nothing", clients/capacity)
	}
	if admitted == 0 {
		t.Fatal("storm admitted nothing")
	}

	// The system drains completely: gauges back to zero, counters
	// consistent with what the clients observed (+1 for the baseline).
	srv.testDelay = nil
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Inflight != 0 || st.Admission.Queued != 0 {
		t.Fatalf("leaked admission state after storm: %+v", st.Admission)
	}
	if st.Admission.Admitted != int64(admitted+1) || st.Admission.Shed != int64(shed) {
		t.Fatalf("counters disagree with observations (admitted %d, shed %d): %+v",
			admitted+1, shed, st.Admission)
	}

	// After the storm, the server answers normally again.
	var after queryResponse
	if status, raw := postJSON(t, ts.URL+"/api/query", req, &after); status != http.StatusOK {
		t.Fatalf("post-storm status %d: %s", status, raw)
	}
	if !reflect.DeepEqual(after.Results, want.Results) {
		t.Fatalf("post-storm answer drifted:\n got %+v\nwant %+v", after.Results, want.Results)
	}
}
