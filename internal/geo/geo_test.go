package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		// The computation is exactly symmetric (squares of negated
		// deltas), so exact equality must hold, including ±Inf.
		d1, d2 := a.Dist(b), b.Dist(a)
		return d1 == d2 || (math.IsNaN(d1) && math.IsNaN(d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Min != (Point{2, 1}) || r.Max != (Point{5, 7}) {
		t.Fatalf("NewRect corners not normalized: %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestRectMeasures(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 3})
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 3 {
		t.Errorf("Height = %v, want 3", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
	if got := r.Diagonal(); !almostEqual(got, 5) {
		t.Errorf("Diagonal = %v, want 5", got)
	}
	if got := r.Center(); got != (Point{2, 1.5}) {
		t.Errorf("Center = %v, want (2, 1.5)", got)
	}
}

func TestContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.ContainsPoint(p) {
			t.Errorf("ContainsPoint(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{{-0.001, 5}, {10.001, 5}, {5, -1}, {5, 11}} {
		if r.ContainsPoint(p) {
			t.Errorf("ContainsPoint(%v) = true, want false", p)
		}
	}
	if !r.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("ContainsRect inner = false, want true")
	}
	if r.ContainsRect(NewRect(Point{1, 1}, Point{11, 9})) {
		t.Error("ContainsRect overflowing = true, want false")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
}

func TestIntersects(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(Point{5, 5}, Point{15, 15}), true},
		{NewRect(Point{10, 10}, Point{12, 12}), true}, // corner touch
		{NewRect(Point{11, 11}, Point{12, 12}), false},
		{NewRect(Point{-5, -5}, Point{-1, -1}), false},
		{NewRect(Point{2, 2}, Point{3, 3}), true}, // contained
		{NewRect(Point{-1, 4}, Point{11, 6}), true},
	}
	for _, tt := range cases {
		if got := r.Intersects(tt.s); got != tt.want {
			t.Errorf("Intersects(%v) = %v, want %v", tt.s, got, tt.want)
		}
		if got := tt.s.Intersects(r); got != tt.want {
			t.Errorf("Intersects not symmetric for %v", tt.s)
		}
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{3, 3}, Point{4, 4})
	u := a.Union(b)
	if u != NewRect(Point{0, 0}, Point{4, 4}) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Enlargement(b); !almostEqual(got, 16-4) {
		t.Errorf("Enlargement = %v, want 12", got)
	}
	if got := a.Enlargement(NewRect(Point{1, 1}, Point{2, 2})); got != 0 {
		t.Errorf("Enlargement of contained rect = %v, want 0", got)
	}
}

func TestOverlapArea(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	cases := []struct {
		b    Rect
		want float64
	}{
		{NewRect(Point{2, 2}, Point{6, 6}), 4},
		{NewRect(Point{4, 4}, Point{6, 6}), 0}, // touching only
		{NewRect(Point{5, 5}, Point{6, 6}), 0},
		{NewRect(Point{1, 1}, Point{2, 2}), 1},
		{a, 16},
	}
	for _, tt := range cases {
		if got := a.OverlapArea(tt.b); !almostEqual(got, tt.want) {
			t.Errorf("OverlapArea(%v) = %v, want %v", tt.b, got, tt.want)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{5, 5}, 0, math.Sqrt(50)},
		{Point{-3, 0}, 3, math.Sqrt(13*13 + 10*10)},
		{Point{15, 5}, 5, math.Sqrt(15*15 + 5*5)},
		{Point{0, 0}, 0, math.Sqrt(200)},
		{Point{-3, -4}, 5, math.Sqrt(13*13 + 14*14)},
	}
	for _, tt := range cases {
		if got := r.MinDist(tt.p); !almostEqual(got, tt.min) {
			t.Errorf("MinDist(%v) = %v, want %v", tt.p, got, tt.min)
		}
		if got := r.MaxDist(tt.p); !almostEqual(got, tt.max) {
			t.Errorf("MaxDist(%v) = %v, want %v", tt.p, got, tt.max)
		}
	}
}

// TestMinMaxDistBracketsActual checks the fundamental index soundness
// property: for random rects and query points, the distance from the
// query to any point inside the rect is within [MinDist, MaxDist].
func TestMinMaxDistBracketsActual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := NewRect(
			Point{rng.Float64() * 100, rng.Float64() * 100},
			Point{rng.Float64() * 100, rng.Float64() * 100},
		)
		q := Point{rng.Float64()*200 - 50, rng.Float64()*200 - 50}
		// Random point inside r.
		in := Point{
			X: r.Min.X + rng.Float64()*r.Width(),
			Y: r.Min.Y + rng.Float64()*r.Height(),
		}
		d := q.Dist(in)
		if d < r.MinDist(q)-1e-9 {
			t.Fatalf("point %v in %v at dist %v below MinDist %v from %v", in, r, d, r.MinDist(q), q)
		}
		if d > r.MaxDist(q)+1e-9 {
			t.Fatalf("point %v in %v at dist %v above MaxDist %v from %v", in, r, d, r.MaxDist(q), q)
		}
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{{3, 1}, {-2, 5}, {0, 0}, {7, -4}}
	r := MBR(pts)
	if r != NewRect(Point{-2, -4}, Point{7, 5}) {
		t.Fatalf("MBR = %v", r)
	}
	for _, p := range pts {
		if !r.ContainsPoint(p) {
			t.Errorf("MBR does not contain %v", p)
		}
	}
}

func TestMBRPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MBR(nil) did not panic")
		}
	}()
	MBR(nil)
}

func TestUnionAll(t *testing.T) {
	rs := []Rect{
		NewRect(Point{0, 0}, Point{1, 1}),
		NewRect(Point{5, 5}, Point{6, 6}),
		NewRect(Point{-1, 2}, Point{0, 3}),
	}
	u := UnionAll(rs)
	if u != NewRect(Point{-1, 0}, Point{6, 6}) {
		t.Fatalf("UnionAll = %v", u)
	}
}

func TestUnionAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionAll(nil) did not panic")
		}
	}()
	UnionAll(nil)
}

// Property: union is commutative, associative-compatible and monotone.
func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := NewRect(Point{ax, ay}, Point{bx, by})
		b := NewRect(Point{cx, cy}, Point{dx, dy})
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsRect(a) && u.ContainsRect(b) &&
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MinDist <= distance to center <= MaxDist.
func TestMinDistLeqCenterLeqMaxDist(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		r := NewRect(Point{ax, ay}, Point{bx, by})
		p := Point{px, py}
		dc := p.Dist(r.Center())
		return r.MinDist(p) <= dc+1e-9 && dc <= r.MaxDist(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
