// Package geo provides the planar geometry substrate used by every index
// and engine in YASK: points, axis-aligned rectangles (MBRs), and the
// distance primitives the ranking function and the R-tree family need.
//
// All coordinates are float64 and distances are Euclidean, matching the
// paper's SDist. Rectangles are closed on all sides.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane. In the demo deployment X is longitude
// and Y is latitude, but nothing in the library assumes geographic
// coordinates: any planar space works.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
//
//yask:hotpath
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths where only comparisons are needed.
//
//yask:hotpath
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y)
}

// Rect is a closed axis-aligned rectangle with Min at the lower-left and
// Max at the upper-right corner. A Rect with Min == Max is a point; the
// zero Rect is the point at the origin.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points given in
// any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Min: p, Max: p}
}

// Valid reports whether r.Min is component-wise no greater than r.Max.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent of r along the X axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the Y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r, the classic R*-tree margin
// measure.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Diagonal returns the length of the diagonal of r, used to normalize
// spatial distances into [0, 1].
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, s.Min.X), Y: math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, s.Max.X), Y: math.Max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest rectangle covering r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Enlargement returns the area increase needed for r to cover s. It is
// the standard insertion heuristic of Guttman's R-tree.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area of the intersection of r and s, or 0 if
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	w := math.Min(r.Max.X, s.Max.X) - math.Max(r.Min.X, s.Min.X)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.Max.Y, s.Max.Y) - math.Max(r.Min.Y, s.Min.Y)
	if h <= 0 {
		return 0
	}
	return w * h
}

// MinDist returns the smallest Euclidean distance from p to any point of
// r. It is zero when p is inside r. MinDist lower-bounds the distance
// from p to every object stored under an R-tree node with MBR r, which
// makes it the admissible bound used by best-first search.
//
//yask:hotpath
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared MinDist.
//
//yask:hotpath
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDelta(p.X, r.Min.X, r.Max.X)
	dy := axisDelta(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDist returns the largest Euclidean distance from p to any point of
// r (always attained at one of the four corners). It upper-bounds the
// distance from p to every object under a node with MBR r.
//
//yask:hotpath
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// axisDelta returns how far v lies outside the interval [lo, hi] along
// one axis, or 0 if it is inside.
//
//yask:hotpath
func axisDelta(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return hi - v
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// MBR returns the minimum bounding rectangle of the given points. It
// panics if pts is empty, because an empty MBR has no meaningful value.
func MBR(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: MBR of empty point set")
	}
	r := RectFromPoint(pts[0])
	for _, p := range pts[1:] {
		r = r.UnionPoint(p)
	}
	return r
}

// UnionAll returns the union of the given rectangles. It panics if rs is
// empty.
func UnionAll(rs []Rect) Rect {
	if len(rs) == 0 {
		panic("geo: UnionAll of empty rect set")
	}
	u := rs[0]
	for _, r := range rs[1:] {
		u = u.Union(r)
	}
	return u
}
