package irtree

import (
	"path/filepath"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

func saveLoadArena(t *testing.T, ix *Index, ds *dataset.Dataset, maxE int) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arena-ir-0000000000000007.yar")
	if err := rtree.WriteArenaFile(path, ix.SaveArena(7, ds.Vocab.All())); err != nil {
		t.Fatal(err)
	}
	raw, err := rtree.OpenArena(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArena(raw, ds.Objects, maxE)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestArenaRoundTripQueries: the IR-tree loaded from its arena (text
// model recomputed from the collection, postings decoded by copy)
// serves identical top-k answers, with and without signatures.
func TestArenaRoundTripQueries(t *testing.T) {
	ds := testDataset(t, 300, 91)
	qs := lifecycleQueries(ds, 8, 92)
	for _, sigs := range []bool{true, false} {
		ix := Build(ds.Objects, ds.Vocab.Len(), 16)
		if !sigs {
			ix.SetSignatures(false)
			ix.Refresh()
		}
		loaded := saveLoadArena(t, ix, ds, 16)
		if !loaded.Mapped() {
			t.Fatal("loaded index is not serving the mapped arena")
		}
		for qi, q := range qs {
			wr, err := ix.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := loaded.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(wr) != len(gr) {
				t.Fatalf("sigs=%v q%d: %d results, want %d", sigs, qi, len(gr), len(wr))
			}
			for i := range wr {
				if wr[i].Obj.ID != gr[i].Obj.ID || wr[i].Score != gr[i].Score {
					t.Fatalf("sigs=%v q%d rank %d: got (%d, %v), want (%d, %v)",
						sigs, qi, i, gr[i].Obj.ID, gr[i].Score, wr[i].Obj.ID, wr[i].Score)
				}
			}
		}
	}
}

// TestArenaThawOnMutation: the first managed mutation on a mapped
// IR-tree thaws a live tree; the post-refresh epoch rebuild reuses the
// fanout the arena was loaded with.
func TestArenaThawOnMutation(t *testing.T) {
	ds := testDataset(t, 200, 93)
	q := lifecycleQueries(ds, 1, 94)[0]
	loaded := saveLoadArena(t, Build(ds.Objects, ds.Vocab.Len(), 16), ds, 16)

	id := ds.Objects.Append(object.Object{Loc: q.Loc, Doc: q.Doc})
	loaded.Insert(ds.Objects.Get(id))
	if loaded.Mapped() {
		t.Fatal("index still reports mapped after a managed mutation")
	}
	loaded.Refresh()
	after, err := loaded.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Obj.ID != id {
		t.Fatalf("rank 1 after refresh = %d, want the inserted winner %d", after[0].Obj.ID, id)
	}
	want := loaded.ScanTopK(q)
	for i := range want {
		if want[i].Obj.ID != after[i].Obj.ID {
			t.Fatalf("rank %d: tree %d, scan oracle %d", i+1, after[i].Obj.ID, want[i].Obj.ID)
		}
	}
}

// TestArenaWarmTopKZeroAllocs: warm top-k on the mapped IR-tree arena
// must not allocate.
func TestArenaWarmTopKZeroAllocs(t *testing.T) {
	ds := testDataset(t, 400, 95)
	qs := lifecycleQueries(ds, 16, 96)
	loaded := saveLoadArena(t, Build(ds.Objects, ds.Vocab.Len(), 16), ds, 16)

	var buf []score.Result
	for _, q := range qs {
		buf, _ = loaded.TopKAppend(q, buf[:0])
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = loaded.TopKAppend(q, buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("warm TopK on mapped arena allocated %.2f times per batch, want 0", allocs)
	}
}
