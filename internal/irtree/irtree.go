// Package irtree implements the IR-tree of Cong, Jensen & Wu [4], the
// index the paper's top-k algorithm was originally designed for: an
// R-tree whose every node carries an inverted file over the keywords of
// the objects below it. Each posting stores the *maximum* normalized
// term weight of any object in the subtree, which upper-bounds the
// cosine text relevance of the subtree to any query and hence, combined
// with spatial MinDist, the ranking score.
//
// As the paper notes, the IR-tree "does not support Jaccard similarity"
// — its bounds are only admissible for weighted-vector models — which is
// why YASK swaps in the SetR-tree. This package exists as that named
// baseline: it implements the tf-idf cosine model the IR-tree was built
// for, and the E1 benches compare the two engines under their native
// text models.
package irtree

import (
	"math"
	"slices"
	"sync"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// TextModel holds the corpus statistics of the tf-idf cosine model:
// per-keyword inverse document frequency and per-object vector norms.
// Keyword sets have unit term frequency, so an object's weight for term
// t is idf(t)/‖o‖.
type TextModel struct {
	idf   []float64 // indexed by vocab.Keyword
	norms []float64 // indexed by object.ID
}

// NewTextModel computes corpus statistics over the collection. vocabSize
// must cover every keyword ID used by the collection.
func NewTextModel(c *object.Collection, vocabSize int) *TextModel {
	df := make([]int, vocabSize)
	for _, o := range c.All() {
		for _, kw := range o.Doc {
			df[kw]++
		}
	}
	n := float64(c.Len())
	m := &TextModel{idf: make([]float64, vocabSize), norms: make([]float64, c.Len())}
	for t, d := range df {
		if d > 0 {
			m.idf[t] = math.Log(1 + n/float64(d))
		}
	}
	for i, o := range c.All() {
		sum := 0.0
		for _, kw := range o.Doc {
			sum += m.idf[kw] * m.idf[kw]
		}
		m.norms[i] = math.Sqrt(sum)
	}
	return m
}

// IDF returns the inverse document frequency of kw (0 for unseen terms).
func (m *TextModel) IDF(kw vocab.Keyword) float64 {
	if int(kw) >= len(m.idf) {
		return 0
	}
	return m.idf[kw]
}

// Weight returns the normalized weight of term kw in object oid's
// vector, i.e. idf(kw)/‖o‖, assuming kw ∈ o.doc.
func (m *TextModel) Weight(oid object.ID, kw vocab.Keyword) float64 {
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	return m.IDF(kw) / norm
}

// queryWeights appends the normalized query weight of each qdoc keyword
// (positionally aligned with qdoc) to dst; the hot query path calls it
// with a pooled buffer so it never allocates when warm.
func (m *TextModel) queryWeights(qdoc vocab.KeywordSet, dst []float64) []float64 {
	sum := 0.0
	for _, kw := range qdoc {
		sum += m.IDF(kw) * m.IDF(kw)
	}
	norm := math.Sqrt(sum)
	for _, kw := range qdoc {
		w := 0.0
		if norm > 0 {
			w = m.IDF(kw) / norm
		}
		dst = append(dst, w)
	}
	return dst
}

// cosineWeights returns the cosine similarity of object oid's document
// to the query keywords whose normalized weights are qw (aligned with
// qdoc), merge-walking the two sorted sets without allocating.
func (m *TextModel) cosineWeights(oid object.ID, doc, qdoc vocab.KeywordSet, qw []float64) float64 {
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	sum := 0.0
	i, j := 0, 0
	for i < len(doc) && j < len(qdoc) {
		switch {
		case doc[i] == qdoc[j]:
			sum += (m.idf[doc[i]] / norm) * qw[j]
			i++
			j++
		case doc[i] < qdoc[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// Cosine returns the cosine similarity between object oid's document and
// qdoc, in [0, 1]. It normalizes the query vector and delegates to the
// same merge-walk the hot path uses; callers scoring many objects
// against one query should hold the weights and call it once per
// object via the index's TopK paths instead.
func (m *TextModel) Cosine(oid object.ID, doc, qdoc vocab.KeywordSet) float64 {
	qw := m.queryWeights(qdoc, make([]float64, 0, len(qdoc)))
	return m.cosineWeights(oid, doc, qdoc, qw)
}

// Posting is one inverted-file entry: the maximum normalized weight of
// the term in any object below the node.
type Posting struct {
	K vocab.Keyword
	W float64
}

// Aug is the IR-tree node augmentation: a per-node inverted file of
// max-weight postings, sorted by keyword.
type Aug struct {
	Postings []Posting
}

// maxWeight returns the posting weight for kw, 0 if absent.
func (a Aug) maxWeight(kw vocab.Keyword) float64 {
	lo, hi := 0, len(a.Postings)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Postings[mid].K < kw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.Postings) && a.Postings[lo].K == kw {
		return a.Postings[lo].W
	}
	return 0
}

type augmenter struct {
	model *TextModel
}

func (g augmenter) FromLeaf(o object.Object) Aug {
	ps := make([]Posting, len(o.Doc))
	for i, kw := range o.Doc {
		ps[i] = Posting{K: kw, W: g.model.Weight(o.ID, kw)}
	}
	return Aug{Postings: ps}
}

func (g augmenter) Merge(a, b Aug) Aug {
	out := make([]Posting, 0, len(a.Postings)+len(b.Postings))
	i, j := 0, 0
	for i < len(a.Postings) && j < len(b.Postings) {
		pa, pb := a.Postings[i], b.Postings[j]
		switch {
		case pa.K == pb.K:
			w := pa.W
			if pb.W > w {
				w = pb.W
			}
			out = append(out, Posting{K: pa.K, W: w})
			i++
			j++
		case pa.K < pb.K:
			out = append(out, pa)
			i++
		default:
			out = append(out, pb)
			j++
		}
	}
	out = append(out, a.Postings[i:]...)
	out = append(out, b.Postings[j:]...)
	return Aug{Postings: out}
}

// Index is an IR-tree over a collection. It is immutable after
// construction and safe for concurrent readers.
type Index struct {
	tree  *rtree.Tree[object.Object, Aug]
	flat  *rtree.Flat[object.Object, Aug]
	coll  *object.Collection
	model *TextModel
	// scratch pools per-query traversal state so warm queries run
	// allocation-free.
	scratch sync.Pool
}

// searchScratch is the reusable traversal state of one query.
type searchScratch struct {
	nodes *pqueue.Queue[flatEntry]
	cand  *pqueue.Queue[score.Result]
	qw    []float64
}

// flatEntry is one best-first frontier element over the flat arena.
type flatEntry struct {
	bound float64
	node  int32
}

func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok {
		return sc
	}
	return &searchScratch{
		nodes: pqueue.NewWithCapacity(func(a, b flatEntry) bool {
			return a.bound > b.bound
		}, 64),
		cand: pqueue.NewWithCapacity(score.WorstFirst, 16),
	}
}

func (ix *Index) putScratch(sc *searchScratch) {
	sc.nodes.Reset()
	sc.cand.Reset()
	sc.qw = sc.qw[:0]
	ix.scratch.Put(sc)
}

// Build bulk-loads an IR-tree over the collection. vocabSize must cover
// every keyword ID in use.
func Build(c *object.Collection, vocabSize, maxEntries int) *Index {
	model := NewTextModel(c, vocabSize)
	t := rtree.New[object.Object, Aug](augmenter{model: model}, maxEntries)
	entries := make([]rtree.LeafEntry[object.Object], c.Len())
	for i, o := range c.All() {
		entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
	}
	t.BulkLoad(entries)
	return &Index{tree: t, flat: t.Freeze(), coll: c, model: model}
}

// Flat exposes the frozen arena the query algorithms traverse.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.flat }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Model returns the text model the index scores with.
func (ix *Index) Model() *TextModel { return ix.model }

// Tree exposes the underlying augmented R-tree.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.tree }

// Stats returns the node-access statistics collector.
func (ix *Index) Stats() *rtree.Stats { return ix.tree.Stats() }

// Score returns the IR-tree ranking score of object o for query q:
// ws·(1 − SDist) + wt·Cosine. It mirrors Eqn 1 with the cosine model in
// place of Jaccard.
func (ix *Index) Score(q score.Query, maxDist float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*ix.model.Cosine(o.ID, o.Doc, q.Doc)
}

// TopK runs the best-first top-k algorithm of [4] over the IR-tree under
// the tf-idf cosine model. Results are in rank order with ID tie-break.
func (ix *Index) TopK(q score.Query) []score.Result {
	return ix.TopKAppend(q, nil)
}

// TopKAppend is TopK appending results to dst, so a caller reusing its
// buffer across queries runs the warm path without allocating. All
// traversal state — the two heaps and the query weight vector — comes
// from the per-index scratch pool.
func (ix *Index) TopKAppend(q score.Query, dst []score.Result) []score.Result {
	f := ix.flat
	if f.Empty() || q.K <= 0 {
		return dst
	}
	maxDist := ix.coll.MaxDist()
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qw := ix.model.queryWeights(q.Doc, sc.qw[:0])
	sc.qw = qw

	nodeBound := func(n int32) float64 {
		d := f.Rect(n).MinDist(q.Loc) / maxDist
		if d > 1 {
			d = 1
		}
		text := 0.0
		aug := f.Aug(n)
		for j, kw := range q.Doc {
			text += qw[j] * aug.maxWeight(kw)
		}
		if text > 1 {
			text = 1
		}
		return q.W.Ws*(1-d) + q.W.Wt*text
	}

	nodes, cand := sc.nodes, sc.cand
	nodes.Push(flatEntry{bound: nodeBound(0), node: 0})

	accesses := int64(0)
	for nodes.Len() > 0 {
		top := nodes.Pop()
		if cand.Len() == q.K && top.bound < cand.Peek().Score {
			break
		}
		accesses++
		n := top.node
		if f.IsLeaf(n) {
			for _, e := range f.Entries(n) {
				scv := ix.scoreWeights(q, maxDist, qw, e.Item)
				if cand.Len() < q.K {
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				} else if w := cand.Peek(); score.Better(scv, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				}
			}
			continue
		}
		kth := -1.0
		if cand.Len() == q.K {
			kth = cand.Peek().Score
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if b := nodeBound(c); b >= kth {
				nodes.Push(flatEntry{bound: b, node: c})
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	base, n := len(dst), cand.Len()
	dst = slices.Grow(dst, n)[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = cand.Pop()
	}
	return dst
}

// scoreWeights is Score with a precomputed query weight vector, the
// allocation-free scoring call of the hot path.
func (ix *Index) scoreWeights(q score.Query, maxDist float64, qw []float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*ix.model.cosineWeights(o.ID, o.Doc, q.Doc, qw)
}

// ScanTopK is the brute-force oracle under the cosine model.
func (ix *Index) ScanTopK(q score.Query) []score.Result {
	if q.K <= 0 || ix.coll.Len() == 0 {
		return nil
	}
	maxDist := ix.coll.MaxDist()
	pq := pqueue.NewWithCapacity(score.WorstFirst, q.K+1)
	for _, o := range ix.coll.All() {
		pq.Push(score.Result{Obj: o, Score: ix.Score(q, maxDist, o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// SpatialOnlyNearest returns the spatially nearest object, a convenience
// used by explanation heuristics and tests.
func (ix *Index) SpatialOnlyNearest(p geo.Point) (object.Object, bool) {
	nn := ix.tree.KNN(p, 1)
	if len(nn) == 0 {
		return object.Object{}, false
	}
	return nn[0].Item, true
}
