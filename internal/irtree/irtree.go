// Package irtree implements the IR-tree of Cong, Jensen & Wu [4], the
// index the paper's top-k algorithm was originally designed for: an
// R-tree whose every node carries an inverted file over the keywords of
// the objects below it. Each posting stores the *maximum* normalized
// term weight of any object in the subtree, which upper-bounds the
// cosine text relevance of the subtree to any query and hence, combined
// with spatial MinDist, the ranking score.
//
// As the paper notes, the IR-tree "does not support Jaccard similarity"
// — its bounds are only admissible for weighted-vector models — which is
// why YASK swaps in the SetR-tree. This package exists as that named
// baseline: it implements the tf-idf cosine model the IR-tree was built
// for, and the E1 benches compare the two engines under their native
// text models.
//
// The Index implements index.Provider and its Arena implements
// index.Snapshot. The native cosine entry points are Index.TopK /
// Index.TopKAppend; the contract methods (Arena.TopK, CountBetter,
// RankBounds, ForEachCross) instead score under the caller's set-based
// scorer, pruning on the spatial component only — the posting bounds
// are cosine-specific and cannot bound Jaccard — so the family remains
// a correct, if text-blind, drop-in behind the shared interface.
package irtree

import (
	"math"
	"sync"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// TextModel holds the corpus statistics of the tf-idf cosine model:
// per-keyword inverse document frequency and per-object vector norms.
// Keyword sets have unit term frequency, so an object's weight for term
// t is idf(t)/‖o‖.
type TextModel struct {
	idf   []float64 // indexed by vocab.Keyword
	norms []float64 // indexed by object.ID
}

// NewTextModel computes corpus statistics over the live objects of the
// collection. vocabSize must cover every keyword ID used by the
// collection; norms cover the whole ID space (tombstoned IDs get norm 0).
func NewTextModel(c *object.Collection, vocabSize int) *TextModel {
	return newTextModel(c.View(), vocabSize)
}

// newTextModel is NewTextModel over one consistent collection view, so
// a concurrent Append cannot desynchronize the df/norms array sizes
// from the objects iterated.
func newTextModel(v object.View, vocabSize int) *TextModel {
	// Keywords interned after the caller derived vocabSize would overrun
	// df; widen to whatever this view actually contains.
	for _, o := range v.All() {
		if !v.Alive(o.ID) || len(o.Doc) == 0 {
			continue
		}
		if max := int(o.Doc[len(o.Doc)-1]) + 1; max > vocabSize {
			vocabSize = max
		}
	}
	df := make([]int, vocabSize)
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		for _, kw := range o.Doc {
			df[kw]++
		}
	}
	n := float64(v.LiveLen())
	m := &TextModel{idf: make([]float64, vocabSize), norms: make([]float64, v.Len())}
	for t, d := range df {
		if d > 0 {
			m.idf[t] = math.Log(1 + n/float64(d))
		}
	}
	for i, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		sum := 0.0
		for _, kw := range o.Doc {
			sum += m.idf[kw] * m.idf[kw]
		}
		m.norms[i] = math.Sqrt(sum)
	}
	return m
}

// IDF returns the inverse document frequency of kw (0 for unseen terms).
func (m *TextModel) IDF(kw vocab.Keyword) float64 {
	if int(kw) >= len(m.idf) {
		return 0
	}
	return m.idf[kw]
}

// Weight returns the normalized weight of term kw in object oid's
// vector, i.e. idf(kw)/‖o‖, assuming kw ∈ o.doc. Objects appended to
// the collection after this model was built weigh 0 until a Refresh
// rebuilds the epoch (the model predates them).
func (m *TextModel) Weight(oid object.ID, kw vocab.Keyword) float64 {
	if int(oid) >= len(m.norms) {
		return 0
	}
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	return m.IDF(kw) / norm
}

// queryWeights appends the normalized query weight of each qdoc keyword
// (positionally aligned with qdoc) to dst; the hot query path calls it
// with a pooled buffer so it never allocates when warm.
func (m *TextModel) queryWeights(qdoc vocab.KeywordSet, dst []float64) []float64 {
	sum := 0.0
	for _, kw := range qdoc {
		sum += m.IDF(kw) * m.IDF(kw)
	}
	norm := math.Sqrt(sum)
	for _, kw := range qdoc {
		w := 0.0
		if norm > 0 {
			w = m.IDF(kw) / norm
		}
		dst = append(dst, w)
	}
	return dst
}

// cosineWeights returns the cosine similarity of object oid's document
// to the query keywords whose normalized weights are qw (aligned with
// qdoc), merge-walking the two sorted sets without allocating.
func (m *TextModel) cosineWeights(oid object.ID, doc, qdoc vocab.KeywordSet, qw []float64) float64 {
	// Objects newer than the model (collection mutated, Refresh pending)
	// weigh 0 rather than panicking on the short norms array.
	if int(oid) >= len(m.norms) {
		return 0
	}
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	sum := 0.0
	i, j := 0, 0
	for i < len(doc) && j < len(qdoc) {
		switch {
		case doc[i] == qdoc[j]:
			sum += (m.idf[doc[i]] / norm) * qw[j]
			i++
			j++
		case doc[i] < qdoc[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// Cosine returns the cosine similarity between object oid's document and
// qdoc, in [0, 1]. It normalizes the query vector and delegates to the
// same merge-walk the hot path uses; callers scoring many objects
// against one query should hold the weights and call it once per
// object via the index's TopK paths instead.
func (m *TextModel) Cosine(oid object.ID, doc, qdoc vocab.KeywordSet) float64 {
	qw := m.queryWeights(qdoc, make([]float64, 0, len(qdoc)))
	return m.cosineWeights(oid, doc, qdoc, qw)
}

// Posting is one inverted-file entry: the maximum normalized weight of
// the term in any object below the node.
type Posting struct {
	K vocab.Keyword
	W float64
}

// Aug is the IR-tree node augmentation: a per-node inverted file of
// max-weight postings, sorted by keyword.
type Aug struct {
	Postings []Posting
}

// maxWeight returns the posting weight for kw, 0 if absent.
func (a Aug) maxWeight(kw vocab.Keyword) float64 {
	lo, hi := 0, len(a.Postings)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Postings[mid].K < kw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.Postings) && a.Postings[lo].K == kw {
		return a.Postings[lo].W
	}
	return 0
}

type augmenter struct {
	model *TextModel
}

// NodeSig implements rtree.KeywordSigger: the node signature covers
// every keyword with a posting below the node.
func (augmenter) NodeSig(a *Aug) vocab.Signature {
	var g vocab.Signature
	for _, p := range a.Postings {
		g.Add(p.K)
	}
	return g
}

// LeafSig implements rtree.KeywordSigger.
func (augmenter) LeafSig(o *object.Object) vocab.Signature { return o.Doc.Signature() }

func (g augmenter) FromLeaf(o object.Object) Aug {
	ps := make([]Posting, len(o.Doc))
	for i, kw := range o.Doc {
		ps[i] = Posting{K: kw, W: g.model.Weight(o.ID, kw)}
	}
	return Aug{Postings: ps}
}

func (g augmenter) Merge(a, b Aug) Aug {
	out := make([]Posting, 0, len(a.Postings)+len(b.Postings))
	i, j := 0, 0
	for i < len(a.Postings) && j < len(b.Postings) {
		pa, pb := a.Postings[i], b.Postings[j]
		switch {
		case pa.K == pb.K:
			w := pa.W
			if pb.W > w {
				w = pb.W
			}
			out = append(out, Posting{K: pa.K, W: w})
			i++
			j++
		case pa.K < pb.K:
			out = append(out, pa)
			i++
		default:
			out = append(out, pb)
			j++
		}
	}
	out = append(out, a.Postings[i:]...)
	out = append(out, b.Postings[j:]...)
	return Aug{Postings: out}
}

// Index is an IR-tree over a collection. Queries traverse an immutable
// epoch — the tree, its frozen Flat arena, and the text model whose
// weights the arena's postings were computed with — published through
// the shared rtree.SnapshotPublisher, so a query always sees a mutually
// consistent triple even while Refresh swaps in a new epoch. Mutating
// the tree directly via Tree() makes every query fail with
// rtree.ErrStaleSnapshot until Refresh.
//
// Unlike the SetR-/KcR-trees, the IR-tree's per-node postings depend on
// corpus statistics (idf, vector norms), so Refresh rebuilds the whole
// epoch from the live collection — through the publisher's Publish —
// instead of re-freezing the mutated tree: direct tree edits are
// discarded, the collection is the source of truth. Managed Insert and
// Remove buffer against the tree like every other family; a freshly
// inserted object weighs 0 under the old model until the rebuild.
type Index struct {
	pub  *rtree.SnapshotPublisher[object.Object, Aug]
	coll *object.Collection
	// sigs enables the keyword-signature layer (default on): a disjoint
	// signature AND proves a node or document shares no keyword with the
	// query, so its cosine contribution is exactly 0 and the posting or
	// merge-walk is skipped. Results are byte-identical either way.
	sigs bool
	// scratch pools per-query traversal state so warm queries run
	// allocation-free.
	scratch sync.Pool
	// fanout is the tree fanout for epoch rebuilds when the index was
	// loaded from a mapped arena (LoadArena) and has no tree to read
	// MaxEntries from; 0 on tree-built indexes.
	fanout int
}

// Arena is one published epoch: the frozen arena, the text model its
// postings were weighted with, and the SDist normalization constant
// captured at the freeze. It implements index.Snapshot.
type Arena struct {
	ix      *Index
	f       *rtree.Flat[object.Object, Aug]
	model   *TextModel
	maxDist float64
}

// searchScratch is the reusable traversal state of one query.
type searchScratch struct {
	nodes *pqueue.Queue[index.NodeEntry]
	cand  *pqueue.Queue[score.Result]
	stack []int32
	qw    []float64
	// ctr batches the query's signature-layer statistics; flushed to
	// the arena's Stats once per traversal.
	ctr index.SigCounters
}

//yask:hotpath
func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok { //yask:allocok(sync.Pool hit path does not allocate)
		return sc
	}
	return &searchScratch{ //yask:allocok(pool miss: one-time scratch construction, amortized across queries)
		nodes: pqueue.NewWithCapacity(index.NodeOrder, 64),  //yask:allocok(pool miss construction)
		cand:  pqueue.NewWithCapacity(score.WorstFirst, 16), //yask:allocok(pool miss construction)
	}
}

//yask:hotpath
func (ix *Index) putScratch(sc *searchScratch) {
	sc.nodes.Reset()
	sc.cand.Reset()
	sc.stack = sc.stack[:0]
	sc.qw = sc.qw[:0]
	ix.scratch.Put(sc) //yask:allocok(sync.Pool put does not allocate; the interface box is the pooled pointer)
}

// Build bulk-loads an IR-tree over the live objects of the collection.
// vocabSize must cover every keyword ID in use (the model widens it from
// the data when it does not).
func Build(c *object.Collection, vocabSize, maxEntries int) *Index {
	ix := &Index{coll: c, sigs: true}
	t, model := buildEpoch(c, vocabSize, maxEntries)
	ix.pub = rtree.NewSnapshotPublisher(t, ix.wrapWith(model))
	return ix
}

// Builder returns an index.Builder constructing IR-trees with the given
// fanout; the vocabulary size is derived from each collection's data.
func Builder(maxEntries int) index.Builder {
	return func(c *object.Collection) index.Provider { return Build(c, 0, maxEntries) }
}

// SetSignatures toggles the keyword-signature layer (default on);
// results are byte-identical either way. Future freezes also stop
// materializing the signature columns (Refresh carries the setting
// into each rebuilt epoch). Must be called before the index is shared.
func (ix *Index) SetSignatures(on bool) {
	ix.sigs = on
	if t := ix.pub.Tree(); t != nil {
		t.SetFreezeSigs(on)
	}
}

// Signatures reports whether the signature layer is enabled.
func (ix *Index) Signatures() bool { return ix.sigs }

// wrapWith returns the publisher payload builder for one epoch's model:
// every arena frozen while it is installed is published together with
// that model and the normalization constant captured at the freeze.
func (ix *Index) wrapWith(model *TextModel) func(*rtree.Flat[object.Object, Aug]) any {
	return func(f *rtree.Flat[object.Object, Aug]) any {
		return &Arena{ix: ix, f: f, model: model, maxDist: ix.coll.MaxDist()}
	}
}

// buildEpoch constructs a fresh (tree, model) pair from one consistent
// view of the collection, so model arrays and indexed objects cannot
// disagree under a concurrent Append.
func buildEpoch(c *object.Collection, vocabSize, maxEntries int) (*rtree.Tree[object.Object, Aug], *TextModel) {
	v := c.View()
	model := newTextModel(v, vocabSize)
	t := rtree.New[object.Object, Aug](augmenter{model: model}, maxEntries)
	entries := make([]rtree.LeafEntry[object.Object], 0, v.LiveLen())
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		entries = append(entries, rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o})
	}
	t.BulkLoad(entries)
	return t, model
}

// Snapshot returns the published epoch after verifying no unmanaged tree
// mutation happened; it fails with a *rtree.StaleSnapshotError otherwise.
func (ix *Index) Snapshot() (*Arena, error) {
	_, p, err := ix.pub.Snapshot()
	if err != nil {
		return nil, err
	}
	return p.(*Arena), nil
}

// Acquire implements index.Provider.
func (ix *Index) Acquire() (index.Snapshot, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Insert adds the object through the managed mutation path. The new
// object weighs 0 under the current epoch's text model; Refresh rebuilds
// the model over it.
func (ix *Index) Insert(o object.Object) { ix.pub.Insert(o.Rect(), o) }

// Remove deletes the object (matched by ID at its location) through the
// managed mutation path and reports whether it was present.
func (ix *Index) Remove(o object.Object) bool {
	return ix.pub.Remove(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })
}

// Refresh rebuilds the epoch — corpus statistics, tree, and frozen arena
// — from the live collection and atomically publishes it. The vocabulary
// size is re-derived from the data (newTextModel widens it from the
// view) so documents interned after Build are covered.
func (ix *Index) Refresh() {
	fan := ix.fanout
	if old := ix.pub.Tree(); old != nil {
		fan = old.MaxEntries()
	}
	t, model := buildEpoch(ix.coll, len(ix.Model().idf), fan)
	t.SetFreezeSigs(ix.sigs)
	ix.pub.Publish(t, ix.wrapWith(model))
}

// Flat exposes the current frozen arena without a freshness check; the
// query algorithms go through Snapshot instead.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.pub.Flat() }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Model returns the text model of the current published epoch. The
// model and the arena publish atomically, so the pair is always
// mutually consistent.
func (ix *Index) Model() *TextModel { return ix.pub.Payload().(*Arena).model }

// Tree exposes the underlying augmented R-tree. Mutating it directly
// makes queries error until Refresh, which rebuilds from the collection.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.pub.Tree() }

// Stats returns the node-access statistics collector of the current
// epoch's published arena (shared with its tree when there is one).
func (ix *Index) Stats() *rtree.Stats { return ix.pub.Flat().Stats() }

// Score returns the IR-tree ranking score of object o for query q:
// ws·(1 − SDist) + wt·Cosine. It mirrors Eqn 1 with the cosine model in
// place of Jaccard.
func (ix *Index) Score(q score.Query, maxDist float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*ix.Model().Cosine(o.ID, o.Doc, q.Doc)
}

// Flat exposes the underlying frozen arena for structural tests.
func (a *Arena) Flat() *rtree.Flat[object.Object, Aug] { return a.f }

// Model returns the text model the arena's postings were weighted with.
func (a *Arena) Model() *TextModel { return a.model }

// MaxDist implements index.Snapshot: the normalization constant frozen
// with this epoch.
func (a *Arena) MaxDist() float64 { return a.maxDist }

// Scorer returns a scorer for q pinned to this snapshot's normalization
// constant.
func (a *Arena) Scorer(q score.Query) score.Scorer {
	return score.Scorer{Query: q, MaxDist: a.maxDist}
}

// Generation returns the tree generation the arena was frozen at.
func (a *Arena) Generation() uint64 { return a.f.Generation() }

// Epoch implements index.Snapshot: the process-wide identity the
// publisher stamped into this arena at publication.
func (a *Arena) Epoch() uint64 { return a.f.Epoch() }

// Len returns the number of indexed objects in the arena.
func (a *Arena) Len() int { return a.f.Len() }

// Parts implements index.Snapshot: a single arena is one partition.
func (a *Arena) Parts() int { return 1 }

// TopKPart implements index.Snapshot; part must be 0.
//
//yask:hotpath
func (a *Arena) TopKPart(cc index.Cancel, part int, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	return a.TopK(cc, s, k, shared, dst)
}

// spatialBound upper-bounds the score of every object under node n for
// ANY similarity model: ws·(1 − minSDist) + wt·1. The posting bounds
// are cosine-specific and unsound for the caller's set-based scorer, so
// the contract methods prune on the spatial component only.
//
//yask:hotpath
func spatialBound(f *rtree.Flat[object.Object, Aug], s score.Scorer, n int32) float64 {
	return s.Query.W.Ws*(1-s.SDistRectMin(f.Rect(n))) + s.Query.W.Wt
}

// TopK implements index.Snapshot through the shared index.BestFirstTopK
// driver: best-first top-k under the caller's scorer, admissible for
// any similarity model via the spatial-only bound. For the IR-tree's
// native cosine ranking use Index.TopK.
//
//yask:hotpath
func (a *Arena) TopK(cc index.Cancel, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	ix, f := a.ix, a.f
	if f.Empty() || k <= 0 {
		return dst
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, _ := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	dst = index.BestFirstTopK(f, cc, k, shared, sc.nodes, sc.cand,
		func(n int32, limit float64) float64 { return spatialBound(f, s, n) },
		func(ei int32, e *rtree.LeafEntry[object.Object], limit float64) (float64, bool) {
			return index.ScoreEntryCounted(&s, e, esigs, ei, &qs, limit, &sc.ctr)
		},
		dst)
	sc.ctr.Flush(f.Stats())
	return dst
}

// CountBetter implements index.Snapshot: the number of objects whose
// (score, ID) pair strictly dominates (refScore, tie) under the
// caller's scorer, pruning subtrees on the spatial-only bound.
//
//yask:hotpath
func (a *Arena) CountBetter(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID) int {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, _ := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	entries := f.AllEntries()
	count := 0
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			eLo, eHi := f.EntryRange(n)
			for ei := eLo; ei < eHi; ei++ {
				e := &entries[ei]
				scv, ok := index.ScoreEntryCounted(&s, e, esigs, ei, &qs, refScore, &sc.ctr)
				if ok && score.Better(scv, e.Item.ID, refScore, tie) {
					count++
				}
			}
		},
		func(c int32) bool { return spatialBound(f, s, c) >= refScore })
	sc.ctr.Flush(f.Stats())
	return count
}

// RankBounds implements index.Snapshot. The IR-tree augmentation
// carries no subtree cardinality, so the exact count is returned as
// both bounds regardless of maxDepth.
//
//yask:hotpath
func (a *Arena) RankBounds(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID, maxDepth int) (lo, hi int) {
	n := a.CountBetter(cc, s, refScore, tie)
	return n, n
}

// ForEachCross implements index.Snapshot. The IR-tree can bound the
// wt=0 endpoint spatially but has no set-based similarity bound for the
// wt=1 endpoint, so only subtrees strictly below on the spatial side
// with a reference line above 1 would prune — in practice it visits
// every object, the correct baseline behavior.
//
//yask:hotpath
func (a *Arena) ForEachCross(cc index.Cancel, s score.Scorer, m0, m1 float64, visit func(object.Object), above func(int)) {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			for _, e := range f.Entries(n) {
				visit(e.Item)
			}
		},
		func(c int32) bool {
			aHi := 1 - s.SDistRectMin(f.Rect(c))
			return !(aHi < m0 && 1 < m1)
		})
}

// TopK runs the best-first top-k algorithm of [4] over the IR-tree under
// the tf-idf cosine model. Results are in rank order with ID tie-break.
// It fails with rtree.ErrStaleSnapshot when the tree was mutated without
// a Refresh.
func (ix *Index) TopK(q score.Query) ([]score.Result, error) {
	return ix.TopKAppend(q, nil)
}

// TopKAppend is TopK appending results to dst, so a caller reusing its
// buffer across queries runs the warm path without allocating. All
// traversal state — the two heaps and the query weight vector — comes
// from the per-index scratch pool; the search runs through the shared
// index.BestFirstTopK driver with the IR-tree's max-posting cosine
// bound and precomputed query weights.
func (ix *Index) TopKAppend(q score.Query, dst []score.Result) ([]score.Result, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	f, model := a.f, a.model
	if f.Empty() || q.K <= 0 {
		return dst, nil
	}
	maxDist := a.maxDist
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qw := model.queryWeights(q.Doc, sc.qw[:0])
	sc.qw = qw
	qs, esigs, useSig := index.PrepareSig(f, ix.sigs, q.Doc)

	nodeBound := func(n int32, limit float64) float64 {
		d := f.Rect(n).MinDist(q.Loc) / maxDist
		if d > 1 {
			d = 1
		}
		spatial := q.W.Ws * (1 - d)
		aug := f.Aug(n)
		if useSig {
			sc.ctr.Probes++
			if qs.Disjoint(f.Sig(n)) {
				// No query keyword has a posting below: text bound is
				// exactly 0, skip the per-keyword posting walk.
				sc.ctr.Hits++
				return spatial
			}
		}
		sc.ctr.Exact++
		text := 0.0
		for j, kw := range q.Doc {
			text += qw[j] * aug.maxWeight(kw)
		}
		if text > 1 {
			text = 1
		}
		return spatial + q.W.Wt*text
	}
	dst = index.BestFirstTopK(f, index.NoCancel, q.K, nil, sc.nodes, sc.cand,
		nodeBound,
		func(ei int32, e *rtree.LeafEntry[object.Object], limit float64) (float64, bool) {
			if useSig {
				sc.ctr.Probes++
				if qs.Disjoint(&esigs[ei]) {
					// Disjoint documents have cosine exactly 0.
					sc.ctr.Hits++
					d := q.Loc.Dist(e.Item.Loc) / maxDist
					if d > 1 {
						d = 1
					}
					return q.W.Ws * (1 - d), true
				}
			}
			sc.ctr.Exact++
			return scoreWeights(model, q, maxDist, qw, e.Item), true
		},
		dst)
	sc.ctr.Flush(f.Stats())
	return dst, nil
}

// scoreWeights is Score with a precomputed query weight vector, the
// allocation-free scoring call of the hot path. It takes the model
// explicitly so one query scores every object against one epoch.
func scoreWeights(model *TextModel, q score.Query, maxDist float64, qw []float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*model.cosineWeights(o.ID, o.Doc, q.Doc, qw)
}

// ScanTopK is the brute-force oracle under the cosine model.
func (ix *Index) ScanTopK(q score.Query) []score.Result {
	if q.K <= 0 || ix.coll.Len() == 0 {
		return nil
	}
	maxDist := ix.coll.MaxDist()
	pq := pqueue.NewWithCapacity(score.WorstFirst, q.K+1)
	for _, o := range ix.coll.All() {
		if !ix.coll.Alive(o.ID) {
			continue
		}
		pq.Push(score.Result{Obj: o, Score: ix.Score(q, maxDist, o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// SpatialOnlyNearest returns the spatially nearest object, a convenience
// used by explanation heuristics and tests.
func (ix *Index) SpatialOnlyNearest(p geo.Point) (object.Object, bool) {
	t := ix.pub.Tree()
	if t == nil {
		// Mapped arena: scan the frozen entries — this explanation
		// helper is far off the hot path.
		best, ok := object.Object{}, false
		bestD := 0.0
		for _, e := range ix.pub.Flat().AllEntries() {
			if d := p.Dist(e.Item.Loc); !ok || d < bestD {
				best, bestD, ok = e.Item, d, true
			}
		}
		return best, ok
	}
	nn := t.KNN(p, 1)
	if len(nn) == 0 {
		return object.Object{}, false
	}
	return nn[0].Item, true
}
