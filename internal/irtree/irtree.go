// Package irtree implements the IR-tree of Cong, Jensen & Wu [4], the
// index the paper's top-k algorithm was originally designed for: an
// R-tree whose every node carries an inverted file over the keywords of
// the objects below it. Each posting stores the *maximum* normalized
// term weight of any object in the subtree, which upper-bounds the
// cosine text relevance of the subtree to any query and hence, combined
// with spatial MinDist, the ranking score.
//
// As the paper notes, the IR-tree "does not support Jaccard similarity"
// — its bounds are only admissible for weighted-vector models — which is
// why YASK swaps in the SetR-tree. This package exists as that named
// baseline: it implements the tf-idf cosine model the IR-tree was built
// for, and the E1 benches compare the two engines under their native
// text models.
package irtree

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// TextModel holds the corpus statistics of the tf-idf cosine model:
// per-keyword inverse document frequency and per-object vector norms.
// Keyword sets have unit term frequency, so an object's weight for term
// t is idf(t)/‖o‖.
type TextModel struct {
	idf   []float64 // indexed by vocab.Keyword
	norms []float64 // indexed by object.ID
}

// NewTextModel computes corpus statistics over the live objects of the
// collection. vocabSize must cover every keyword ID used by the
// collection; norms cover the whole ID space (tombstoned IDs get norm 0).
func NewTextModel(c *object.Collection, vocabSize int) *TextModel {
	return newTextModel(c.View(), vocabSize)
}

// newTextModel is NewTextModel over one consistent collection view, so
// a concurrent Append cannot desynchronize the df/norms array sizes
// from the objects iterated.
func newTextModel(v object.View, vocabSize int) *TextModel {
	// Keywords interned after the caller derived vocabSize would overrun
	// df; widen to whatever this view actually contains.
	for _, o := range v.All() {
		if !v.Alive(o.ID) || len(o.Doc) == 0 {
			continue
		}
		if max := int(o.Doc[len(o.Doc)-1]) + 1; max > vocabSize {
			vocabSize = max
		}
	}
	df := make([]int, vocabSize)
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		for _, kw := range o.Doc {
			df[kw]++
		}
	}
	n := float64(v.LiveLen())
	m := &TextModel{idf: make([]float64, vocabSize), norms: make([]float64, v.Len())}
	for t, d := range df {
		if d > 0 {
			m.idf[t] = math.Log(1 + n/float64(d))
		}
	}
	for i, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		sum := 0.0
		for _, kw := range o.Doc {
			sum += m.idf[kw] * m.idf[kw]
		}
		m.norms[i] = math.Sqrt(sum)
	}
	return m
}

// IDF returns the inverse document frequency of kw (0 for unseen terms).
func (m *TextModel) IDF(kw vocab.Keyword) float64 {
	if int(kw) >= len(m.idf) {
		return 0
	}
	return m.idf[kw]
}

// Weight returns the normalized weight of term kw in object oid's
// vector, i.e. idf(kw)/‖o‖, assuming kw ∈ o.doc. Objects appended to
// the collection after this model was built weigh 0 until a Refresh
// rebuilds the epoch (the model predates them).
func (m *TextModel) Weight(oid object.ID, kw vocab.Keyword) float64 {
	if int(oid) >= len(m.norms) {
		return 0
	}
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	return m.IDF(kw) / norm
}

// queryWeights appends the normalized query weight of each qdoc keyword
// (positionally aligned with qdoc) to dst; the hot query path calls it
// with a pooled buffer so it never allocates when warm.
func (m *TextModel) queryWeights(qdoc vocab.KeywordSet, dst []float64) []float64 {
	sum := 0.0
	for _, kw := range qdoc {
		sum += m.IDF(kw) * m.IDF(kw)
	}
	norm := math.Sqrt(sum)
	for _, kw := range qdoc {
		w := 0.0
		if norm > 0 {
			w = m.IDF(kw) / norm
		}
		dst = append(dst, w)
	}
	return dst
}

// cosineWeights returns the cosine similarity of object oid's document
// to the query keywords whose normalized weights are qw (aligned with
// qdoc), merge-walking the two sorted sets without allocating.
func (m *TextModel) cosineWeights(oid object.ID, doc, qdoc vocab.KeywordSet, qw []float64) float64 {
	// Objects newer than the model (collection mutated, Refresh pending)
	// weigh 0 rather than panicking on the short norms array.
	if int(oid) >= len(m.norms) {
		return 0
	}
	norm := m.norms[oid]
	if norm == 0 {
		return 0
	}
	sum := 0.0
	i, j := 0, 0
	for i < len(doc) && j < len(qdoc) {
		switch {
		case doc[i] == qdoc[j]:
			sum += (m.idf[doc[i]] / norm) * qw[j]
			i++
			j++
		case doc[i] < qdoc[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// Cosine returns the cosine similarity between object oid's document and
// qdoc, in [0, 1]. It normalizes the query vector and delegates to the
// same merge-walk the hot path uses; callers scoring many objects
// against one query should hold the weights and call it once per
// object via the index's TopK paths instead.
func (m *TextModel) Cosine(oid object.ID, doc, qdoc vocab.KeywordSet) float64 {
	qw := m.queryWeights(qdoc, make([]float64, 0, len(qdoc)))
	return m.cosineWeights(oid, doc, qdoc, qw)
}

// Posting is one inverted-file entry: the maximum normalized weight of
// the term in any object below the node.
type Posting struct {
	K vocab.Keyword
	W float64
}

// Aug is the IR-tree node augmentation: a per-node inverted file of
// max-weight postings, sorted by keyword.
type Aug struct {
	Postings []Posting
}

// maxWeight returns the posting weight for kw, 0 if absent.
func (a Aug) maxWeight(kw vocab.Keyword) float64 {
	lo, hi := 0, len(a.Postings)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Postings[mid].K < kw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.Postings) && a.Postings[lo].K == kw {
		return a.Postings[lo].W
	}
	return 0
}

type augmenter struct {
	model *TextModel
}

func (g augmenter) FromLeaf(o object.Object) Aug {
	ps := make([]Posting, len(o.Doc))
	for i, kw := range o.Doc {
		ps[i] = Posting{K: kw, W: g.model.Weight(o.ID, kw)}
	}
	return Aug{Postings: ps}
}

func (g augmenter) Merge(a, b Aug) Aug {
	out := make([]Posting, 0, len(a.Postings)+len(b.Postings))
	i, j := 0, 0
	for i < len(a.Postings) && j < len(b.Postings) {
		pa, pb := a.Postings[i], b.Postings[j]
		switch {
		case pa.K == pb.K:
			w := pa.W
			if pb.W > w {
				w = pb.W
			}
			out = append(out, Posting{K: pa.K, W: w})
			i++
			j++
		case pa.K < pb.K:
			out = append(out, pa)
			i++
		default:
			out = append(out, pb)
			j++
		}
	}
	out = append(out, a.Postings[i:]...)
	out = append(out, b.Postings[j:]...)
	return Aug{Postings: out}
}

// Index is an IR-tree over a collection. Queries traverse an immutable
// epoch — tree, frozen Flat arena, and the text model whose weights the
// arena's postings were computed with — published through one atomic
// pointer, so a query always sees a mutually consistent triple even
// while Refresh swaps in a new epoch. Mutating the tree directly via
// Tree() makes every query fail with rtree.ErrStaleSnapshot until
// Refresh.
//
// Unlike the SetR-/KcR-trees, the IR-tree's per-node postings depend on
// corpus statistics (idf, vector norms), so Refresh rebuilds the whole
// epoch from the live collection instead of re-freezing the mutated
// tree: direct tree edits are discarded, the collection is the source of
// truth.
type Index struct {
	st   atomic.Pointer[epoch]
	coll *object.Collection
	// mu serializes Refresh; queries never take it.
	mu sync.Mutex
	// knownGen is the generation of the published epoch's tree; the tree
	// moving past it means an unmanaged mutation.
	knownGen atomic.Uint64
	// scratch pools per-query traversal state so warm queries run
	// allocation-free.
	scratch sync.Pool
}

// epoch is one immutable (tree, arena, model) triple.
type epoch struct {
	tree  *rtree.Tree[object.Object, Aug]
	flat  *rtree.Flat[object.Object, Aug]
	model *TextModel
}

// searchScratch is the reusable traversal state of one query.
type searchScratch struct {
	nodes *pqueue.Queue[flatEntry]
	cand  *pqueue.Queue[score.Result]
	qw    []float64
}

// flatEntry is one best-first frontier element over the flat arena.
type flatEntry struct {
	bound float64
	node  int32
}

func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok {
		return sc
	}
	return &searchScratch{
		nodes: pqueue.NewWithCapacity(func(a, b flatEntry) bool {
			return a.bound > b.bound
		}, 64),
		cand: pqueue.NewWithCapacity(score.WorstFirst, 16),
	}
}

func (ix *Index) putScratch(sc *searchScratch) {
	sc.nodes.Reset()
	sc.cand.Reset()
	sc.qw = sc.qw[:0]
	ix.scratch.Put(sc)
}

// Build bulk-loads an IR-tree over the live objects of the collection.
// vocabSize must cover every keyword ID in use.
func Build(c *object.Collection, vocabSize, maxEntries int) *Index {
	ix := &Index{coll: c}
	ix.st.Store(buildEpoch(c, vocabSize, maxEntries))
	ix.knownGen.Store(ix.st.Load().tree.Generation())
	return ix
}

// buildEpoch constructs a fresh (tree, arena, model) triple from one
// consistent view of the collection, so model arrays and indexed
// objects cannot disagree under a concurrent Append.
func buildEpoch(c *object.Collection, vocabSize, maxEntries int) *epoch {
	v := c.View()
	model := newTextModel(v, vocabSize)
	t := rtree.New[object.Object, Aug](augmenter{model: model}, maxEntries)
	entries := make([]rtree.LeafEntry[object.Object], 0, v.LiveLen())
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		entries = append(entries, rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o})
	}
	t.BulkLoad(entries)
	return &epoch{tree: t, flat: t.Freeze(), model: model}
}

// Snapshot returns the published epoch after verifying no unmanaged tree
// mutation happened; it fails with a *rtree.StaleSnapshotError otherwise.
//
// NOTE: this mirrors rtree.SnapshotPublisher.Snapshot's settle-under-lock
// protocol. The IR-tree cannot reuse the publisher because its unit of
// publication is the (tree, arena, model) epoch — the arena's postings
// are only meaningful next to the model they were weighted with, and
// Refresh replaces the tree itself. Keep the two implementations in
// sync when touching either.
func (ix *Index) Snapshot() (*rtree.Flat[object.Object, Aug], *TextModel, error) {
	st := ix.st.Load()
	if g := st.tree.Generation(); g == ix.knownGen.Load() {
		return st.flat, st.model, nil
	}
	// Settle a possible Refresh in flight under the mutation lock; only
	// an unmanaged mutation still mismatches afterwards.
	ix.mu.Lock()
	st = ix.st.Load()
	g, known := st.tree.Generation(), ix.knownGen.Load()
	ix.mu.Unlock()
	if g != known {
		return nil, nil, &rtree.StaleSnapshotError{FrozenGen: st.flat.Generation(), TreeGen: g}
	}
	return st.flat, st.model, nil
}

// Refresh rebuilds the epoch — corpus statistics, tree, and frozen arena
// — from the live collection and atomically publishes it. The vocabulary
// size is re-derived from the data (newTextModel widens it from the
// view) so documents interned after Build are covered.
func (ix *Index) Refresh() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.st.Load()
	next := buildEpoch(ix.coll, len(old.model.idf), old.tree.MaxEntries())
	ix.st.Store(next)
	ix.knownGen.Store(next.tree.Generation())
}

// Flat exposes the current frozen arena without a freshness check; the
// query algorithms go through Snapshot instead.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.st.Load().flat }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Model returns the text model the index currently scores with.
func (ix *Index) Model() *TextModel { return ix.st.Load().model }

// Tree exposes the underlying augmented R-tree. Mutating it directly
// makes queries error until Refresh, which rebuilds from the collection.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.st.Load().tree }

// Stats returns the node-access statistics collector of the current
// epoch's tree.
func (ix *Index) Stats() *rtree.Stats { return ix.st.Load().tree.Stats() }

// Score returns the IR-tree ranking score of object o for query q:
// ws·(1 − SDist) + wt·Cosine. It mirrors Eqn 1 with the cosine model in
// place of Jaccard.
func (ix *Index) Score(q score.Query, maxDist float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*ix.st.Load().model.Cosine(o.ID, o.Doc, q.Doc)
}

// TopK runs the best-first top-k algorithm of [4] over the IR-tree under
// the tf-idf cosine model. Results are in rank order with ID tie-break.
// It fails with rtree.ErrStaleSnapshot when the tree was mutated without
// a Refresh.
func (ix *Index) TopK(q score.Query) ([]score.Result, error) {
	return ix.TopKAppend(q, nil)
}

// TopKAppend is TopK appending results to dst, so a caller reusing its
// buffer across queries runs the warm path without allocating. All
// traversal state — the two heaps and the query weight vector — comes
// from the per-index scratch pool.
func (ix *Index) TopKAppend(q score.Query, dst []score.Result) ([]score.Result, error) {
	f, model, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	if f.Empty() || q.K <= 0 {
		return dst, nil
	}
	maxDist := ix.coll.MaxDist()
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qw := model.queryWeights(q.Doc, sc.qw[:0])
	sc.qw = qw

	nodeBound := func(n int32) float64 {
		d := f.Rect(n).MinDist(q.Loc) / maxDist
		if d > 1 {
			d = 1
		}
		text := 0.0
		aug := f.Aug(n)
		for j, kw := range q.Doc {
			text += qw[j] * aug.maxWeight(kw)
		}
		if text > 1 {
			text = 1
		}
		return q.W.Ws*(1-d) + q.W.Wt*text
	}

	nodes, cand := sc.nodes, sc.cand
	nodes.Push(flatEntry{bound: nodeBound(0), node: 0})

	accesses := int64(0)
	for nodes.Len() > 0 {
		top := nodes.Pop()
		if cand.Len() == q.K && top.bound < cand.Peek().Score {
			break
		}
		accesses++
		n := top.node
		if f.IsLeaf(n) {
			for _, e := range f.Entries(n) {
				scv := scoreWeights(model, q, maxDist, qw, e.Item)
				if cand.Len() < q.K {
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				} else if w := cand.Peek(); score.Better(scv, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				}
			}
			continue
		}
		kth := -1.0
		if cand.Len() == q.K {
			kth = cand.Peek().Score
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if b := nodeBound(c); b >= kth {
				nodes.Push(flatEntry{bound: b, node: c})
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	base, n := len(dst), cand.Len()
	dst = slices.Grow(dst, n)[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = cand.Pop()
	}
	return dst, nil
}

// scoreWeights is Score with a precomputed query weight vector, the
// allocation-free scoring call of the hot path. It takes the model
// explicitly so one query scores every object against one epoch.
func scoreWeights(model *TextModel, q score.Query, maxDist float64, qw []float64, o object.Object) float64 {
	d := q.Loc.Dist(o.Loc) / maxDist
	if d > 1 {
		d = 1
	}
	return q.W.Ws*(1-d) + q.W.Wt*model.cosineWeights(o.ID, o.Doc, q.Doc, qw)
}

// ScanTopK is the brute-force oracle under the cosine model.
func (ix *Index) ScanTopK(q score.Query) []score.Result {
	if q.K <= 0 || ix.coll.Len() == 0 {
		return nil
	}
	maxDist := ix.coll.MaxDist()
	pq := pqueue.NewWithCapacity(score.WorstFirst, q.K+1)
	for _, o := range ix.coll.All() {
		if !ix.coll.Alive(o.ID) {
			continue
		}
		pq.Push(score.Result{Obj: o, Score: ix.Score(q, maxDist, o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// SpatialOnlyNearest returns the spatially nearest object, a convenience
// used by explanation heuristics and tests.
func (ix *Index) SpatialOnlyNearest(p geo.Point) (object.Object, bool) {
	nn := ix.st.Load().tree.KNN(p, 1)
	if len(nn) == 0 {
		return object.Object{}, false
	}
	return nn[0].Item, true
}
