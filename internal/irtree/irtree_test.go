package irtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

func testDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTextModelIDF(t *testing.T) {
	v := vocab.NewVocabulary()
	common := v.Intern("common")
	rare := v.Intern("rare")
	objs := make([]object.Object, 10)
	for i := range objs {
		doc := vocab.NewKeywordSet(common)
		if i == 0 {
			doc = doc.Add(rare)
		}
		objs[i] = object.Object{ID: object.ID(i), Loc: geo.Point{X: float64(i), Y: 0}, Doc: doc}
	}
	c := object.NewCollection(objs)
	m := NewTextModel(c, v.Len())
	if m.IDF(rare) <= m.IDF(common) {
		t.Fatalf("idf(rare)=%v should exceed idf(common)=%v", m.IDF(rare), m.IDF(common))
	}
	if m.IDF(vocab.Keyword(99)) != 0 {
		t.Fatal("unseen keyword should have idf 0")
	}
}

func TestCosineProperties(t *testing.T) {
	ds := testDataset(t, 300, 1)
	m := NewTextModel(ds.Objects, ds.Vocab.Len())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		o := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len())))
		var qdoc vocab.KeywordSet
		for qdoc.Len() < 1+rng.Intn(3) {
			qdoc = qdoc.Add(vocab.Keyword(rng.Intn(ds.Vocab.Len())))
		}
		cos := m.Cosine(o.ID, o.Doc, qdoc)
		if cos < -1e-12 || cos > 1+1e-12 {
			t.Fatalf("cosine %v outside [0,1]", cos)
		}
		// Self-similarity of the full document must be 1.
		self := m.Cosine(o.ID, o.Doc, o.Doc)
		if math.Abs(self-1) > 1e-9 {
			t.Fatalf("self cosine = %v", self)
		}
		// Disjoint query must score 0 — build one from an unseen ID space.
		if got := m.Cosine(o.ID, o.Doc, vocab.NewKeywordSet(vocab.Keyword(ds.Vocab.Len()+5))); got != 0 {
			t.Fatalf("disjoint cosine = %v", got)
		}
	}
}

func TestPostingInvariant(t *testing.T) {
	ds := testDataset(t, 400, 3)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	m := ix.Model()
	var walk func(n *rtree.Node[object.Object, Aug]) map[vocab.Keyword]float64
	walk = func(n *rtree.Node[object.Object, Aug]) map[vocab.Keyword]float64 {
		want := map[vocab.Keyword]float64{}
		if n.IsLeaf() {
			for _, e := range n.Entries() {
				for _, kw := range e.Item.Doc {
					if w := m.Weight(e.Item.ID, kw); w > want[kw] {
						want[kw] = w
					}
				}
			}
		} else {
			for _, c := range n.Children() {
				for k, w := range walk(c) {
					if w > want[k] {
						want[k] = w
					}
				}
			}
		}
		aug := n.Aug()
		if len(aug.Postings) != len(want) {
			t.Fatalf("node has %d postings, want %d", len(aug.Postings), len(want))
		}
		for _, p := range aug.Postings {
			if math.Abs(p.W-want[p.K]) > 1e-12 {
				t.Fatalf("posting %d weight %v, want %v", p.K, p.W, want[p.K])
			}
		}
		return want
	}
	walk(ix.Tree().Root())
}

func TestTopKMatchesScan(t *testing.T) {
	ds := testDataset(t, 1000, 4)
	ix := Build(ds.Objects, ds.Vocab.Len(), 32)
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 30, Seed: 5, K: 10, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	for _, q := range qs {
		got, _ := ix.TopK(q)
		want := ix.ScanTopK(q)
		if len(got) != len(want) {
			t.Fatalf("TopK %d results, scan %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Obj.ID != want[i].Obj.ID {
				t.Fatalf("rank %d: index %d (%.6f), scan %d (%.6f)",
					i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
			}
		}
	}
}

func TestTopKWeightSweep(t *testing.T) {
	ds := testDataset(t, 500, 6)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	for _, wt := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		qs := dataset.Workload(ds, dataset.WorkloadConfig{
			Queries: 5, Seed: 7, K: 5, Keywords: 2, W: score.WeightsFromWt(wt), FromObjectDocs: true,
		})
		for _, q := range qs {
			got, _ := ix.TopK(q)
			want := ix.ScanTopK(q)
			for i := range want {
				if got[i].Obj.ID != want[i].Obj.ID {
					t.Fatalf("wt=%v rank %d: index %d, scan %d", wt, i, got[i].Obj.ID, want[i].Obj.ID)
				}
			}
		}
	}
}

func TestTopKEmptyAndSmall(t *testing.T) {
	empty := Build(object.NewCollection(nil), 10, 8)
	q := score.Query{Loc: geo.Point{}, Doc: vocab.NewKeywordSet(1), K: 3, W: score.DefaultWeights}
	if got, _ := empty.TopK(q); got != nil {
		t.Fatalf("TopK on empty = %v", got)
	}
	small := testDataset(t, 3, 8)
	ix := Build(small.Objects, small.Vocab.Len(), 8)
	q2 := dataset.Workload(small, dataset.WorkloadConfig{
		Queries: 1, Seed: 9, K: 10, Keywords: 1, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	if got, _ := ix.TopK(q2); len(got) != 3 {
		t.Fatalf("TopK k>n = %d results", len(got))
	}
}

func TestTopKPrunes(t *testing.T) {
	ds := testDataset(t, 5000, 10)
	ix := Build(ds.Objects, ds.Vocab.Len(), 64)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 11, K: 10, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	ix.Stats().Reset()
	ix.TopK(q)
	if got := ix.Stats().NodeAccesses(); got >= int64(ix.Tree().NodeCount()) {
		t.Fatalf("top-k touched %d of %d nodes", got, ix.Tree().NodeCount())
	}
}

func TestSpatialOnlyNearest(t *testing.T) {
	ds := testDataset(t, 200, 12)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	p := geo.Point{X: 500, Y: 500}
	got, ok := ix.SpatialOnlyNearest(p)
	if !ok {
		t.Fatal("no nearest found")
	}
	bestDist := math.Inf(1)
	var want object.Object
	for _, o := range ds.Objects.All() {
		if d := p.Dist(o.Loc); d < bestDist {
			bestDist, want = d, o
		}
	}
	if got.ID != want.ID {
		t.Fatalf("nearest = %d, want %d", got.ID, want.ID)
	}
	if _, ok := Build(object.NewCollection(nil), 1, 8).SpatialOnlyNearest(p); ok {
		t.Fatal("empty index returned a nearest object")
	}
}
