package irtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// This file is the IR-tree's half of the arena persistence format
// (docs/FORMATS.md). Leaf items serialize as object IDs against the
// restored collection. The augmentation column stores each node's
// max-weight postings explicitly packed (u32 keyword + f64 weight, 12
// bytes, no padding) and decodes by copy — the IR-tree is the
// comparison baseline, so it takes the simple portable layout instead
// of the zero-copy aliasing of the two paper families. The text model
// (idf, norms) is NOT persisted: it is a pure function of the
// collection, which the checkpoint already restores, so LoadArena
// rebuilds it deterministically.

// codec implements rtree.ArenaCodec for the IR-tree.
//
// Items column: one little-endian u32 object ID per leaf entry.
//
// Augs column: a table of u32 posting counts (one per node) followed by
// the packed postings in node order.
type codec struct {
	coll     *object.Collection
	vocabLen int
}

func (codec) corrupt(format string, args ...any) error {
	return &wal.CorruptionError{Detail: "irtree arena: " + fmt.Sprintf(format, args...)}
}

// AppendItems implements rtree.ArenaCodec.
func (codec) AppendItems(dst []byte, entries []rtree.LeafEntry[object.Object]) []byte {
	var b [4]byte
	for i := range entries {
		binary.LittleEndian.PutUint32(b[:], uint32(entries[i].Item.ID))
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeItems implements rtree.ArenaCodec.
func (c codec) DecodeItems(blob []byte, n int) ([]rtree.LeafEntry[object.Object], error) {
	if len(blob) != n*4 {
		return nil, c.corrupt("items column is %d bytes, want %d", len(blob), n*4)
	}
	entries := make([]rtree.LeafEntry[object.Object], n)
	for i := 0; i < n; i++ {
		id := object.ID(binary.LittleEndian.Uint32(blob[i*4:]))
		if int(id) >= c.coll.Len() {
			return nil, c.corrupt("entry %d references object %d outside collection of %d", i, id, c.coll.Len())
		}
		if !c.coll.Alive(id) {
			return nil, c.corrupt("entry %d references dead object %d", i, id)
		}
		o := c.coll.Get(id)
		entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
	}
	return entries, nil
}

// AppendAugs implements rtree.ArenaCodec.
func (codec) AppendAugs(dst []byte, augs []Aug) []byte {
	var b [8]byte
	for i := range augs {
		binary.LittleEndian.PutUint32(b[:4], uint32(len(augs[i].Postings)))
		dst = append(dst, b[:4]...)
	}
	for i := range augs {
		for _, p := range augs[i].Postings {
			binary.LittleEndian.PutUint32(b[:4], uint32(p.K))
			dst = append(dst, b[:4]...)
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.W))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// DecodeAugs implements rtree.ArenaCodec.
func (c codec) DecodeAugs(blob []byte, nodes int) ([]Aug, error) {
	table := nodes * 4
	if len(blob) < table {
		return nil, c.corrupt("aug column is %d bytes, table alone needs %d", len(blob), table)
	}
	if (len(blob)-table)%12 != 0 {
		return nil, c.corrupt("posting slab length %d is not a multiple of 12", len(blob)-table)
	}
	total := (len(blob) - table) / 12
	augs := make([]Aug, nodes)
	off := 0
	pos := table
	for i := 0; i < nodes; i++ {
		n := int(binary.LittleEndian.Uint32(blob[i*4:]))
		if n < 0 || off+n > total {
			return nil, c.corrupt("node %d posting range overruns slab", i)
		}
		ps := make([]Posting, n)
		for j := range ps {
			k := binary.LittleEndian.Uint32(blob[pos:])
			w := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos+4:]))
			if int(k) >= c.vocabLen {
				return nil, c.corrupt("node %d keyword %d outside embedded vocabulary of %d", i, k, c.vocabLen)
			}
			if j > 0 && ps[j-1].K >= vocab.Keyword(k) {
				return nil, c.corrupt("node %d postings not strictly sorted at index %d", i, j)
			}
			if math.IsNaN(w) || w < 0 {
				return nil, c.corrupt("node %d posting weight %v for keyword %d", i, w, k)
			}
			ps[j] = Posting{K: vocab.Keyword(k), W: w}
			pos += 12
		}
		off += n
		augs[i] = Aug{Postings: ps}
	}
	if off != total {
		return nil, c.corrupt("posting slab has %d unused postings", total-off)
	}
	return augs, nil
}

// SaveArena serializes the currently published arena in the on-disk
// format; see settree.Index.SaveArena.
func (ix *Index) SaveArena(lsn uint64, vocabWords []string) []byte {
	return ix.pub.Flat().AppendArena(nil, codec{coll: ix.coll},
		rtree.ArenaMeta{LSN: lsn, MaxDist: ix.coll.MaxDist(), Vocab: vocabWords})
}

// LoadArena builds an Index serving the loaded arena without a tree
// rebuild. The text model is recomputed from the collection (it is a
// deterministic function of it, so the persisted posting weights match
// exactly); maxEntries is the fanout of the thaw tree and of later
// epoch rebuilds. See settree.LoadArena for the rest of the contract.
func LoadArena(raw *rtree.RawArena, c *object.Collection, maxEntries int) (*Index, error) {
	model := newTextModel(c.View(), len(raw.Vocab()))
	f, err := rtree.BuildFlat[object.Object, Aug](raw, codec{coll: c, vocabLen: len(raw.Vocab())})
	if err != nil {
		return nil, err
	}
	ix := &Index{coll: c, sigs: raw.HasSigs(), fanout: maxEntries}
	ix.pub = rtree.NewMappedPublisher(f, ix.wrapWith(model), func(ff *rtree.Flat[object.Object, Aug]) *rtree.Tree[object.Object, Aug] {
		t := rtree.New[object.Object, Aug](augmenter{model: ix.Model()}, maxEntries)
		t.SetFreezeSigs(ix.sigs)
		// BulkLoad sorts in place; the mapped flat keeps serving its
		// entry slice, so thaw from a copy.
		t.BulkLoad(append([]rtree.LeafEntry[object.Object](nil), ff.AllEntries()...))
		return t
	})
	return ix, nil
}

// Mapped reports whether the index is still serving a mapped arena.
func (ix *Index) Mapped() bool { return ix.pub.Mapped() }
