package irtree

import (
	"errors"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

func lifecycleQueries(ds *dataset.Dataset, n int, seed int64) []score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: seed, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

func TestStaleGuardAndRebuildRefresh(t *testing.T) {
	ds := testDataset(t, 300, 80)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	q := lifecycleQueries(ds, 1, 81)[0]
	if _, err := ix.TopK(q); err != nil {
		t.Fatalf("query before mutation: %v", err)
	}

	o := ds.Objects.Get(0)
	ix.Tree().Delete(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })

	if _, err := ix.TopK(q); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("TopK after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}

	// Refresh rebuilds from the collection: the direct tree edit is
	// discarded and the index matches the (unchanged) collection again.
	ix.Refresh()
	res, err := ix.TopK(q)
	if err != nil {
		t.Fatalf("query after Refresh: %v", err)
	}
	want := ix.ScanTopK(q)
	for i := range want {
		if res[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("rank %d: index %d, scan %d", i, res[i].Obj.ID, want[i].Obj.ID)
		}
	}
}

// TestRefreshCoversCollectionMutations: after appending and tombstoning
// collection objects, Refresh rebuilds model and tree so the index
// matches the scan oracle over the live set.
func TestRefreshCoversCollectionMutations(t *testing.T) {
	ds := testDataset(t, 200, 82)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	q := lifecycleQueries(ds, 1, 83)[0]

	id := ds.Objects.Append(object.Object{Loc: q.Loc, Doc: q.Doc})
	ds.Objects.Tombstone(0)
	ix.Refresh()

	res, err := ix.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.ScanTopK(q)
	if len(res) != len(want) {
		t.Fatalf("index %d results, scan %d", len(res), len(want))
	}
	for i := range want {
		if res[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("rank %d: index %d, scan %d", i, res[i].Obj.ID, want[i].Obj.ID)
		}
	}
	if res[0].Obj.ID != id {
		t.Fatalf("inserted object at the query point ranks %d first-ID, want %d", res[0].Obj.ID, id)
	}
	for _, r := range res {
		if r.Obj.ID == 0 {
			t.Fatal("tombstoned object 0 still in results after Refresh")
		}
	}
}

// TestScanTopKSurvivesAppendBeforeRefresh: an appended object whose ID
// is past the text model's norms array must weigh 0 (Refresh pending),
// not panic the collection-scan paths.
func TestScanTopKSurvivesAppendBeforeRefresh(t *testing.T) {
	ds := testDataset(t, 100, 84)
	ix := Build(ds.Objects, ds.Vocab.Len(), 16)
	q := lifecycleQueries(ds, 1, 85)[0]

	ds.Objects.Append(object.Object{Loc: q.Loc, Doc: q.Doc})
	res := ix.ScanTopK(q) // must not panic on the model-unknown object
	if len(res) == 0 {
		t.Fatal("empty scan result")
	}
	// After Refresh the new object is modeled and ranked normally.
	ix.Refresh()
	res2, err := ix.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2[0].Obj.ID != object.ID(100) {
		t.Fatalf("appended object not ranked first after Refresh (got %d)", res2[0].Obj.ID)
	}
}
