package shard

import (
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

// fanOut runs f(0..n-1) concurrently and waits for all of them — the
// little parallel loop behind per-shard builds, refreshes, and the
// scatter phase of single-query top-k.
func fanOut(n int, f func(int)) {
	if n == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// Family is one index family sharded over a Map: S index.Providers,
// one per partition, built and refreshed independently (and in
// parallel). It stays generic over families by construction — the
// Builder is the only family-specific input — which is what the
// no-type-switching contract of the engine demands.
type Family struct {
	m         *Map
	providers []index.Provider
	// lifecycle guards cross-shard snapshot consistency: Refresh holds
	// the write side while it swaps every partition's arena and the
	// normalization constant, and Acquire assembles its view under the
	// read side — so a view can never pair a pre-refresh shard with a
	// post-refresh one, or old arenas with a new constant. Mutations
	// never take it (they buffer against the trees without swapping
	// arenas), and readers only wait while a refresh is publishing.
	lifecycle sync.RWMutex
	// maxDist is the SDist normalization constant (global data-space
	// diagonal) captured at the last Refresh, guarded by lifecycle.
	// Pinning it per refresh keeps sharded scores deterministic while
	// mutations are buffered, matching the snapshot-scoped constant of
	// the single-index arenas.
	maxDist float64
	// epoch is the family-level epoch identity, drawn from the shared
	// rtree counter under the lifecycle write lock at construction and at
	// every Refresh. It identifies the (per-shard arenas, maxDist) set as
	// one published state — rebuilds (rebalance, recovery) construct new
	// families and therefore new epochs.
	epoch uint64
}

// NewFamily builds one provider per partition of the map, in parallel.
func NewFamily(m *Map, build index.Builder) *Family {
	fa := &Family{
		m:         m,
		providers: make([]index.Provider, m.Shards()),
		maxDist:   m.Global().MaxDist(),
	}
	fanOut(m.Shards(), func(t int) {
		fa.providers[t] = build(m.Part(t).Collection())
	})
	fa.epoch = rtree.NextEpoch()
	return fa
}

// Map returns the partition map the family is sharded over.
func (fa *Family) Map() *Map { return fa.m }

// Providers returns the per-shard providers, indexed by shard.
func (fa *Family) Providers() []index.Provider { return fa.providers }

// InsertAt adds a shard-local object (as returned by Map.Append) to
// shard t's index through its managed mutation path.
func (fa *Family) InsertAt(t int, local object.Object) { fa.providers[t].Insert(local) }

// RemoveAt deletes a shard-local object from shard t's index.
func (fa *Family) RemoveAt(t int, local object.Object) bool { return fa.providers[t].Remove(local) }

// Refresh re-freezes every partition's arena in parallel and recaptures
// the normalization constant from the global collection, publishing the
// whole family epoch under the lifecycle write lock so concurrent
// acquisitions see either the old epoch or the new one, never a mix.
func (fa *Family) Refresh() {
	fa.lifecycle.Lock()
	defer fa.lifecycle.Unlock()
	fanOut(len(fa.providers), func(t int) { fa.providers[t].Refresh() })
	fa.maxDist = fa.m.Global().MaxDist()
	fa.epoch = rtree.NextEpoch()
}

// MaxDist returns the normalization constant captured at the last
// refresh.
func (fa *Family) MaxDist() float64 {
	fa.lifecycle.RLock()
	defer fa.lifecycle.RUnlock()
	return fa.maxDist
}

// Acquire returns a scatter-gather View over one checked snapshot per
// partition. It runs under the family's lifecycle read lock, so the
// view is one consistent epoch: every partition's arena and the
// normalization constant were published by the same refresh.
func (fa *Family) Acquire() (*View, error) {
	fa.lifecycle.RLock()
	defer fa.lifecycle.RUnlock()
	v := &View{
		fa:      fa,
		snaps:   make([]index.Snapshot, len(fa.providers)),
		globals: make([][]object.ID, len(fa.providers)),
		maxDist: fa.maxDist,
		epoch:   fa.epoch,
	}
	for t, p := range fa.providers {
		sn, err := p.Acquire()
		if err != nil {
			return nil, err
		}
		v.snaps[t] = sn
		// Capture the ID table after the snapshot: every local ID the
		// arena holds is covered by a table at least as long.
		v.globals[t] = fa.m.Part(t).Globals()
	}
	return v, nil
}

// AcquireSnapshot is Acquire typed as the shared contract; Family
// implements the acquisition half of index.Provider.
func (fa *Family) AcquireSnapshot() (index.Snapshot, error) {
	v, err := fa.Acquire()
	if err != nil {
		return nil, err
	}
	return v, nil
}

// View is one consistent scatter-gather snapshot over every partition
// of a Family. It implements index.Snapshot in global ID space: results
// and references are global, and each primitive decomposes into
// per-shard calls whose tie-breaks are translated through the ID
// tables captured at acquisition.
type View struct {
	fa      *Family
	snaps   []index.Snapshot
	globals [][]object.ID
	maxDist float64
	epoch   uint64
}

// MaxDist implements index.Snapshot: the normalization constant the
// family captured at its last refresh.
func (v *View) MaxDist() float64 { return v.maxDist }

// Epoch implements index.Snapshot: the family-level epoch captured at
// acquisition. Equal epochs mean identical per-shard arenas and
// normalization constant, so answers computed against one view are
// valid for any view carrying the same epoch.
func (v *View) Epoch() uint64 { return v.epoch }

// Scorer returns a scorer for q pinned to the view's constant.
func (v *View) Scorer(q score.Query) score.Scorer {
	return score.Scorer{Query: q, MaxDist: v.maxDist}
}

// Parts implements index.Snapshot: one partition per shard.
func (v *View) Parts() int { return len(v.snaps) }

// Snap returns partition t's underlying snapshot (local ID space);
// tests and stats use it, query code goes through the global-space
// methods.
func (v *View) Snap(t int) index.Snapshot { return v.snaps[t] }

// toGlobal rewrites one shard-local result to global ID space. Only the
// ID differs: the local collection stores the same location, document,
// and name.
func (v *View) toGlobal(t int, r score.Result) score.Result {
	r.Obj.ID = v.globals[t][r.Obj.ID]
	return r
}

// TopKPart implements index.Snapshot: the top k of partition t under
// scorer s, in global ID space. Within a shard local ID order equals
// global ID order, so the local (score, ID) selection picks exactly the
// objects a global tie-break would, and the per-partition lists merge
// exactly via index.MergeTopK.
func (v *View) TopKPart(cc index.Cancel, t int, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	base := len(dst)
	dst = v.snaps[t].TopK(cc, s, k, shared, dst)
	for i := base; i < len(dst); i++ {
		dst[i] = v.toGlobal(t, dst[i])
	}
	return dst
}

// TopK implements index.Snapshot: scatter the query across all
// partitions in parallel — a shared k-th-best bound lets lagging shards
// prune against the best score any shard has proven — and gather with
// an exact k-merge. Results are byte-identical to a single-arena search
// over the whole collection. The cancellation token is shared by every
// scatter goroutine — they all poll the same done channel — so one
// expired deadline stops every sibling shard within CheckInterval node
// visits instead of letting the fastest shards run to completion.
func (v *View) TopK(cc index.Cancel, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	if len(v.snaps) == 1 {
		return v.TopKPart(cc, 0, s, k, shared, dst)
	}
	if shared == nil {
		shared = &index.Bound{}
	}
	parts := make([][]score.Result, len(v.snaps))
	fanOut(len(v.snaps), func(t int) {
		parts[t] = v.TopKPart(cc, t, s, k, shared, nil)
	})
	return index.MergeTopK(parts, k, dst)
}

// CountBetter implements index.Snapshot: the global strict-dominance
// count is the sum of per-shard counts, with the global tie ID
// translated into each shard's local threshold (the number of its
// objects appended before the reference). The per-shard counts are
// independent, so they scatter across shards like TopK does — the
// rank-dominated why-not paths scale with cores too.
func (v *View) CountBetter(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID) int {
	if len(v.snaps) == 1 {
		return v.snaps[0].CountBetter(cc, s, refScore, thresholdIn(v.globals[0], tie))
	}
	parts := make([]int, len(v.snaps))
	fanOut(len(v.snaps), func(t int) {
		parts[t] = v.snaps[t].CountBetter(cc, s, refScore, thresholdIn(v.globals[t], tie))
	})
	total := 0
	for _, n := range parts {
		total += n
	}
	return total
}

// RankBounds implements index.Snapshot: per-shard bounds sum into
// global bounds, scattered like CountBetter.
func (v *View) RankBounds(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID, maxDepth int) (lo, hi int) {
	if len(v.snaps) == 1 {
		return v.snaps[0].RankBounds(cc, s, refScore, thresholdIn(v.globals[0], tie), maxDepth)
	}
	los := make([]int, len(v.snaps))
	his := make([]int, len(v.snaps))
	fanOut(len(v.snaps), func(t int) {
		los[t], his[t] = v.snaps[t].RankBounds(cc, s, refScore, thresholdIn(v.globals[t], tie), maxDepth)
	})
	for t := range los {
		lo += los[t]
		hi += his[t]
	}
	return lo, hi
}

// ForEachCross implements index.Snapshot: each shard reports its own
// crossing candidates — visited objects are rewritten to global IDs
// before the callback — and wholesale strictly-above counts pass
// through; the union of the per-shard reports is exactly the global
// candidate set, since every object lives in one shard. Shards run
// sequentially: the callbacks mutate caller state (event lists, rank
// counters) and the contract does not require them to be thread-safe.
func (v *View) ForEachCross(cc index.Cancel, s score.Scorer, m0, m1 float64, visit func(object.Object), above func(int)) {
	for t, sn := range v.snaps {
		if cc.Canceled() {
			return
		}
		globals := v.globals[t]
		sn.ForEachCross(cc, s, m0, m1, func(o object.Object) {
			o.ID = globals[o.ID]
			visit(o)
		}, above)
	}
}

// groupState is one immutable (Map, families) pairing: the unit the
// online rebalancer replaces wholesale, so readers always see families
// built over the map they are paired with.
type groupState struct {
	m        *Map
	families []*Family
}

// Group couples one Map with the index families built over its parts —
// the engine's sharded backend. Mutations route through the Map once
// (one global ID assignment, one shard decision) and fan out to every
// family; Refresh re-freezes every family in parallel.
//
// The (map, families) pair lives behind one atomic pointer so the
// online rebalancer can replace the whole partition — a new Map split
// by the group's Splitter plus freshly built families — in a single
// publication. Mutations must be serialized by the caller (the engine's
// mutation mutex), which also orders them against rebalances; query
// paths read the current state lock-free.
type Group struct {
	global     *object.Collection
	splitter   Splitter
	builders   []index.Builder
	state      atomic.Pointer[groupState]
	rebalances atomic.Int64
}

// NewGroup partitions the collection with the splitter (nil selects
// GridSplitter) and builds every family over the parts.
func NewGroup(global *object.Collection, shards int, sp Splitter, builders []index.Builder) *Group {
	if sp == nil {
		sp = GridSplitter{}
	}
	g := &Group{global: global, splitter: sp, builders: builders}
	g.state.Store(buildGroupState(global, shards, sp, builders))
	return g
}

// buildGroupState splits the collection and builds one family per
// builder over the new parts — the shared construction path of NewGroup
// and PrepareRebalance.
func buildGroupState(global *object.Collection, shards int, sp Splitter, builders []index.Builder) *groupState {
	m := NewMapWith(global, shards, sp)
	st := &groupState{m: m, families: make([]*Family, len(builders))}
	for i, b := range builders {
		st.families[i] = NewFamily(m, b)
	}
	return st
}

// Map returns the current partition map.
func (g *Group) Map() *Map { return g.state.Load().m }

// Family returns the i-th family, in builder order.
func (g *Group) Family(i int) *Family { return g.state.Load().families[i] }

// State returns the current map and families as one consistent pair —
// readers that correlate per-shard rows across families (stats, the
// batch scheduler) use it so a concurrent rebalance cannot tear the
// pairing.
func (g *Group) State() (*Map, []*Family) {
	st := g.state.Load()
	return st.m, st.families
}

// Splitter returns the partitioning strategy rebalances re-split with.
func (g *Group) Splitter() Splitter { return g.splitter }

// Imbalance returns the current max/mean live-population ratio across
// shards (see Map.ImbalanceFactor).
func (g *Group) Imbalance() float64 { return g.Map().ImbalanceFactor() }

// Rebalances returns how many rebalances have been published.
func (g *Group) Rebalances() int64 { return g.rebalances.Load() }

// Insert routes the object into its shard and inserts it into every
// family's index there, returning the assigned global ID. The object
// becomes visible at the next Refresh.
func (g *Group) Insert(o object.Object) object.ID {
	st := g.state.Load()
	gid, t, local := st.m.Append(o)
	for _, fa := range st.families {
		fa.InsertAt(t, local)
	}
	return gid
}

// Remove tombstones the global ID and deletes it from every family's
// index in its shard, reporting whether it was live.
func (g *Group) Remove(gid object.ID) bool {
	st := g.state.Load()
	t, local, ok := st.m.Tombstone(gid)
	if !ok {
		return false
	}
	for _, fa := range st.families {
		fa.RemoveAt(t, local)
	}
	return true
}

// Refresh re-freezes every family in parallel.
func (g *Group) Refresh() {
	_, families := g.State()
	fanOut(len(families), func(i int) { families[i].Refresh() })
}

// PrepareRebalance re-splits the live collection with the group's
// splitter and rebuilds every family over the new parts, off the query
// path: concurrent queries keep scatter-gathering the old epoch. It
// returns a commit function that publishes the new (map, families)
// pair; the caller runs it under its epoch write lock so no snapshot
// acquisition can pair an old family with a new one.
//
// The caller must hold the mutation lock from before PrepareRebalance
// until commit returns: the new map re-appends every object in global
// ID order (preserving the local-order == global-order invariant), so
// the collection must not move underneath it. A rebalance publishes
// rebuilt arenas of the live collection, so it also makes every
// buffered mutation visible — callers account for it as a refresh.
func (g *Group) PrepareRebalance() (commit func()) {
	next := buildGroupState(g.global, g.Map().Shards(), g.splitter, g.builders)
	return func() {
		g.state.Store(next)
		g.rebalances.Add(1)
	}
}
