package shard

import (
	"context"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

// stallSnap wraps one shard's snapshot and simulates a shard that has
// stopped making progress: every traversal stalls — polling its Cancel
// token like a real traversal polls every CheckInterval node visits —
// until the token trips or the stall budget runs out. It is the chaos
// double for a shard wedged on a slow disk or a scheduling stall.
type stallSnap struct {
	index.Snapshot
	stall time.Duration
}

// wait blocks until cc trips or the stall budget elapses, reporting
// whether the traversal was canceled.
func (s stallSnap) wait(cc index.Cancel) bool {
	deadline := time.Now().Add(s.stall)
	for time.Now().Before(deadline) {
		if cc.Canceled() {
			return true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return false
}

func (s stallSnap) TopK(cc index.Cancel, sc score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	if s.wait(cc) {
		return dst
	}
	return s.Snapshot.TopK(cc, sc, k, shared, dst)
}

func (s stallSnap) CountBetter(cc index.Cancel, sc score.Scorer, refScore float64, tie object.ID) int {
	if s.wait(cc) {
		return 0
	}
	return s.Snapshot.CountBetter(cc, sc, refScore, tie)
}

// TestSlowShardDeadline is the scatter-gather chaos test: one shard of
// a sharded view stalls far past the query deadline, and the deadline
// must still bound the caller's wait — the shared Cancel token trips
// every scatter goroutine, including the stalled one, so TopK and
// CountBetter return within the cancellation latency instead of
// waiting out the slowest shard. An abandoned client (context canceled
// mid-scatter, no deadline) must unblock the same way.
func TestSlowShardDeadline(t *testing.T) {
	ds := testDataset(t, 600, 41)
	q := testQueries(ds, 1, 42, 10, 2)[0]
	fa := NewFamily(NewMap(ds.Objects, 4), settree.Builder(16))
	v, err := fa.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s := v.Scorer(q)

	// Healthy baseline, for the post-chaos equivalence check.
	want := v.TopK(index.NoCancel, s, q.K, nil, nil)
	if len(want) != q.K {
		t.Fatalf("baseline returned %d results, want %d", len(want), q.K)
	}

	// Wedge shard 2 for far longer than any test timeout budget.
	const stall = 30 * time.Second
	healthy := v.snaps[2]
	v.snaps[2] = stallSnap{Snapshot: healthy, stall: stall}
	defer func() { v.snaps[2] = healthy }()

	// Deadline-expired scatter: the caller waits roughly the deadline,
	// not the stall.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	v.TopK(index.CancelOf(ctx), s, q.K, nil, nil)
	if elapsed := time.Since(start); elapsed > stall/10 {
		t.Fatalf("deadline-expired scatter took %v: the stalled shard was not canceled", elapsed)
	}
	if ctx.Err() == nil {
		t.Fatal("scatter returned before the deadline despite the stalled shard")
	}

	// Abandoned client: cancellation arrives mid-scatter from another
	// goroutine, with no deadline at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	start = time.Now()
	v.CountBetter(index.CancelOf(ctx2), s, want[len(want)-1].Score, want[len(want)-1].Obj.ID)
	if elapsed := time.Since(start); elapsed > stall/10 {
		t.Fatalf("abandoned scatter took %v: the stalled shard was not canceled", elapsed)
	}

	// The view recovers completely once the wedged shard is healthy
	// again: byte-identical answers.
	v.snaps[2] = healthy
	got := v.TopK(index.NoCancel, s, q.K, nil, nil)
	if len(got) != len(want) {
		t.Fatalf("post-chaos: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
			t.Fatalf("post-chaos rank %d: got (%d, %v), want (%d, %v)",
				i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
		}
	}
}
