package shard

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/irtree"
	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

func testDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testQueries(ds *dataset.Dataset, n int, seed int64, k, kw int) []score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: seed, K: k, Keywords: kw,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

func TestGridDims(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 7: {1, 7}, 12: {3, 4}}
	for s, want := range cases {
		gx, gy := gridDims(s)
		if gx*gy != s || gx != want[0] || gy != want[1] {
			t.Errorf("gridDims(%d) = %d×%d, want %d×%d", s, gx, gy, want[0], want[1])
		}
	}
}

// TestMapPartition checks the partition invariants: every global ID
// lives in exactly one shard, local IDs are dense and ascend with
// global IDs, and the home table inverts the per-shard tables.
func TestMapPartition(t *testing.T) {
	ds := testDataset(t, 500, 1)
	for _, shards := range []int{1, 2, 4, 7} {
		m := NewMap(ds.Objects, shards)
		seen := 0
		for tIdx := 0; tIdx < m.Shards(); tIdx++ {
			p := m.Part(tIdx)
			globals := p.Globals()
			if p.Collection().Len() != len(globals) {
				t.Fatalf("shards=%d: shard %d has %d objects but %d global entries",
					shards, tIdx, p.Collection().Len(), len(globals))
			}
			for local, gid := range globals {
				seen++
				if local > 0 && globals[local-1] >= gid {
					t.Fatalf("shards=%d: shard %d global IDs not ascending at local %d", shards, tIdx, local)
				}
				ht, hl, ok := m.Home(gid)
				if !ok || ht != tIdx || int(hl) != local {
					t.Fatalf("shards=%d: Home(%d) = (%d,%d,%v), want (%d,%d)", shards, gid, ht, hl, ok, tIdx, local)
				}
				lo := p.Collection().Get(object.ID(local))
				go_ := ds.Objects.Get(gid)
				if lo.Loc != go_.Loc || !lo.Doc.Equal(go_.Doc) {
					t.Fatalf("shards=%d: shard %d local %d does not match global %d", shards, tIdx, local, gid)
				}
			}
		}
		if seen != ds.Objects.Len() {
			t.Fatalf("shards=%d: partition covers %d of %d objects", shards, seen, ds.Objects.Len())
		}
	}
}

// TestMapAppendRouting: appends route deterministically, keep local↔
// global order aligned, and tombstones propagate to the home shard.
func TestMapAppendRouting(t *testing.T) {
	ds := testDataset(t, 200, 2)
	m := NewMap(ds.Objects, 4)
	rng := rand.New(rand.NewSource(3))
	space := ds.Objects.Space()
	for i := 0; i < 100; i++ {
		o := object.Object{
			Loc: ds.Objects.Get(object.ID(rng.Intn(200))).Loc,
			Doc: ds.Objects.Get(object.ID(rng.Intn(200))).Doc,
		}
		// Every third insert lands outside the frozen grid space.
		if i%3 == 0 {
			o.Loc.X = space.Max.X + float64(i)
		}
		gid, tIdx, local := m.Append(o)
		ht, hl, ok := m.Home(gid)
		if !ok || ht != tIdx || hl != local.ID {
			t.Fatalf("Home(%d) inconsistent after append", gid)
		}
		globals := m.Part(tIdx).Globals()
		if globals[local.ID] != gid {
			t.Fatalf("append %d: globals[%d] = %d", gid, local.ID, globals[local.ID])
		}
	}
	// Tombstone a mix of seed and appended objects.
	for _, gid := range []object.ID{0, 42, 199, 210, 250} {
		tIdx, local, ok := m.Tombstone(gid)
		if !ok {
			t.Fatalf("Tombstone(%d) missed", gid)
		}
		if m.Global().Alive(gid) || m.Part(tIdx).Collection().Alive(local.ID) {
			t.Fatalf("Tombstone(%d) left object alive", gid)
		}
	}
	if _, _, ok := m.Tombstone(42); ok {
		t.Fatal("double tombstone succeeded")
	}
}

// TestViewTopKEquivalence: scatter-gather top-k over any shard count is
// byte-identical (IDs and scores) to a single index over the whole
// collection, for both families.
func TestViewTopKEquivalence(t *testing.T) {
	ds := testDataset(t, 800, 4)
	qs := testQueries(ds, 12, 5, 10, 2)
	// All three families, including the IR-tree's contract-exact (if
	// text-blind) implementation — the conformance proof that sharding
	// is genuinely family-generic.
	builders := map[string]index.Builder{
		"settree": settree.Builder(16),
		"kcrtree": kcrtree.Builder(16),
		"irtree":  irtree.Builder(16),
	}
	for name, build := range builders {
		single := build(ds.Objects)
		sn, err := single.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 5, 8} {
			fa := NewFamily(NewMap(ds.Objects, shards), build)
			v, err := fa.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range qs {
				for _, k := range []int{1, 3, 10, 50} {
					s := score.Scorer{Query: q, MaxDist: ds.Objects.MaxDist()}
					want := sn.TopK(index.NoCancel, s, k, nil, nil)
					got := v.TopK(index.NoCancel, s, k, nil, nil)
					if len(got) != len(want) {
						t.Fatalf("%s shards=%d q%d k=%d: %d results, want %d", name, shards, qi, k, len(got), len(want))
					}
					for i := range want {
						if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
							t.Fatalf("%s shards=%d q%d k=%d rank %d: got (%d, %v), want (%d, %v)",
								name, shards, qi, k, i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestViewRankEquivalence: global strict-dominance counts and rank
// bounds decompose exactly across shards.
func TestViewRankEquivalence(t *testing.T) {
	ds := testDataset(t, 600, 6)
	qs := testQueries(ds, 8, 7, 5, 2)
	builders := map[string]index.Builder{
		"settree": settree.Builder(16),
		"kcrtree": kcrtree.Builder(16),
		"irtree":  irtree.Builder(16),
	}
	for name, build := range builders {
		single := build(ds.Objects)
		sn, err := single.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		for _, shards := range []int{2, 4, 7} {
			fa := NewFamily(NewMap(ds.Objects, shards), build)
			v, err := fa.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				s := score.Scorer{Query: q, MaxDist: ds.Objects.MaxDist()}
				for i := 0; i < 10; i++ {
					oid := object.ID(rng.Intn(ds.Objects.Len()))
					o := ds.Objects.Get(oid)
					if got, want := index.RankOf(index.NoCancel, v, s, o), index.RankOf(index.NoCancel, sn, s, o); got != want {
						t.Fatalf("%s shards=%d: rank of %d = %d, want %d", name, shards, oid, got, want)
					}
					if got, want := index.RankOf(index.NoCancel, v, s, o), settree.ScanRank(ds.Objects, s, oid); got != want {
						t.Fatalf("%s shards=%d: rank of %d = %d, scan says %d", name, shards, oid, got, want)
					}
					// Sharded bounds must bracket the exact global count.
					ref := s.Score(o)
					exact := sn.CountBetter(index.NoCancel, s, ref, oid)
					for _, depth := range []int{0, 1, 2, 100} {
						lo, hi := v.RankBounds(index.NoCancel, s, ref, oid, depth)
						if lo > exact || hi < exact {
							t.Fatalf("%s shards=%d depth=%d: bounds [%d,%d] exclude %d", name, shards, depth, lo, hi, exact)
						}
					}
				}
			}
		}
	}
}

// TestViewForEachCrossEquivalence: the union of per-shard crossing
// reports equals the single-index report — every object is either
// visited (with its global ID) or covered by a wholesale-above count,
// exactly once.
func TestViewForEachCrossEquivalence(t *testing.T) {
	ds := testDataset(t, 500, 9)
	q := testQueries(ds, 1, 10, 5, 2)[0]
	s := score.Scorer{Query: q, MaxDist: ds.Objects.MaxDist()}
	build := kcrtree.Builder(16)
	single := build(ds.Objects)
	sn, err := single.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Objects.Get(object.ID(123))
	spatial, textual := s.Components(m)
	m0, m1 := spatial, textual

	count := func(sn index.Snapshot) (visited map[object.ID]bool, above int) {
		visited = map[object.ID]bool{}
		sn.ForEachCross(index.NoCancel, s, m0, m1, func(o object.Object) {
			if visited[o.ID] {
				t.Fatalf("object %d visited twice", o.ID)
			}
			visited[o.ID] = true
		}, func(n int) { above += n })
		return visited, above
	}
	wantVisited, wantAbove := count(sn)
	for _, shards := range []int{2, 4} {
		fa := NewFamily(NewMap(ds.Objects, shards), build)
		v, err := fa.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		gotVisited, gotAbove := count(v)
		// Tree shapes differ, so the visit/wholesale split may differ;
		// the total coverage and the classification of each object must
		// not: every object is in exactly one bucket, and an object
		// visited by both reports carries the same (global) ID.
		if len(gotVisited)+gotAbove != len(wantVisited)+wantAbove {
			t.Fatalf("shards=%d: coverage %d+%d, want %d+%d",
				shards, len(gotVisited), gotAbove, len(wantVisited), wantAbove)
		}
		for id := range gotVisited {
			if int(id) >= ds.Objects.Len() {
				t.Fatalf("shards=%d: visited non-global ID %d", shards, id)
			}
		}
	}
}

// TestGroupMutationStorm is the -race exercise of the sharded path:
// concurrent scatter-gather queries against a Group under an
// insert/remove/refresh storm, with zero failed acquisitions.
func TestGroupMutationStorm(t *testing.T) {
	ds := testDataset(t, 400, 11)
	g := NewGroup(ds.Objects, 4, nil, []index.Builder{settree.Builder(16), kcrtree.Builder(16)})
	qs := testQueries(ds, 8, 12, 5, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				v, err := g.Family(0).Acquire()
				if err != nil {
					t.Errorf("worker %d: acquire: %v", w, err)
					return
				}
				s := v.Scorer(q)
				res := v.TopK(index.NoCancel, s, q.K, nil, nil)
				for j := 1; j < len(res); j++ {
					if score.Better(res[j].Score, res[j].Obj.ID, res[j-1].Score, res[j-1].Obj.ID) {
						t.Errorf("worker %d: results out of order", w)
						return
					}
				}
				kv, err := g.Family(1).Acquire()
				if err != nil {
					t.Errorf("worker %d: kc acquire: %v", w, err)
					return
				}
				if len(res) > 0 {
					_ = kv.CountBetter(index.NoCancel, s, res[0].Score, res[0].Obj.ID)
				}
				_ = rng
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(13))
	inserted := []object.ID{}
	for i := 0; i < 300; i++ {
		switch {
		case i%3 != 0 || len(inserted) == 0:
			o := ds.Objects.Get(object.ID(rng.Intn(400)))
			gid := g.Insert(object.Object{Loc: o.Loc, Doc: o.Doc, Name: "storm"})
			inserted = append(inserted, gid)
		default:
			j := rng.Intn(len(inserted))
			g.Remove(inserted[j])
			inserted = append(inserted[:j], inserted[j+1:]...)
		}
		if i%7 == 0 {
			g.Refresh()
		}
	}
	g.Refresh()
	close(stop)
	wg.Wait()
}
