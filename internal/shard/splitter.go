package shard

import (
	"fmt"
	"sort"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
)

// Partition is a frozen spatial partitioning of the plane into shards:
// the routing half of a Splitter's output. Locate must be total — every
// point of the plane, including locations outside the data space the
// partition was computed from, routes to exactly one shard — and
// deterministic for the Partition's lifetime, which is what keeps the
// home table, the per-shard ID tables, and the local-order ==
// global-order invariant consistent across appends.
type Partition interface {
	// Shards reports how many shards the partition routes into.
	Shards() int
	// Locate returns the shard owning p, in [0, Shards()).
	Locate(p geo.Point) int
}

// Splitter computes a Partition from the collection's current contents.
// It is the pluggable policy half of the shard subsystem: the Map calls
// it once at construction, and the Group's online rebalancer calls it
// again whenever shard populations drift out of balance, so a Splitter
// must be cheap enough to re-run against a live collection.
//
// Implementations must be deterministic: the same collection state and
// shard count always produce the same partition, so two engines applying
// identical mutation sequences stay byte-identical.
type Splitter interface {
	// Name identifies the strategy in configuration and stats ("grid",
	// "str").
	Name() string
	// Split partitions the collection into the given number of shards.
	Split(c *object.Collection, shards int) Partition
}

// SplitterByName maps a configuration string to a Splitter: "" or
// "grid" selects the uniform GridSplitter, "str" the sort-tile-
// recursive STRSplitter with its default sample size.
func SplitterByName(name string) (Splitter, error) {
	switch name {
	case "", "grid":
		return GridSplitter{}, nil
	case "str":
		return STRSplitter{}, nil
	}
	return nil, fmt.Errorf("shard: unknown splitter %q (want grid or str)", name)
}

// GridSplitter cuts the data-space MBR into a uniform gx × gy grid
// (gx·gy = shards, as square as the factorization allows). It ignores
// the data distribution entirely: cheap and perfectly predictable, but
// skewed datasets concentrate most objects in a few cells.
type GridSplitter struct{}

// Name implements Splitter.
func (GridSplitter) Name() string { return "grid" }

// Split implements Splitter.
func (GridSplitter) Split(c *object.Collection, shards int) Partition {
	gx, gy := gridDims(shards)
	return &gridPartition{space: c.Space(), gx: gx, gy: gy}
}

// gridPartition routes by uniform grid cell over a frozen space,
// clamping out-of-space points into the boundary cells.
type gridPartition struct {
	space  geo.Rect
	gx, gy int
}

func (g *gridPartition) Shards() int { return g.gx * g.gy }

func (g *gridPartition) Locate(p geo.Point) int {
	cx := cellOf(p.X, g.space.Min.X, g.space.Max.X, g.gx)
	cy := cellOf(p.Y, g.space.Min.Y, g.space.Max.Y, g.gy)
	return cy*g.gx + cx
}

// cellOf maps v into one of n grid cells over [lo, hi], clamped.
func cellOf(v, lo, hi float64, n int) int {
	if n <= 1 || hi <= lo {
		return 0
	}
	c := int(float64(n) * (v - lo) / (hi - lo))
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// DefaultSTRSample bounds how many live locations STRSplitter sorts when
// no explicit sample size is configured. Equal-count cuts over a sample
// of this size keep every shard within a few percent of the ideal
// population while the split stays O(sample·log sample) even on
// million-object collections.
const DefaultSTRSample = 16384

// STRSplitter sort-tile-recursive-packs a sample of the live collection
// into balanced rectangles: the sample is sorted by X and cut into gx
// vertical slabs of equal count, then each slab is sorted by Y and cut
// into gy cells of equal count. Cut boundaries land on data coordinates,
// so shard populations track the actual distribution — a skewed dataset
// splits its dense regions finely instead of drowning one grid cell.
//
// Routing is total over the plane: a point beyond every cut clamps into
// the nearest boundary slab/cell, so out-of-space inserts always land in
// a valid shard.
type STRSplitter struct {
	// SampleSize bounds how many live locations the splitter sorts;
	// zero selects DefaultSTRSample. Collections at or below the bound
	// are split exactly.
	SampleSize int
}

// Name implements Splitter.
func (STRSplitter) Name() string { return "str" }

// Split implements Splitter.
func (s STRSplitter) Split(c *object.Collection, shards int) Partition {
	gx, gy := gridDims(shards)
	limit := s.SampleSize
	if limit <= 0 {
		limit = DefaultSTRSample
	}
	pts := sampleLive(c.View(), limit)
	if len(pts) == 0 {
		// Nothing live to learn a layout from; the grid over the frozen
		// space is the only deterministic choice left.
		return GridSplitter{}.Split(c, shards)
	}
	// Sort by (X, Y): the secondary key makes the slab boundaries
	// deterministic under duplicate X coordinates.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	p := &strPartition{gy: gy, xCuts: make([]float64, 0, gx-1), yCuts: make([][]float64, gx)}
	for i := 1; i < gx; i++ {
		p.xCuts = append(p.xCuts, pts[i*len(pts)/gx].X)
	}
	for j := 0; j < gx; j++ {
		slab := pts[j*len(pts)/gx : (j+1)*len(pts)/gx]
		ys := make([]float64, len(slab))
		for i, pt := range slab {
			ys[i] = pt.Y
		}
		sort.Float64s(ys)
		cuts := make([]float64, 0, gy-1)
		for i := 1; i < gy; i++ {
			if len(ys) == 0 {
				break
			}
			cuts = append(cuts, ys[i*len(ys)/gy])
		}
		p.yCuts[j] = cuts
	}
	return p
}

// sampleLive collects up to limit live locations by deterministic
// striding over the collection in ID order.
func sampleLive(v object.View, limit int) []geo.Point {
	stride := 1
	if live := v.LiveLen(); live > limit {
		stride = (live + limit - 1) / limit
	}
	pts := make([]geo.Point, 0, limit)
	n := 0
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		if n%stride == 0 {
			pts = append(pts, o.Loc)
		}
		n++
	}
	return pts
}

// strPartition routes by binary search over the STR cut coordinates: the
// X cuts pick the vertical slab, the slab's Y cuts pick the cell. A
// value equal to a cut belongs to the upper run, and values beyond every
// cut fall into the last run, which is what clamps out-of-space points.
type strPartition struct {
	xCuts []float64   // gx-1 slab boundaries, ascending
	yCuts [][]float64 // per slab: gy-1 cell boundaries, ascending
	gy    int
}

func (p *strPartition) Shards() int { return (len(p.xCuts) + 1) * p.gy }

func (p *strPartition) Locate(pt geo.Point) int {
	sx := upperBound(p.xCuts, pt.X)
	sy := upperBound(p.yCuts[sx], pt.Y)
	return sx*p.gy + sy
}

// upperBound returns the number of cuts ≤ v — the run index of v in a
// layout where each cut is the first value of the run above it.
func upperBound(cuts []float64, v float64) int {
	return sort.Search(len(cuts), func(i int) bool { return v < cuts[i] })
}
