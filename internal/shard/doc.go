// Package shard partitions a collection into S spatial shards and runs
// per-shard index builds, refreshes, and queries independently — the
// layer that lets the engine scale with cores (and, later, machines)
// without the index families knowing they are sharded.
//
// The subsystem is generic over index families: a Family stacks S
// index.Providers (one per partition, built by an index.Builder) behind
// a single scatter-gather View that itself implements index.Snapshot,
// so every query algorithm written against the shared contract runs
// unchanged over one arena or over S of them.
//
// Identity model: each shard owns a local object.Collection with dense
// local IDs; the Map records local↔global translations. Objects are
// assigned to shards in global ID order and appends route through the
// Map, so within any shard, local ID order equals global ID order —
// the invariant that makes per-shard tie-breaks compose into the exact
// global (score, ID) ranking: a global rank is the sum of per-shard
// strict-dominance counts against per-shard tie thresholds, and a
// global top-k is the k-merge of per-shard top-k lists.
//
// Partitioning is pluggable (Splitter: uniform grid or STR sample
// packing) and rebalancing is online: a rebalance builds the new
// (Map, families) pair off the query path and publishes it behind one
// atomic pointer, with answers property-tested byte-identical before,
// during, and after. docs/ARCHITECTURE.md shows where the layer sits
// in the request path.
package shard
