// The Map: shard assignment, local↔global ID translation, and the
// splitter-driven partition bounds. Package overview in doc.go.

package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
)

// homeRef locates one global ID inside the partition: its shard and its
// dense local ID there.
type homeRef struct {
	shard int32
	local object.ID
}

// Part is one spatial partition: a shard-local collection (dense local
// IDs) plus the append-ordered local→global ID table.
type Part struct {
	coll *object.Collection
	// globals maps local ID → global ID. Appends publish a new slice
	// header atomically (copy-on-write growth like object.Collection),
	// so query paths read it lock-free; entries are ascending because
	// appends arrive in global ID order.
	globals atomic.Pointer[[]object.ID]
}

// Collection returns the shard-local collection the partition's indexes
// are built over.
func (p *Part) Collection() *object.Collection { return p.coll }

// Globals returns the current local→global ID table. Callers must not
// mutate it.
func (p *Part) Globals() []object.ID { return *p.globals.Load() }

// Map partitions one global collection into S spatial shards over a
// Partition frozen at construction: a Splitter computes the layout once
// — a uniform grid, or STR-packed rectangles tracking the data
// distribution — and the partition never moves for the Map's lifetime,
// so routing is deterministic: a later insert outside the original
// space still lands in a fixed shard (the partition clamps it into a
// boundary cell). Re-splitting is a whole-Map replacement, performed by
// the Group's online rebalancer.
//
// Readers (query paths) are never blocked: the ID tables are
// copy-on-write. Writers serialize on the Map's mutex.
type Map struct {
	global *object.Collection
	part   Partition

	mu    sync.Mutex
	parts []*Part
	home  atomic.Pointer[[]homeRef]
}

// gridDims factors s into the most square gx × gy = s grid (gx ≤ gy).
func gridDims(s int) (gx, gy int) {
	gx = 1
	for d := int(math.Sqrt(float64(s))); d >= 1; d-- {
		if s%d == 0 {
			gx = d
			break
		}
	}
	return gx, s / gx
}

// NewMap partitions the global collection into shards spatial parts
// over the default uniform grid.
// It panics for shards < 1 — shard counts are configuration, not data.
func NewMap(global *object.Collection, shards int) *Map {
	return NewMapWith(global, shards, GridSplitter{})
}

// NewMapWith partitions the global collection into shards spatial parts
// with the given splitter (nil selects GridSplitter). The caller must
// not mutate the collection concurrently with construction — engine
// construction and the rebalancer both hold the mutation lock.
func NewMapWith(global *object.Collection, shards int, sp Splitter) *Map {
	if shards < 1 {
		panic(fmt.Sprintf("shard: shard count %d < 1", shards))
	}
	if sp == nil {
		sp = GridSplitter{}
	}
	m := &Map{global: global, part: sp.Split(global, shards)}

	v := global.View()
	buckets := make([][]object.Object, shards)
	home := make([]homeRef, v.Len())
	globals := make([][]object.ID, shards)
	// Assign in global ID order so each shard's local IDs ascend with
	// global IDs — the tie-break invariant everything above relies on.
	for _, o := range v.All() {
		t := m.shardOf(o.Loc)
		local := object.ID(len(buckets[t]))
		home[o.ID] = homeRef{shard: int32(t), local: local}
		globals[t] = append(globals[t], o.ID)
		lo := o
		lo.ID = local
		buckets[t] = append(buckets[t], lo)
	}
	m.parts = make([]*Part, shards)
	for t := range m.parts {
		p := &Part{coll: object.NewCollection(buckets[t])}
		g := globals[t]
		p.globals.Store(&g)
		// Carry tombstones over so a Map built over a mutated collection
		// serves the same live set.
		for local, gid := range g {
			if !v.Alive(gid) {
				p.coll.Tombstone(object.ID(local))
			}
		}
		m.parts[t] = p
	}
	m.home.Store(&home)
	return m
}

// shardOf returns the shard owning a location, clamping out-of-space
// points into the frozen partition.
func (m *Map) shardOf(p geo.Point) int {
	return m.part.Locate(p)
}

// Shards returns the number of partitions.
func (m *Map) Shards() int { return len(m.parts) }

// Partition returns the frozen routing partition.
func (m *Map) Partition() Partition { return m.part }

// LiveCounts returns the number of live (non-tombstoned) objects per
// shard — the balance signal the online rebalancer and the stats
// endpoint read.
func (m *Map) LiveCounts() []int {
	counts := make([]int, len(m.parts))
	for t, p := range m.parts {
		counts[t] = p.coll.LiveLen()
	}
	return counts
}

// ImbalanceFactor returns the ratio of the most populated shard's live
// count to the mean live count: 1.0 is perfectly balanced, Shards()
// means every object lives in one shard. It returns 0 for an empty map,
// so the zero value never trips a rebalance threshold.
func (m *Map) ImbalanceFactor() float64 {
	total, max := 0, 0
	for _, c := range m.LiveCounts() {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(m.parts)) / float64(total)
}

// Part returns partition t.
func (m *Map) Part(t int) *Part { return m.parts[t] }

// Global returns the global collection the map partitions.
func (m *Map) Global() *object.Collection { return m.global }

// Home returns the shard and local ID of a global ID.
func (m *Map) Home(gid object.ID) (shard int, local object.ID, ok bool) {
	home := *m.home.Load()
	if int(gid) >= len(home) {
		return 0, 0, false
	}
	h := home[gid]
	return int(h.shard), h.local, true
}

// Append adds the object to the global collection (assigning the next
// dense global ID) and routes it into its shard's local collection. It
// returns the global ID, the owning shard, and the object as stored
// locally (local ID). Writers serialize; concurrent readers keep
// working against the previous tables.
func (m *Map) Append(o object.Object) (gid object.ID, shard int, local object.Object) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gid = m.global.Append(o)
	o = m.global.Get(gid)
	t := m.shardOf(o.Loc)
	p := m.parts[t]
	local = o
	local.ID = p.coll.Append(local) // local collection overwrites the ID

	g := append(*p.globals.Load(), gid)
	p.globals.Store(&g)
	home := append(*m.home.Load(), homeRef{shard: int32(t), local: local.ID})
	m.home.Store(&home)
	return gid, t, local
}

// Tombstone marks the global ID removed in both the global and its
// shard-local collection, returning the owning shard and the local
// object so callers can delete it from the per-shard indexes.
func (m *Map) Tombstone(gid object.ID) (shard int, local object.Object, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, lid, found := m.Home(gid)
	if !found || !m.global.Tombstone(gid) {
		return 0, object.Object{}, false
	}
	m.parts[t].coll.Tombstone(lid)
	return t, m.parts[t].coll.Get(lid), true
}

// thresholdIn returns the tie-break threshold of a global reference ID
// within one shard's local ID space: the number of locals whose global
// ID is below gid. Because local order equals global order within a
// shard, a local object dominates the global reference on an exact
// score tie iff its local ID is below this threshold.
func thresholdIn(globals []object.ID, gid object.ID) object.ID {
	i := sort.Search(len(globals), func(i int) bool { return globals[i] >= gid })
	return object.ID(i)
}
