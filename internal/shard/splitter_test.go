package shard

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

// skewedTestDataset generates the skew regime the STR splitter exists
// for: a few very tight Gaussian clusters, so a uniform grid leaves
// most cells nearly empty.
func skewedTestDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig(n, seed)
	cfg.Clusters = 3
	cfg.ClusterStd = 0.01
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func minMaxLive(counts []int) (min, max int) {
	min, max = counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max
}

func TestSplitterByName(t *testing.T) {
	for name, want := range map[string]string{"": "grid", "grid": "grid", "str": "str"} {
		sp, err := SplitterByName(name)
		if err != nil || sp.Name() != want {
			t.Fatalf("SplitterByName(%q) = %v, %v; want %s", name, sp, err, want)
		}
	}
	if _, err := SplitterByName("hilbert"); err == nil {
		t.Fatal("unknown splitter accepted")
	}
}

// TestSTRBalanceOnSkew is the acceptance property of the STR splitter:
// on a skewed (tightly clustered) dataset, STR shard populations stay
// within a 2× max/min ratio while the fixed grid exceeds 5× (typically
// with empty cells).
func TestSTRBalanceOnSkew(t *testing.T) {
	for _, seed := range []int64{71, 72} {
		ds := skewedTestDataset(t, 4000, seed)
		for _, shards := range []int{4, 8} {
			gridMin, gridMax := minMaxLive(NewMap(ds.Objects, shards).LiveCounts())
			strMin, strMax := minMaxLive(NewMapWith(ds.Objects, shards, STRSplitter{}).LiveCounts())

			if strMin == 0 || float64(strMax)/float64(strMin) > 2 {
				t.Errorf("seed=%d shards=%d: STR populations [%d, %d] exceed 2x", seed, shards, strMin, strMax)
			}
			if gridMin > 0 && float64(gridMax)/float64(gridMin) <= 5 {
				t.Errorf("seed=%d shards=%d: grid populations [%d, %d] unexpectedly balanced — dataset not skewed enough for the property",
					seed, shards, gridMin, gridMax)
			}
		}
	}
}

// TestSTRSampledBalance: the stride sample keeps the balance property
// even when the splitter sorts far fewer points than the collection
// holds.
func TestSTRSampledBalance(t *testing.T) {
	ds := skewedTestDataset(t, 4000, 73)
	m := NewMapWith(ds.Objects, 8, STRSplitter{SampleSize: 256})
	min, max := minMaxLive(m.LiveCounts())
	if min == 0 || float64(max)/float64(min) > 2 {
		t.Fatalf("sampled STR populations [%d, %d] exceed 2x", min, max)
	}
}

// TestSTRPartitionInvariants: an STR map upholds the same identity
// invariants as the grid map — full coverage, ascending per-shard
// global IDs, and a home table inverting the shard tables.
func TestSTRPartitionInvariants(t *testing.T) {
	ds := skewedTestDataset(t, 600, 74)
	for _, shards := range []int{1, 2, 6, 8} {
		assertMapInvariants(t, NewMapWith(ds.Objects, shards, STRSplitter{}), ds.Objects, shards)
	}
}

// assertMapInvariants checks the partition identity invariants of any
// map: every global ID lives in exactly one shard, local IDs are dense
// and ascend with global IDs, and Home inverts the per-shard tables.
func assertMapInvariants(t *testing.T, m *Map, global *object.Collection, shards int) {
	t.Helper()
	seen := 0
	for tIdx := 0; tIdx < m.Shards(); tIdx++ {
		p := m.Part(tIdx)
		globals := p.Globals()
		if p.Collection().Len() != len(globals) {
			t.Fatalf("shards=%d: shard %d has %d objects but %d global entries",
				shards, tIdx, p.Collection().Len(), len(globals))
		}
		for local, gid := range globals {
			seen++
			if local > 0 && globals[local-1] >= gid {
				t.Fatalf("shards=%d: shard %d global IDs not ascending at local %d", shards, tIdx, local)
			}
			ht, hl, ok := m.Home(gid)
			if !ok || ht != tIdx || int(hl) != local {
				t.Fatalf("shards=%d: Home(%d) = (%d,%d,%v), want (%d,%d)", shards, gid, ht, hl, ok, tIdx, local)
			}
			if p.Collection().Alive(object.ID(local)) != global.Alive(gid) {
				t.Fatalf("shards=%d: liveness of %d diverges from global", shards, gid)
			}
		}
	}
	if seen != global.Len() {
		t.Fatalf("shards=%d: partition covers %d of %d objects", shards, seen, global.Len())
	}
}

// TestSTROutOfSpaceClamp: inserts far outside the space the STR cuts
// were computed from clamp into a valid boundary shard, and the routing
// stays consistent with the home table.
func TestSTROutOfSpaceClamp(t *testing.T) {
	ds := skewedTestDataset(t, 300, 75)
	m := NewMapWith(ds.Objects, 6, STRSplitter{})
	space := ds.Objects.Space()
	outliers := []geo.Point{
		{X: space.Max.X + 1e6, Y: space.Max.Y + 1e6},
		{X: space.Min.X - 1e6, Y: space.Min.Y - 1e6},
		{X: space.Min.X - 42, Y: space.Max.Y + 42},
		{X: -1e18, Y: 1e18},
	}
	doc := ds.Objects.Get(0).Doc
	for i, loc := range outliers {
		if got := m.Partition().Locate(loc); got < 0 || got >= m.Shards() {
			t.Fatalf("outlier %d: Locate = %d, outside [0, %d)", i, got, m.Shards())
		}
		gid, tIdx, local := m.Append(object.Object{Loc: loc, Doc: doc, Name: "outlier"})
		ht, hl, ok := m.Home(gid)
		if !ok || ht != tIdx || hl != local.ID {
			t.Fatalf("outlier %d: Home(%d) = (%d,%d,%v), want (%d,%d)", i, gid, ht, hl, ok, tIdx, local.ID)
		}
		if m.Part(tIdx).Globals()[local.ID] != gid {
			t.Fatalf("outlier %d: shard table does not map local back to %d", i, gid)
		}
		// Routing must stay stable: the same location locates to the
		// same shard after the append.
		if again := m.Partition().Locate(loc); again != tIdx {
			t.Fatalf("outlier %d: routing moved from %d to %d", i, tIdx, again)
		}
	}
	assertMapInvariants(t, m, ds.Objects, 6)
}

// TestSTRTopKEquivalence: scatter-gather answers over an STR partition
// are byte-identical to a single index — the splitter changes layout,
// never results.
func TestSTRTopKEquivalence(t *testing.T) {
	ds := skewedTestDataset(t, 700, 76)
	qs := testQueries(ds, 8, 77, 10, 2)
	for name, build := range map[string]index.Builder{
		"settree": settree.Builder(16),
		"kcrtree": kcrtree.Builder(16),
	} {
		single := build(ds.Objects)
		sn, err := single.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{3, 8} {
			fa := NewFamily(NewMapWith(ds.Objects, shards, STRSplitter{}), build)
			v, err := fa.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range qs {
				for _, k := range []int{1, 10, 40} {
					s := score.Scorer{Query: q, MaxDist: ds.Objects.MaxDist()}
					want := sn.TopK(index.NoCancel, s, k, nil, nil)
					got := v.TopK(index.NoCancel, s, k, nil, nil)
					if len(got) != len(want) {
						t.Fatalf("%s shards=%d q%d k=%d: %d results, want %d", name, shards, qi, k, len(got), len(want))
					}
					for i := range want {
						if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
							t.Fatalf("%s shards=%d q%d k=%d rank %d: got (%d, %v), want (%d, %v)",
								name, shards, qi, k, i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestGroupRebalance: a hotspot bulk load skews an STR group; a
// prepared + committed rebalance restores balance and upholds every
// partition invariant afterwards.
func TestGroupRebalance(t *testing.T) {
	ds := testDataset(t, 500, 78)
	g := NewGroup(ds.Objects, 4, STRSplitter{}, []index.Builder{settree.Builder(16), kcrtree.Builder(16)})

	hot := ds.Objects.Get(0)
	for i := 0; i < 500; i++ {
		loc := hot.Loc
		loc.X += float64(i%89) * 1e-5
		loc.Y += float64(i%89) * 1e-5
		g.Insert(object.Object{Loc: loc, Doc: ds.Objects.Get(object.ID(i)).Doc, Name: "hot"})
	}
	g.Refresh()
	before := g.Imbalance()
	if before < 1.5 {
		t.Fatalf("hotspot storm produced imbalance %.2f — too balanced to exercise the rebalancer", before)
	}

	commit := g.PrepareRebalance()
	commit()
	if got := g.Rebalances(); got != 1 {
		t.Fatalf("Rebalances = %d, want 1", got)
	}
	after := g.Imbalance()
	if after > 1.5 {
		t.Fatalf("rebalance left imbalance at %.2f (was %.2f)", after, before)
	}
	assertMapInvariants(t, g.Map(), ds.Objects, 4)

	// Post-rebalance answers still match a fresh single index.
	single := settree.Builder(16)(ds.Objects)
	sn, err := single.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.Family(0).Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range testQueries(ds, 5, 79, 10, 2) {
		s := score.Scorer{Query: q, MaxDist: ds.Objects.MaxDist()}
		want := sn.TopK(index.NoCancel, s, 10, nil, nil)
		got := v.TopK(index.NoCancel, s, 10, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("post-rebalance: %d results, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
				t.Fatalf("post-rebalance rank %d: got (%d, %v), want (%d, %v)",
					i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
			}
		}
	}
}

// TestGroupRebalanceStorm is the -race exercise of the rebalancer:
// concurrent scatter-gather queries against a Group whose (serialized)
// mutator interleaves inserts, removes, refreshes, and whole-partition
// rebalances. Every acquisition must succeed and stay internally
// consistent.
func TestGroupRebalanceStorm(t *testing.T) {
	ds := skewedTestDataset(t, 400, 80)
	g := NewGroup(ds.Objects, 4, STRSplitter{}, []index.Builder{settree.Builder(16), kcrtree.Builder(16)})
	qs := testQueries(ds, 8, 81, 5, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(i+w)%len(qs)]
				v, err := g.Family(0).Acquire()
				if err != nil {
					t.Errorf("worker %d: acquire: %v", w, err)
					return
				}
				s := v.Scorer(q)
				res := v.TopK(index.NoCancel, s, q.K, nil, nil)
				for j := 1; j < len(res); j++ {
					if score.Better(res[j].Score, res[j].Obj.ID, res[j-1].Score, res[j-1].Obj.ID) {
						t.Errorf("worker %d: results out of order", w)
						return
					}
				}
				if len(res) > 0 {
					_ = v.CountBetter(index.NoCancel, s, res[0].Score, res[0].Obj.ID)
				}
			}
		}(w)
	}

	// One mutator goroutine: Group mutations must be serialized, and
	// serializing them also orders the rebalances (as the engine's
	// mutation mutex does in production).
	rng := rand.New(rand.NewSource(82))
	hot := ds.Objects.Get(7)
	var added []object.ID
	for i := 0; i < 240; i++ {
		switch {
		case i%4 == 3 && len(added) > 0:
			j := rng.Intn(len(added))
			g.Remove(added[j])
			added = append(added[:j], added[j+1:]...)
		default:
			loc := hot.Loc
			loc.X += rng.Float64() * 1e-3
			loc.Y += rng.Float64() * 1e-3
			added = append(added, g.Insert(object.Object{Loc: loc, Doc: ds.Objects.Get(object.ID(rng.Intn(400))).Doc}))
		}
		if i%9 == 0 {
			g.Refresh()
		}
		if i%60 == 59 {
			commit := g.PrepareRebalance()
			commit()
		}
	}
	g.Refresh()
	close(stop)
	wg.Wait()
	if g.Rebalances() == 0 {
		t.Fatal("storm never rebalanced")
	}
	assertMapInvariants(t, g.Map(), ds.Objects, 4)
}
