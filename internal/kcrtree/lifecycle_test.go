package kcrtree

import (
	"errors"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

func lifecycleQueries(ds *dataset.Dataset, n int, seed int64) []score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: seed, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

func TestStaleGuardAfterDirectTreeMutation(t *testing.T) {
	ds := testDataset(t, 300, 70)
	ix := Build(ds.Objects, 16)
	q := lifecycleQueries(ds, 1, 71)[0]
	s := score.NewScorer(q, ds.Objects)
	if _, err := ix.RankOf(s, 3); err != nil {
		t.Fatalf("rank before mutation: %v", err)
	}

	o := ds.Objects.Get(0)
	ix.Tree().Delete(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })

	if _, err := ix.RankOf(s, 3); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("RankOf after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}
	if _, _, err := ix.RankBounds(s, 0.5, 3, 2); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("RankBounds after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}

	ix.Refresh()
	if _, err := ix.RankOf(s, 3); err != nil {
		t.Fatalf("rank after Refresh: %v", err)
	}
}

// TestManagedInsertRanksAfterRefresh: ranks computed over the KcR-tree
// must agree with the scan oracle after a managed insert + refresh.
func TestManagedInsertRanksAfterRefresh(t *testing.T) {
	ds := testDataset(t, 200, 72)
	ix := Build(ds.Objects, 16)
	q := lifecycleQueries(ds, 1, 73)[0]

	id := ds.Objects.Append(object.Object{Loc: q.Loc, Doc: q.Doc})
	ix.Insert(ds.Objects.Get(id))
	ix.Refresh()

	s := score.NewScorer(q, ds.Objects)
	got, err := ix.RankOf(s, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := settree.ScanRank(ds.Objects, s, id); got != want {
		t.Fatalf("inserted object rank %d, scan oracle %d", got, want)
	}
	if got != 1 {
		t.Fatalf("object at the query point with the query doc ranks %d, want 1", got)
	}
}
