package kcrtree

import (
	"path/filepath"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

func saveLoadArena(t *testing.T, ix *Index, ds *dataset.Dataset, maxE int) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arena-kc-0000000000000007.yar")
	if err := rtree.WriteArenaFile(path, ix.SaveArena(7, ds.Vocab.All())); err != nil {
		t.Fatal(err)
	}
	raw, err := rtree.OpenArena(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArena(raw, ds.Objects, maxE)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestArenaRoundTripRanks: the kc-rtree loaded from its arena answers
// the whole rank surface (RankOf, CountBetter) identically to the index
// it was saved from, with and without signatures.
func TestArenaRoundTripRanks(t *testing.T) {
	ds := testDataset(t, 300, 81)
	qs := lifecycleQueries(ds, 6, 82)
	for _, sigs := range []bool{true, false} {
		ix := BuildWith(ds.Objects, 16, sigs)
		loaded := saveLoadArena(t, ix, ds, 16)
		if !loaded.Mapped() {
			t.Fatal("loaded index is not serving the mapped arena")
		}
		for qi, q := range qs {
			s := score.NewScorer(q, ds.Objects)
			for id := 0; id < ds.Objects.Len(); id += 17 {
				oid := object.ID(id)
				wrank, err := ix.RankOf(s, oid)
				if err != nil {
					t.Fatal(err)
				}
				grank, err := loaded.RankOf(s, oid)
				if err != nil {
					t.Fatal(err)
				}
				if wrank != grank {
					t.Fatalf("sigs=%v q%d: RankOf(%d) = %d, want %d", sigs, qi, id, grank, wrank)
				}
				ref := s.Score(ds.Objects.Get(oid))
				wcb, err := ix.CountBetter(s, ref, oid)
				if err != nil {
					t.Fatal(err)
				}
				gcb, err := loaded.CountBetter(s, ref, oid)
				if err != nil {
					t.Fatal(err)
				}
				if wcb != gcb {
					t.Fatalf("sigs=%v q%d: CountBetter(%d) = %d, want %d", sigs, qi, id, gcb, wcb)
				}
			}
		}
	}
}

// TestArenaThawOnMutation: the first managed mutation on a mapped
// kc-rtree thaws a live tree whose post-refresh ranks include the new
// object.
func TestArenaThawOnMutation(t *testing.T) {
	ds := testDataset(t, 150, 83)
	q := lifecycleQueries(ds, 1, 84)[0]
	loaded := saveLoadArena(t, Build(ds.Objects, 16), ds, 16)

	id := ds.Objects.Append(object.Object{Loc: q.Loc, Doc: q.Doc})
	loaded.Insert(ds.Objects.Get(id))
	if loaded.Mapped() {
		t.Fatal("index still reports mapped after a managed mutation")
	}
	loaded.Refresh()
	s := score.NewScorer(q, ds.Objects)
	rank, err := loaded.RankOf(s, id)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Fatalf("inserted winner ranks %d, want 1", rank)
	}
}
