package kcrtree

import (
	"encoding/binary"
	"fmt"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/wal"
)

// This file is the KcR-tree's half of the arena persistence format
// (docs/FORMATS.md). Leaf items serialize as object IDs against the
// restored collection; the augmentation column is a fixed table plus
// one packed KV slab, laid out so every node's Counts map decodes as a
// zero-copy sub-slice of the mapped file (KV is two 4-byte fields — its
// in-memory layout is exactly the encoded layout on little-endian
// hosts, which is the only kind that maps arenas).

// codec implements rtree.ArenaCodec for the KcR-tree.
//
// Items column: one little-endian u32 object ID per leaf entry.
//
// Augs column: a fixed 20-byte table row per node — u32 len(Counts),
// i32 Cnt, i32 InterLen, i32 MinLen, i32 MaxLen — followed by one KV
// slab: each pair as u32 keyword, i32 count, concatenated in node
// order. The table length is nodes*20, a multiple of 4, so the slab
// stays 4-byte aligned for KV aliasing.
type codec struct {
	coll     *object.Collection
	vocabLen int
}

func (codec) corrupt(format string, args ...any) error {
	return &wal.CorruptionError{Detail: "kcrtree arena: " + fmt.Sprintf(format, args...)}
}

// AppendItems implements rtree.ArenaCodec.
func (codec) AppendItems(dst []byte, entries []rtree.LeafEntry[object.Object]) []byte {
	var b [4]byte
	for i := range entries {
		binary.LittleEndian.PutUint32(b[:], uint32(entries[i].Item.ID))
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeItems implements rtree.ArenaCodec.
func (c codec) DecodeItems(blob []byte, n int) ([]rtree.LeafEntry[object.Object], error) {
	bad := func(format string, args ...any) error {
		return c.corrupt("items: "+format, args...)
	}
	if len(blob) != n*4 {
		return nil, bad("column is %d bytes, want %d", len(blob), n*4)
	}
	entries := make([]rtree.LeafEntry[object.Object], n)
	for i := 0; i < n; i++ {
		id := object.ID(binary.LittleEndian.Uint32(blob[i*4:]))
		if int(id) >= c.coll.Len() {
			return nil, bad("entry %d references object %d outside collection of %d", i, id, c.coll.Len())
		}
		if !c.coll.Alive(id) {
			return nil, bad("entry %d references dead object %d", i, id)
		}
		o := c.coll.Get(id)
		entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
	}
	return entries, nil
}

// AppendAugs implements rtree.ArenaCodec.
func (codec) AppendAugs(dst []byte, augs []Aug) []byte {
	var b [4]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	for i := range augs {
		p32(uint32(len(augs[i].Counts)))
		p32(uint32(augs[i].Cnt))
		p32(uint32(augs[i].InterLen))
		p32(uint32(augs[i].MinLen))
		p32(uint32(augs[i].MaxLen))
	}
	for i := range augs {
		for _, kv := range augs[i].Counts {
			p32(uint32(kv.K))
			p32(uint32(kv.N))
		}
	}
	return dst
}

// DecodeAugs implements rtree.ArenaCodec. Each node's Counts is a
// sub-slice of the mapped KV slab — no copy — after validating lengths,
// keyword range, the sorted-map invariant the binary searches rely on,
// and the derived statistics (Cnt, InterLen, length range) the rank
// bounds are computed from.
func (c codec) DecodeAugs(blob []byte, nodes int) ([]Aug, error) {
	table := nodes * 20
	if len(blob) < table {
		return nil, c.corrupt("aug column is %d bytes, table alone needs %d", len(blob), table)
	}
	if (len(blob)-table)%8 != 0 {
		return nil, c.corrupt("KV slab length %d is not a multiple of 8", len(blob)-table)
	}
	slab := rtree.AliasColumn[KV](blob[table:], 8)
	augs := make([]Aug, nodes)
	off := 0
	for i := 0; i < nodes; i++ {
		row := blob[i*20:]
		n := int(binary.LittleEndian.Uint32(row))
		cnt := int32(binary.LittleEndian.Uint32(row[4:]))
		interLen := int32(binary.LittleEndian.Uint32(row[8:]))
		minLen := int32(binary.LittleEndian.Uint32(row[12:]))
		maxLen := int32(binary.LittleEndian.Uint32(row[16:]))
		if n < 0 || off+n > len(slab) {
			return nil, c.corrupt("node %d count range overruns slab", i)
		}
		counts := Counts(slab[off : off+n : off+n])
		off += n
		if cnt < 0 || minLen < 0 || minLen > maxLen {
			return nil, c.corrupt("node %d has impossible statistics (cnt %d, lengths [%d,%d])", i, cnt, minLen, maxLen)
		}
		var gotInter int32
		for j, kv := range counts {
			if int(kv.K) >= c.vocabLen {
				return nil, c.corrupt("node %d keyword %d outside embedded vocabulary of %d", i, kv.K, c.vocabLen)
			}
			if j > 0 && counts[j-1].K >= kv.K {
				return nil, c.corrupt("node %d counts not strictly sorted at index %d", i, j)
			}
			if kv.N < 1 || kv.N > cnt {
				return nil, c.corrupt("node %d count %d for keyword %d outside [1,%d]", i, kv.N, kv.K, cnt)
			}
			if kv.N == cnt {
				gotInter++
			}
		}
		if gotInter != interLen {
			return nil, c.corrupt("node %d stores InterLen %d, counts imply %d", i, interLen, gotInter)
		}
		augs[i] = Aug{Counts: counts, Cnt: cnt, InterLen: interLen, MinLen: minLen, MaxLen: maxLen}
	}
	if off != len(slab) {
		return nil, c.corrupt("KV slab has %d unused pairs", len(slab)-off)
	}
	return augs, nil
}

// SaveArena serializes the currently published arena in the on-disk
// format; see settree.Index.SaveArena.
func (ix *Index) SaveArena(lsn uint64, vocabWords []string) []byte {
	return ix.pub.Flat().AppendArena(nil, codec{coll: ix.coll},
		rtree.ArenaMeta{LSN: lsn, MaxDist: ix.coll.MaxDist(), Vocab: vocabWords})
}

// LoadArena builds an Index serving the mapped arena directly; see
// settree.LoadArena for the contract (matching collection, pinned
// vocabulary, thaw-on-first-mutation with maxEntries fanout).
func LoadArena(raw *rtree.RawArena, c *object.Collection, maxEntries int) (*Index, error) {
	f, err := rtree.BuildFlat[object.Object, Aug](raw, codec{coll: c, vocabLen: len(raw.Vocab())})
	if err != nil {
		return nil, err
	}
	ix := &Index{coll: c, sigs: raw.HasSigs()}
	wrap := func(ff *rtree.Flat[object.Object, Aug]) any {
		return &Arena{ix: ix, f: ff, maxDist: c.MaxDist()}
	}
	ix.pub = rtree.NewMappedPublisher(f, wrap, func(ff *rtree.Flat[object.Object, Aug]) *rtree.Tree[object.Object, Aug] {
		t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
		t.SetFreezeSigs(ix.sigs)
		// BulkLoad sorts in place; the mapped flat keeps serving its
		// entry slice, so thaw from a copy.
		t.BulkLoad(append([]rtree.LeafEntry[object.Object](nil), ff.AllEntries()...))
		return t
	})
	return ix, nil
}

// Mapped reports whether the index is still serving a mapped arena.
func (ix *Index) Mapped() bool { return ix.pub.Mapped() }
