package kcrtree

import (
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/vocab"
)

func testDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCountsGetAndMerge(t *testing.T) {
	a := Counts{{K: 1, N: 2}, {K: 3, N: 1}}
	b := Counts{{K: 1, N: 1}, {K: 2, N: 4}}
	m := a.merge(b)
	want := Counts{{K: 1, N: 3}, {K: 2, N: 4}, {K: 3, N: 1}}
	if len(m) != len(want) {
		t.Fatalf("merge = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merge[%d] = %v, want %v", i, m[i], want[i])
		}
	}
	if a.Get(1) != 2 || a.Get(3) != 1 || a.Get(2) != 0 || a.Get(99) != 0 {
		t.Fatal("Get wrong")
	}
	var empty Counts
	if got := empty.merge(a); len(got) != len(a) {
		t.Fatal("merge with empty wrong")
	}
}

// TestFig2Example reproduces the example KcR-tree of the paper's Fig. 2:
// five restaurant objects whose root node must carry the keyword-count
// map {Chinese:2, Spanish:2, restaurant:5} and cnt = 5.
func TestFig2Example(t *testing.T) {
	v := vocab.NewVocabulary()
	chinese := v.Intern("chinese")
	spanish := v.Intern("spanish")
	restaurant := v.Intern("restaurant")
	objs := []object.Object{
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(chinese, restaurant)},  // o1
		{ID: 1, Loc: geo.Point{X: 1, Y: 0}, Doc: vocab.NewKeywordSet(chinese, restaurant)},  // o2
		{ID: 2, Loc: geo.Point{X: 2, Y: 0}, Doc: vocab.NewKeywordSet(restaurant)},           // o3
		{ID: 3, Loc: geo.Point{X: 10, Y: 0}, Doc: vocab.NewKeywordSet(spanish, restaurant)}, // o4
		{ID: 4, Loc: geo.Point{X: 11, Y: 0}, Doc: vocab.NewKeywordSet(spanish, restaurant)}, // o5
	}
	ix := Build(object.NewCollection(objs), 4)
	root := ix.Tree().Root()
	aug := root.Aug()
	if aug.Cnt != 5 {
		t.Fatalf("root cnt = %d, want 5", aug.Cnt)
	}
	if got := aug.Counts.Get(chinese); got != 2 {
		t.Errorf("count(chinese) = %d, want 2", got)
	}
	if got := aug.Counts.Get(spanish); got != 2 {
		t.Errorf("count(spanish) = %d, want 2", got)
	}
	if got := aug.Counts.Get(restaurant); got != 5 {
		t.Errorf("count(restaurant) = %d, want 5", got)
	}
	// The implied intersection is exactly {restaurant}, the union all three.
	if !aug.Inter().Equal(vocab.NewKeywordSet(restaurant)) {
		t.Errorf("Inter = %v", aug.Inter())
	}
	if !aug.Union().Equal(vocab.NewKeywordSet(chinese, spanish, restaurant)) {
		t.Errorf("Union = %v", aug.Union())
	}
}

// TestAugMatchesBruteForce validates every node's count map against a
// direct recount of the objects below it.
func TestAugMatchesBruteForce(t *testing.T) {
	ds := testDataset(t, 600, 1)
	for _, build := range []func(*object.Collection, int) *Index{Build, BuildByInsertion} {
		ix := build(ds.Objects, 16)
		var walk func(n *rtree.Node[object.Object, Aug]) map[vocab.Keyword]int32
		walk = func(n *rtree.Node[object.Object, Aug]) map[vocab.Keyword]int32 {
			counts := map[vocab.Keyword]int32{}
			total := int32(0)
			if n.IsLeaf() {
				for _, e := range n.Entries() {
					total++
					for _, kw := range e.Item.Doc {
						counts[kw]++
					}
				}
			} else {
				for _, c := range n.Children() {
					sub := walk(c)
					for k, v := range sub {
						counts[k] += v
					}
					total += c.Aug().Cnt
				}
			}
			aug := n.Aug()
			if aug.Cnt != total {
				t.Fatalf("cnt = %d, recount %d", aug.Cnt, total)
			}
			if len(aug.Counts) != len(counts) {
				t.Fatalf("count map has %d keys, recount %d", len(aug.Counts), len(counts))
			}
			for _, kv := range aug.Counts {
				if counts[kv.K] != kv.N {
					t.Fatalf("count(%d) = %d, recount %d", kv.K, kv.N, counts[kv.K])
				}
			}
			return counts
		}
		walk(ix.Tree().Root())
	}
}

// TestTSimBoundsSound checks that for random candidate keyword sets the
// node bounds bracket the true Jaccard of every object below.
func TestTSimBoundsSound(t *testing.T) {
	ds := testDataset(t, 400, 2)
	ix := Build(ds.Objects, 8)
	rng := rand.New(rand.NewSource(3))
	sims := []struct {
		sim score.TextSim
		fn  func(a, b vocab.KeywordSet) float64
	}{
		{score.SimJaccard, vocab.KeywordSet.Jaccard},
		{score.SimDice, vocab.KeywordSet.Dice},
	}
	for trial := 0; trial < 150; trial++ {
		// Mix of object keywords and random ones, like refined sets.
		src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len()))).Doc
		qdoc := vocab.NewKeywordSet(
			src[rng.Intn(len(src))],
			vocab.Keyword(rng.Intn(ds.Vocab.Len())),
			vocab.Keyword(rng.Intn(ds.Vocab.Len())),
		)
		for _, sm := range sims {
			var walk func(n *rtree.Node[object.Object, Aug])
			walk = func(n *rtree.Node[object.Object, Aug]) {
				lo, hi := TSimBounds(n.Aug(), qdoc, sm.sim)
				if lo > hi+1e-12 {
					t.Fatalf("%v: lo %v > hi %v", sm.sim, lo, hi)
				}
				if n.IsLeaf() {
					for _, e := range n.Entries() {
						j := sm.fn(e.Item.Doc, qdoc)
						if j < lo-1e-12 || j > hi+1e-12 {
							t.Fatalf("%v: object %d TSim %v outside [%v, %v]", sm.sim, e.Item.ID, j, lo, hi)
						}
					}
					return
				}
				for _, c := range n.Children() {
					walk(c)
				}
			}
			walk(ix.Tree().Root())
		}
	}
}

func TestTSimBoundsEdgeCases(t *testing.T) {
	if lo, hi := TSimBounds(Aug{}, vocab.NewKeywordSet(1), score.SimJaccard); lo != 0 || hi != 0 {
		t.Errorf("empty aug bounds = %v,%v", lo, hi)
	}
	a := Aug{Counts: Counts{{K: 1, N: 2}, {K: 2, N: 1}}, Cnt: 2}
	if lo, hi := TSimBounds(a, nil, score.SimJaccard); lo != 0 || hi != 0 {
		t.Errorf("empty qdoc bounds = %v,%v", lo, hi)
	}
	// Single object: bounds must be exact.
	single := Aug{Counts: Counts{{K: 1, N: 1}, {K: 2, N: 1}}, Cnt: 1, InterLen: 2, MinLen: 2, MaxLen: 2}
	q := vocab.NewKeywordSet(1, 3)
	lo, hi := TSimBounds(single, q, score.SimJaccard)
	want := vocab.NewKeywordSet(1, 2).Jaccard(q)
	if lo != want || hi != want {
		t.Errorf("single-object bounds [%v,%v], want exactly %v", lo, hi, want)
	}
}

func TestScoreBoundsBracket(t *testing.T) {
	ds := testDataset(t, 500, 4)
	ix := Build(ds.Objects, 16)
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 10, Seed: 5, K: 5, Keywords: 2, W: score.WeightsFromWt(0.6), FromObjectDocs: true,
	})
	for _, q := range qs {
		s := score.NewScorer(q, ds.Objects)
		var walk func(n *rtree.Node[object.Object, Aug])
		walk = func(n *rtree.Node[object.Object, Aug]) {
			lo, hi := ix.ScoreBounds(s, n)
			if n.IsLeaf() {
				for _, e := range n.Entries() {
					sc := s.Score(e.Item)
					if sc < lo-1e-12 || sc > hi+1e-12 {
						t.Fatalf("score %v outside [%v, %v]", sc, lo, hi)
					}
				}
				return
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(ix.Tree().Root())
	}
}

func TestRankOfMatchesScan(t *testing.T) {
	ds := testDataset(t, 800, 6)
	ix := Build(ds.Objects, 32)
	rng := rand.New(rand.NewSource(7))
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 15, Seed: 8, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	for _, q := range qs {
		s := score.NewScorer(q, ds.Objects)
		for trial := 0; trial < 5; trial++ {
			oid := object.ID(rng.Intn(ds.Objects.Len()))
			got, _ := ix.RankOf(s, oid)
			want := settree.ScanRank(ds.Objects, s, oid)
			if got != want {
				t.Fatalf("RankOf(%d) = %d, scan %d", oid, got, want)
			}
		}
	}
}

// TestRankOfWithRefinedDocs exercises the case the index exists for:
// rank computation under keyword sets that differ from any object's doc.
func TestRankOfWithRefinedDocs(t *testing.T) {
	ds := testDataset(t, 500, 9)
	ix := Build(ds.Objects, 16)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		var qdoc vocab.KeywordSet
		for qdoc.Len() < 1+rng.Intn(4) {
			qdoc = qdoc.Add(vocab.Keyword(rng.Intn(ds.Vocab.Len())))
		}
		q := score.Query{
			Loc: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Doc: qdoc, K: 5, W: score.WeightsFromWt(0.3 + 0.4*rng.Float64()),
		}
		s := score.NewScorer(q, ds.Objects)
		oid := object.ID(rng.Intn(ds.Objects.Len()))
		got, _ := ix.RankOf(s, oid)
		if want := settree.ScanRank(ds.Objects, s, oid); got != want {
			t.Fatalf("trial %d: RankOf = %d, scan %d", trial, got, want)
		}
	}
}

func TestRankBoundsBracketExact(t *testing.T) {
	ds := testDataset(t, 1000, 11)
	ix := Build(ds.Objects, 16)
	height := ix.Tree().Height()
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 10, Seed: 12, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	rng := rand.New(rand.NewSource(13))
	for _, q := range qs {
		s := score.NewScorer(q, ds.Objects)
		oid := object.ID(rng.Intn(ds.Objects.Len()))
		o := ds.Objects.Get(oid)
		refScore := s.Score(o)
		exact, _ := ix.CountBetter(s, refScore, oid)
		prevLo, prevHi := -1, 1<<30
		for depth := 0; depth <= height; depth++ {
			lo, hi, _ := ix.RankBounds(s, refScore, oid, depth)
			if lo > exact || hi < exact {
				t.Fatalf("depth %d bounds [%d,%d] exclude exact %d", depth, lo, hi, exact)
			}
			// Deeper traversal must not loosen bounds.
			if lo < prevLo || hi > prevHi {
				t.Fatalf("bounds loosened at depth %d: [%d,%d] after [%d,%d]", depth, lo, hi, prevLo, prevHi)
			}
			prevLo, prevHi = lo, hi
		}
		// At full height the bounds must converge.
		lo, hi, _ := ix.RankBounds(s, refScore, oid, height)
		if lo != exact || hi != exact {
			t.Fatalf("full-depth bounds [%d,%d] != exact %d", lo, hi, exact)
		}
	}
}

func TestCountBetterPrunes(t *testing.T) {
	ds := testDataset(t, 5000, 14)
	ix := Build(ds.Objects, 64)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 15, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	s := score.NewScorer(q, ds.Objects)
	// Reference: a high-scoring object (rank queries near the top prune
	// hardest, as in the why-not workload where missing objects are
	// usually competitive).
	best := settree.ScanTopK(ds.Objects, q)[0]
	ix.Stats().Reset()
	ix.RankOf(s, best.Obj.ID) //nolint:errcheck // stats probe
	if got := ix.Stats().NodeAccesses(); got >= int64(ix.Tree().NodeCount()) {
		t.Fatalf("rank query touched %d of %d nodes", got, ix.Tree().NodeCount())
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := Build(object.NewCollection(nil), 8)
	q := score.Query{Loc: geo.Point{}, Doc: vocab.NewKeywordSet(1), K: 1, W: score.DefaultWeights}
	s := score.Scorer{Query: q, MaxDist: 1}
	if got, _ := ix.CountBetter(s, 0.5, 0); got != 0 {
		t.Fatalf("CountBetter on empty = %d", got)
	}
	if lo, hi, _ := ix.RankBounds(s, 0.5, 0, 3); lo != 0 || hi != 0 {
		t.Fatalf("RankBounds on empty = %d,%d", lo, hi)
	}
}
