// Package kcrtree implements the KcR-tree (Keyword count R-tree) of the
// paper's Section 3.3, Fig. 2, and refs [6, 9]: an R-tree whose every
// node carries a keyword→count map — for each keyword in the union of
// the documents below, the number of objects below that contain it — plus
// a cnt field with the total number of objects below.
//
// From the count map, a traversal can bound the Jaccard similarity of
// any object under a node to *any* candidate query keyword set, which is
// what lets the keyword-adapted why-not algorithm bound the rank of a
// missing object under a refined keyword set without touching objects.
// Keywords present in every object below (count == cnt) form the node's
// intersection set, keywords present at all form its union set, so the
// count map strictly generalizes the SetR-tree augmentation.
//
// The Index implements index.Provider and its Arena implements
// index.Snapshot; the two-sided similarity bounds make it the family of
// choice for rank computation (CountBetter counts whole subtrees
// wholesale, RankBounds brackets ranks at bounded depth, ForEachCross
// prunes the preference sweep's event construction).
package kcrtree

import (
	"sync"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// KV is one keyword count entry.
type KV struct {
	K vocab.Keyword
	N int32
}

// Counts is a keyword→count map stored as a slice sorted by keyword,
// which merges like sorted lists and stays allocation-tight — the
// in-memory analogue of the packed maps the disk layout of [6] uses.
type Counts []KV

// Get returns the count for kw, 0 if absent.
//
//yask:hotpath
func (c Counts) Get(kw vocab.Keyword) int32 {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid].K < kw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c) && c[lo].K == kw {
		return c[lo].N
	}
	return 0
}

// merge returns the element-wise sum of two count maps.
func (c Counts) merge(d Counts) Counts {
	out := make(Counts, 0, len(c)+len(d))
	i, j := 0, 0
	for i < len(c) && j < len(d) {
		switch {
		case c[i].K == d[j].K:
			out = append(out, KV{K: c[i].K, N: c[i].N + d[j].N})
			i++
			j++
		case c[i].K < d[j].K:
			out = append(out, c[i])
			i++
		default:
			out = append(out, d[j])
			j++
		}
	}
	out = append(out, c[i:]...)
	out = append(out, d[j:]...)
	return out
}

// Aug is the KcR-tree node augmentation of Fig. 2, extended with the
// derived statistics the rank bounds need in O(1): the size of the
// implied intersection set and the document-length range of the objects
// below.
type Aug struct {
	// Counts maps each keyword under the node to the number of objects
	// below that contain it.
	Counts Counts
	// Cnt is the number of objects under the node.
	Cnt int32
	// InterLen is the number of keywords with count == Cnt (the size of
	// the implied intersection set), precomputed at build time.
	InterLen int32
	// MinLen and MaxLen bound |o.doc| over the objects below.
	MinLen, MaxLen int32
}

// Inter returns the implied intersection set: keywords every object
// below contains.
func (a Aug) Inter() vocab.KeywordSet {
	var out vocab.KeywordSet
	for _, kv := range a.Counts {
		if kv.N == a.Cnt {
			out = append(out, kv.K)
		}
	}
	return out
}

// Union returns the implied union set: all keywords below.
func (a Aug) Union() vocab.KeywordSet {
	out := make(vocab.KeywordSet, len(a.Counts))
	for i, kv := range a.Counts {
		out[i] = kv.K
	}
	return out
}

type augmenter struct{}

func (augmenter) FromLeaf(o object.Object) Aug {
	counts := make(Counts, len(o.Doc))
	for i, kw := range o.Doc {
		counts[i] = KV{K: kw, N: 1}
	}
	n := int32(len(o.Doc))
	return Aug{Counts: counts, Cnt: 1, InterLen: n, MinLen: n, MaxLen: n}
}

// NodeSig implements rtree.KeywordSigger: the node signature covers
// every keyword present below the node (the keys of the count map).
func (augmenter) NodeSig(a *Aug) vocab.Signature {
	var g vocab.Signature
	for _, kv := range a.Counts {
		g.Add(kv.K)
	}
	return g
}

// LeafSig implements rtree.KeywordSigger.
func (augmenter) LeafSig(o *object.Object) vocab.Signature { return o.Doc.Signature() }

func (augmenter) Merge(a, b Aug) Aug {
	out := Aug{
		Counts: a.Counts.merge(b.Counts),
		Cnt:    a.Cnt + b.Cnt,
		MinLen: a.MinLen, MaxLen: a.MaxLen,
	}
	if b.MinLen < out.MinLen {
		out.MinLen = b.MinLen
	}
	if b.MaxLen > out.MaxLen {
		out.MaxLen = b.MaxLen
	}
	for _, kv := range out.Counts {
		if kv.N == out.Cnt {
			out.InterLen++
		}
	}
	return out
}

// Index is a KcR-tree over a collection. Rank queries traverse an
// immutable Arena snapshot published through an atomic pointer and are
// safe for concurrent use with the managed mutation path
// (Insert/Remove/Refresh); mutating the tree directly via Tree() makes
// every query fail with rtree.ErrStaleSnapshot until Refresh.
type Index struct {
	pub  *rtree.SnapshotPublisher[object.Object, Aug]
	coll *object.Collection
	// sigs enables the keyword-signature pruning layer (default on);
	// see settree.Index. Results are byte-identical either way.
	sigs bool
	// scratch pools the traversal state of the rank and top-k passes so
	// warm queries run allocation-free.
	scratch sync.Pool
}

// Arena is one published snapshot: the frozen flat arena plus the SDist
// normalization constant captured at the freeze. It implements
// index.Snapshot.
type Arena struct {
	ix      *Index
	f       *rtree.Flat[object.Object, Aug]
	maxDist float64
}

// rankScratch is the reusable traversal state of one query.
type rankScratch struct {
	stack  []int32
	frames []depthFrame
	nodes  *pqueue.Queue[index.NodeEntry]
	cand   *pqueue.Queue[score.Result]
	// ctr batches the query's signature-layer statistics; flushed to
	// the arena's Stats once per traversal.
	ctr index.SigCounters
}

// depthFrame is one depth-limited DFS frame of RankBounds.
type depthFrame struct {
	node  int32
	depth int32
}

//yask:hotpath
func (ix *Index) getScratch() *rankScratch {
	if sc, ok := ix.scratch.Get().(*rankScratch); ok { //yask:allocok(sync.Pool hit path does not allocate)
		return sc
	}
	return &rankScratch{ //yask:allocok(pool miss: one-time scratch construction, amortized across queries)
		stack:  make([]int32, 0, 64),                         //yask:allocok(pool miss construction)
		frames: make([]depthFrame, 0, 64),                    //yask:allocok(pool miss construction)
		nodes:  pqueue.NewWithCapacity(index.NodeOrder, 64),  //yask:allocok(pool miss construction)
		cand:   pqueue.NewWithCapacity(score.WorstFirst, 16), //yask:allocok(pool miss construction)
	}
}

//yask:hotpath
func (ix *Index) putScratch(sc *rankScratch) {
	sc.stack = sc.stack[:0]
	sc.frames = sc.frames[:0]
	sc.nodes.Reset()
	sc.cand.Reset()
	ix.scratch.Put(sc) //yask:allocok(sync.Pool put does not allocate; the interface box is the pooled pointer)
}

// Build bulk-loads a KcR-tree over the live objects of the collection.
func Build(c *object.Collection, maxEntries int) *Index {
	return BuildWith(c, maxEntries, true)
}

// BuildWith is Build with the signature layer pre-configured, so a
// disabled index never materializes signature columns — not even in
// the freeze that publishes the initial arena.
func BuildWith(c *object.Collection, maxEntries int, signatures bool) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	t.SetFreezeSigs(signatures)
	v := c.View()
	entries := make([]rtree.LeafEntry[object.Object], 0, v.LiveLen())
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		entries = append(entries, rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o})
	}
	t.BulkLoad(entries)
	ix := newIndex(t, c)
	ix.sigs = signatures
	return ix
}

// BuildByInsertion constructs the index by repeated insertion; used by
// tests and the index-construction benches.
func BuildByInsertion(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	v := c.View()
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		t.Insert(o.Rect(), o)
	}
	return newIndex(t, c)
}

func newIndex(t *rtree.Tree[object.Object, Aug], c *object.Collection) *Index {
	ix := &Index{coll: c, sigs: true}
	ix.pub = rtree.NewSnapshotPublisher(t, func(f *rtree.Flat[object.Object, Aug]) any {
		return &Arena{ix: ix, f: f, maxDist: c.MaxDist()}
	})
	return ix
}

// Builder returns an index.Builder constructing KcR-trees with the
// given fanout.
func Builder(maxEntries int) index.Builder { return BuilderWith(maxEntries, true) }

// BuilderWith is Builder with the keyword-signature pruning layer
// toggled; the sharded engine threads its configuration through here.
func BuilderWith(maxEntries int, signatures bool) index.Builder {
	return func(c *object.Collection) index.Provider {
		return BuildWith(c, maxEntries, signatures)
	}
}

// SetSignatures toggles the keyword-signature pruning layer (default
// on); results are byte-identical either way. Future freezes also stop
// materializing the signature columns. Must be called before the index
// is shared.
func (ix *Index) SetSignatures(on bool) {
	ix.sigs = on
	if t := ix.pub.Tree(); t != nil {
		t.SetFreezeSigs(on)
	}
}

// Signatures reports whether the signature pruning layer is enabled.
func (ix *Index) Signatures() bool { return ix.sigs }

// Flat exposes the current frozen arena without a freshness check; the
// rank algorithms go through Snapshot instead.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.pub.Flat() }

// Snapshot returns the published arena after verifying that every tree
// mutation went through the managed path; it fails with a
// *rtree.StaleSnapshotError on direct Tree() mutation without Refresh.
func (ix *Index) Snapshot() (*Arena, error) {
	_, p, err := ix.pub.Snapshot()
	if err != nil {
		return nil, err
	}
	return p.(*Arena), nil
}

// Acquire implements index.Provider.
func (ix *Index) Acquire() (index.Snapshot, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Insert adds the object through the managed mutation path; queries keep
// serving the previous snapshot until Refresh.
func (ix *Index) Insert(o object.Object) { ix.pub.Insert(o.Rect(), o) }

// Remove deletes the object (matched by ID at its location) through the
// managed mutation path and reports whether it was present.
func (ix *Index) Remove(o object.Object) bool {
	return ix.pub.Remove(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })
}

// Refresh re-freezes the tree and atomically publishes the new arena.
func (ix *Index) Refresh() { ix.pub.Refresh() }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Tree exposes the underlying augmented R-tree; nil while the index
// serves a mapped arena (LoadArena) that no mutation has thawed yet.
// Mutating it directly leaves the published snapshot stale and queries
// will error until Refresh.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.pub.Tree() }

// Stats returns the node-access statistics collector of the published
// arena (shared with the source tree when there is one).
func (ix *Index) Stats() *rtree.Stats { return ix.pub.Flat().Stats() }

// TSimBounds returns lower and upper bounds on the Jaccard similarity
// between qdoc and the document of any object under a node with
// augmentation a.
//
// Upper bound: an object can share at most the qdoc keywords present
// anywhere below (count > 0) and its union with qdoc has at least
// |Inter ∪ qdoc| keywords (every object contains the node intersection).
// Lower bound: an object shares at least the qdoc keywords every object
// below contains (count == cnt) and its union with qdoc has at most
// |Union ∪ qdoc| keywords.
//
//yask:hotpath
func TSimBounds(a Aug, qdoc vocab.KeywordSet, sim score.TextSim) (lo, hi float64) {
	if a.Cnt == 0 || len(qdoc) == 0 {
		return 0, 0
	}
	present, everywhere := 0, 0
	for _, kw := range qdoc {
		n := a.Counts.Get(kw)
		if n > 0 {
			present++
		}
		if n == a.Cnt {
			everywhere++
		}
	}
	if sim == score.SimDice {
		// Dice = 2|o ∩ q| / (|o| + |q|): numerator bracketed by
		// [everywhere, min(present, MaxLen)], denominator by
		// [MinLen + |q|, MaxLen + |q|].
		num := present
		if int(a.MaxLen) < num {
			num = int(a.MaxLen)
		}
		hi = 2 * float64(num) / float64(int(a.MinLen)+len(qdoc))
		if hi > 1 {
			hi = 1
		}
		lo = 2 * float64(everywhere) / float64(int(a.MaxLen)+len(qdoc))
		if lo > hi {
			lo = hi
		}
		return lo, hi
	}
	// Upper bound. |o ∩ q| ≤ min(present, MaxLen); |o ∪ q| ≥ the larger
	// of |Inter ∪ q| (every object contains the intersection set) and
	// MinLen + |q| − present (|o ∪ q| = |o.doc| + |q| − |o ∩ q|).
	num := present
	if int(a.MaxLen) < num {
		num = int(a.MaxLen)
	}
	denHi := int(a.InterLen) + len(qdoc) - everywhere // |Inter ∪ q|
	if byLen := int(a.MinLen) + len(qdoc) - present; byLen > denHi {
		denHi = byLen
	}
	if denHi < num {
		denHi = num
	}
	if num == 0 {
		hi = 0
	} else {
		hi = float64(num) / float64(denHi)
	}
	// Lower bound. |o ∩ q| ≥ everywhere; |o ∪ q| ≤ the smaller of
	// |Union ∪ q| and MaxLen + |q| − everywhere.
	denLo := len(a.Counts) + len(qdoc) - present // |Union ∪ q|
	if byLen := int(a.MaxLen) + len(qdoc) - everywhere; byLen < denLo {
		denLo = byLen
	}
	if denLo > 0 {
		lo = float64(everywhere) / float64(denLo)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ScoreBounds returns lower and upper bounds on ST(o, q) for every
// object o under node n, under scorer s (whose query carries the —
// possibly refined — keyword set).
func (ix *Index) ScoreBounds(s score.Scorer, n *rtree.Node[object.Object, Aug]) (lo, hi float64) {
	tLo, tHi := TSimBounds(n.Aug(), s.Query.Doc, s.Query.Sim)
	w := s.Query.W
	lo = w.Ws*(1-s.SDistRectMax(n.Rect())) + w.Wt*tLo
	hi = w.Ws*(1-s.SDistRectMin(n.Rect())) + w.Wt*tHi
	return lo, hi
}

// scoreBoundsAt is ScoreBounds addressed into the flat arena.
//
//yask:hotpath
func scoreBoundsAt(f *rtree.Flat[object.Object, Aug], s score.Scorer, n int32) (lo, hi float64) {
	r := f.Rect(n)
	tLo, tHi := TSimBounds(*f.Aug(n), s.Query.Doc, s.Query.Sim)
	w := s.Query.W
	lo = w.Ws*(1-s.SDistRectMax(r)) + w.Wt*tLo
	hi = w.Ws*(1-s.SDistRectMin(r)) + w.Wt*tHi
	return lo, hi
}

// quickTSimHi is the constant-time signature upper bound on the textual
// similarity of any object under a node, evaluated in place of the
// per-keyword count-map walk of TSimBounds.
//
//yask:hotpath
func quickTSimHi(aug *Aug, s *score.Scorer, qs *vocab.QuerySig, nsig *vocab.Signature) float64 {
	m := qs.IntersectBound(nsig)
	return score.SigSimUpperBound(s.Query.Sim, m, int(aug.MinLen), int(aug.MaxLen), int(aug.InterLen), qs.Len)
}

// boundsAt is scoreBoundsAt behind the signature layer: a disjoint node
// signature yields the exact (spatial-only) bounds without the count-map
// walk, and a signature upper bound already strictly below prune — the
// caller's reject threshold — returns (0, quick), which the caller
// discards the same way it would the exact bounds (hi < prune). Only
// when the signature is indecisive does the exact walk run, so every
// caller decision is identical to the signature-free traversal.
//
//yask:hotpath
func (ix *Index) boundsAt(f *rtree.Flat[object.Object, Aug], s score.Scorer, qs *vocab.QuerySig, useSig bool, n int32, prune float64, ctr *index.SigCounters) (lo, hi float64) {
	if useSig {
		ctr.Probes++
		w := s.Query.W
		r := f.Rect(n)
		nsig := f.Sig(n)
		if qs.Disjoint(nsig) {
			// Textual bounds exactly (0, 0): spatial-only, no walk.
			ctr.Hits++
			return w.Ws * (1 - s.SDistRectMax(r)), w.Ws * (1 - s.SDistRectMin(r))
		}
		quick := w.Ws*(1-s.SDistRectMin(r)) + w.Wt*quickTSimHi(f.Aug(n), &s, qs, nsig)
		if quick < prune {
			ctr.Hits++
			return 0, quick
		}
	}
	ctr.Exact++
	return scoreBoundsAt(f, s, n)
}

// Flat exposes the underlying frozen arena for structural tests.
func (a *Arena) Flat() *rtree.Flat[object.Object, Aug] { return a.f }

// MaxDist implements index.Snapshot: the normalization constant frozen
// with this arena.
func (a *Arena) MaxDist() float64 { return a.maxDist }

// Scorer returns a scorer for q pinned to this snapshot's normalization
// constant.
func (a *Arena) Scorer(q score.Query) score.Scorer {
	return score.Scorer{Query: q, MaxDist: a.maxDist}
}

// Generation returns the tree generation the arena was frozen at.
func (a *Arena) Generation() uint64 { return a.f.Generation() }

// Epoch implements index.Snapshot: the process-wide identity the
// publisher stamped into this arena at publication.
func (a *Arena) Epoch() uint64 { return a.f.Epoch() }

// Len returns the number of indexed objects in the arena.
func (a *Arena) Len() int { return a.f.Len() }

// Parts implements index.Snapshot: a single arena is one partition.
func (a *Arena) Parts() int { return 1 }

// TopKPart implements index.Snapshot; part must be 0.
//
//yask:hotpath
func (a *Arena) TopKPart(cc index.Cancel, part int, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	return a.TopK(cc, s, k, shared, dst)
}

// TopK implements index.Snapshot through the shared index.BestFirstTopK
// driver, pruning on the upper half of the two-sided score bounds. The
// engine's top-k path uses the SetR-tree; this exists so a KcR-tree
// partition set satisfies the full contract.
//
//yask:hotpath
func (a *Arena) TopK(cc index.Cancel, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	ix, f := a.ix, a.f
	if f.Empty() || k <= 0 {
		return dst
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, useSig := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	dst = index.BestFirstTopK(f, cc, k, shared, sc.nodes, sc.cand,
		func(n int32, limit float64) float64 {
			_, hi := ix.boundsAt(f, s, &qs, useSig, n, limit, &sc.ctr)
			return hi
		},
		func(ei int32, e *rtree.LeafEntry[object.Object], limit float64) (float64, bool) {
			return index.ScoreEntryCounted(&s, e, esigs, ei, &qs, limit, &sc.ctr)
		},
		dst)
	sc.ctr.Flush(f.Stats())
	return dst
}

// CountBetter implements index.Snapshot: the number of objects whose
// (score, ID) pair strictly dominates (refScore, tie) under scorer s.
// Subtrees whose score upper bound is below refScore are pruned;
// subtrees whose score lower bound is above refScore are counted
// wholesale via cnt without descending — the two-sided bound is what
// distinguishes the KcR-tree from the SetR-tree for rank computation.
// The reference pair need not name an indexed object: an object scoring
// exactly refScore with ID tie never dominates itself, so RankOf needs
// no self-exclusion, and a sharded composite may pass per-shard
// tie-break thresholds.
//
//yask:hotpath
func (a *Arena) CountBetter(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID) int {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, useSig := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	entries := f.AllEntries()
	count := 0
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			eLo, eHi := f.EntryRange(n)
			for ei := eLo; ei < eHi; ei++ {
				e := &entries[ei]
				scv, ok := index.ScoreEntryCounted(&s, e, esigs, ei, &qs, refScore, &sc.ctr)
				if ok && score.Better(scv, e.Item.ID, refScore, tie) {
					count++
				}
			}
		},
		func(c int32) bool {
			lo, hi := ix.boundsAt(f, s, &qs, useSig, c, refScore, &sc.ctr)
			if hi < refScore {
				return false // nothing below can beat the reference
			}
			if lo > refScore {
				count += int(f.Aug(c).Cnt) // everything below beats it
				return false
			}
			return true
		})
	sc.ctr.Flush(f.Stats())
	return count
}

// RankOf returns the 1-based rank of object oid under scorer s: one
// plus the number of objects strictly dominating it.
//
//yask:hotpath
func (a *Arena) RankOf(s score.Scorer, oid object.ID) int {
	o := a.ix.coll.Get(oid)
	return a.CountBetter(index.NoCancel, s, s.Score(o), oid) + 1
}

// RankBounds implements index.Snapshot: bounds [lo, hi] on the count of
// objects strictly dominating the reference, by traversing at most
// maxDepth levels and bounding whole subtrees from their augmentation
// instead of descending further. With maxDepth ≥ tree height it
// degenerates to the exact CountBetter. The keyword-adaption candidate
// pruning uses shallow depths to reject refined keyword sets cheaply.
//
//yask:hotpath
func (a *Arena) RankBounds(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID, maxDepth int) (lo, hi int) {
	ix, f := a.ix, a.f
	if f.Empty() {
		return 0, 0
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, useSig := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	entries := f.AllEntries()
	frames := append(sc.frames[:0], depthFrame{node: 0}) //yask:allocok(pooled scratch; grows only on a pool miss)
	accesses := int64(0)
	countdown := index.CheckInterval
	for len(frames) > 0 {
		if countdown--; countdown <= 0 {
			if cc.Canceled() {
				break
			}
			countdown = index.CheckInterval
		}
		fr := frames[len(frames)-1]
		frames = frames[:len(frames)-1]
		accesses++
		if f.IsLeaf(fr.node) {
			eLo, eHi := f.EntryRange(fr.node)
			for ei := eLo; ei < eHi; ei++ {
				e := &entries[ei]
				scv, ok := index.ScoreEntryCounted(&s, e, esigs, ei, &qs, refScore, &sc.ctr)
				if ok && score.Better(scv, e.Item.ID, refScore, tie) {
					lo++
					hi++
				}
			}
			continue
		}
		cLo, cHi := f.Children(fr.node)
		for c := cLo; c < cHi; c++ {
			bLo, bHi := ix.boundsAt(f, s, &qs, useSig, c, refScore, &sc.ctr)
			switch {
			case bHi < refScore:
				// contributes nothing
			case bLo > refScore:
				cnt := int(f.Aug(c).Cnt)
				lo += cnt
				hi += cnt
			case int(fr.depth) >= maxDepth:
				// Unknown: between 0 and all objects below.
				hi += int(f.Aug(c).Cnt)
			default:
				frames = append(frames, depthFrame{node: c, depth: fr.depth + 1}) //yask:allocok(pooled scratch; growth is amortized across queries)
			}
		}
	}
	sc.frames = frames[:0]
	f.Stats().AddNodeAccesses(accesses)
	sc.ctr.Flush(f.Stats())
	return lo, hi
}

// ForEachCross implements index.Snapshot: the event construction of the
// preference-adjustment sweep. A subtree whose score bounds prove every
// object stays strictly below the reference line (m0 at wt=0, m1 at
// wt=1) over the whole weight interval is pruned; one provably strictly
// above at both ends is reported wholesale through above(cnt); the rest
// descend to object-level visits — the index-based analogue of the
// paper's two range queries over segment endpoints.
//
//yask:hotpath
func (a *Arena) ForEachCross(cc index.Cancel, s score.Scorer, m0, m1 float64, visit func(object.Object), above func(int)) {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, _, useSig := index.PrepareSig(f, ix.sigs, s.Query.Doc)
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			for _, e := range f.Entries(n) {
				visit(e.Item)
			}
		},
		func(c int32) bool {
			// Subtree score bounds at the two endpoints of the weight
			// interval: a = 1 − SDist ∈ [aLo, aHi] and the similarity
			// bounds give the wt = 1 endpoint.
			aug := f.Aug(c)
			aLo := 1 - s.SDistRectMax(f.Rect(c))
			aHi := 1 - s.SDistRectMin(f.Rect(c))
			if useSig {
				sc.ctr.Probes++
				nsig := f.Sig(c)
				if qs.Disjoint(nsig) {
					// Textual bounds exactly (0, 0).
					sc.ctr.Hits++
					if aHi < m0 && 0 < m1 {
						return false
					}
					if aLo > m0 && 0 > m1 {
						above(int(aug.Cnt))
						return false
					}
					return true
				}
				// Only the below-at-both-ends prune can be decided from
				// the upper bound alone; the wholesale-above report
				// needs the exact similarity lower bound.
				if aHi < m0 && quickTSimHi(aug, &s, &qs, nsig) < m1 {
					sc.ctr.Hits++
					return false
				}
			}
			sc.ctr.Exact++
			tLo, tHi := TSimBounds(*aug, s.Query.Doc, s.Query.Sim)
			if aHi < m0 && tHi < m1 {
				return false // strictly below at both ends: never above, never crossing
			}
			if aLo > m0 && tLo > m1 {
				above(int(aug.Cnt)) // strictly above throughout
				return false
			}
			return true
		})
	sc.ctr.Flush(f.Stats())
}

// CountBetter returns the number of objects whose (score, ID) pair
// strictly dominates the reference pair under scorer s. It fails with
// rtree.ErrStaleSnapshot when the tree was mutated without a Refresh.
func (ix *Index) CountBetter(s score.Scorer, refScore float64, tie object.ID) (int, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return a.CountBetter(index.NoCancel, s, refScore, tie), nil
}

// RankOf returns the 1-based rank of object oid under scorer s. It fails
// with rtree.ErrStaleSnapshot when the tree was mutated without a
// Refresh.
func (ix *Index) RankOf(s score.Scorer, oid object.ID) (int, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return a.RankOf(s, oid), nil
}

// RankBounds returns bounds [lo, hi] on the count of objects ranking
// strictly above the reference, traversing at most maxDepth levels. It
// fails with rtree.ErrStaleSnapshot when the tree was mutated without a
// Refresh.
func (ix *Index) RankBounds(s score.Scorer, refScore float64, refID object.ID, maxDepth int) (lo, hi int, err error) {
	a, err := ix.Snapshot()
	if err != nil {
		return 0, 0, err
	}
	lo, hi = a.RankBounds(index.NoCancel, s, refScore, refID, maxDepth)
	return lo, hi, nil
}
