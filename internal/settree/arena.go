package settree

import (
	"encoding/binary"
	"fmt"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// This file is the SetR-tree's half of the arena persistence format
// (docs/FORMATS.md): the family-specific leaf-item and augmentation
// column codecs, plus SaveArena/LoadArena. Leaf items serialize as the
// object ID alone — the restored collection is the source of truth for
// location, document, and name — and the augmentation column is laid
// out so every node's Inter/Union keyword sets decode as zero-copy
// sub-slices of the mapped file.

// codec implements rtree.ArenaCodec for the SetR-tree.
//
// Items column: one little-endian u32 object ID per leaf entry.
//
// Augs column: a fixed 16-byte table row per node — u32 len(Inter),
// u32 len(Union), i32 MinLen, i32 MaxLen — followed by one keyword slab
// (u32 keyword IDs): node 0's Inter keywords, node 0's Union keywords,
// node 1's Inter, ... The table length is nodes*16, a multiple of 4, so
// the slab stays 4-byte aligned for keyword aliasing.
type codec struct {
	coll *object.Collection
	// vocabLen bounds every decoded keyword ID: the arena's embedded
	// vocabulary has exactly this many words.
	vocabLen int
}

func (codec) corrupt(format string, args ...any) error {
	return &wal.CorruptionError{Detail: "settree arena: " + fmt.Sprintf(format, args...)}
}

// AppendItems implements rtree.ArenaCodec.
func (codec) AppendItems(dst []byte, entries []rtree.LeafEntry[object.Object]) []byte {
	var b [4]byte
	for i := range entries {
		binary.LittleEndian.PutUint32(b[:], uint32(entries[i].Item.ID))
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeItems implements rtree.ArenaCodec: IDs resolve against the
// restored collection, which reconstructs each entry's rect and item.
func (c codec) DecodeItems(blob []byte, n int) ([]rtree.LeafEntry[object.Object], error) {
	return decodeObjectItems(c.coll, blob, n)
}

// decodeObjectItems is the shared object-ID item decoder of all three
// families (they index the same objects).
func decodeObjectItems(coll *object.Collection, blob []byte, n int) ([]rtree.LeafEntry[object.Object], error) {
	bad := func(format string, args ...any) error {
		return &wal.CorruptionError{Detail: "arena items: " + fmt.Sprintf(format, args...)}
	}
	if len(blob) != n*4 {
		return nil, bad("column is %d bytes, want %d", len(blob), n*4)
	}
	entries := make([]rtree.LeafEntry[object.Object], n)
	for i := 0; i < n; i++ {
		id := object.ID(binary.LittleEndian.Uint32(blob[i*4:]))
		if int(id) >= coll.Len() {
			return nil, bad("entry %d references object %d outside collection of %d", i, id, coll.Len())
		}
		if !coll.Alive(id) {
			return nil, bad("entry %d references dead object %d", i, id)
		}
		o := coll.Get(id)
		entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
	}
	return entries, nil
}

// AppendAugs implements rtree.ArenaCodec.
func (codec) AppendAugs(dst []byte, augs []Aug) []byte {
	var b [4]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	for i := range augs {
		p32(uint32(len(augs[i].Inter)))
		p32(uint32(len(augs[i].Union)))
		p32(uint32(augs[i].MinLen))
		p32(uint32(augs[i].MaxLen))
	}
	for i := range augs {
		for _, kw := range augs[i].Inter {
			p32(uint32(kw))
		}
		for _, kw := range augs[i].Union {
			p32(uint32(kw))
		}
	}
	return dst
}

// DecodeAugs implements rtree.ArenaCodec. Each node's keyword sets are
// sub-slices of the mapped slab — no copy — after validating lengths,
// keyword-ID range, and the sorted-set invariant every merge-walk
// relies on.
func (c codec) DecodeAugs(blob []byte, nodes int) ([]Aug, error) {
	table := nodes * 16
	if len(blob) < table {
		return nil, c.corrupt("aug column is %d bytes, table alone needs %d", len(blob), table)
	}
	if (len(blob)-table)%4 != 0 {
		return nil, c.corrupt("keyword slab length %d is not a multiple of 4", len(blob)-table)
	}
	slab := rtree.AliasColumn[vocab.Keyword](blob[table:], 4)
	augs := make([]Aug, nodes)
	off := 0
	for i := 0; i < nodes; i++ {
		row := blob[i*16:]
		nInter := int(binary.LittleEndian.Uint32(row))
		nUnion := int(binary.LittleEndian.Uint32(row[4:]))
		minLen := int32(binary.LittleEndian.Uint32(row[8:]))
		maxLen := int32(binary.LittleEndian.Uint32(row[12:]))
		if nInter < 0 || nUnion < 0 || off+nInter+nUnion > len(slab) {
			return nil, c.corrupt("node %d keyword ranges overrun slab", i)
		}
		if minLen < 0 || minLen > maxLen {
			return nil, c.corrupt("node %d has length range [%d,%d]", i, minLen, maxLen)
		}
		inter := slab[off : off+nInter : off+nInter]
		off += nInter
		union := slab[off : off+nUnion : off+nUnion]
		off += nUnion
		for _, set := range [2]vocab.KeywordSet{vocab.KeywordSet(inter), vocab.KeywordSet(union)} {
			if err := checkKeywordSet(set, c.vocabLen); err != nil {
				return nil, c.corrupt("node %d: %v", i, err)
			}
		}
		augs[i] = Aug{Inter: vocab.KeywordSet(inter), Union: vocab.KeywordSet(union), MinLen: minLen, MaxLen: maxLen}
	}
	if off != len(slab) {
		return nil, c.corrupt("keyword slab has %d unused keywords", len(slab)-off)
	}
	return augs, nil
}

// checkKeywordSet enforces the KeywordSet invariant (strictly ascending
// IDs) and the arena's vocabulary bound on a decoded, possibly-mapped
// set.
func checkKeywordSet(set vocab.KeywordSet, vocabLen int) error {
	for i, kw := range set {
		if int(kw) >= vocabLen {
			return fmt.Errorf("keyword %d outside embedded vocabulary of %d", kw, vocabLen)
		}
		if i > 0 && set[i-1] >= kw {
			return fmt.Errorf("keyword set not strictly sorted at index %d", i)
		}
	}
	return nil
}

// SaveArena serializes the currently published arena in the on-disk
// format, stamped with the WAL position it is consistent with and the
// complete vocabulary in ID order (so a later process can pin keyword
// IDs before decoding).
func (ix *Index) SaveArena(lsn uint64, vocabWords []string) []byte {
	return ix.pub.Flat().AppendArena(nil, codec{coll: ix.coll},
		rtree.ArenaMeta{LSN: lsn, MaxDist: ix.coll.MaxDist(), Vocab: vocabWords})
}

// LoadArena builds an Index serving the mapped arena directly: queries
// traverse the file-backed columns with zero rebuild work. The
// collection must be the one restored from the checkpoint the arena was
// saved with (same LSN), with the arena's embedded vocabulary already
// pinned (vocab.EnsurePrefix). The first managed mutation thaws a live
// tree from the arena's own entries; maxEntries is its fanout. Every
// decode failure is a *wal.CorruptionError matching wal.ErrCorrupt.
func LoadArena(raw *rtree.RawArena, c *object.Collection, maxEntries int) (*Index, error) {
	f, err := rtree.BuildFlat[object.Object, Aug](raw, codec{coll: c, vocabLen: len(raw.Vocab())})
	if err != nil {
		return nil, err
	}
	ix := &Index{coll: c, sigs: raw.HasSigs()}
	wrap := func(ff *rtree.Flat[object.Object, Aug]) any {
		return &Arena{ix: ix, f: ff, maxDist: c.MaxDist()}
	}
	ix.pub = rtree.NewMappedPublisher(f, wrap, func(ff *rtree.Flat[object.Object, Aug]) *rtree.Tree[object.Object, Aug] {
		t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
		t.SetFreezeSigs(ix.sigs)
		// BulkLoad sorts its input in place; the mapped flat keeps
		// serving, so it must not see its entry slice reordered.
		t.BulkLoad(append([]rtree.LeafEntry[object.Object](nil), ff.AllEntries()...))
		return t
	})
	return ix, nil
}

// Mapped reports whether the index is still serving a mapped arena
// (loaded via LoadArena, no mutation has thawed it yet).
func (ix *Index) Mapped() bool { return ix.pub.Mapped() }
