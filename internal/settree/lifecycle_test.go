package settree

import (
	"errors"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

// TestStaleGuardAfterDirectTreeMutation is the staleness-bug regression
// test: mutating the tree via Tree() must turn every query into an
// error — never a silently stale answer — until Refresh.
func TestStaleGuardAfterDirectTreeMutation(t *testing.T) {
	ds := testDataset(t, 300, 60)
	ix := Build(ds.Objects, 16)
	q := testQueries(ds, 1, 61, 5, 2)[0]
	if _, err := ix.TopK(q); err != nil {
		t.Fatalf("query before mutation: %v", err)
	}

	o := ds.Objects.Get(0)
	ix.Tree().Delete(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })

	if _, err := ix.TopK(q); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("TopK after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}
	s := score.NewScorer(q, ds.Objects)
	if _, err := ix.RankOf(s, 1); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("RankOf after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}
	if _, err := ix.CountBetter(s, 0.5, 1); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("CountBetter after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}
	if _, err := ix.Snapshot(); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("Snapshot after direct mutation: err = %v, want ErrStaleSnapshot", err)
	}

	ix.Refresh()
	res, err := ix.TopK(q)
	if err != nil {
		t.Fatalf("query after Refresh: %v", err)
	}
	for _, r := range res {
		if r.Obj.ID == o.ID {
			t.Fatalf("deleted object %d still in refreshed result", o.ID)
		}
	}
}

// TestManagedMutationServesOldSnapshot: Insert/Remove through the index
// keep queries working against the previous consistent arena (no error),
// and Refresh publishes the change.
func TestManagedMutationServesOldSnapshot(t *testing.T) {
	ds := testDataset(t, 200, 62)
	ix := Build(ds.Objects, 16)
	q := testQueries(ds, 1, 63, 5, 2)[0]

	before, err := ix.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// A new object right at the query point with exactly the query's
	// keywords would win rank 1 once visible.
	winner := object.Object{
		ID:  object.ID(ds.Objects.Len()),
		Loc: q.Loc,
		Doc: q.Doc,
	}
	ix.Insert(winner)

	mid, err := ix.TopK(q)
	if err != nil {
		t.Fatalf("query with pending managed insert: %v", err)
	}
	if len(mid) != len(before) || mid[0].Obj.ID != before[0].Obj.ID {
		t.Fatal("pending insert leaked into the published snapshot")
	}

	ix.Refresh()
	after, err := ix.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Obj.ID != winner.ID {
		t.Fatalf("after Refresh winner is %d, want inserted %d", after[0].Obj.ID, winner.ID)
	}

	if !ix.Remove(winner) {
		t.Fatal("Remove missed the inserted object")
	}
	ix.Refresh()
	final, err := ix.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if final[0].Obj.ID == winner.ID {
		t.Fatal("removed object still ranked first after Refresh")
	}
}

func TestSnapshotGenerationAdvances(t *testing.T) {
	ds := testDataset(t, 50, 64)
	ix := Build(ds.Objects, 8)
	f1, err := ix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ix.Insert(object.Object{ID: object.ID(ds.Objects.Len()), Loc: geo.Point{X: 1, Y: 1}, Doc: ds.Objects.Get(0).Doc})
	ix.Refresh()
	f2, err := ix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Generation() <= f1.Generation() {
		t.Fatalf("generations %d → %d not increasing", f1.Generation(), f2.Generation())
	}
	if f2.Len() != f1.Len()+1 {
		t.Fatalf("refreshed snapshot has %d entries, want %d", f2.Len(), f1.Len()+1)
	}
}
