package settree

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/wal"
)

// saveLoadArena round-trips ix through a file in dir and loads it back
// over the same collection.
func saveLoadArena(t *testing.T, ix *Index, ds *dataset.Dataset, maxE int) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arena-set-0000000000000007.yar")
	if err := rtree.WriteArenaFile(path, ix.SaveArena(7, ds.Vocab.All())); err != nil {
		t.Fatal(err)
	}
	raw, err := rtree.OpenArena(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArena(raw, ds.Objects, maxE)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// assertSameAnswers compares the full top-k surface of two indexes.
func assertSameAnswers(t *testing.T, ctx string, want, got *Index, qs []score.Query) {
	t.Helper()
	for qi, q := range qs {
		wr, err := want.TopK(q)
		if err != nil {
			t.Fatalf("%s q%d: reference TopK: %v", ctx, qi, err)
		}
		gr, err := got.TopK(q)
		if err != nil {
			t.Fatalf("%s q%d: loaded TopK: %v", ctx, qi, err)
		}
		if len(wr) != len(gr) {
			t.Fatalf("%s q%d: %d results, want %d", ctx, qi, len(gr), len(wr))
		}
		for i := range wr {
			if wr[i].Obj.ID != gr[i].Obj.ID || wr[i].Score != gr[i].Score {
				t.Fatalf("%s q%d rank %d: got (%d, %v), want (%d, %v)",
					ctx, qi, i, gr[i].Obj.ID, gr[i].Score, wr[i].Obj.ID, wr[i].Score)
			}
		}
		s := score.NewScorer(q, want.Collection())
		for _, r := range wr {
			wrank, err := want.RankOf(s, r.Obj.ID)
			if err != nil {
				t.Fatal(err)
			}
			grank, err := got.RankOf(s, r.Obj.ID)
			if err != nil {
				t.Fatal(err)
			}
			if wrank != grank {
				t.Fatalf("%s q%d: RankOf(%d) = %d, want %d", ctx, qi, r.Obj.ID, grank, wrank)
			}
		}
	}
}

// TestArenaRoundTripQueries: an index loaded from its arena file serves
// the identical query surface, with and without signatures, without
// ever building a tree.
func TestArenaRoundTripQueries(t *testing.T) {
	ds := testDataset(t, 300, 71)
	qs := testQueries(ds, 8, 72, 5, 2)
	for _, sigs := range []bool{true, false} {
		ix := BuildWith(ds.Objects, 16, sigs)
		loaded := saveLoadArena(t, ix, ds, 16)
		if !loaded.Mapped() {
			t.Fatal("loaded index is not serving the mapped arena")
		}
		if loaded.Signatures() != sigs {
			t.Fatalf("signatures = %v, want %v", loaded.Signatures(), sigs)
		}
		if loaded.Tree() != nil {
			t.Fatal("mapped index should have no tree before the first mutation")
		}
		assertSameAnswers(t, fmt.Sprintf("sigs=%v", sigs), ix, loaded, qs)
	}
}

// TestArenaThawOnMutation: the first managed mutation on a mapped index
// transparently rebuilds a live tree; answers stay identical before the
// refresh and reflect the mutation after it.
func TestArenaThawOnMutation(t *testing.T) {
	ds := testDataset(t, 200, 73)
	q := testQueries(ds, 1, 74, 5, 2)[0]
	ix := Build(ds.Objects, 16)
	loaded := saveLoadArena(t, ix, ds, 16)

	before, err := loaded.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	winner := object.Object{ID: object.ID(ds.Objects.Len()), Loc: q.Loc, Doc: q.Doc}
	loaded.Insert(winner)
	if loaded.Mapped() {
		t.Fatal("index still reports mapped after a managed mutation")
	}
	mid, err := loaded.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != len(before) || mid[0].Obj.ID != before[0].Obj.ID {
		t.Fatal("pending insert leaked into the published snapshot")
	}
	loaded.Refresh()
	after, err := loaded.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Obj.ID != winner.ID {
		t.Fatalf("rank 1 after refresh = %d, want the inserted winner %d", after[0].Obj.ID, winner.ID)
	}
	if tr := loaded.Tree(); tr == nil || tr.Len() != ds.Objects.Len()+1 {
		t.Fatal("thawed tree missing or wrong size")
	}
}

// TestArenaWarmTopKZeroAllocs: the acceptance gate — a warm top-k on
// the mapped file-backed columns must not allocate at all.
func TestArenaWarmTopKZeroAllocs(t *testing.T) {
	ds := testDataset(t, 400, 75)
	qs := testQueries(ds, 16, 76, 10, 2)
	loaded := saveLoadArena(t, Build(ds.Objects, 16), ds, 16)

	var buf []score.Result
	for _, q := range qs { // warm the scratch pool
		buf, _ = loaded.TopKAppend(q, buf[:0])
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, q := range qs {
			buf, _ = loaded.TopKAppend(q, buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("warm TopK on mapped arena allocated %.2f times per batch, want 0", allocs)
	}
}

// TestArenaFaultEveryByteFamily extends the rtree-level exhaustive
// fault test through the settree codec: a bit flip at EVERY byte of the
// file either surfaces wal.ErrCorrupt or leaves the query surface
// byte-identical. A fault can never produce a different answer.
func TestArenaFaultEveryByteFamily(t *testing.T) {
	ds := testDataset(t, 60, 77)
	qs := testQueries(ds, 2, 78, 5, 2)
	ix := Build(ds.Objects, 8)
	path := filepath.Join(t.TempDir(), "arena-set-0000000000000003.yar")
	if err := rtree.WriteArenaFile(path, ix.SaveArena(3, ds.Vocab.All())); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for off := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 1 << (off % 8)
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		ctx := fmt.Sprintf("bit flip at byte %d", off)
		raw, err := rtree.OpenArena(path)
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("%s: error %v is not wal.ErrCorrupt", ctx, err)
			}
			continue
		}
		loaded, err := LoadArena(raw, ds.Objects, 8)
		if err != nil {
			raw.Close()
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("%s: decode error %v is not wal.ErrCorrupt", ctx, err)
			}
			continue
		}
		assertSameAnswers(t, ctx, ix, loaded, qs)
	}
}
