// Package settree implements the SetR-tree of the paper (Section 3.3 and
// ref [6]): an R-tree whose every node carries the *intersection* and the
// *union* of the keyword sets of all objects indexed below it. Those two
// sets bound the Jaccard similarity of any object in the subtree to any
// query keyword set, which — combined with the spatial MinDist/MaxDist
// bounds — yields an admissible upper bound on the ranking score ST for
// the whole subtree. The paper uses exactly this structure for its
// spatial keyword top-k engine because the IR-tree of [4] cannot bound
// Jaccard similarity.
//
// The package provides the best-first top-k algorithm of [4] over this
// index, plus the rank-counting primitive (how many objects rank above a
// given score) that both why-not modules are built on.
package settree

import (
	"slices"
	"sync"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// Aug is the SetR-tree node augmentation: the intersection and union of
// all keyword sets below the node, plus the document-length range —
// the extra pair of integers turns the near-vacuous root-level Jaccard
// bound |q∩U|/|q∪I| into a useful one, because |o ∪ q.doc| is at least
// |o.doc| + |q.doc| − |q.doc ∩ U| for every object below.
type Aug struct {
	// Inter is ⋂ o.doc over all objects o under the node. Every object
	// below contains at least these keywords.
	Inter vocab.KeywordSet
	// Union is ⋃ o.doc over all objects o under the node. No object
	// below contains a keyword outside this set.
	Union vocab.KeywordSet
	// MinLen and MaxLen bound |o.doc| over the objects below.
	MinLen, MaxLen int32
}

type augmenter struct{}

func (augmenter) FromLeaf(o object.Object) Aug {
	n := int32(o.Doc.Len())
	return Aug{Inter: o.Doc, Union: o.Doc, MinLen: n, MaxLen: n}
}

func (augmenter) Merge(a, b Aug) Aug {
	out := Aug{
		Inter:  a.Inter.Intersect(b.Inter),
		Union:  a.Union.Union(b.Union),
		MinLen: a.MinLen, MaxLen: a.MaxLen,
	}
	if b.MinLen < out.MinLen {
		out.MinLen = b.MinLen
	}
	if b.MaxLen > out.MaxLen {
		out.MaxLen = b.MaxLen
	}
	return out
}

// BoundMode selects the Jaccard bound the index prunes with; it exists
// for the ablation study of the doc-length tightening (DESIGN.md §5).
type BoundMode int

const (
	// BoundFull uses intersection/union sets plus document-length
	// range — the production bound.
	BoundFull BoundMode = iota
	// BoundBasic uses only |q ∩ Union| / |q ∪ Inter|, the textbook
	// SetR-tree bound. Sound but much looser near the root.
	BoundBasic
)

// Index is a SetR-tree over a collection of objects. Queries traverse an
// immutable Flat snapshot published through an atomic pointer, so they
// are safe for concurrent use with the mutation path (SetBoundMode must
// still be called before sharing).
//
// Snapshot lifecycle: Insert and Remove mutate the underlying tree and
// record the new generation as "known" — queries keep serving the last
// published snapshot, complete and consistent, until Refresh re-freezes
// off the query path and atomically swaps it in. Mutating the tree
// directly via Tree() bypasses that bookkeeping, and every query fails
// with rtree.ErrStaleSnapshot until Refresh is called: stale answers are
// an error, never a silent wrong result.
type Index struct {
	pub   *rtree.SnapshotPublisher[object.Object, Aug]
	coll  *object.Collection
	bound BoundMode
	// scratch pools per-query traversal state (priority queues, DFS
	// stack) so warm queries run allocation-free.
	scratch sync.Pool
}

// searchScratch is the reusable traversal state of one query. One value
// serves one query at a time; the pool hands each concurrent query its
// own.
type searchScratch struct {
	nodes *pqueue.Queue[flatEntry]
	cand  *pqueue.Queue[score.Result]
	stack []int32
}

// flatEntry is one best-first frontier element over the flat arena.
type flatEntry struct {
	bound float64
	node  int32
}

func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok {
		return sc
	}
	return &searchScratch{
		nodes: pqueue.NewWithCapacity(func(a, b flatEntry) bool {
			return a.bound > b.bound
		}, 64),
		cand: pqueue.NewWithCapacity(score.WorstFirst, 16),
	}
}

func (ix *Index) putScratch(sc *searchScratch) {
	sc.nodes.Reset()
	sc.cand.Reset()
	ix.scratch.Put(sc)
}

// SetBoundMode switches the pruning bound; the default is BoundFull.
func (ix *Index) SetBoundMode(m BoundMode) { ix.bound = m }

// Build bulk-loads a SetR-tree over the live objects of the collection
// with the given node fanout (use rtree.DefaultMaxEntries when in doubt).
func Build(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	v := c.View()
	entries := make([]rtree.LeafEntry[object.Object], 0, v.LiveLen())
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		entries = append(entries, rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o})
	}
	t.BulkLoad(entries)
	return newIndex(t, c)
}

// BuildByInsertion constructs the index by repeated insertion instead of
// bulk loading; used by tests and the index-construction benches.
func BuildByInsertion(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	v := c.View()
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		t.Insert(o.Rect(), o)
	}
	return newIndex(t, c)
}

func newIndex(t *rtree.Tree[object.Object, Aug], c *object.Collection) *Index {
	return &Index{pub: rtree.NewSnapshotPublisher(t), coll: c}
}

// Flat exposes the current frozen arena without a freshness check; the
// query algorithms go through Snapshot instead.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.pub.Flat() }

// Snapshot returns the published frozen arena after verifying that every
// tree mutation went through the managed path (Insert/Remove/Refresh).
// It returns a *rtree.StaleSnapshotError — matching rtree.ErrStaleSnapshot
// — when the tree was mutated directly via Tree() without a Refresh. A
// snapshot that merely lags managed mutations pending a Refresh is still
// served: it is complete and consistent, which is the live-update
// contract.
func (ix *Index) Snapshot() (*rtree.Flat[object.Object, Aug], error) {
	return ix.pub.Snapshot()
}

// Insert adds the object to the underlying tree through the managed
// mutation path. Queries keep serving the previous snapshot until
// Refresh publishes a new one.
func (ix *Index) Insert(o object.Object) { ix.pub.Insert(o.Rect(), o) }

// Remove deletes the object (matched by ID at its location) through the
// managed mutation path and reports whether it was present.
func (ix *Index) Remove(o object.Object) bool {
	return ix.pub.Remove(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })
}

// Refresh re-freezes the tree into a new Flat arena and atomically
// publishes it. The freeze runs off the query path: concurrent queries
// keep traversing the old snapshot and pick up the new one on their next
// acquisition.
func (ix *Index) Refresh() { ix.pub.Refresh() }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Tree exposes the underlying augmented R-tree for structural inspection
// (tests, stats). Mutating it directly leaves the published snapshot
// stale and queries will error until Refresh.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.pub.Tree() }

// Stats returns the node-access statistics collector.
func (ix *Index) Stats() *rtree.Stats { return ix.pub.Tree().Stats() }

// TSimUpperBound returns an upper bound on the Jaccard similarity
// between qdoc and the document of any object under a node with the
// given augmentation.
//
// For any object o in the subtree, Inter ⊆ o.doc ⊆ Union and
// MinLen ≤ |o.doc| ≤ MaxLen, so:
//
//	|o.doc ∩ q| ≤ min(|Union ∩ q|, MaxLen)
//	|o.doc ∪ q| ≥ max(|Inter ∪ q|, MinLen + |q| − |Union ∩ q|)
//
// the second denominator term because |o ∪ q| = |o.doc| + |q| − |o ∩ q|
// and the intersection cannot exceed |Union ∩ q|. The length terms are
// what keeps the bound informative near the root, where Inter is empty
// and Union covers the query.
//
// Under the Dice model the bound is 2·num / (MinLen + |q|), since the
// denominator |o.doc| + |q| is bounded by the minimum document length.
func TSimUpperBound(a Aug, qdoc vocab.KeywordSet, sim score.TextSim) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	// |Union ∩ q| via per-keyword binary search: |q| is tiny, Union can
	// be the whole vocabulary near the root.
	inUnion := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			inUnion++
		}
	}
	if inUnion == 0 {
		return 0
	}
	num := inUnion
	if int(a.MaxLen) < num {
		num = int(a.MaxLen)
	}
	if sim == score.SimDice {
		den := int(a.MinLen) + len(qdoc)
		if den == 0 {
			return 0
		}
		ub := 2 * float64(num) / float64(den)
		if ub > 1 {
			return 1
		}
		return ub
	}
	den := a.Inter.UnionLen(qdoc)
	if byLen := int(a.MinLen) + len(qdoc) - inUnion; byLen > den {
		den = byLen
	}
	if den < num {
		den = num
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// boundAt bounds ST(o, q) for every object o under node n of arena f.
func (ix *Index) boundAt(f *rtree.Flat[object.Object, Aug], s score.Scorer, n int32) float64 {
	minSD := s.SDistRectMin(f.Rect(n))
	a := f.Aug(n)
	var tUB float64
	if ix.bound == BoundBasic {
		tUB = TSimUpperBoundBasic(*a, s.Query.Doc)
	} else {
		tUB = TSimUpperBound(*a, s.Query.Doc, s.Query.Sim)
	}
	return s.Query.W.Ws*(1-minSD) + s.Query.W.Wt*tUB
}

// TSimUpperBoundBasic is the textbook SetR-tree Jaccard bound
// |q ∩ Union| / |q ∪ Inter| without the doc-length tightening. Exported
// for the ablation bench; production code uses TSimUpperBound.
func TSimUpperBoundBasic(a Aug, qdoc vocab.KeywordSet) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	num := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			num++
		}
	}
	if num == 0 {
		return 0
	}
	den := a.Inter.UnionLen(qdoc)
	if den < num {
		den = num
	}
	return float64(num) / float64(den)
}

// TopK runs the best-first spatial keyword top-k algorithm of [4] over
// the SetR-tree: a priority queue holds nodes keyed by their score upper
// bound and objects keyed by their exact score; when an object surfaces
// before every remaining node bound, it is guaranteed to be the next
// result. Results come back in rank order (Definition 1 with ID
// tie-break). Fewer than k results are returned only when the collection
// is smaller than k. It fails with rtree.ErrStaleSnapshot when the tree
// was mutated without a Refresh.
func (ix *Index) TopK(q score.Query) ([]score.Result, error) {
	return ix.TopKAppend(q, nil)
}

// TopKAppend is TopK appending results to dst, so a caller reusing its
// buffer across queries runs the warm path without allocating.
func (ix *Index) TopKAppend(q score.Query, dst []score.Result) ([]score.Result, error) {
	f, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	s := score.NewScorer(q, ix.coll)
	return ix.topKAppend(f, s, q.K, dst), nil
}

// TopKScorer is TopK with a caller-prepared scorer, letting the why-not
// engines re-run queries with modified weights or keywords without
// re-deriving normalization.
func (ix *Index) TopKScorer(s score.Scorer) ([]score.Result, error) {
	f, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return ix.topKAppend(f, s, s.Query.K, nil), nil
}

// TopKScorerAppendOn is TopKScorer appending into dst over a snapshot
// the caller already acquired (and freshness-checked) via Snapshot —
// the building block for multi-traversal algorithms that must run
// entirely against one consistent arena.
func (ix *Index) TopKScorerAppendOn(f *rtree.Flat[object.Object, Aug], s score.Scorer, dst []score.Result) []score.Result {
	return ix.topKAppend(f, s, s.Query.K, dst)
}

// topKAppend is the two-heap best-first search of [4] over the flat
// arena: a max-heap of nodes ordered by score upper bound, and a bounded
// min-heap of the k best objects seen. A node whose bound is strictly
// below the current k-th best score cannot contribute (ties must still
// be expanded: they can hide an equal-score object with a smaller ID).
// Both heaps come from the per-index scratch pool, so the warm path does
// not allocate.
func (ix *Index) topKAppend(f *rtree.Flat[object.Object, Aug], s score.Scorer, k int, dst []score.Result) []score.Result {
	if f.Empty() || k <= 0 {
		return dst
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	nodes, cand := sc.nodes, sc.cand
	nodes.Push(flatEntry{bound: ix.boundAt(f, s, 0), node: 0})

	accesses := int64(0)
	for nodes.Len() > 0 {
		top := nodes.Pop()
		if cand.Len() == k && top.bound < cand.Peek().Score {
			break // no remaining node can improve the result
		}
		n := top.node
		accesses++
		if f.IsLeaf(n) {
			for _, e := range f.Entries(n) {
				scv := s.Score(e.Item)
				if cand.Len() < k {
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				} else if w := cand.Peek(); score.Better(scv, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				}
			}
			continue
		}
		kth := -1.0
		if cand.Len() == k {
			kth = cand.Peek().Score
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if b := ix.boundAt(f, s, c); b >= kth {
				nodes.Push(flatEntry{bound: b, node: c})
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	base, n := len(dst), cand.Len()
	dst = slices.Grow(dst, n)[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = cand.Pop()
	}
	return dst
}

// CountBetter returns the number of objects that rank strictly above the
// reference (refScore, refID) pair under scorer s, i.e. the reference's
// rank minus one. It fails with rtree.ErrStaleSnapshot when the tree was
// mutated without a Refresh.
func (ix *Index) CountBetter(s score.Scorer, refScore float64, refID object.ID) (int, error) {
	f, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return ix.CountBetterOn(f, s, refScore, refID), nil
}

// CountBetterOn is CountBetter over a snapshot the caller already
// acquired via Snapshot. The traversal prunes subtrees whose score upper
// bound cannot beat the reference; it descends otherwise. The reference
// object itself (matched by ID) is never counted.
func (ix *Index) CountBetterOn(f *rtree.Flat[object.Object, Aug], s score.Scorer, refScore float64, refID object.ID) int {
	if f.Empty() {
		return 0
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	stack := append(sc.stack[:0], 0)
	count := 0
	accesses := int64(0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		accesses++
		if f.IsLeaf(n) {
			for _, e := range f.Entries(n) {
				if e.Item.ID == refID {
					continue
				}
				if score.Better(s.Score(e.Item), e.Item.ID, refScore, refID) {
					count++
				}
			}
			continue
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			// A subtree whose best possible score is below the
			// reference (or ties with a larger smallest-possible ID —
			// unknowable cheaply, so only strict inequality prunes)
			// contributes nothing.
			if ix.boundAt(f, s, c) < refScore {
				continue
			}
			stack = append(stack, c)
		}
	}
	sc.stack = stack[:0]
	f.Stats().AddNodeAccesses(accesses)
	return count
}

// RankOf returns the 1-based rank of object oid under scorer s: one plus
// the number of objects ranking strictly above it. It fails with
// rtree.ErrStaleSnapshot when the tree was mutated without a Refresh.
func (ix *Index) RankOf(s score.Scorer, oid object.ID) (int, error) {
	f, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return ix.RankOfOn(f, s, oid), nil
}

// RankOfOn is RankOf over a snapshot the caller already acquired via
// Snapshot.
func (ix *Index) RankOfOn(f *rtree.Flat[object.Object, Aug], s score.Scorer, oid object.ID) int {
	o := ix.coll.Get(oid)
	return ix.CountBetterOn(f, s, s.Score(o), oid) + 1
}

// ScanTopK is the brute-force oracle: score every object and select the
// top k. It exists as the baseline the benches compare against and as
// the reference implementation tests validate the index against.
func ScanTopK(c *object.Collection, q score.Query) []score.Result {
	s := score.NewScorer(q, c)
	if q.K <= 0 || c.Len() == 0 {
		return nil
	}
	// Keep a bounded max-heap (invert: pop worst) of the k best.
	pq := pqueue.NewWithCapacity(score.WorstFirst, q.K+1)
	for _, o := range c.All() {
		if !c.Alive(o.ID) {
			continue
		}
		pq.Push(score.Result{Obj: o, Score: s.Score(o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// ScanRank is the brute-force rank oracle matching RankOf.
func ScanRank(c *object.Collection, s score.Scorer, oid object.ID) int {
	ref := c.Get(oid)
	refScore := s.Score(ref)
	rank := 1
	for _, o := range c.All() {
		if o.ID == oid || !c.Alive(o.ID) {
			continue
		}
		if score.Better(s.Score(o), o.ID, refScore, oid) {
			rank++
		}
	}
	return rank
}
