// Package settree implements the SetR-tree of the paper (Section 3.3 and
// ref [6]): an R-tree whose every node carries the *intersection* and the
// *union* of the keyword sets of all objects indexed below it. Those two
// sets bound the Jaccard similarity of any object in the subtree to any
// query keyword set, which — combined with the spatial MinDist/MaxDist
// bounds — yields an admissible upper bound on the ranking score ST for
// the whole subtree. The paper uses exactly this structure for its
// spatial keyword top-k engine because the IR-tree of [4] cannot bound
// Jaccard similarity.
//
// The package provides the best-first top-k algorithm of [4] over this
// index, plus the rank-counting primitive (how many objects rank above a
// given score) that both why-not modules are built on. The Index
// implements index.Provider and its Arena implements index.Snapshot, so
// the engine and the shard executor drive it through the shared
// contract.
package settree

import (
	"sync"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// Aug is the SetR-tree node augmentation: the intersection and union of
// all keyword sets below the node, plus the document-length range —
// the extra pair of integers turns the near-vacuous root-level Jaccard
// bound |q∩U|/|q∪I| into a useful one, because |o ∪ q.doc| is at least
// |o.doc| + |q.doc| − |q.doc ∩ U| for every object below.
type Aug struct {
	// Inter is ⋂ o.doc over all objects o under the node. Every object
	// below contains at least these keywords.
	Inter vocab.KeywordSet
	// Union is ⋃ o.doc over all objects o under the node. No object
	// below contains a keyword outside this set.
	Union vocab.KeywordSet
	// MinLen and MaxLen bound |o.doc| over the objects below.
	MinLen, MaxLen int32
}

type augmenter struct{}

func (augmenter) FromLeaf(o object.Object) Aug {
	n := int32(o.Doc.Len())
	return Aug{Inter: o.Doc, Union: o.Doc, MinLen: n, MaxLen: n}
}

// NodeSig implements rtree.KeywordSigger: the node signature covers the
// keyword union of everything below, so a query keyword absent from the
// signature is provably absent from every object in the subtree.
func (augmenter) NodeSig(a *Aug) vocab.Signature { return a.Union.Signature() }

// LeafSig implements rtree.KeywordSigger.
func (augmenter) LeafSig(o *object.Object) vocab.Signature { return o.Doc.Signature() }

func (augmenter) Merge(a, b Aug) Aug {
	out := Aug{
		Inter:  a.Inter.Intersect(b.Inter),
		Union:  a.Union.Union(b.Union),
		MinLen: a.MinLen, MaxLen: a.MaxLen,
	}
	if b.MinLen < out.MinLen {
		out.MinLen = b.MinLen
	}
	if b.MaxLen > out.MaxLen {
		out.MaxLen = b.MaxLen
	}
	return out
}

// BoundMode selects the Jaccard bound the index prunes with; it exists
// for the ablation study of the doc-length tightening (experiment e8).
type BoundMode int

const (
	// BoundFull uses intersection/union sets plus document-length
	// range — the production bound.
	BoundFull BoundMode = iota
	// BoundBasic uses only |q ∩ Union| / |q ∪ Inter|, the textbook
	// SetR-tree bound. Sound but much looser near the root.
	BoundBasic
)

// Index is a SetR-tree over a collection of objects. Queries traverse an
// immutable Arena snapshot published through an atomic pointer, so they
// are safe for concurrent use with the mutation path (SetBoundMode must
// still be called before sharing).
//
// Snapshot lifecycle: Insert and Remove mutate the underlying tree and
// record the new generation as "known" — queries keep serving the last
// published snapshot, complete and consistent, until Refresh re-freezes
// off the query path and atomically swaps it in. Mutating the tree
// directly via Tree() bypasses that bookkeeping, and every query fails
// with rtree.ErrStaleSnapshot until Refresh is called: stale answers are
// an error, never a silent wrong result.
type Index struct {
	pub   *rtree.SnapshotPublisher[object.Object, Aug]
	coll  *object.Collection
	bound BoundMode
	// sigs enables the keyword-signature pruning layer (default on):
	// traversals probe the arena's per-node/per-entry signature bitmaps
	// for a constant-time intersection upper bound before running the
	// exact merge-walk bounds. Answers are byte-identical either way —
	// signatures only decide when the exact computation can be skipped.
	sigs bool
	// scratch pools per-query traversal state (priority queues, DFS
	// stack) so warm queries run allocation-free.
	scratch sync.Pool
}

// Arena is one published snapshot of the index: the frozen flat arena
// together with the SDist normalization constant (the data-space
// diagonal) captured at the freeze, so scores computed against it are
// deterministic even while mutations are buffered. Arena implements
// index.Snapshot.
type Arena struct {
	ix      *Index
	f       *rtree.Flat[object.Object, Aug]
	maxDist float64
}

// searchScratch is the reusable traversal state of one query. One value
// serves one query at a time; the pool hands each concurrent query its
// own.
type searchScratch struct {
	nodes *pqueue.Queue[index.NodeEntry]
	cand  *pqueue.Queue[score.Result]
	stack []int32
	// ctr batches the query's signature-layer statistics; flushed to
	// the arena's Stats once per traversal.
	ctr index.SigCounters
}

//yask:hotpath
func (ix *Index) getScratch() *searchScratch {
	if sc, ok := ix.scratch.Get().(*searchScratch); ok { //yask:allocok(sync.Pool hit path does not allocate)
		return sc
	}
	return &searchScratch{ //yask:allocok(pool miss: one-time scratch construction, amortized across queries)
		nodes: pqueue.NewWithCapacity(index.NodeOrder, 64),  //yask:allocok(pool miss construction)
		cand:  pqueue.NewWithCapacity(score.WorstFirst, 16), //yask:allocok(pool miss construction)
	}
}

//yask:hotpath
func (ix *Index) putScratch(sc *searchScratch) {
	sc.nodes.Reset()
	sc.cand.Reset()
	ix.scratch.Put(sc) //yask:allocok(sync.Pool put does not allocate; the interface box is the pooled pointer)
}

// SetBoundMode switches the pruning bound; the default is BoundFull.
func (ix *Index) SetBoundMode(m BoundMode) { ix.bound = m }

// SetSignatures toggles the keyword-signature pruning layer (default
// on). Disabling it forces every traversal onto the exact merge-walk
// bounds — the ablation/off switch of the e12 bench and the
// equivalence suite; results are byte-identical either way. Future
// freezes also stop materializing the signature columns (arenas
// already published keep theirs, unused). Like SetBoundMode it must be
// called before the index is shared.
func (ix *Index) SetSignatures(on bool) {
	ix.sigs = on
	if t := ix.pub.Tree(); t != nil {
		t.SetFreezeSigs(on)
	}
}

// Signatures reports whether the signature pruning layer is enabled.
func (ix *Index) Signatures() bool { return ix.sigs }

// sigEnabled reports whether query traversals may probe signatures:
// the layer is on and the production bound mode is active (the
// BoundBasic ablation measures the textbook bound alone).
//
//yask:hotpath
func (ix *Index) sigEnabled() bool { return ix.sigs && ix.bound == BoundFull }

// Build bulk-loads a SetR-tree over the live objects of the collection
// with the given node fanout (use rtree.DefaultMaxEntries when in doubt).
func Build(c *object.Collection, maxEntries int) *Index {
	return BuildWith(c, maxEntries, true)
}

// BuildWith is Build with the signature layer pre-configured, so a
// disabled index never materializes signature columns — not even in
// the freeze that publishes the initial arena.
func BuildWith(c *object.Collection, maxEntries int, signatures bool) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	t.SetFreezeSigs(signatures)
	v := c.View()
	entries := make([]rtree.LeafEntry[object.Object], 0, v.LiveLen())
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		entries = append(entries, rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o})
	}
	t.BulkLoad(entries)
	ix := newIndex(t, c)
	ix.sigs = signatures
	return ix
}

// BuildByInsertion constructs the index by repeated insertion instead of
// bulk loading; used by tests and the index-construction benches.
func BuildByInsertion(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	v := c.View()
	for _, o := range v.All() {
		if !v.Alive(o.ID) {
			continue
		}
		t.Insert(o.Rect(), o)
	}
	return newIndex(t, c)
}

func newIndex(t *rtree.Tree[object.Object, Aug], c *object.Collection) *Index {
	ix := &Index{coll: c, sigs: true}
	ix.pub = rtree.NewSnapshotPublisher(t, func(f *rtree.Flat[object.Object, Aug]) any {
		return &Arena{ix: ix, f: f, maxDist: c.MaxDist()}
	})
	return ix
}

// Builder returns an index.Builder constructing SetR-trees with the
// given fanout — the factory the shard executor builds partitions with.
func Builder(maxEntries int) index.Builder { return BuilderWith(maxEntries, true) }

// BuilderWith is Builder with the keyword-signature pruning layer
// toggled; the sharded engine threads its configuration through here.
func BuilderWith(maxEntries int, signatures bool) index.Builder {
	return func(c *object.Collection) index.Provider {
		return BuildWith(c, maxEntries, signatures)
	}
}

// Flat exposes the current frozen arena without a freshness check; the
// query algorithms go through Snapshot instead.
func (ix *Index) Flat() *rtree.Flat[object.Object, Aug] { return ix.pub.Flat() }

// Snapshot returns the published arena after verifying that every tree
// mutation went through the managed path (Insert/Remove/Refresh). It
// returns a *rtree.StaleSnapshotError — matching rtree.ErrStaleSnapshot
// — when the tree was mutated directly via Tree() without a Refresh. A
// snapshot that merely lags managed mutations pending a Refresh is still
// served: it is complete and consistent, which is the live-update
// contract.
func (ix *Index) Snapshot() (*Arena, error) {
	_, p, err := ix.pub.Snapshot()
	if err != nil {
		return nil, err
	}
	return p.(*Arena), nil
}

// Acquire implements index.Provider.
func (ix *Index) Acquire() (index.Snapshot, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Insert adds the object to the underlying tree through the managed
// mutation path. Queries keep serving the previous snapshot until
// Refresh publishes a new one.
func (ix *Index) Insert(o object.Object) { ix.pub.Insert(o.Rect(), o) }

// Remove deletes the object (matched by ID at its location) through the
// managed mutation path and reports whether it was present.
func (ix *Index) Remove(o object.Object) bool {
	return ix.pub.Remove(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })
}

// Refresh re-freezes the tree into a new Arena and atomically publishes
// it. The freeze runs off the query path: concurrent queries keep
// traversing the old snapshot and pick up the new one on their next
// acquisition.
func (ix *Index) Refresh() { ix.pub.Refresh() }

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Tree exposes the underlying augmented R-tree for structural inspection
// (tests, stats); nil while the index serves a mapped arena (LoadArena)
// that no mutation has thawed yet. Mutating it directly leaves the
// published snapshot stale and queries will error until Refresh.
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.pub.Tree() }

// Stats returns the node-access statistics collector of the published
// arena (shared with the source tree when there is one).
func (ix *Index) Stats() *rtree.Stats { return ix.pub.Flat().Stats() }

// TSimUpperBound returns an upper bound on the Jaccard similarity
// between qdoc and the document of any object under a node with the
// given augmentation.
//
// For any object o in the subtree, Inter ⊆ o.doc ⊆ Union and
// MinLen ≤ |o.doc| ≤ MaxLen, so:
//
//	|o.doc ∩ q| ≤ min(|Union ∩ q|, MaxLen)
//	|o.doc ∪ q| ≥ max(|Inter ∪ q|, MinLen + |q| − |Union ∩ q|)
//
// the second denominator term because |o ∪ q| = |o.doc| + |q| − |o ∩ q|
// and the intersection cannot exceed |Union ∩ q|. The length terms are
// what keeps the bound informative near the root, where Inter is empty
// and Union covers the query.
//
// Under the Dice model the bound is 2·num / (MinLen + |q|), since the
// denominator |o.doc| + |q| is bounded by the minimum document length.
//
//yask:hotpath
func TSimUpperBound(a Aug, qdoc vocab.KeywordSet, sim score.TextSim) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	// |Union ∩ q| via per-keyword binary search: |q| is tiny, Union can
	// be the whole vocabulary near the root.
	inUnion := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			inUnion++
		}
	}
	if inUnion == 0 {
		return 0
	}
	num := inUnion
	if int(a.MaxLen) < num {
		num = int(a.MaxLen)
	}
	if sim == score.SimDice {
		den := int(a.MinLen) + len(qdoc)
		if den == 0 {
			return 0
		}
		ub := 2 * float64(num) / float64(den)
		if ub > 1 {
			return 1
		}
		return ub
	}
	den := a.Inter.UnionLen(qdoc)
	if byLen := int(a.MinLen) + len(qdoc) - inUnion; byLen > den {
		den = byLen
	}
	if den < num {
		den = num
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// quickTSimHi is the constant-time signature upper bound on the textual
// similarity of any object under a node, evaluated in place of the
// exact per-keyword Union walk of TSimUpperBound.
//
//yask:hotpath
func quickTSimHi(a *Aug, s *score.Scorer, qs *vocab.QuerySig, nsig *vocab.Signature) float64 {
	m := qs.IntersectBound(nsig)
	return score.SigSimUpperBound(s.Query.Sim, m, int(a.MinLen), int(a.MaxLen), len(a.Inter), qs.Len)
}

// boundAt bounds ST(o, q) for every object o under node n of arena f.
// With the signature layer active (useSig), a constant-time bound from
// the node's keyword signature is tried first: a disjoint signature
// proves the textual bound is exactly 0, and a signature bound already
// strictly below limit is returned as-is — the caller discards bounds
// below its limit, so the exact merge-walk never runs for nodes the
// cheap bound can dismiss. Bounds at or above the limit fall through to
// the exact computation, so heap ordering and results are identical to
// the signature-free traversal.
//
//yask:hotpath
func (ix *Index) boundAt(f *rtree.Flat[object.Object, Aug], s score.Scorer, qs *vocab.QuerySig, useSig bool, n int32, limit float64, ctr *index.SigCounters) float64 {
	w := s.Query.W
	spatial := w.Ws * (1 - s.SDistRectMin(f.Rect(n)))
	a := f.Aug(n)
	if useSig {
		ctr.Probes++
		nsig := f.Sig(n)
		if qs.Disjoint(nsig) {
			ctr.Hits++
			return spatial // textual bound exactly 0
		}
		quick := spatial + w.Wt*quickTSimHi(a, &s, qs, nsig)
		if quick < limit {
			ctr.Hits++
			return quick
		}
	}
	ctr.Exact++
	var tUB float64
	if ix.bound == BoundBasic {
		tUB = TSimUpperBoundBasic(*a, s.Query.Doc)
	} else {
		tUB = TSimUpperBound(*a, s.Query.Doc, s.Query.Sim)
	}
	return spatial + w.Wt*tUB
}

// TSimUpperBoundBasic is the textbook SetR-tree Jaccard bound
// |q ∩ Union| / |q ∪ Inter| without the doc-length tightening. Exported
// for the ablation bench; production code uses TSimUpperBound.
//
//yask:hotpath
func TSimUpperBoundBasic(a Aug, qdoc vocab.KeywordSet) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	num := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			num++
		}
	}
	if num == 0 {
		return 0
	}
	den := a.Inter.UnionLen(qdoc)
	if den < num {
		den = num
	}
	return float64(num) / float64(den)
}

// Flat exposes the underlying frozen arena for structural tests.
func (a *Arena) Flat() *rtree.Flat[object.Object, Aug] { return a.f }

// MaxDist implements index.Snapshot: the normalization constant frozen
// with this arena.
func (a *Arena) MaxDist() float64 { return a.maxDist }

// Scorer returns a scorer for q pinned to this snapshot's normalization
// constant.
func (a *Arena) Scorer(q score.Query) score.Scorer {
	return score.Scorer{Query: q, MaxDist: a.maxDist}
}

// Generation returns the tree generation the arena was frozen at.
func (a *Arena) Generation() uint64 { return a.f.Generation() }

// Epoch implements index.Snapshot: the process-wide identity the
// publisher stamped into this arena at publication.
func (a *Arena) Epoch() uint64 { return a.f.Epoch() }

// Len returns the number of indexed objects in the arena.
func (a *Arena) Len() int { return a.f.Len() }

// Parts implements index.Snapshot: a single arena is one partition.
func (a *Arena) Parts() int { return 1 }

// TopKPart implements index.Snapshot; part must be 0.
//
//yask:hotpath
func (a *Arena) TopKPart(cc index.Cancel, part int, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	return a.TopK(cc, s, k, shared, dst)
}

// TopK runs the best-first spatial keyword top-k algorithm of [4] over
// the SetR-tree through the shared index.BestFirstTopK driver, with the
// SetR-tree's doc-length-tightened Jaccard bound as the node bound.
// Results come back in rank order (Definition 1 with ID tie-break).
// Fewer than k results are returned only when the collection is smaller
// than k — or when a non-nil shared bound proves the missing tail
// cannot enter the cross-partition top k.
//
//yask:hotpath
func (a *Arena) TopK(cc index.Cancel, s score.Scorer, k int, shared *index.Bound, dst []score.Result) []score.Result {
	ix, f := a.ix, a.f
	if f.Empty() || k <= 0 {
		return dst
	}
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, useSig := index.PrepareSig(f, ix.sigEnabled(), s.Query.Doc)
	dst = index.BestFirstTopK(f, cc, k, shared, sc.nodes, sc.cand,
		func(n int32, limit float64) float64 {
			return ix.boundAt(f, s, &qs, useSig, n, limit, &sc.ctr)
		},
		func(ei int32, e *rtree.LeafEntry[object.Object], limit float64) (float64, bool) {
			return index.ScoreEntryCounted(&s, e, esigs, ei, &qs, limit, &sc.ctr)
		},
		dst)
	sc.ctr.Flush(f.Stats())
	return dst
}

// CountBetter implements index.Snapshot: the number of objects whose
// (score, ID) pair strictly dominates (refScore, tie) under scorer s.
// The traversal prunes subtrees whose score upper bound cannot beat the
// reference; it descends otherwise. The reference pair need not name an
// indexed object — an object scoring exactly refScore with ID tie never
// dominates itself, so RankOf needs no self-exclusion.
//
//yask:hotpath
func (a *Arena) CountBetter(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID) int {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, esigs, useSig := index.PrepareSig(f, ix.sigEnabled(), s.Query.Doc)
	entries := f.AllEntries()
	count := 0
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			eLo, eHi := f.EntryRange(n)
			for ei := eLo; ei < eHi; ei++ {
				e := &entries[ei]
				// An entry capped strictly below refScore cannot
				// dominate the reference pair, whatever its ID.
				scv, ok := index.ScoreEntryCounted(&s, e, esigs, ei, &qs, refScore, &sc.ctr)
				if ok && score.Better(scv, e.Item.ID, refScore, tie) {
					count++
				}
			}
		},
		// A subtree whose best possible score is below the reference
		// (or ties with a larger smallest-possible ID — unknowable
		// cheaply, so only strict inequality prunes) contributes
		// nothing.
		func(c int32) bool {
			return ix.boundAt(f, s, &qs, useSig, c, refScore, &sc.ctr) >= refScore
		})
	sc.ctr.Flush(f.Stats())
	return count
}

// RankBounds implements index.Snapshot. The SetR-tree augmentation
// carries no subtree cardinality, so depth-limited bounding cannot
// count pruned subtrees wholesale; the exact count is returned as both
// bounds regardless of maxDepth.
//
//yask:hotpath
func (a *Arena) RankBounds(cc index.Cancel, s score.Scorer, refScore float64, tie object.ID, maxDepth int) (lo, hi int) {
	n := a.CountBetter(cc, s, refScore, tie)
	return n, n
}

// RankOf returns the 1-based rank of object oid under scorer s: one plus
// the number of objects ranking strictly above it.
//
//yask:hotpath
func (a *Arena) RankOf(s score.Scorer, oid object.ID) int {
	o := a.ix.coll.Get(oid)
	return a.CountBetter(index.NoCancel, s, s.Score(o), oid) + 1
}

// ForEachCross implements index.Snapshot: it visits every object whose
// score line over wt ∈ (0, 1) is not provably strictly below the
// reference line (m0 at wt=0, m1 at wt=1). The SetR-tree has upper
// bounds only — no subtree cardinality, no similarity lower bound — so
// it never reports wholesale-above subtrees; survivors are visited
// object by object.
//
//yask:hotpath
func (a *Arena) ForEachCross(cc index.Cancel, s score.Scorer, m0, m1 float64, visit func(object.Object), above func(int)) {
	ix, f := a.ix, a.f
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	qs, _, useSig := index.PrepareSig(f, ix.sigEnabled(), s.Query.Doc)
	sc.stack = index.PrunedDFS(f, cc, sc.stack,
		func(n int32) {
			for _, e := range f.Entries(n) {
				visit(e.Item)
			}
		},
		func(c int32) bool {
			// Every line below the node is bracketed by aHi at wt=0 and
			// tHi at wt=1; below the reference at both ends means below
			// on the whole interval — prune. A node already above the
			// reference at the spatial end descends without any textual
			// work.
			aHi := 1 - s.SDistRectMin(f.Rect(c))
			if aHi >= m0 {
				return true
			}
			aug := f.Aug(c)
			if useSig {
				ctr := &sc.ctr
				ctr.Probes++
				nsig := f.Sig(c)
				if qs.Disjoint(nsig) {
					ctr.Hits++
					return !(0 < m1) // tHi exactly 0
				}
				if quick := quickTSimHi(aug, &s, &qs, nsig); quick < m1 {
					ctr.Hits++
					return false // exact tHi ≤ quick: provably below at both ends
				}
			}
			sc.ctr.Exact++
			var tHi float64
			if ix.bound == BoundBasic {
				tHi = TSimUpperBoundBasic(*aug, s.Query.Doc)
			} else {
				tHi = TSimUpperBound(*aug, s.Query.Doc, s.Query.Sim)
			}
			return !(tHi < m1)
		})
	sc.ctr.Flush(f.Stats())
}

// TopK answers the spatial keyword top-k query over the current
// snapshot, building the scorer from the snapshot's normalization
// constant. It fails with rtree.ErrStaleSnapshot when the tree was
// mutated without a Refresh.
func (ix *Index) TopK(q score.Query) ([]score.Result, error) {
	return ix.TopKAppend(q, nil)
}

// TopKAppend is TopK appending results to dst, so a caller reusing its
// buffer across queries runs the warm path without allocating.
func (ix *Index) TopKAppend(q score.Query, dst []score.Result) ([]score.Result, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return a.TopK(index.NoCancel, a.Scorer(q), q.K, nil, dst), nil
}

// TopKScorer is TopK with a caller-prepared scorer, letting the why-not
// engines re-run queries with modified weights or keywords without
// re-deriving normalization.
func (ix *Index) TopKScorer(s score.Scorer) ([]score.Result, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return nil, err
	}
	return a.TopK(index.NoCancel, s, s.Query.K, nil, nil), nil
}

// CountBetter returns the number of objects whose (score, ID) pair
// strictly dominates the reference pair under scorer s. It fails with
// rtree.ErrStaleSnapshot when the tree was mutated without a Refresh.
func (ix *Index) CountBetter(s score.Scorer, refScore float64, tie object.ID) (int, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return a.CountBetter(index.NoCancel, s, refScore, tie), nil
}

// RankOf returns the 1-based rank of object oid under scorer s. It
// fails with rtree.ErrStaleSnapshot when the tree was mutated without a
// Refresh.
func (ix *Index) RankOf(s score.Scorer, oid object.ID) (int, error) {
	a, err := ix.Snapshot()
	if err != nil {
		return 0, err
	}
	return a.RankOf(s, oid), nil
}

// ScanTopK is the brute-force oracle: score every object and select the
// top k. It delegates to index.ScanTopK, kept as an alias so the
// family's tests and benches read naturally.
func ScanTopK(c *object.Collection, q score.Query) []score.Result {
	return index.ScanTopK(c, q)
}

// ScanRank is the brute-force rank oracle matching RankOf; an alias of
// index.ScanRank.
func ScanRank(c *object.Collection, s score.Scorer, oid object.ID) int {
	return index.ScanRank(c, s, oid)
}
