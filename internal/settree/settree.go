// Package settree implements the SetR-tree of the paper (Section 3.3 and
// ref [6]): an R-tree whose every node carries the *intersection* and the
// *union* of the keyword sets of all objects indexed below it. Those two
// sets bound the Jaccard similarity of any object in the subtree to any
// query keyword set, which — combined with the spatial MinDist/MaxDist
// bounds — yields an admissible upper bound on the ranking score ST for
// the whole subtree. The paper uses exactly this structure for its
// spatial keyword top-k engine because the IR-tree of [4] cannot bound
// Jaccard similarity.
//
// The package provides the best-first top-k algorithm of [4] over this
// index, plus the rank-counting primitive (how many objects rank above a
// given score) that both why-not modules are built on.
package settree

import (
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// Aug is the SetR-tree node augmentation: the intersection and union of
// all keyword sets below the node, plus the document-length range —
// the extra pair of integers turns the near-vacuous root-level Jaccard
// bound |q∩U|/|q∪I| into a useful one, because |o ∪ q.doc| is at least
// |o.doc| + |q.doc| − |q.doc ∩ U| for every object below.
type Aug struct {
	// Inter is ⋂ o.doc over all objects o under the node. Every object
	// below contains at least these keywords.
	Inter vocab.KeywordSet
	// Union is ⋃ o.doc over all objects o under the node. No object
	// below contains a keyword outside this set.
	Union vocab.KeywordSet
	// MinLen and MaxLen bound |o.doc| over the objects below.
	MinLen, MaxLen int32
}

type augmenter struct{}

func (augmenter) FromLeaf(o object.Object) Aug {
	n := int32(o.Doc.Len())
	return Aug{Inter: o.Doc, Union: o.Doc, MinLen: n, MaxLen: n}
}

func (augmenter) Merge(a, b Aug) Aug {
	out := Aug{
		Inter:  a.Inter.Intersect(b.Inter),
		Union:  a.Union.Union(b.Union),
		MinLen: a.MinLen, MaxLen: a.MaxLen,
	}
	if b.MinLen < out.MinLen {
		out.MinLen = b.MinLen
	}
	if b.MaxLen > out.MaxLen {
		out.MaxLen = b.MaxLen
	}
	return out
}

// BoundMode selects the Jaccard bound the index prunes with; it exists
// for the ablation study of the doc-length tightening (DESIGN.md §5).
type BoundMode int

const (
	// BoundFull uses intersection/union sets plus document-length
	// range — the production bound.
	BoundFull BoundMode = iota
	// BoundBasic uses only |q ∩ Union| / |q ∪ Inter|, the textbook
	// SetR-tree bound. Sound but much looser near the root.
	BoundBasic
)

// Index is a SetR-tree over a collection of objects. It is immutable
// after construction and safe for concurrent readers (SetBoundMode must
// be called before sharing).
type Index struct {
	tree  *rtree.Tree[object.Object, Aug]
	coll  *object.Collection
	bound BoundMode
}

// SetBoundMode switches the pruning bound; the default is BoundFull.
func (ix *Index) SetBoundMode(m BoundMode) { ix.bound = m }

// Build bulk-loads a SetR-tree over the collection with the given node
// fanout (use rtree.DefaultMaxEntries when in doubt).
func Build(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	entries := make([]rtree.LeafEntry[object.Object], c.Len())
	for i, o := range c.All() {
		entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
	}
	t.BulkLoad(entries)
	return &Index{tree: t, coll: c}
}

// BuildByInsertion constructs the index by repeated insertion instead of
// bulk loading; used by tests and the index-construction benches.
func BuildByInsertion(c *object.Collection, maxEntries int) *Index {
	t := rtree.New[object.Object, Aug](augmenter{}, maxEntries)
	for _, o := range c.All() {
		t.Insert(o.Rect(), o)
	}
	return &Index{tree: t, coll: c}
}

// Collection returns the indexed collection.
func (ix *Index) Collection() *object.Collection { return ix.coll }

// Tree exposes the underlying augmented R-tree for structural inspection
// (tests, stats).
func (ix *Index) Tree() *rtree.Tree[object.Object, Aug] { return ix.tree }

// Stats returns the node-access statistics collector.
func (ix *Index) Stats() *rtree.Stats { return ix.tree.Stats() }

// TSimUpperBound returns an upper bound on the Jaccard similarity
// between qdoc and the document of any object under a node with the
// given augmentation.
//
// For any object o in the subtree, Inter ⊆ o.doc ⊆ Union and
// MinLen ≤ |o.doc| ≤ MaxLen, so:
//
//	|o.doc ∩ q| ≤ min(|Union ∩ q|, MaxLen)
//	|o.doc ∪ q| ≥ max(|Inter ∪ q|, MinLen + |q| − |Union ∩ q|)
//
// the second denominator term because |o ∪ q| = |o.doc| + |q| − |o ∩ q|
// and the intersection cannot exceed |Union ∩ q|. The length terms are
// what keeps the bound informative near the root, where Inter is empty
// and Union covers the query.
//
// Under the Dice model the bound is 2·num / (MinLen + |q|), since the
// denominator |o.doc| + |q| is bounded by the minimum document length.
func TSimUpperBound(a Aug, qdoc vocab.KeywordSet, sim score.TextSim) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	// |Union ∩ q| via per-keyword binary search: |q| is tiny, Union can
	// be the whole vocabulary near the root.
	inUnion := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			inUnion++
		}
	}
	if inUnion == 0 {
		return 0
	}
	num := inUnion
	if int(a.MaxLen) < num {
		num = int(a.MaxLen)
	}
	if sim == score.SimDice {
		den := int(a.MinLen) + len(qdoc)
		if den == 0 {
			return 0
		}
		ub := 2 * float64(num) / float64(den)
		if ub > 1 {
			return 1
		}
		return ub
	}
	den := a.Inter.UnionLen(qdoc)
	if byLen := int(a.MinLen) + len(qdoc) - inUnion; byLen > den {
		den = byLen
	}
	if den < num {
		den = num
	}
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// scoreUpperBound bounds ST(o, q) for every object o under node n.
func (ix *Index) scoreUpperBound(s score.Scorer, n *rtree.Node[object.Object, Aug]) float64 {
	minSD := s.SDistRectMin(n.Rect())
	var tUB float64
	if ix.bound == BoundBasic {
		tUB = TSimUpperBoundBasic(n.Aug(), s.Query.Doc)
	} else {
		tUB = TSimUpperBound(n.Aug(), s.Query.Doc, s.Query.Sim)
	}
	return s.Query.W.Ws*(1-minSD) + s.Query.W.Wt*tUB
}

// TSimUpperBoundBasic is the textbook SetR-tree Jaccard bound
// |q ∩ Union| / |q ∪ Inter| without the doc-length tightening. Exported
// for the ablation bench; production code uses TSimUpperBound.
func TSimUpperBoundBasic(a Aug, qdoc vocab.KeywordSet) float64 {
	if len(qdoc) == 0 {
		return 0
	}
	num := 0
	for _, kw := range qdoc {
		if a.Union.Contains(kw) {
			num++
		}
	}
	if num == 0 {
		return 0
	}
	den := a.Inter.UnionLen(qdoc)
	if den < num {
		den = num
	}
	return float64(num) / float64(den)
}

// TopK runs the best-first spatial keyword top-k algorithm of [4] over
// the SetR-tree: a priority queue holds nodes keyed by their score upper
// bound and objects keyed by their exact score; when an object surfaces
// before every remaining node bound, it is guaranteed to be the next
// result. Results come back in rank order (Definition 1 with ID
// tie-break). Fewer than k results are returned only when the collection
// is smaller than k.
func (ix *Index) TopK(q score.Query) []score.Result {
	s := score.NewScorer(q, ix.coll)
	return ix.topK(s, q.K)
}

// TopKScorer is TopK with a caller-prepared scorer, letting the why-not
// engines re-run queries with modified weights or keywords without
// re-deriving normalization.
func (ix *Index) TopKScorer(s score.Scorer) []score.Result {
	return ix.topK(s, s.Query.K)
}

type pqEntry struct {
	bound float64
	node  *rtree.Node[object.Object, Aug]
}

// topK is the two-heap best-first search of [4]: a max-heap of nodes
// ordered by score upper bound, and a bounded min-heap of the k best
// objects seen. A node whose bound is strictly below the current k-th
// best score cannot contribute (ties must still be expanded: they can
// hide an equal-score object with a smaller ID).
func (ix *Index) topK(s score.Scorer, k int) []score.Result {
	root := ix.tree.Root()
	if root == nil || k <= 0 {
		return nil
	}
	stats := ix.tree.Stats()
	nodes := pqueue.NewWithCapacity(func(a, b pqEntry) bool {
		return a.bound > b.bound
	}, 64)
	nodes.Push(pqEntry{bound: ix.scoreUpperBound(s, root), node: root})

	worstFirst := func(a, b score.Result) bool {
		return score.Better(b.Score, b.Obj.ID, a.Score, a.Obj.ID)
	}
	cand := pqueue.NewWithCapacity(worstFirst, k+1)

	for nodes.Len() > 0 {
		top := nodes.Pop()
		if cand.Len() == k && top.bound < cand.Peek().Score {
			break // no remaining node can improve the result
		}
		n := top.node
		stats.AddNodeAccesses(1)
		if n.IsLeaf() {
			for _, e := range n.Entries() {
				sc := s.Score(e.Item)
				if cand.Len() < k {
					cand.Push(score.Result{Obj: e.Item, Score: sc})
				} else if w := cand.Peek(); score.Better(sc, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: sc})
				}
			}
			continue
		}
		kth := -1.0
		if cand.Len() == k {
			kth = cand.Peek().Score
		}
		for _, c := range n.Children() {
			if b := ix.scoreUpperBound(s, c); b >= kth {
				nodes.Push(pqEntry{bound: b, node: c})
			}
		}
	}
	out := make([]score.Result, cand.Len())
	for i := cand.Len() - 1; i >= 0; i-- {
		out[i] = cand.Pop()
	}
	return out
}

// CountBetter returns the number of objects that rank strictly above the
// reference (refScore, refID) pair under scorer s, i.e. the reference's
// rank minus one. The traversal prunes subtrees whose score upper bound
// cannot beat the reference; it descends otherwise. The reference object
// itself (matched by ID) is never counted.
func (ix *Index) CountBetter(s score.Scorer, refScore float64, refID object.ID) int {
	root := ix.tree.Root()
	if root == nil {
		return 0
	}
	stats := ix.tree.Stats()
	count := 0
	var walk func(n *rtree.Node[object.Object, Aug])
	walk = func(n *rtree.Node[object.Object, Aug]) {
		stats.AddNodeAccesses(1)
		if n.IsLeaf() {
			for _, e := range n.Entries() {
				if e.Item.ID == refID {
					continue
				}
				if score.Better(s.Score(e.Item), e.Item.ID, refScore, refID) {
					count++
				}
			}
			return
		}
		for _, c := range n.Children() {
			// A subtree whose best possible score is below the
			// reference (or ties with a larger smallest-possible ID —
			// unknowable cheaply, so only strict inequality prunes)
			// contributes nothing.
			if ix.scoreUpperBound(s, c) < refScore {
				continue
			}
			walk(c)
		}
	}
	walk(root)
	return count
}

// RankOf returns the 1-based rank of object oid under scorer s: one plus
// the number of objects ranking strictly above it.
func (ix *Index) RankOf(s score.Scorer, oid object.ID) int {
	o := ix.coll.Get(oid)
	return ix.CountBetter(s, s.Score(o), oid) + 1
}

// ScanTopK is the brute-force oracle: score every object and select the
// top k. It exists as the baseline the benches compare against and as
// the reference implementation tests validate the index against.
func ScanTopK(c *object.Collection, q score.Query) []score.Result {
	s := score.NewScorer(q, c)
	if q.K <= 0 || c.Len() == 0 {
		return nil
	}
	// Keep a bounded max-heap (invert: pop worst) of the k best.
	worstFirst := func(a, b score.Result) bool {
		return score.Better(b.Score, b.Obj.ID, a.Score, a.Obj.ID)
	}
	pq := pqueue.NewWithCapacity(worstFirst, q.K+1)
	for _, o := range c.All() {
		pq.Push(score.Result{Obj: o, Score: s.Score(o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// ScanRank is the brute-force rank oracle matching RankOf.
func ScanRank(c *object.Collection, s score.Scorer, oid object.ID) int {
	ref := c.Get(oid)
	refScore := s.Score(ref)
	rank := 1
	for _, o := range c.All() {
		if o.ID == oid {
			continue
		}
		if score.Better(s.Score(o), o.ID, refScore, oid) {
			rank++
		}
	}
	return rank
}
