package settree

import (
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

func testDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testQueries(ds *dataset.Dataset, n int, seed int64, k, kw int) []score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: seed, K: k, Keywords: kw,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

func TestAugInvariant(t *testing.T) {
	ds := testDataset(t, 500, 1)
	ix := Build(ds.Objects, 16)
	var walk func(n *rtree.Node[object.Object, Aug]) (inter, union vocab.KeywordSet)
	walk = func(n *rtree.Node[object.Object, Aug]) (vocab.KeywordSet, vocab.KeywordSet) {
		var inter, union vocab.KeywordSet
		first := true
		if n.IsLeaf() {
			for _, e := range n.Entries() {
				if first {
					inter, union = e.Item.Doc, e.Item.Doc
					first = false
				} else {
					inter = inter.Intersect(e.Item.Doc)
					union = union.Union(e.Item.Doc)
				}
			}
		} else {
			for _, c := range n.Children() {
				ci, cu := walk(c)
				if first {
					inter, union = ci, cu
					first = false
				} else {
					inter = inter.Intersect(ci)
					union = union.Union(cu)
				}
			}
		}
		if !n.Aug().Inter.Equal(inter) {
			t.Fatalf("node Inter %v, recomputed %v", n.Aug().Inter, inter)
		}
		if !n.Aug().Union.Equal(union) {
			t.Fatalf("node Union %v, recomputed %v", n.Aug().Union, union)
		}
		return inter, union
	}
	walk(ix.Tree().Root())
}

func TestTSimUpperBoundSound(t *testing.T) {
	ds := testDataset(t, 400, 2)
	ix := Build(ds.Objects, 8)
	rng := rand.New(rand.NewSource(3))
	sims := []struct {
		sim score.TextSim
		fn  func(a, b vocab.KeywordSet) float64
	}{
		{score.SimJaccard, vocab.KeywordSet.Jaccard},
		{score.SimDice, vocab.KeywordSet.Dice},
	}
	for trial := 0; trial < 200; trial++ {
		// Random query doc from object docs.
		src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len()))).Doc
		qdoc := vocab.NewKeywordSet(src[rng.Intn(len(src))], vocab.Keyword(rng.Intn(ds.Vocab.Len())))
		for _, sm := range sims {
			var walk func(n *rtree.Node[object.Object, Aug])
			walk = func(n *rtree.Node[object.Object, Aug]) {
				ub := TSimUpperBound(n.Aug(), qdoc, sm.sim)
				if n.IsLeaf() {
					for _, e := range n.Entries() {
						if got := sm.fn(e.Item.Doc, qdoc); got > ub+1e-12 {
							t.Fatalf("%v: object %d TSim %v exceeds node bound %v", sm.sim, e.Item.ID, got, ub)
						}
					}
					return
				}
				for _, c := range n.Children() {
					walk(c)
				}
			}
			walk(ix.Tree().Root())
		}
	}
}

func TestTSimUpperBoundEdgeCases(t *testing.T) {
	empty := Aug{}
	if got := TSimUpperBound(empty, nil, score.SimJaccard); got != 0 {
		t.Errorf("empty/empty bound = %v, want 0", got)
	}
	if got := TSimUpperBound(empty, vocab.NewKeywordSet(1), score.SimJaccard); got != 0 {
		t.Errorf("empty aug, nonempty q = %v, want 0", got)
	}
	a := Aug{Inter: nil, Union: vocab.NewKeywordSet(1, 2), MinLen: 1, MaxLen: 2}
	if got := TSimUpperBound(a, vocab.NewKeywordSet(1), score.SimJaccard); got != 1 {
		t.Errorf("bound = %v, want 1 (object could be exactly {1})", got)
	}
}

func TestTopKMatchesScan(t *testing.T) {
	ds := testDataset(t, 1000, 4)
	ix := Build(ds.Objects, 32)
	for _, q := range testQueries(ds, 40, 5, 10, 2) {
		got, _ := ix.TopK(q)
		want := ScanTopK(ds.Objects, q)
		if len(got) != len(want) {
			t.Fatalf("TopK returned %d, scan %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Obj.ID != want[i].Obj.ID {
				t.Fatalf("rank %d: index %d (%.6f), scan %d (%.6f)",
					i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
			}
		}
	}
}

func TestTopKVariousWeightsAndK(t *testing.T) {
	ds := testDataset(t, 600, 6)
	ix := Build(ds.Objects, 16)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		wt := 0.05 + 0.9*rng.Float64()
		k := 1 + rng.Intn(30)
		qs := dataset.Workload(ds, dataset.WorkloadConfig{
			Queries: 1, Seed: int64(trial), K: k, Keywords: 1 + rng.Intn(3),
			W: score.WeightsFromWt(wt), FromObjectDocs: true,
		})
		q := qs[0]
		got, _ := ix.TopK(q)
		want := ScanTopK(ds.Objects, q)
		for i := range want {
			if got[i].Obj.ID != want[i].Obj.ID {
				t.Fatalf("trial %d rank %d: index %d, scan %d (wt=%v k=%d)",
					trial, i, got[i].Obj.ID, want[i].Obj.ID, wt, k)
			}
		}
	}
}

func TestTopKInsertionBuiltIndex(t *testing.T) {
	ds := testDataset(t, 400, 8)
	ix := BuildByInsertion(ds.Objects, 8)
	if err := ix.Tree().Verify(); err != nil {
		t.Fatal(err)
	}
	for _, q := range testQueries(ds, 10, 9, 5, 2) {
		got, _ := ix.TopK(q)
		want := ScanTopK(ds.Objects, q)
		for i := range want {
			if got[i].Obj.ID != want[i].Obj.ID {
				t.Fatalf("rank %d: index %d, scan %d", i, got[i].Obj.ID, want[i].Obj.ID)
			}
		}
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	ds := testDataset(t, 5, 10)
	ix := Build(ds.Objects, 8)
	q := testQueries(ds, 1, 1, 50, 2)[0]
	got, _ := ix.TopK(q)
	if len(got) != 5 {
		t.Fatalf("got %d results, want all 5", len(got))
	}
}

func TestTopKEmptyIndex(t *testing.T) {
	ix := Build(object.NewCollection(nil), 8)
	q := score.Query{Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(1), K: 3, W: score.DefaultWeights}
	if got, _ := ix.TopK(q); got != nil {
		t.Fatalf("TopK on empty = %v", got)
	}
}

func TestTopKResultsSorted(t *testing.T) {
	ds := testDataset(t, 800, 11)
	ix := Build(ds.Objects, 32)
	for _, q := range testQueries(ds, 10, 12, 20, 2) {
		got, _ := ix.TopK(q)
		for i := 1; i < len(got); i++ {
			if score.Better(got[i].Score, got[i].Obj.ID, got[i-1].Score, got[i-1].Obj.ID) {
				t.Fatalf("results out of order at %d", i)
			}
		}
	}
}

func TestRankOfMatchesScan(t *testing.T) {
	ds := testDataset(t, 700, 13)
	ix := Build(ds.Objects, 16)
	rng := rand.New(rand.NewSource(14))
	for _, q := range testQueries(ds, 15, 15, 5, 2) {
		s := score.NewScorer(q, ds.Objects)
		for trial := 0; trial < 5; trial++ {
			oid := object.ID(rng.Intn(ds.Objects.Len()))
			got, _ := ix.RankOf(s, oid)
			want := ScanRank(ds.Objects, s, oid)
			if got != want {
				t.Fatalf("RankOf(%d) = %d, scan %d", oid, got, want)
			}
		}
	}
}

func TestRankConsistentWithTopK(t *testing.T) {
	ds := testDataset(t, 300, 16)
	ix := Build(ds.Objects, 16)
	q := testQueries(ds, 1, 17, 10, 2)[0]
	s := score.NewScorer(q, ds.Objects)
	res, _ := ix.TopK(q)
	for i, r := range res {
		if rank, _ := ix.RankOf(s, r.Obj.ID); rank != i+1 {
			t.Fatalf("result %d has RankOf %d", i, rank)
		}
	}
}

func TestCountBetterPrunes(t *testing.T) {
	ds := testDataset(t, 5000, 18)
	ix := Build(ds.Objects, 64)
	q := testQueries(ds, 1, 19, 5, 2)[0]
	s := score.NewScorer(q, ds.Objects)
	topRes, _ := ix.TopK(q)
	top := topRes[0]
	ix.Stats().Reset()
	ix.RankOf(s, top.Obj.ID) //nolint:errcheck // warm-path stats probe
	accesses := ix.Stats().NodeAccesses()
	if accesses >= int64(ix.Tree().NodeCount()) {
		t.Fatalf("rank query touched all %d nodes; pruning ineffective", accesses)
	}
}

func TestTopKNodeAccessesBelowFullScan(t *testing.T) {
	ds := testDataset(t, 5000, 20)
	ix := Build(ds.Objects, 64)
	q := testQueries(ds, 1, 21, 10, 2)[0]
	ix.Stats().Reset()
	ix.TopK(q) //nolint:errcheck
	if got := ix.Stats().NodeAccesses(); got >= int64(ix.Tree().NodeCount()) {
		t.Fatalf("top-k touched %d of %d nodes", got, ix.Tree().NodeCount())
	}
}

func TestScanTopKDeterministicTieBreak(t *testing.T) {
	// Objects at identical location with identical docs: ties must break
	// by ascending ID.
	objs := make([]object.Object, 10)
	for i := range objs {
		objs[i] = object.Object{ID: object.ID(i), Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(1)}
	}
	c := object.NewCollection(objs)
	q := score.Query{Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(1), K: 4, W: score.DefaultWeights}
	want := []object.ID{0, 1, 2, 3}
	fromIndex, _ := Build(c, 4).TopK(q)
	for _, got := range [][]score.Result{ScanTopK(c, q), fromIndex} {
		ids := score.ResultIDs(got)
		if len(ids) != 4 {
			t.Fatalf("got %v", ids)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("tie-break order %v, want %v", ids, want)
			}
		}
	}
}

func TestHKHotelsQueryEndToEnd(t *testing.T) {
	ds := dataset.HKHotels()
	ix := Build(ds.Objects, rtree.DefaultMaxEntries)
	coffee, ok := ds.Vocab.Lookup("wifi")
	if !ok {
		t.Fatal("wifi missing from vocabulary")
	}
	q := score.Query{
		Loc: geo.Point{X: 114.17, Y: 22.30}, // Tsim Sha Tsui
		Doc: vocab.NewKeywordSet(coffee),
		K:   3,
		W:   score.DefaultWeights,
	}
	got, _ := ix.TopK(q)
	want := ScanTopK(ds.Objects, q)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if got[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

// TestTopKDiceModel validates the engine under the alternative Dice
// similarity (the paper's footnote 1) against the scan oracle.
func TestTopKDiceModel(t *testing.T) {
	ds := testDataset(t, 800, 40)
	ix := Build(ds.Objects, 32)
	for _, base := range testQueries(ds, 20, 41, 10, 2) {
		q := base
		q.Sim = score.SimDice
		got, _ := ix.TopK(q)
		want := ScanTopK(ds.Objects, q)
		for i := range want {
			if got[i].Obj.ID != want[i].Obj.ID {
				t.Fatalf("dice rank %d: index %d, scan %d", i, got[i].Obj.ID, want[i].Obj.ID)
			}
		}
	}
}

// TestDiceAndJaccardDisagree guards against the Dice path silently
// falling back to Jaccard: over enough queries the two models must
// produce at least one different result list.
func TestDiceAndJaccardDisagree(t *testing.T) {
	ds := testDataset(t, 800, 42)
	ix := Build(ds.Objects, 32)
	differ := false
	for _, base := range testQueries(ds, 40, 43, 10, 2) {
		jacRes, _ := ix.TopK(base)
		jac := score.ResultIDs(jacRes)
		q := base
		q.Sim = score.SimDice
		diceRes, _ := ix.TopK(q)
		dice := score.ResultIDs(diceRes)
		for i := range jac {
			if i < len(dice) && jac[i] != dice[i] {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("Dice and Jaccard produced identical rankings on every query")
	}
}

// TestBasicBoundSoundAndCorrect: the ablation bound must still be sound
// (top-k identical) while touching at least as many nodes.
func TestBasicBoundSoundAndCorrect(t *testing.T) {
	ds := testDataset(t, 2000, 50)
	full := Build(ds.Objects, 32)
	basic := Build(ds.Objects, 32)
	basic.SetBoundMode(BoundBasic)
	for _, q := range testQueries(ds, 15, 51, 10, 2) {
		fullRes, _ := full.TopK(q)
		a := score.ResultIDs(fullRes)
		basicRes, _ := basic.TopK(q)
		b := score.ResultIDs(basicRes)
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d: full %d, basic %d", i, a[i], b[i])
			}
		}
	}
	full.Stats().Reset()
	basic.Stats().Reset()
	for _, q := range testQueries(ds, 15, 51, 10, 2) {
		full.TopK(q)
		basic.TopK(q)
	}
	if basic.Stats().NodeAccesses() < full.Stats().NodeAccesses() {
		t.Fatalf("basic bound touched fewer nodes (%d) than full (%d)",
			basic.Stats().NodeAccesses(), full.Stats().NodeAccesses())
	}
}
