package settree

import (
	"testing"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// TestArenaCarriesSignatures: freezing a SetR-tree materializes the
// signature columns, sized to the node and entry counts.
func TestArenaCarriesSignatures(t *testing.T) {
	ds := testDataset(t, 500, 91)
	ix := Build(ds.Objects, 16)
	f := ix.Flat()
	if !f.HasSigs() {
		t.Fatal("frozen SetR arena has no signature columns")
	}
	if got, want := len(f.EntrySigs()), f.Len(); got != want {
		t.Fatalf("entry signature column has %d rows, want %d", got, want)
	}
	// Spot-check the signature semantics at every node: the node sig
	// must cover the signature of its augmentation union, and every
	// entry sig must equal its document's signature.
	for n := int32(0); n < int32(f.NumNodes()); n++ {
		want := f.Aug(n).Union.Signature()
		if *f.Sig(n) != want {
			t.Fatalf("node %d signature does not match its union", n)
		}
	}
	entries := f.AllEntries()
	sigs := f.EntrySigs()
	for i := range entries {
		if sigs[i] != entries[i].Item.Doc.Signature() {
			t.Fatalf("entry %d signature does not match its document", i)
		}
	}
}

// TestDisabledIndexSkipsColumns: an index built with signatures off
// never materializes the signature columns — the off switch saves the
// freeze cost and memory, not just the query-time probes — and
// re-enabling them takes effect at the next refresh.
func TestDisabledIndexSkipsColumns(t *testing.T) {
	ds := testDataset(t, 300, 93)
	ix, ok := BuilderWith(16, false)(ds.Objects).(*Index)
	if !ok {
		t.Fatal("BuilderWith did not build a settree index")
	}
	if ix.Flat().HasSigs() {
		t.Fatal("disabled index materialized signature columns at build")
	}
	ix.Refresh()
	if ix.Flat().HasSigs() {
		t.Fatal("disabled index materialized signature columns at refresh")
	}
	if res, err := ix.TopK(testQueries(ds, 1, 94, 5, 2)[0]); err != nil || len(res) == 0 {
		t.Fatalf("column-free index cannot query: %d results, err %v", len(res), err)
	}
	ix.SetSignatures(true)
	ix.Refresh()
	if !ix.Flat().HasSigs() {
		t.Fatal("re-enabled index did not rebuild signature columns at refresh")
	}
}

// TestSignatureQuickBoundSound is the node-level soundness property:
// at every node of a real arena, the constant-time signature bound the
// traversals prune with is never below the exact merge-walk bound (and
// hence never below the true similarity of any object in the subtree),
// for both similarity models.
func TestSignatureQuickBoundSound(t *testing.T) {
	ds := testDataset(t, 800, 17)
	ix := Build(ds.Objects, 16)
	f := ix.Flat()
	for _, sim := range []score.TextSim{score.SimJaccard, score.SimDice} {
		for qi, q := range testQueries(ds, 12, 55, 5, 2) {
			q.Sim = sim
			qs := vocab.NewQuerySig(q.Doc)
			for n := int32(0); n < int32(f.NumNodes()); n++ {
				a := f.Aug(n)
				exact := TSimUpperBound(*a, q.Doc, sim)
				if qs.Disjoint(f.Sig(n)) {
					if exact != 0 {
						t.Fatalf("sim=%v q%d node %d: disjoint signature but exact bound %v", sim, qi, n, exact)
					}
					continue
				}
				m := qs.IntersectBound(f.Sig(n))
				quick := score.SigSimUpperBound(sim, m, int(a.MinLen), int(a.MaxLen), len(a.Inter), qs.Len)
				if quick < exact {
					t.Fatalf("sim=%v q%d node %d: quick bound %v < exact bound %v", sim, qi, n, quick, exact)
				}
			}
		}
	}
}

// TestSignatureTopKEquivalence: with and without the signature layer,
// top-k answers are byte-identical (IDs and scores) across k values and
// both similarity models.
func TestSignatureTopKEquivalence(t *testing.T) {
	ds := testDataset(t, 900, 23)
	on := Build(ds.Objects, 16)
	off := Build(ds.Objects, 16)
	off.SetSignatures(false)
	if !on.Signatures() || off.Signatures() {
		t.Fatal("signature toggles not wired")
	}
	for _, sim := range []score.TextSim{score.SimJaccard, score.SimDice} {
		for _, k := range []int{1, 5, 20, 75} {
			for qi, q := range testQueries(ds, 10, 77, k, 2) {
				q.Sim = sim
				want, err1 := off.TopK(q)
				got, err2 := on.TopK(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("sim=%v k=%d q%d: errs %v / %v", sim, k, qi, err1, err2)
				}
				if len(got) != len(want) {
					t.Fatalf("sim=%v k=%d q%d: %d results vs %d", sim, k, qi, len(got), len(want))
				}
				for i := range want {
					if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
						t.Fatalf("sim=%v k=%d q%d rank %d: (%d, %v) vs (%d, %v)",
							sim, k, qi, i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
					}
				}
			}
		}
	}
}

// TestSignatureTraversalEquivalence: the rank primitive and the
// preference sweep's event construction make byte-identical decisions
// with the signature layer on and off.
func TestSignatureTraversalEquivalence(t *testing.T) {
	ds := testDataset(t, 700, 29)
	on := Build(ds.Objects, 16)
	off := Build(ds.Objects, 16)
	off.SetSignatures(false)
	aOn, err := on.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	aOff, err := off.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range testQueries(ds, 10, 33, 5, 2) {
		s := aOn.Scorer(q)
		for _, refID := range []object.ID{3, 250, 600} {
			ref := ds.Objects.Get(refID)
			refScore := s.Score(ref)
			if got, want := aOn.CountBetter(index.NoCancel, s, refScore, refID), aOff.CountBetter(index.NoCancel, s, refScore, refID); got != want {
				t.Fatalf("q%d ref %d: CountBetter %d vs %d", qi, refID, got, want)
			}
		}
		// ForEachCross must visit the same object set either way.
		m0, m1 := 0.9, 0.4
		collect := func(a *Arena) map[object.ID]bool {
			seen := make(map[object.ID]bool)
			a.ForEachCross(index.NoCancel, s, m0, m1, func(o object.Object) { seen[o.ID] = true }, func(int) {})
			return seen
		}
		gotSet, wantSet := collect(aOn), collect(aOff)
		if len(gotSet) != len(wantSet) {
			t.Fatalf("q%d: ForEachCross visited %d objects with signatures, %d without", qi, len(gotSet), len(wantSet))
		}
		for id := range wantSet {
			if !gotSet[id] {
				t.Fatalf("q%d: ForEachCross with signatures missed object %d", qi, id)
			}
		}
	}
}

// TestSignatureStatsCounters: traversals record probes, hits, and the
// exact set ops they still performed; the signature-free index records
// exact ops only.
func TestSignatureStatsCounters(t *testing.T) {
	ds := testDataset(t, 600, 37)
	on := Build(ds.Objects, rtree.DefaultMaxEntries)
	off := Build(ds.Objects, rtree.DefaultMaxEntries)
	off.SetSignatures(false)
	qs := testQueries(ds, 10, 41, 10, 2)
	for _, q := range qs {
		if _, err := on.TopK(q); err != nil {
			t.Fatal(err)
		}
		if _, err := off.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	if on.Stats().SigProbes() == 0 {
		t.Fatal("signature-enabled index recorded no probes")
	}
	if on.Stats().SigHits() == 0 {
		t.Fatal("signature-enabled index recorded no hits (bound never decisive?)")
	}
	if hits, probes := on.Stats().SigHits(), on.Stats().SigProbes(); hits > probes {
		t.Fatalf("hits %d > probes %d", hits, probes)
	}
	if off.Stats().SigProbes() != 0 || off.Stats().SigHits() != 0 {
		t.Fatalf("signature-disabled index recorded probes/hits: %d/%d",
			off.Stats().SigProbes(), off.Stats().SigHits())
	}
	if on.Stats().ExactSetOps() >= off.Stats().ExactSetOps() {
		t.Fatalf("signatures did not reduce exact set ops: %d >= %d",
			on.Stats().ExactSetOps(), off.Stats().ExactSetOps())
	}
}
