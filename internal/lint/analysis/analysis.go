// Package analysis is YASK's self-contained substitute for the
// golang.org/x/tools/go/analysis framework: the same Analyzer/Pass
// shape, built entirely on the standard library's go/ast and go/types.
// The module deliberately carries no third-party dependencies, so the
// lint suite (internal/lint) brings its own micro-framework instead of
// importing x/tools; the surface is kept close enough that porting an
// analyzer in either direction is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //yask:allow(name) suppression directives.
	Name string
	// Doc is the one-paragraph description shown by yasklint -help.
	Doc string
	// IncludeTests makes the driver feed the package's test files
	// (in-package and external) through the analyzer in addition to the
	// regular sources. Invariants about error matching hold in tests
	// too; invariants about hot paths and mutation discipline do not.
	IncludeTests bool
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state through one
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the files the analyzer should inspect (test files
	// included only when the analyzer asks for them). TypesInfo covers
	// them all.
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked package the files belong
	// to. For an external test package (foo_test), Pkg is that separate
	// package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the module path of the tree under lint; analyzers use it
	// to tell module-internal calls from standard-library calls.
	Module string
	// Facts is the module-wide annotation index (hot-path functions),
	// built by the driver before any analyzer runs.
	Facts *Facts
	// ReportRaw records one diagnostic; the driver wraps it with the
	// //yask: suppression filter. Analyzers call Report/Reportf.
	ReportRaw func(Diagnostic)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.ReportRaw(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  msg,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the go vet style "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Facts is the cross-package state analyzers share: the set of
// //yask:hotpath-annotated functions across the whole module. It is
// built syntactically (a parse of every module source in the dependency
// closure), so an analyzer checking package P can resolve annotations
// on functions P calls in other packages.
type Facts struct {
	// Module is the module path the facts were collected for.
	Module string
	// Hotpath maps FuncKey-qualified names of //yask:hotpath-annotated
	// functions to true.
	Hotpath map[string]bool
}

// FuncKey returns the qualified name this framework uses to identify a
// function across packages: "pkgpath.Name" for package functions and
// "pkgpath.Recv.Name" for methods, with pointers and type parameters
// stripped from the receiver. Generic instantiations resolve to their
// origin, so an annotation on a generic declaration covers every
// instantiation.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name() // error.Error and friends: universe scope
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if named := namedRecv(sig.Recv().Type()); named != nil {
			return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		// Interface or unnamed receiver: fall through to a plain key.
	}
	return pkg.Path() + "." + fn.Name()
}

// namedRecv unwraps a receiver type to its named type, through one
// pointer level.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// RecvIsInterface reports whether fn is declared on an interface —
// calls to it dispatch dynamically.
func RecvIsInterface(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// DeclKey returns the FuncKey-compatible qualified name of a function
// declaration, derived syntactically (no type information needed):
// "pkgpath.Name" or "pkgpath.Recv.Name".
func DeclKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	return pkgPath + "." + recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

// recvTypeName extracts the base type name of a receiver type
// expression: strip stars and type-parameter brackets down to the
// identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// CalleeOf resolves the static callee of a call expression to its
// *types.Func: a package function, a method (value or pointer), or a
// qualified identifier. It returns nil for calls of func-typed values,
// type conversions, and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// BuiltinOf resolves the builtin a call invokes ("append", "make", …),
// or "" when the call is not a builtin.
func BuiltinOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// IsTypeConversion reports whether the call expression is a type
// conversion rather than a function call.
func IsTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// PkgOf returns the package path of a function, "" for universe-scope
// functions.
func PkgOf(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

// InModule reports whether pkgPath belongs to module (the module root
// package or any package under it).
func InModule(pkgPath, module string) bool {
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}
