// The snapshotdiscipline analyzer: the query engine must drive every
// index through the index.Provider / index.Snapshot contract, never a
// concrete family. Concretely:
//
//   - internal/core (and any future query-routing package listed in
//     snapshotRestricted) may not import the concrete family packages
//     (settree, irtree, kcrtree, rtree) except in the files allowlisted
//     for construction, and may never type-assert an interface down to
//     a concrete family type;
//   - rtree.Tree mutators (Insert, Delete) may only be called from the
//     family packages that own the trees — everyone else goes through a
//     SnapshotPublisher or an index.Provider;
//   - restricted packages may not reach around the snapshot protocol
//     via the raw Tree()/Flat() escape-hatch accessors.
package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// SnapshotDiscipline is the index-contract analyzer.
var SnapshotDiscipline = &analysis.Analyzer{
	Name: "snapshotdiscipline",
	Doc:  "keeps the query engine on the index.Provider/index.Snapshot contract, off concrete index families",
	Run:  runSnapshotDiscipline,
}

// snapshotRestricted are the module-relative packages that must stay
// backend-agnostic: the query processor today, the RPC router when the
// distributed tier lands.
var snapshotRestricted = []string{
	"/internal/core",
}

// snapshotFamilies are the concrete index family packages (module-
// relative).
var snapshotFamilies = []string{
	"/internal/settree",
	"/internal/irtree",
	"/internal/kcrtree",
	"/internal/rtree",
}

// snapshotImportAllow lists, per file base name inside a restricted
// package, the family packages that file may import. engine.go is the
// construction site: it wires concrete builders into the backend and
// exposes the typed accessors. arena.go is the persistence
// counterpart: it rebuilds those same concrete indexes from mmap'd
// arena files at boot and serializes them at checkpoints. Every
// algorithm file stays on the contract.
var snapshotImportAllow = map[string][]string{
	"engine.go": {"/internal/settree", "/internal/kcrtree", "/internal/rtree"},
	"arena.go":  {"/internal/settree", "/internal/kcrtree", "/internal/rtree"},
}

// snapshotTreeMutators are the rtree.Tree methods that mutate: calling
// them outside a family package bypasses generation tracking and the
// publisher's staleness protocol.
var snapshotTreeMutators = map[string]bool{
	"Insert": true,
	"Delete": true,
}

// snapshotRawAccessors are the escape-hatch methods that surface a raw
// tree or arena from behind a publisher or index; restricted packages
// must acquire snapshots instead.
var snapshotRawAccessors = map[string]bool{
	"Tree": true,
	"Flat": true,
}

func runSnapshotDiscipline(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	restricted := hasModuleSuffix(pkgPath, pass.Module, snapshotRestricted)
	inFamily := hasModuleSuffix(pkgPath, pass.Module, snapshotFamilies)

	for _, f := range pass.Files {
		fileName := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if restricted {
			checkRestrictedImports(pass, f, fileName)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if restricted && n.Type != nil {
					checkFamilyAssert(pass, n.Type)
				}
			case *ast.TypeSwitchStmt:
				if restricted {
					for _, clause := range n.Body.List {
						cc, ok := clause.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, expr := range cc.List {
							checkFamilyAssert(pass, expr)
						}
					}
				}
			case *ast.CallExpr:
				fn := analysis.CalleeOf(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				key := analysis.FuncKey(fn)
				if !inFamily && key == pass.Module+"/internal/rtree.Tree.Insert" || !inFamily && key == pass.Module+"/internal/rtree.Tree.Delete" {
					pass.Reportf(n.Pos(), "direct rtree.Tree.%s outside the index families bypasses the publisher's generation protocol", fn.Name())
				}
				if restricted && snapshotRawAccessors[fn.Name()] && familyOwned(fn, pass.Module) && snapshotImportAllow[fileName] == nil {
					pass.Reportf(n.Pos(), "raw %s() access from %s: acquire an index.Snapshot instead", fn.Name(), pkgPath)
				}
			}
			return true
		})
	}
	return nil
}

// checkRestrictedImports flags family imports outside the per-file
// allowlist.
func checkRestrictedImports(pass *analysis.Pass, f *ast.File, fileName string) {
	allowed := snapshotImportAllow[fileName]
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		suffix := moduleSuffix(path, pass.Module, snapshotFamilies)
		if suffix == "" {
			continue
		}
		ok := false
		for _, a := range allowed {
			if a == suffix {
				ok = true
			}
		}
		if !ok {
			pass.Reportf(imp.Pos(), "%s must not import %s (only %s files on the construction allowlist may): drive indexes through internal/index",
				pass.Pkg.Path(), path, allowedFilesList())
		}
	}
}

// checkFamilyAssert flags a type assertion or type-switch case whose
// target type is declared in a family package.
func checkFamilyAssert(pass *analysis.Pass, typeExpr ast.Expr) {
	t := pass.TypesInfo.TypeOf(typeExpr)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if hasModuleSuffix(named.Obj().Pkg().Path(), pass.Module, snapshotFamilies) {
		pass.Reportf(typeExpr.Pos(), "type assertion to concrete index type %s defeats the index.Snapshot contract", named.Obj().Name())
	}
}

// familyOwned reports whether fn's receiver (or fn itself) is declared
// in a family package.
func familyOwned(fn *types.Func, module string) bool {
	return hasModuleSuffix(analysis.PkgOf(fn), module, snapshotFamilies)
}

// hasModuleSuffix reports whether pkgPath is module+s for any suffix s.
func hasModuleSuffix(pkgPath, module string, suffixes []string) bool {
	return moduleSuffix(pkgPath, module, suffixes) != ""
}

// moduleSuffix returns the matching suffix, or "".
func moduleSuffix(pkgPath, module string, suffixes []string) string {
	for _, s := range suffixes {
		if pkgPath == module+s {
			return s
		}
	}
	return ""
}

func allowedFilesList() string {
	var names []string
	for name := range snapshotImportAllow {
		names = append(names, name)
	}
	if len(names) == 0 {
		return "none"
	}
	// Deterministic output for tests; the map is tiny.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}
