// Package lint is yasklint: a suite of go/analysis-style analyzers
// that mechanize the engine's cross-cutting invariants — hot paths
// don't allocate, queries stay on the snapshot contract, the WAL
// append dominates every mutation, epoch pointers are published at
// commit sites only, errors are matched by sentinel, and renames are
// made durable. See README.md in this directory for the full catalog.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/yask-engine/yask/internal/lint/analysis"
	"github.com/yask-engine/yask/internal/lint/loader"
)

// Analyzers returns the full yasklint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWrite,
		Hotpath,
		PublishDiscipline,
		SentErr,
		SnapshotDiscipline,
		WalFirst,
	}
}

// Run loads the packages matched by patterns (from dir, which may be
// any directory inside the module) and runs the whole suite, returning
// surviving diagnostics sorted by position. A non-nil error means the
// load itself failed; lint findings are not errors.
func Run(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	res, err := loader.Load(loader.Config{Dir: dir, Tests: true}, patterns...)
	if err != nil {
		return nil, err
	}
	facts, diags := collectFacts(res)
	known := knownAnalyzers()
	for _, pkg := range res.Targets {
		diags = append(diags, lintPackage(res, facts, known, pkg)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func knownAnalyzers() map[string]bool {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// lintPackage runs every analyzer over one loaded package (and its
// external test package), filtering through the //yask: directives.
func lintPackage(res *loader.Result, facts *analysis.Facts, known map[string]bool, pkg *loader.Package) []analysis.Diagnostic {
	files := pkg.AllFiles()
	src := pkg.Sources
	if pkg.XTest != nil {
		files = append(append([]*ast.File{}, files...), pkg.XTest.Files...)
		src = map[string][]byte{}
		for k, v := range pkg.Sources {
			src[k] = v
		}
		for k, v := range pkg.XTest.Sources {
			src[k] = v
		}
	}
	ix := scanDirectives(res.Fset, files, src, known)
	out := append([]analysis.Diagnostic{}, ix.problems...)

	for _, a := range Analyzers() {
		if pkg.Pkg != nil {
			runFiles := pkg.Files
			if a.IncludeTests {
				runFiles = pkg.AllFiles()
			}
			out = append(out, runOne(res.Fset, res.Module, facts, ix, a, runFiles, pkg.Pkg, pkg.Info)...)
		}
		if a.IncludeTests && pkg.XTest != nil && pkg.XTest.Pkg != nil {
			out = append(out, runOne(res.Fset, res.Module, facts, ix, a, pkg.XTest.Files, pkg.XTest.Pkg, pkg.XTest.Info)...)
		}
	}
	return out
}

// runOne runs a single analyzer over one type-checked unit.
func runOne(fset *token.FileSet, module string, facts *analysis.Facts, ix *directiveIndex, a *analysis.Analyzer, files []*ast.File, tpkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Module:    module,
		Facts:     facts,
		ReportRaw: func(d analysis.Diagnostic) {
			if !ix.suppresses(d.Analyzer, d.Pos) {
				out = append(out, d)
			}
		},
	}
	if err := a.Run(pass); err != nil {
		out = append(out, analysis.Diagnostic{
			Analyzer: a.Name,
			Message:  "internal error: " + err.Error(),
		})
	}
	return out
}

// sortDiagnostics orders diagnostics by position, then analyzer, then
// message, for stable output.
func sortDiagnostics(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
