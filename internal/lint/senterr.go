// The senterr analyzer: error identity is matched with errors.Is /
// errors.As against sentinels (ErrStaleSnapshot, wal.ErrCorrupt,
// ErrNotDurable, …), never by comparing err.Error() text. Message
// strings are documentation; wrapping (%w) changes them, and a test
// that greps them breaks on reword. This invariant holds in tests too,
// so the analyzer runs over test files.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// SentErr is the sentinel-error-matching analyzer.
var SentErr = &analysis.Analyzer{
	Name:         "senterr",
	Doc:          "bans matching on err.Error() text; use errors.Is/errors.As against sentinels",
	IncludeTests: true,
	Run:          runSentErr,
}

// senterrStringMatchers are the strings-package predicates that turn an
// error message into a match.
var senterrStringMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
}

func runSentErr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) &&
					(isErrErrorCall(pass.TypesInfo, n.X) || isErrErrorCall(pass.TypesInfo, n.Y)) {
					pass.Report(n.Pos(), "comparing err.Error() text: match with errors.Is against a sentinel instead")
				}
			case *ast.CallExpr:
				fn := analysis.CalleeOf(pass.TypesInfo, n)
				if fn == nil || analysis.PkgOf(fn) != "strings" || !senterrStringMatchers[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if isErrErrorCall(pass.TypesInfo, arg) {
						pass.Reportf(n.Pos(), "strings.%s over err.Error() text: match with errors.Is/errors.As against a sentinel instead", fn.Name())
						return true
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrErrorCall reports whether expr is a call of the Error() string
// method on a value that implements the error interface.
func isErrErrorCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(recv, errType)
}
