// Package fixhot exercises the hotpath analyzer: positive cases for
// every allocation construct, negative cases for annotated callees,
// the calm-closure rule, and the //yask:allocok escape hatch.
package fixhot

import "fmt"

//yask:hotpath
func leafOK(x float64) float64 { return x * 2 }

//yask:hotpath
func hotClean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += leafOK(x)
	}
	return s
}

func coldHelper() int { return 1 }

//yask:hotpath
func hotBad(xs []int, m map[int]int) []int {
	xs = append(xs, 1)    // want `append may grow`
	buf := make([]int, 4) // want `make allocates`
	m[1] = 2              // want `map write may allocate`
	_ = coldHelper()      // want `not annotated //yask:hotpath`
	fmt.Println(buf)      // want `call into fmt may allocate`
	return xs
}

//yask:hotpath
func hotHatched(xs []int) []int {
	xs = append(xs, 1) //yask:allocok(fixture: sanctioned amortized growth)
	return xs
}

//yask:hotpath
func hotStrings(a string, b []byte, n int) string {
	s := a + a    // want `string concatenation allocates`
	_ = string(b) // want `conversion to string allocates`
	go leafOK(1)  // want `go statement allocates`
	c := n
	f := func() int { return c } // want `closure captures variables`
	_ = f()
	return s
}

//yask:hotpath
func driver(cb func(int) bool) bool { return cb(1) }

//yask:hotpath
func hotCalm(limit int) bool {
	// A closure handed straight to an annotated driver is the sanctioned
	// callback pattern: no diagnostic.
	return driver(func(x int) bool { return x < limit })
}
