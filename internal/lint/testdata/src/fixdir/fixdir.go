// Package fixdir exercises the //yask: directive surface itself:
// floating annotations, missing reasons, and unknown names are all
// findings of the "directive" pseudo-analyzer.
package fixdir

var notAFunc = 1

func f() int {
	// wantbelow `not attached to a function declaration`
	//yask:hotpath
	x := notAFunc

	// wantbelow `needs a non-empty reason`
	//yask:allocok()
	x++

	// wantbelow `malformed //yask:allocok`
	//yask:allocok
	x++

	// wantbelow `names unknown analyzer nosuch`
	//yask:allow(nosuch) because reasons
	x++

	// wantbelow `unknown //yask: directive`
	//yask:frobnicate
	return x
}
