// Package rtree is a fixture twin of internal/rtree for the
// publishdiscipline analyzer: SnapshotPublisher.publishLocked is the
// sanctioned commit site; any other Store on an epoch pointer is a
// diagnostic.
package rtree

import "sync/atomic"

type pubState struct{ gen uint64 }

type SnapshotPublisher struct {
	st atomic.Pointer[pubState]
}

func (p *SnapshotPublisher) publishLocked(s *pubState) {
	p.st.Store(s)
}

func (p *SnapshotPublisher) Poke(s *pubState) {
	p.st.Store(s) // want `outside a publish commit site`
}

func (p *SnapshotPublisher) Grab(s *pubState) *pubState {
	return p.st.Swap(s) // want `outside a publish commit site`
}

func (p *SnapshotPublisher) Read() *pubState { return p.st.Load() }
