// Package fixerr exercises the senterr analyzer: text matching on
// err.Error() is a diagnostic; errors.Is is the sanctioned form; the
// generic //yask:allow escape hatch silences a finding.
package fixerr

import (
	"errors"
	"strings"
)

var ErrGone = errors.New("gone")

func badCompare(err error) bool {
	return err.Error() == "gone" // want `comparing err.Error\(\) text`
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "gone") // want `strings.Contains over err.Error\(\) text`
}

func good(err error) bool { return errors.Is(err, ErrGone) }

func tolerated(err error) bool {
	return err.Error() == "gone" //yask:allow(senterr) fixture demonstrates the generic escape hatch
}
