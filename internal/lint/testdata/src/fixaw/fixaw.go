// Package fixaw exercises the atomicwrite analyzer: a rename between a
// file fsync and a directory fsync is clean; a bare rename earns both
// diagnostics.
package fixaw

import (
	"os"
	"path/filepath"
)

func writeGood(tmp *os.File, final string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return syncDir(filepath.Dir(final))
}

func writeBad(tmpPath, final string) error {
	return os.Rename(tmpPath, final) // want `without fsyncing the temp file` // want `without fsyncing the containing directory`
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
