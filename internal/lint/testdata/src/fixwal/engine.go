// Package core is a fixture twin of internal/core for the walfirst
// analyzer: same package path, same function names as the real managed
// mutation path, so the real allowlists apply.
package core

import "github.com/yask-engine/yask/internal/object"

type durability struct{}

func (d *durability) logInsert(id object.ID, o object.Object) error { return nil }
func (d *durability) logRemove(id object.ID) error                  { return nil }

type Engine struct {
	coll *object.Collection
	dur  *durability
}

func (e *Engine) applyInsertLocked(o object.Object) object.ID {
	return e.coll.Append(o)
}

func (e *Engine) applyRemoveLocked(id object.ID) {
	e.coll.Tombstone(id)
}

// Insert applies the mutation before logging it: on a crash between the
// two, the object is visible but not durable.
func (e *Engine) Insert(o object.Object) (object.ID, error) {
	id := e.applyInsertLocked(o) // want `not dominated by a WAL append`
	if e.dur != nil {
		if err := e.dur.logInsert(id, o); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Remove has the correct shape: durability guard, log, then apply.
func (e *Engine) Remove(id object.ID) error {
	if e.dur != nil {
		if err := e.dur.logRemove(id); err != nil {
			return err
		}
	}
	e.applyRemoveLocked(id)
	return nil
}

// replayLocked re-applies a record read from the WAL: exempt from the
// dominance rule.
func (e *Engine) replayLocked(o object.Object) {
	e.applyInsertLocked(o)
}

// sneakAppend mutates the collection outside the managed path.
func sneakAppend(c *object.Collection, o object.Object) object.ID {
	return c.Append(o) // want `outside the managed appliers`
}
