// Package core is a fixture twin of internal/core for the
// snapshotdiscipline analyzer: it declares the real package path, so
// the real restricted-package configuration applies. engine.go is on
// the construction allowlist — its settree import is sanctioned.
package core

import "github.com/yask-engine/yask/internal/settree"

type backend struct{ ix *settree.Index }

func newBackend(ix *settree.Index) *backend { return &backend{ix: ix} }
