package core

import (
	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/settree" // want `must not import`
)

func sneak(s index.Snapshot) bool {
	a, ok := s.(*settree.Arena) // want `type assertion to concrete index type Arena`
	if !ok {
		return false
	}
	return a.Flat() != nil // want `raw Flat\(\) access`
}
