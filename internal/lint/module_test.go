package lint

import (
	"testing"

	"github.com/yask-engine/yask/internal/lint/loader"
)

// TestModuleLintClean is the acceptance gate the CI lint job mirrors:
// the whole suite over the whole module, zero findings.
func TestModuleLintClean(t *testing.T) {
	diags, err := Run("../..", "./...")
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestAnnotationsMeta validates the module's //yask: annotations
// themselves: every //yask:hotpath is attached to an existing function
// declaration (the facts collector reports floaters, and collecting a
// key from a FuncDecl is what guarantees the function exists), every
// //yask:allocok and //yask:allow carries a non-empty reason, and the
// hot-path index actually covers the engine's core walks.
func TestAnnotationsMeta(t *testing.T) {
	res, err := loader.Load(loader.Config{Dir: "../..", Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	facts, diags := collectFacts(res)
	for _, d := range diags {
		t.Errorf("dangling annotation: %s", d)
	}

	known := knownAnalyzers()
	for _, pkg := range res.Targets {
		files := pkg.AllFiles()
		src := pkg.Sources
		if pkg.XTest != nil {
			files = append(files, pkg.XTest.Files...)
			merged := map[string][]byte{}
			for k, v := range pkg.Sources {
				merged[k] = v
			}
			for k, v := range pkg.XTest.Sources {
				merged[k] = v
			}
			src = merged
		}
		ix := scanDirectives(res.Fset, files, src, known)
		for _, p := range ix.problems {
			t.Errorf("malformed directive: %s", p)
		}
	}

	// The annotation index must cover the engine's shared drivers and
	// per-family walks; an empty or hollowed-out index means the hotpath
	// analyzer is checking nothing.
	anchors := []string{
		testModule + "/internal/index.BestFirstTopK",
		testModule + "/internal/index.PrunedDFS",
		testModule + "/internal/index.SigScoreEntry",
		testModule + "/internal/pqueue.Queue.Push",
		testModule + "/internal/pqueue.Queue.Pop",
		testModule + "/internal/settree.Arena.TopK",
		testModule + "/internal/settree.Arena.CountBetter",
		testModule + "/internal/kcrtree.Arena.RankBounds",
		testModule + "/internal/irtree.Arena.TopK",
		testModule + "/internal/score.Scorer.Score",
	}
	for _, key := range anchors {
		if !facts.Hotpath[key] {
			t.Errorf("expected //yask:hotpath on %s", key)
		}
	}
	if len(facts.Hotpath) < len(anchors) {
		t.Errorf("hot-path index suspiciously small: %d entries", len(facts.Hotpath))
	}
}
