// The atomicwrite analyzer: the write-temp-then-rename pattern is only
// crash-atomic if the temp file is fsynced before the rename (else the
// rename can publish a zero-length file) and the containing directory
// is fsynced after it (else the rename itself can vanish). Every
// os.Rename in the module must sit between those two syncs within its
// function.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// AtomicWrite is the durable-rename analyzer.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "requires os.Rename to be preceded by a file fsync and followed by a directory fsync",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenames(pass, fd)
		}
	}
	return nil
}

func checkRenames(pass *analysis.Pass, fd *ast.FuncDecl) {
	var renames []*ast.CallExpr
	var syncs, dirSyncs []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case analysis.PkgOf(fn) == "os" && fn.Name() == "Rename":
			renames = append(renames, call)
		case fn.Name() == "Sync":
			// (*os.File).Sync or a wrapper exposing the same contract.
			syncs = append(syncs, call.Pos())
		case isDirSyncName(fn.Name()):
			dirSyncs = append(dirSyncs, call.Pos())
		}
		return true
	})
	for _, r := range renames {
		if !anyBefore(syncs, r.Pos()) {
			pass.Report(r.Pos(), "os.Rename without fsyncing the temp file first: a crash can publish an empty file")
		}
		if !anyAfter(syncs, r.End()) && !anyAfter(dirSyncs, r.End()) {
			pass.Report(r.Pos(), "os.Rename without fsyncing the containing directory after: the rename itself may not survive a crash")
		}
	}
}

// isDirSyncName recognizes directory-sync helpers by name (syncDir,
// fsyncDir, SyncDir, …).
func isDirSyncName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sync") && strings.Contains(lower, "dir")
}

func anyBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q > p {
			return true
		}
	}
	return false
}
