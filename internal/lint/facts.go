// Facts collection: the module-wide //yask:hotpath annotation index.
// Annotations are collected syntactically from every module package in
// the load — targets and their module-internal dependencies — so an
// analyzer checking one package can resolve annotations on the
// functions it calls elsewhere in the module.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/yask-engine/yask/internal/lint/analysis"
	"github.com/yask-engine/yask/internal/lint/loader"
)

// collectFacts builds the annotation index over every loaded module
// package. It also validates attachment: a //yask:hotpath comment that
// is not a function declaration's doc comment marks nothing and has
// rotted (or never worked), which is itself a finding.
func collectFacts(res *loader.Result) (*analysis.Facts, []analysis.Diagnostic) {
	facts := &analysis.Facts{Module: res.Module, Hotpath: map[string]bool{}}
	var diags []analysis.Diagnostic
	scan := func(pkgPath string, files []*ast.File) {
		diags = append(diags, factsFromFiles(res.Fset, pkgPath, files, facts)...)
	}
	for _, pkg := range res.Targets {
		scan(pkg.ImportPath, pkg.AllFiles())
		if pkg.XTest != nil {
			scan(pkg.XTest.ImportPath, pkg.XTest.Files)
		}
	}
	for _, pkg := range res.FactDeps {
		scan(pkg.ImportPath, pkg.Files)
	}
	return facts, diags
}

// factsFromFiles records the hotpath annotations of files (declared
// under pkgPath) into facts and reports floating hotpath directives.
func factsFromFiles(fset *token.FileSet, pkgPath string, files []*ast.File, facts *analysis.Facts) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, f := range files {
		attached := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == hotpathDirective {
					attached[c] = true
					facts.Hotpath[analysis.DeclKey(pkgPath, fd)] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) != hotpathDirective || attached[c] {
					continue
				}
				diags = append(diags, analysis.Diagnostic{
					Pos:      fset.Position(c.Pos()),
					Analyzer: "directive",
					Message:  "//yask:hotpath is not attached to a function declaration: it annotates nothing",
				})
			}
		}
	}
	return diags
}
