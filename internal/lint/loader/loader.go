// Package loader loads type-checked packages for the lint suite using
// only the standard library and the go command: `go list -export -deps`
// supplies package metadata plus compiled export data for every
// dependency (standard library included), and go/types checks the
// target packages' sources against that export data through the
// compiler importer. This is the dependency-free core of what
// golang.org/x/tools/go/packages does; it exists because this module
// vendors nothing.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded package: parsed sources and, for lint targets,
// the type-checked package and its types.Info.
type Package struct {
	// ImportPath is the package's import path; for an external test
	// package it carries the real "foo_test" package path of its files.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Module is the module path the package belongs to.
	Module string
	// Files are the parsed non-test sources, TestFiles the parsed
	// in-package _test.go sources (loaded only when Config.Tests).
	Files     []*ast.File
	TestFiles []*ast.File
	// XTest is the external test package (package foo_test), nil when
	// the package has none or tests were not requested.
	XTest *Package
	// Pkg and Info are the type-checked package covering Files and
	// TestFiles together; nil for FactsOnly packages.
	Pkg  *types.Package
	Info *types.Info
	// Sources maps absolute file paths to their content, for directive
	// scanning.
	Sources map[string][]byte
	// FactsOnly marks a module package loaded only because a target
	// depends on it: parsed (so annotations can be collected) but not
	// type-checked or linted.
	FactsOnly bool
}

// AllFiles returns the package's parsed files: sources plus test files.
func (p *Package) AllFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	all := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	all = append(all, p.Files...)
	all = append(all, p.TestFiles...)
	return all
}

// Config controls a Load.
type Config struct {
	// Dir is the directory the go command runs in (any directory inside
	// the module); empty means the current directory.
	Dir string
	// Tests loads and type-checks _test.go files (in-package and
	// external) alongside the regular sources.
	Tests bool
}

// Result is a completed load: one shared FileSet, the lint targets in
// a stable order, and the module path.
type Result struct {
	Fset *token.FileSet
	// Targets are the packages matched by the load patterns, type-
	// checked and ready to lint.
	Targets []*Package
	// FactDeps are module packages the targets depend on but that were
	// not themselves matched: parsed for annotation facts only.
	FactDeps []*Package
	// Module is the module path of the tree under lint.
	Module string
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	DepOnly      bool
	Standard     bool
	Module       *struct{ Path, Dir string }
	Error        *struct{ Err string }
}

const listFields = "ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles," +
	"TestImports,XTestImports,DepOnly,Standard,Module,Error"

// Load lists patterns with the go command, loads export data for the
// dependency closure, and parses and type-checks every matched package.
func Load(cfg Config, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := runList(cfg.Dir, append([]string{"-e", "-export", "-deps", "-json=" + listFields}, patterns...))
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets, factDeps []listedPkg
	module := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.Module == nil {
			continue
		}
		if p.DepOnly {
			factDeps = append(factDeps, p)
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 && len(p.XTestGoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
		if module == "" {
			module = p.Module.Path
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %v", patterns)
	}

	if cfg.Tests {
		if err := addTestImportExports(cfg.Dir, targets, exports); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	exp := NewExportSet(fset, exports)
	res := &Result{Fset: fset, Module: module}

	for _, lp := range targets {
		pkg, err := checkTarget(fset, exp, lp, cfg.Tests)
		if err != nil {
			return nil, err
		}
		res.Targets = append(res.Targets, pkg)
	}
	for _, lp := range factDeps {
		pkg := &Package{
			ImportPath: lp.ImportPath, Dir: lp.Dir, Module: lp.Module.Path,
			FactsOnly: true, Sources: map[string][]byte{},
		}
		if err := parseInto(fset, lp.Dir, lp.GoFiles, &pkg.Files, pkg.Sources); err != nil {
			return nil, err
		}
		res.FactDeps = append(res.FactDeps, pkg)
	}
	sort.Slice(res.Targets, func(i, j int) bool { return res.Targets[i].ImportPath < res.Targets[j].ImportPath })
	return res, nil
}

// addTestImportExports lists export data for packages imported only by
// test files, which `-deps` over the base patterns does not cover.
func addTestImportExports(dir string, targets []listedPkg, exports map[string]string) error {
	need := map[string]bool{}
	for _, p := range targets {
		for _, imp := range p.TestImports {
			need[imp] = true
		}
		for _, imp := range p.XTestImports {
			need[imp] = true
		}
	}
	var missing []string
	for imp := range need {
		if imp == "C" || imp == "unsafe" {
			continue
		}
		if _, ok := exports[imp]; !ok {
			missing = append(missing, imp)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	listed, err := runList(dir, append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export"}, missing...))
	if err != nil {
		return err
	}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// checkTarget parses and type-checks one listed package (plus its
// external test package when tests are requested).
func checkTarget(fset *token.FileSet, exp *ExportSet, lp listedPkg, tests bool) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath, Dir: lp.Dir, Module: lp.Module.Path,
		Sources: map[string][]byte{},
	}
	if err := parseInto(fset, lp.Dir, lp.GoFiles, &pkg.Files, pkg.Sources); err != nil {
		return nil, err
	}
	if tests {
		if err := parseInto(fset, lp.Dir, lp.TestGoFiles, &pkg.TestFiles, pkg.Sources); err != nil {
			return nil, err
		}
	}
	if len(pkg.Files)+len(pkg.TestFiles) > 0 {
		tpkg, info, err := typeCheck(fset, lp.ImportPath, pkg.AllFiles(), exp.Importer())
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %w", lp.ImportPath, err)
		}
		pkg.Pkg, pkg.Info = tpkg, info
	}
	if tests && len(lp.XTestGoFiles) > 0 {
		x := &Package{
			ImportPath: lp.ImportPath + "_test", Dir: lp.Dir, Module: lp.Module.Path,
			Sources: map[string][]byte{},
		}
		if err := parseInto(fset, lp.Dir, lp.XTestGoFiles, &x.Files, x.Sources); err != nil {
			return nil, err
		}
		// The external test package imports the package under test. Prefer
		// its export data: other dependencies' export data refers to that
		// identity, and mixing it with the in-memory package breaks type
		// identity. Fall back to the in-memory, test-augmented package for
		// external tests that use exported in-package test helpers.
		tpkg, info, err := typeCheck(fset, x.ImportPath, x.Files, exp.Importer())
		if err != nil && pkg.Pkg != nil {
			imp := &overrideImporter{base: exp.Importer(), override: map[string]*types.Package{lp.ImportPath: pkg.Pkg}}
			tpkg, info, err = typeCheck(fset, x.ImportPath, x.Files, imp)
		}
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %w", x.ImportPath, err)
		}
		x.Pkg, x.Info = tpkg, info
		pkg.XTest = x
	}
	return pkg, nil
}

// parseInto parses names (relative to dir) into files, recording the
// sources.
func parseInto(fset *token.FileSet, dir string, names []string, files *[]*ast.File, sources map[string][]byte) error {
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		sources[path] = src
		*files = append(*files, f)
	}
	return nil
}

// typeCheck runs go/types over one package's files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExportSet resolves import paths to compiled export data through the
// standard library's gc importer, sharing one importer (and therefore
// one set of *types.Package identities) across every type-check of a
// load.
type ExportSet struct {
	exports map[string]string
	imp     types.Importer
}

// NewExportSet builds an ExportSet over an import-path → export-file
// map (as produced by `go list -export`).
func NewExportSet(fset *token.FileSet, exports map[string]string) *ExportSet {
	s := &ExportSet{exports: exports}
	s.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := s.exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})
	return s
}

// Importer returns the shared compiler importer.
func (s *ExportSet) Importer() types.Importer { return s.imp }

// ListExports runs `go list -e -export -deps` in dir over patterns and
// returns the import-path → export-file map of the whole closure. It is
// the fixture-loading entry point: the lint tests type-check testdata
// sources against the real module's compiled packages.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := runList(dir, append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// overrideImporter serves a fixed set of in-memory packages and
// delegates everything else.
type overrideImporter struct {
	base     types.Importer
	override map[string]*types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.override[path]; ok {
		return p, nil
	}
	return o.base.Import(path)
}

// runList invokes `go list` with args in dir and decodes the JSON
// stream.
func runList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("loader: go list: %s", msg)
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
