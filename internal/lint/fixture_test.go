package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/yask-engine/yask/internal/lint/analysis"
	"github.com/yask-engine/yask/internal/lint/loader"
)

// testModule is the module path fixture packages pretend to live in, so
// the analyzers' real per-package configuration applies to them.
const testModule = "github.com/yask-engine/yask"

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleExports lists (once) the export data of the real module's
// dependency closure plus the standard-library packages the fixtures
// import; fixtures type-check against the real compiled packages.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exportsMap, exportsErr = loader.ListExports("../..",
			"./...", "strings", "os", "path/filepath", "sync/atomic", "errors", "fmt")
	})
	if exportsErr != nil {
		t.Fatalf("listing module export data: %v", exportsErr)
	}
	return exportsMap
}

// fixtureCase is one testdata package run against a subset of the
// suite. Every case provides at least one positive (// want) and one
// negative (clean code) example.
type fixtureCase struct {
	dir       string // under testdata/src
	pkgPath   string // declared import path (real paths activate real configs)
	analyzers []*analysis.Analyzer
}

func TestFixtures(t *testing.T) {
	cases := []fixtureCase{
		{"fixhot", testModule + "/internal/lint/fixhot", []*analysis.Analyzer{Hotpath}},
		{"fixcore", testModule + "/internal/core", []*analysis.Analyzer{SnapshotDiscipline}},
		{"fixwal", testModule + "/internal/core", []*analysis.Analyzer{WalFirst}},
		{"fixpub", testModule + "/internal/rtree", []*analysis.Analyzer{PublishDiscipline}},
		{"fixerr", testModule + "/internal/lint/fixerr", []*analysis.Analyzer{SentErr}},
		{"fixaw", testModule + "/internal/lint/fixaw", []*analysis.Analyzer{AtomicWrite}},
		{"fixdir", testModule + "/internal/lint/fixdir", nil}, // directive problems only
	}
	for _, fc := range cases {
		t.Run(fc.dir, func(t *testing.T) { runFixture(t, fc) })
	}
}

func runFixture(t *testing.T, fc fixtureCase) {
	t.Helper()
	fset := token.NewFileSet()
	dir := filepath.Join("testdata", "src", fc.dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	sources := map[string][]byte{}
	wants := map[string]map[int][]*regexp.Regexp{} // base filename -> line -> pending wants
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		sources[path] = src
		files = append(files, f)
		wants[e.Name()] = parseWants(t, src)
	}

	exp := loader.NewExportSet(fset, moduleExports(t))
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: exp.Importer(), Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(fc.pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fc.dir, err)
	}

	facts := &analysis.Facts{Module: testModule, Hotpath: map[string]bool{}}
	diags := factsFromFiles(fset, fc.pkgPath, files, facts)
	ix := scanDirectives(fset, files, sources, knownAnalyzers())
	diags = append(diags, ix.problems...)
	for _, a := range fc.analyzers {
		diags = append(diags, runOne(fset, testModule, facts, ix, a, files, pkg, info)...)
	}
	sortDiagnostics(diags)

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if !consumeWant(wants[base], d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for base, byLine := range wants {
		for line, res := range byLine {
			for _, re := range res {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", base, line, re)
			}
		}
	}
}

// wantRe matches the fixture expectation comments: `// want \x60re\x60`
// expects a diagnostic on its own line, `// wantbelow \x60re\x60` on
// the next line (for diagnostics reported on //yask: directive lines,
// which cannot carry a second comment).
var wantRe = regexp.MustCompile("// want(below)? `([^`]*)`")

func parseWants(t *testing.T, src []byte) map[int][]*regexp.Regexp {
	t.Helper()
	out := map[int][]*regexp.Regexp{}
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("bad want pattern %q: %v", m[2], err)
			}
			target := i + 1 // lines are 1-based
			if m[1] == "below" {
				target++
			}
			out[target] = append(out[target], re)
		}
	}
	return out
}

// consumeWant matches a diagnostic against the pending wants of its
// line, removing the matched expectation.
func consumeWant(byLine map[int][]*regexp.Regexp, line int, msg string) bool {
	for i, re := range byLine[line] {
		if re.MatchString(msg) {
			byLine[line] = append(byLine[line][:i], byLine[line][i+1:]...)
			if len(byLine[line]) == 0 {
				delete(byLine, line)
			}
			return true
		}
	}
	return false
}
