// The hotpath analyzer: functions annotated //yask:hotpath are warm
// query paths that must not allocate per operation. The benchmarks
// (TestTopKAllocationGuard, the bench-smoke CI gate) prove the dynamic
// property after the fact; this analyzer makes the usual ways of
// breaking it a build failure, at the construct level:
//
//   - make / new / slice, map and escaping composite literals
//   - growing append
//   - map writes
//   - string concatenation and string<->[]byte/[]rune conversions
//   - closures that capture variables (unless passed straight into a
//     //yask:hotpath function, whose contract is not to retain them)
//   - go statements
//   - calls to module functions not themselves annotated //yask:hotpath
//     (the transitive closure of a hot path must be hot), dynamic
//     dispatch, and calls into standard-library packages not on the
//     known-allocation-free allowlist
//
// Deliberate, amortized allocations (pooled scratch growth, the result
// buffer) carry //yask:allocok(reason) on the offending line.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// Hotpath is the hot-path allocation analyzer.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flags allocation-causing constructs inside //yask:hotpath functions",
	Run:  runHotpath,
}

// hotpathStdlibAllow are the standard-library packages hot paths may
// call freely: pure arithmetic and lock-free atomics, none of which
// allocate.
var hotpathStdlibAllow = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runHotpath(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Facts.Hotpath[analysis.DeclKey(pkgPath, fd)] {
				checkHotBody(pass, fd)
			}
		}
	}
	return nil
}

// checkHotBody walks one annotated function body, nested closures
// included.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Closures handed directly to an annotated module function are the
	// sanctioned callback pattern (BestFirstTopK, PrunedDFS): the driver
	// does not retain them, so they stay on the stack. Everything else
	// that captures state is assumed to allocate.
	calmClosures := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeOf(info, call); fn != nil && pass.Facts.Hotpath[analysis.FuncKey(fn)] {
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					calmClosures[lit] = true
				}
			}
		}
		return true
	})
	// Composite literals reported through their enclosing &-expression
	// must not be reported twice.
	reportedLits := map[*ast.CompositeLit]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					reportedLits[lit] = true
					pass.Report(n.Pos(), "escaping composite literal (&T{...}) allocates")
				}
			}
		case *ast.CompositeLit:
			if reportedLits[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Report(n.Pos(), "slice literal allocates")
			case *types.Map:
				pass.Report(n.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			if !calmClosures[n] && capturesState(info, n) {
				pass.Report(n.Pos(), "closure captures variables and may be heap-allocated; pass it directly to a //yask:hotpath function or hoist it")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				pass.Report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMapWrite(pass, lhs)
			}
		case *ast.IncDecStmt:
			checkMapWrite(pass, n.X)
		case *ast.GoStmt:
			pass.Report(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot body.
func checkHotCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if analysis.IsTypeConversion(info, call) {
		checkHotConversion(pass, call)
		return
	}
	switch analysis.BuiltinOf(info, call) {
	case "append":
		pass.Report(call.Pos(), "append may grow its backing array")
		return
	case "make":
		pass.Report(call.Pos(), "make allocates")
		return
	case "new":
		pass.Report(call.Pos(), "new allocates")
		return
	case "print", "println":
		pass.Report(call.Pos(), "print/println allocate")
		return
	case "":
		// Not a builtin: classified below.
	default:
		return // len, cap, copy, delete, min, max, panic, …: free
	}
	fn := analysis.CalleeOf(info, call)
	if fn == nil {
		return // call of a func value: invoking it does not allocate
	}
	if analysis.RecvIsInterface(fn) {
		pass.Reportf(call.Pos(), "dynamic call to %s cannot be verified allocation-free", fn.Name())
		return
	}
	pkg := analysis.PkgOf(fn)
	if analysis.InModule(pkg, pass.Module) {
		if !pass.Facts.Hotpath[analysis.FuncKey(fn)] {
			pass.Reportf(call.Pos(), "call to %s, which is not annotated //yask:hotpath", fn.FullName())
		}
		return
	}
	if !hotpathStdlibAllow[pkg] {
		pass.Reportf(call.Pos(), "call into %s may allocate", pkg)
	}
}

// checkHotConversion flags the conversions that copy: string <->
// []byte/[]rune, and integer/rune to string.
func checkHotConversion(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if len(call.Args) != 1 {
		return
	}
	dst := info.TypeOf(call.Fun)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch {
	case isString(dst) && !isString(src):
		pass.Report(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(dst) && isString(src):
		pass.Report(call.Pos(), "conversion of string to slice allocates")
	}
}

func checkMapWrite(pass *analysis.Pass, lhs ast.Expr) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap {
		pass.Report(lhs.Pos(), "map write may allocate")
	}
}

// capturesState reports whether the func literal references any
// identifier declared outside itself (other than package-level ones):
// a capturing closure needs a heap-allocated environment when it
// escapes.
func capturesState(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() || types.Universe.Lookup(id.Name) == obj {
			return true // package-level: no environment needed
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
