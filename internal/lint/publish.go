// The publishdiscipline analyzer: epoch pointers are published, not
// poked. Every atomic.Pointer in the engine (the rtree publisher's
// state, the collection's live arrays, the shard map and group state)
// is an epoch pointer whose Store is a commit point with ordering
// obligations — readers must never observe a half-built state. Only the
// functions that implement the commit protocol may Store/Swap/CAS one;
// anyone else must build the new state and hand it to a publisher.
package lint

import (
	"go/ast"
	"go/types"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// PublishDiscipline is the epoch-pointer commit-site analyzer.
var PublishDiscipline = &analysis.Analyzer{
	Name: "publishdiscipline",
	Doc:  "restricts atomic.Pointer Store/Swap/CompareAndSwap to the sanctioned publish commit sites",
	Run:  runPublishDiscipline,
}

// publishWriters are the atomic.Pointer methods that publish a new
// epoch.
var publishWriters = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
}

// publishCommitSites are the functions (module-relative FuncKeys)
// entitled to publish: the snapshot publisher's locked commit, and the
// storage-layer constructors and mutators that own their own epoch
// pointers.
var publishCommitSites = map[string]bool{
	"/internal/rtree.SnapshotPublisher.publishLocked": true,
	"/internal/rtree.NewMappedPublisher":              true,
	"/internal/object.NewCollection":                  true,
	"/internal/object.NewCollectionWithDead":          true,
	"/internal/object.Collection.Append":              true,
	"/internal/object.Collection.Tombstone":           true,
	"/internal/shard.NewMapWith":                      true,
	"/internal/shard.Map.Append":                      true,
	"/internal/shard.NewGroup":                        true,
	"/internal/shard.Group.PrepareRebalance":          true,
}

func runPublishDiscipline(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if publishCommitSites[moduleRel(analysis.DeclKey(pass.Pkg.Path(), fd), pass.Module)] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeOf(pass.TypesInfo, call)
				if fn == nil || !publishWriters[fn.Name()] || !isAtomicPointerMethod(fn) {
					return true
				}
				pass.Reportf(call.Pos(), "%s on an atomic.Pointer outside a publish commit site: build the state and publish it through SnapshotPublisher (or the owning constructor)", fn.Name())
				return true
			})
		}
	}
	return nil
}

// isAtomicPointerMethod reports whether fn is a method of
// sync/atomic.Pointer[T] (any instantiation).
func isAtomicPointerMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
