// Directive parsing: the //yask: comment surface the analyzers and the
// engine code share.
//
//	//yask:hotpath
//	    On a function declaration's doc comment: the function is a warm
//	    query path; the hotpath analyzer checks its body (and requires
//	    its module-internal callees to carry the same annotation).
//
//	//yask:allocok(reason)
//	    Suppresses hotpath diagnostics on the line it ends on (or, for a
//	    standalone comment line, on the following line). The reason is
//	    mandatory: every sanctioned allocation documents why it is
//	    amortized or off the steady-state path.
//
//	//yask:allow(analyzer) reason
//	    The generic escape hatch: suppresses the named analyzer the same
//	    way. The reason is mandatory.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

const (
	hotpathDirective = "//yask:hotpath"
	allocokPrefix    = "//yask:allocok"
	allowPrefix      = "//yask:allow"
	yaskPrefix       = "//yask:"
)

// directiveIndex is one package's parsed suppression state.
type directiveIndex struct {
	// suppressed maps filename → line → analyzer names suppressed there.
	suppressed map[string]map[int]map[string]bool
	// problems are malformed directives, reported by the driver under
	// the pseudo-analyzer "directive".
	problems []analysis.Diagnostic
}

// suppresses reports whether a diagnostic from analyzer at pos is
// silenced by a directive.
func (ix *directiveIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := ix.suppressed[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

// scanDirectives parses every //yask: comment in files. known is the
// set of analyzer names //yask:allow may reference; src maps filenames
// to content (used to decide whether a comment stands alone on its
// line).
func scanDirectives(fset *token.FileSet, files []*ast.File, src map[string][]byte, known map[string]bool) *directiveIndex {
	ix := &directiveIndex{suppressed: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ix.scanComment(fset, c, src, known)
			}
		}
	}
	return ix
}

func (ix *directiveIndex) scanComment(fset *token.FileSet, c *ast.Comment, src map[string][]byte, known map[string]bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, yaskPrefix) {
		return
	}
	pos := fset.Position(c.Pos())
	problem := func(msg string) {
		ix.problems = append(ix.problems, analysis.Diagnostic{Pos: pos, Analyzer: "directive", Message: msg})
	}
	switch {
	case text == hotpathDirective:
		// Attachment to a function declaration is validated by the facts
		// collector, which sees the declarations.
		return
	case strings.HasPrefix(text, allocokPrefix):
		reason, ok := parenArg(text[len(allocokPrefix):])
		if !ok {
			problem("malformed //yask:allocok directive: want //yask:allocok(reason)")
			return
		}
		if strings.TrimSpace(reason) == "" {
			problem("//yask:allocok needs a non-empty reason")
			return
		}
		ix.add(pos, src, "hotpath")
	case strings.HasPrefix(text, allowPrefix):
		rest := text[len(allowPrefix):]
		name, ok := parenArg(rest)
		if !ok {
			problem("malformed //yask:allow directive: want //yask:allow(analyzer) reason")
			return
		}
		if !known[name] {
			problem("//yask:allow names unknown analyzer " + name)
			return
		}
		after := rest[strings.Index(rest, ")")+1:]
		if strings.TrimSpace(after) == "" {
			problem("//yask:allow(" + name + ") needs a non-empty reason")
			return
		}
		ix.add(pos, src, name)
	default:
		problem("unknown //yask: directive " + text)
	}
}

// add records a suppression of analyzer at the directive's effective
// line: the directive's own line, or the next line when the comment is
// the only thing on its line.
func (ix *directiveIndex) add(pos token.Position, src map[string][]byte, analyzer string) {
	line := pos.Line
	if standsAlone(src[pos.Filename], pos.Offset) {
		line++
	}
	byLine := ix.suppressed[pos.Filename]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		ix.suppressed[pos.Filename] = byLine
	}
	if byLine[line] == nil {
		byLine[line] = map[string]bool{}
	}
	byLine[line][analyzer] = true
}

// standsAlone reports whether only whitespace precedes offset on its
// line.
func standsAlone(src []byte, offset int) bool {
	if src == nil || offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// parenArg extracts the argument of a leading "(arg)" group.
func parenArg(s string) (string, bool) {
	if !strings.HasPrefix(s, "(") {
		return "", false
	}
	end := strings.Index(s, ")")
	if end < 0 {
		return "", false
	}
	return s[1:end], true
}
