// The walfirst analyzer: durability before visibility. Collection
// mutation is managed — the raw object.Collection mutators and the
// engine's appliers may only be reached through the sanctioned paths,
// and in the engine's mutation entry points the WAL append must
// dominate the in-memory apply (every path that applies has logged
// first). Recovery (replayLocked) is exempt: its records came FROM the
// WAL.
package lint

import (
	"go/ast"

	"github.com/yask-engine/yask/internal/lint/analysis"
)

// WalFirst is the managed-mutation / WAL-ordering analyzer.
var WalFirst = &analysis.Analyzer{
	Name: "walfirst",
	Doc:  "requires collection mutations to flow through the managed appliers, WAL append first",
	Run:  runWalFirst,
}

// walMutators are the raw storage mutators (module-relative FuncKeys).
var walMutators = map[string]bool{
	"/internal/object.Collection.Append":    true,
	"/internal/object.Collection.Tombstone": true,
}

// walMutatorCallers are the functions allowed to call the raw mutators:
// the engine's appliers and the shard storage layer that implements
// routing on top of per-shard collections.
var walMutatorCallers = map[string]bool{
	"/internal/core.Engine.applyInsertLocked": true,
	"/internal/core.Engine.applyRemoveLocked": true,
	"/internal/shard.NewMapWith":              true,
	"/internal/shard.Map.Append":              true,
	"/internal/shard.Map.Tombstone":           true,
}

// walAppliers are the managed apply operations: inside internal/core
// they may only be invoked from the mutation entry points (where the
// dominance check runs), from recovery, or from each other.
var walAppliers = map[string]bool{
	"/internal/core.Engine.applyInsertLocked": true,
	"/internal/core.Engine.applyRemoveLocked": true,
	"/internal/shard.Group.Insert":            true,
	"/internal/shard.Group.Remove":            true,
	"/internal/shard.Map.Append":              true,
	"/internal/shard.Map.Tombstone":           true,
}

// walEntryPoints are the engine mutation entry points: applier calls
// here must be dominated by a WAL append (or the nil-durability guard).
var walEntryPoints = map[string]bool{
	"/internal/core.Engine.Insert": true,
	"/internal/core.Engine.Remove": true,
}

// walReplayers re-apply records read from the WAL; logging them again
// would double them, so they call appliers without logging.
var walReplayers = map[string]bool{
	"/internal/core.Engine.replayLocked": true,
}

// walLoggers are the calls that count as "the WAL append happened".
var walLoggers = map[string]bool{
	"/internal/core.durability.logInsert": true,
	"/internal/core.durability.logRemove": true,
	"/internal/wal.Log.Append":            true,
}

func runWalFirst(pass *analysis.Pass) error {
	inCore := pass.Pkg.Path() == pass.Module+"/internal/core"
	inObject := pass.Pkg.Path() == pass.Module+"/internal/object"

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := analysis.DeclKey(pass.Pkg.Path(), fd)
			relKey := moduleRel(key, pass.Module)

			// Rule A: raw mutator calls only from the allowlist (and from
			// the object package itself, which owns the type).
			if !inObject && !walMutatorCallers[relKey] {
				reportCalls(pass, fd, walMutators,
					"raw %s mutates the collection outside the managed appliers; route mutations through Engine.Insert/Remove")
			}

			// Rule B: inside the engine, appliers are reachable only from
			// the entry points, recovery, or other appliers.
			if inCore && !walEntryPoints[relKey] && !walReplayers[relKey] && !walMutatorCallers[relKey] {
				reportCalls(pass, fd, walAppliers,
					"call to applier %s outside the managed mutation entry points (Engine.Insert/Remove) and recovery")
			}

			// Rule C: in the entry points, every applier call must be
			// dominated by a WAL append.
			if inCore && walEntryPoints[relKey] {
				w := &walChecker{pass: pass}
				w.evalStmts(fd.Body.List, false)
			}
		}
	}
	return nil
}

// reportCalls flags every call in fd whose callee's module-relative
// FuncKey is in deny.
func reportCalls(pass *analysis.Pass, fd *ast.FuncDecl, deny map[string]bool, format string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if rel := moduleRel(analysis.FuncKey(fn), pass.Module); deny[rel] {
			pass.Reportf(call.Pos(), format, fn.FullName())
		}
		return true
	})
}

// walChecker is the dominance evaluator: a linear abstract
// interpretation over an entry point's statements tracking one bit —
// has a WAL append happened on every path reaching this program point?
type walChecker struct {
	pass *analysis.Pass
}

// evalStmts processes stmts in order with the incoming logged state and
// returns the state after the list.
func (w *walChecker) evalStmts(stmts []ast.Stmt, logged bool) bool {
	for _, s := range stmts {
		logged = w.evalStmt(s, logged)
	}
	return logged
}

func (w *walChecker) evalStmt(s ast.Stmt, logged bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.evalStmts(s.List, logged)
	case *ast.IfStmt:
		if s.Init != nil {
			logged = w.evalStmt(s.Init, logged)
		}
		w.checkApplies(s.Cond, logged)
		bodyLogged := w.evalStmts(s.Body.List, logged)
		if isDurGuard(s.Cond) && s.Else == nil && bodyLogged {
			// `if e.dur != nil { log … }`: on the then-path the append
			// happened; on the else-path the engine is memory-only and has
			// no WAL to order against. Either way the apply may proceed.
			return true
		}
		elseLogged := logged
		if s.Else != nil {
			elseLogged = w.evalStmt(s.Else, logged)
		} else {
			// No else: the if may be skipped entirely.
			elseLogged = logged
		}
		return bodyLogged && elseLogged
	case *ast.ForStmt:
		if s.Init != nil {
			logged = w.evalStmt(s.Init, logged)
		}
		w.checkApplies(s.Cond, logged)
		w.evalStmts(s.Body.List, logged) // body may run zero times
		return logged
	case *ast.RangeStmt:
		w.checkApplies(s.X, logged)
		w.evalStmts(s.Body.List, logged)
		return logged
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: check applies inside with the incoming state;
		// assume no branch is guaranteed to log.
		w.checkApplies(s, logged)
		return logged
	default:
		w.checkApplies(s, logged)
		if containsLoggerCall(w.pass, s) {
			return true
		}
		return logged
	}
}

// checkApplies reports every applier or raw-mutator call under n that
// is not yet dominated by a log.
func (w *walChecker) checkApplies(n ast.Node, logged bool) {
	if n == nil || logged {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(w.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		rel := moduleRel(analysis.FuncKey(fn), w.pass.Module)
		if walAppliers[rel] || walMutators[rel] {
			w.pass.Reportf(call.Pos(), "%s is not dominated by a WAL append: log the mutation before applying it", fn.FullName())
		}
		return true
	})
}

// containsLoggerCall reports whether any call under n is a WAL logger.
func containsLoggerCall(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn != nil && walLoggers[moduleRel(analysis.FuncKey(fn), pass.Module)] {
			found = true
		}
		return true
	})
	return found
}

// isDurGuard recognizes the durability guard `<expr>.dur != nil` (or a
// bare `dur != nil`): inside it, logging is possible; without it the
// engine runs memory-only and has nothing to order against.
func isDurGuard(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "!=" {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		return namesDur(x)
	}
	if isNilIdent(x) {
		return namesDur(y)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func namesDur(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "dur"
	case *ast.SelectorExpr:
		return e.Sel.Name == "dur"
	}
	return false
}

// moduleRel strips the module prefix off a FuncKey, returning a key
// like "/internal/core.Engine.Insert"; keys outside the module return
// "" (matching nothing).
func moduleRel(key, module string) string {
	if len(key) > len(module) && key[:len(module)] == module && key[len(module)] == '/' {
		return key[len(module):]
	}
	return ""
}
