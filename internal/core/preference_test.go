package core

import (
	"math"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

// prefOracle computes the exact minimum-penalty preference refinement by
// brute force: enumerate every interior crossing of every missing
// object's score line with every other object's line, and evaluate the
// penalty at each candidate with full-scan rank computation.
func prefOracle(e *Engine, q score.Query, missing []object.ID, lambda float64) PreferenceResult {
	s := score.NewScorer(q, e.Collection())
	mObjs := make([]object.Object, len(missing))
	for i, id := range missing {
		mObjs[i] = e.Collection().Get(id)
	}
	rankBefore := 0
	for _, m := range mObjs {
		if r := settree.ScanRank(e.Collection(), s, m.ID); r > rankBefore {
			rankBefore = r
		}
	}
	// Candidates step one nudge past each crossing, away from the
	// initial weight — the same semantics the sweep realizes.
	candidates := []float64{}
	for _, m := range mObjs {
		ml := lineOf(s, m)
		for _, o := range e.Collection().All() {
			if o.ID == m.ID {
				continue
			}
			if wt, ok := lineOf(s, o).crossing(ml); ok {
				if wt < q.W.Wt {
					wt -= crossingNudge
				} else {
					wt += crossingNudge
				}
				if wt > 0 && wt < 1 {
					candidates = append(candidates, wt)
				}
			}
		}
	}
	best := PreferenceResult{
		Refined: q, Penalty: lambda,
		DeltaK: rankBefore - q.K, RankBefore: rankBefore, RankAfter: rankBefore,
	}
	best.Refined.K = rankBefore
	for _, wt := range candidates {
		s2 := score.Scorer{Query: q.WithWeights(score.WeightsFromWt(wt)), MaxDist: s.MaxDist}
		worst := 0
		for _, m := range mObjs {
			if r := settree.ScanRank(e.Collection(), s2, m.ID); r > worst {
				worst = r
			}
		}
		pen, dk, dw := prefPenalty(q, lambda, rankBefore, worst, wt)
		if pen < best.Penalty-1e-15 || (math.Abs(pen-best.Penalty) <= 1e-15 && dw < best.DeltaW) {
			refined := q.WithWeights(score.WeightsFromWt(wt))
			if worst > q.K {
				refined.K = worst
			}
			best = PreferenceResult{
				Refined: refined, Penalty: pen, DeltaK: dk, DeltaW: dw,
				RankBefore: rankBefore, RankAfter: worst,
			}
		}
	}
	return best
}

// assertRevived checks the defining property of Definitions 2 and 3: the
// refined query's result contains every missing object.
func assertRevived(t *testing.T, e *Engine, refined score.Query, missing []object.ID) {
	t.Helper()
	res, err := e.TopK(refined)
	if err != nil {
		t.Fatalf("refined query invalid: %v", err)
	}
	in := map[object.ID]bool{}
	for _, r := range res {
		in[r.Obj.ID] = true
	}
	for _, id := range missing {
		if !in[id] {
			t.Fatalf("missing object %d not revived by refined query %+v", id, refined)
		}
	}
}

func prefWorkload(t *testing.T, e *Engine, ds *dataset.Dataset, seed int64, k, kw, nMiss int) (score.Query, []object.ID) {
	t.Helper()
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: seed, K: k, Keywords: kw, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	return q, missingFromResult(e, q, nMiss)
}

func TestAdjustPreferenceRevivesMissing(t *testing.T) {
	e, ds := testEngine(t, 400, 10)
	for seed := int64(0); seed < 8; seed++ {
		q, miss := prefWorkload(t, e, ds, seed, 5, 2, 2)
		for _, alg := range []PreferenceAlgorithm{PrefSweepIndexed, PrefSweep, PrefSampling} {
			res, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: alg})
			if err != nil {
				t.Fatalf("seed %d alg %v: %v", seed, alg, err)
			}
			assertRevived(t, e, res.Refined, miss)
			if res.RankBefore <= q.K {
				t.Fatal("rank before must exceed k")
			}
			if res.Penalty < 0 || res.Penalty > 1+1e-12 {
				t.Fatalf("penalty %v out of range", res.Penalty)
			}
		}
	}
}

func TestAdjustPreferenceSweepMatchesOracle(t *testing.T) {
	e, ds := testEngine(t, 250, 11)
	for seed := int64(0); seed < 10; seed++ {
		q, miss := prefWorkload(t, e, ds, seed, 4, 2, 1+int(seed)%3)
		for _, lambda := range []float64{0.2, 0.5, 0.8} {
			want := prefOracle(e, q, miss, lambda)
			for _, alg := range []PreferenceAlgorithm{PrefSweep, PrefSweepIndexed} {
				got, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: lambda, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Penalty-want.Penalty) > 1e-6 {
					t.Fatalf("seed %d λ=%v alg %v: penalty %v, oracle %v (wt %v vs %v)",
						seed, lambda, alg, got.Penalty, want.Penalty, got.Refined.W, want.Refined.W)
				}
				if got.RankBefore != want.RankBefore {
					t.Fatalf("rankBefore %d, oracle %d", got.RankBefore, want.RankBefore)
				}
			}
		}
	}
}

func TestAdjustPreferenceSweepVariantsAgree(t *testing.T) {
	e, ds := testEngine(t, 600, 12)
	for seed := int64(20); seed < 26; seed++ {
		q, miss := prefWorkload(t, e, ds, seed, 5, 3, 2)
		a, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSweep})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSweepIndexed})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Penalty-b.Penalty) > 1e-12 {
			t.Fatalf("seed %d: scan %v vs indexed %v", seed, a.Penalty, b.Penalty)
		}
		if a.Refined.W != b.Refined.W || a.RankAfter != b.RankAfter {
			t.Fatalf("seed %d: refined differ: %+v vs %+v", seed, a, b)
		}
		if a.Candidates != b.Candidates {
			t.Fatalf("seed %d: candidate counts differ: %d vs %d", seed, a.Candidates, b.Candidates)
		}
	}
}

func TestAdjustPreferenceSamplingNeverBeatsExact(t *testing.T) {
	e, ds := testEngine(t, 300, 13)
	for seed := int64(30); seed < 36; seed++ {
		q, miss := prefWorkload(t, e, ds, seed, 5, 2, 1)
		exact, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSweep})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSampling, Samples: 32})
		if err != nil {
			t.Fatal(err)
		}
		if approx.Penalty < exact.Penalty-1e-6 {
			t.Fatalf("seed %d: sampling %v beat exact %v", seed, approx.Penalty, exact.Penalty)
		}
		assertRevived(t, e, approx.Refined, miss)
	}
}

func TestAdjustPreferencePenaltyDecomposition(t *testing.T) {
	e, ds := testEngine(t, 300, 14)
	q, miss := prefWorkload(t, e, ds, 40, 5, 2, 2)
	res, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.3, Algorithm: PrefSweep})
	if err != nil {
		t.Fatal(err)
	}
	kNorm := float64(res.RankBefore - q.K)
	wNorm := math.Sqrt(1 + q.W.Ws*q.W.Ws + q.W.Wt*q.W.Wt)
	want := 0.3*float64(res.DeltaK)/kNorm + 0.7*res.DeltaW/wNorm
	if math.Abs(res.Penalty-want) > 1e-12 {
		t.Fatalf("penalty %v, recomputed %v", res.Penalty, want)
	}
	// DeltaW must match the weight vectors.
	if got := q.W.Dist(res.Refined.W); math.Abs(got-res.DeltaW) > 1e-12 {
		t.Fatalf("DeltaW %v, vectors say %v", res.DeltaW, got)
	}
	// Refined K follows the paper: max(q.k, R(M, q')).
	wantK := q.K
	if res.RankAfter > q.K {
		wantK = res.RankAfter
	}
	if res.Refined.K != wantK {
		t.Fatalf("refined K %d, want %d", res.Refined.K, wantK)
	}
}

func TestAdjustPreferenceLambdaExtremes(t *testing.T) {
	e, ds := testEngine(t, 300, 15)
	q, miss := prefWorkload(t, e, ds, 50, 5, 2, 1)
	// λ = 0: only weight movement is penalized; keeping w⃗ and enlarging
	// k costs 0, so that must be the optimum.
	res0, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0, Algorithm: PrefSweep})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Penalty != 0 || res0.DeltaW != 0 {
		t.Fatalf("λ=0: penalty %v ΔW %v; keeping weights should be free", res0.Penalty, res0.DeltaW)
	}
	assertRevived(t, e, res0.Refined, miss)
	// λ = 1: only Δk is penalized; the optimum minimizes the refined
	// rank regardless of weight movement.
	res1, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 1, Algorithm: PrefSweep})
	if err != nil {
		t.Fatal(err)
	}
	assertRevived(t, e, res1.Refined, miss)
	if res1.RankAfter > res0.RankAfter {
		t.Fatalf("λ=1 should minimize rank: got %d vs λ=0's %d", res1.RankAfter, res0.RankAfter)
	}
}

func TestAdjustPreferenceInvalidInputs(t *testing.T) {
	e, ds := testEngine(t, 100, 16)
	q, miss := prefWorkload(t, e, ds, 60, 3, 2, 1)
	if _, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PreferenceAlgorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := e.AdjustPreference(q, nil, PreferenceOptions{Lambda: 0.5}); err == nil {
		t.Error("no missing objects accepted")
	}
}

func TestScoreLineGeometry(t *testing.T) {
	// f_a(wt) = 0.8 − 0.6wt; f_b(wt) = 0.2 + 0.6wt → cross at wt = 0.5.
	a := scoreLine{a: 0.8, b: -0.6, id: 0}
	b := scoreLine{a: 0.2, b: 0.6, id: 1}
	if !a.aboveNear0(b) || a.aboveNear1(b) {
		t.Fatal("endpoint orders wrong")
	}
	wt, ok := a.crossing(b)
	if !ok || math.Abs(wt-0.5) > 1e-12 {
		t.Fatalf("crossing = %v, %v", wt, ok)
	}
	// Parallel lines never cross.
	c := scoreLine{a: 0.5, b: -0.6, id: 2}
	if _, ok := a.crossing(c); ok {
		t.Fatal("parallel lines reported crossing")
	}
	// Identical lines tie by ID and never cross.
	d := scoreLine{a: 0.8, b: -0.6, id: 3}
	if _, ok := a.crossing(d); ok {
		t.Fatal("identical lines reported crossing")
	}
	if !a.aboveNear0(d) || !a.aboveNear1(d) {
		t.Fatal("identical lines: smaller ID should be above")
	}
	if d.aboveNear0(a) {
		t.Fatal("identical lines: larger ID should be below")
	}
	// Crossing exactly at an endpoint is not interior.
	ep := scoreLine{a: 0.8, b: 0.6, id: 4} // equal to a at wt=0
	if _, ok := ep.crossing(a); ok {
		t.Fatal("endpoint-touching lines reported interior crossing")
	}
}

func TestPrefPenaltyFormula(t *testing.T) {
	q := score.Query{K: 3, W: score.DefaultWeights}
	// rankBefore 8, rankAfter 5, wt 0.7.
	pen, dk, dw := prefPenalty(q, 0.5, 8, 5, 0.7)
	if dk != 2 {
		t.Fatalf("dk = %d", dk)
	}
	wantDW := math.Sqrt(2 * 0.2 * 0.2)
	if math.Abs(dw-wantDW) > 1e-12 {
		t.Fatalf("dw = %v, want %v", dw, wantDW)
	}
	wantPen := 0.5*2/5 + 0.5*wantDW/math.Sqrt(1.5)
	if math.Abs(pen-wantPen) > 1e-12 {
		t.Fatalf("penalty = %v, want %v", pen, wantPen)
	}
	// Rank already within k: Δk clamps to 0.
	if _, dk, _ := prefPenalty(q, 0.5, 8, 2, 0.5); dk != 0 {
		t.Fatalf("dk = %d, want 0", dk)
	}
}
