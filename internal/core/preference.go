package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/qcache"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// PreferenceAlgorithm selects the preference-adjustment implementation.
type PreferenceAlgorithm int

const (
	// PrefSweepIndexed is the paper's algorithm [5]: the missing
	// objects' score segments are intersected only with the segments the
	// index proves can cross them (the "two range queries"), then a
	// sweep with the rank update theorem finds the minimum-penalty
	// intersection. Exact.
	PrefSweepIndexed PreferenceAlgorithm = iota
	// PrefSweep is the same sweep with the crossing segments found by a
	// full scan instead of the index. Exact; the baseline that isolates
	// the index's contribution.
	PrefSweep
	// PrefSampling evaluates a fixed grid of candidate weights.
	// Approximate; the naive baseline of [5]'s evaluation.
	PrefSampling
)

// String implements fmt.Stringer.
func (a PreferenceAlgorithm) String() string {
	switch a {
	case PrefSweepIndexed:
		return "sweep-indexed"
	case PrefSweep:
		return "sweep-scan"
	case PrefSampling:
		return "sampling"
	default:
		return fmt.Sprintf("PreferenceAlgorithm(%d)", int(a))
	}
}

// PreferenceOptions configures AdjustPreference.
type PreferenceOptions struct {
	// Lambda is the penalty preference λ ∈ [0, 1] of Eqn 3 between
	// enlarging k (λ side) and moving w⃗ (1−λ side). DefaultLambda is
	// the paper's default; the zero value is a legitimate λ = 0.
	Lambda float64
	// Algorithm selects the implementation; the zero value is the
	// paper's indexed sweep.
	Algorithm PreferenceAlgorithm
	// Samples is the grid size for PrefSampling (default 64).
	Samples int
}

// PreferenceResult is a preference-adjusted refined query (Definition 2)
// together with its penalty decomposition.
type PreferenceResult struct {
	// Refined is the refined query q′ = (loc, doc, k′, w⃗′): original
	// location and keywords, possibly enlarged k, adjusted weights.
	Refined score.Query
	// Penalty is Eqn 3 evaluated for Refined.
	Penalty float64
	// DeltaK is max(0, R(M, q′) − q.k), the k enlargement.
	DeltaK int
	// DeltaW is ‖q.w⃗ − q′.w⃗‖₂.
	DeltaW float64
	// RankBefore is R(M, q): the worst missing-object rank under the
	// initial query. RankAfter is R(M, q′) under the refined query.
	RankBefore, RankAfter int
	// Candidates is the number of candidate weight vectors evaluated.
	Candidates int
}

// scoreLine is one object's ranking score as a function of wt ∈ (0, 1):
// f(wt) = a + b·wt, with a = 1 − SDist and b = TSim − a. This is the 1-D
// form of the paper's segment in the 2-D weight plane (ws + wt = 1
// collapses the plane to the wt axis).
type scoreLine struct {
	a, b float64
	id   object.ID
}

func lineOf(s score.Scorer, o object.Object) scoreLine {
	spatial, textual := s.Components(o)
	return scoreLine{a: spatial, b: textual - spatial, id: o.ID}
}

// eval returns the score at wt.
func (l scoreLine) eval(wt float64) float64 { return l.a + l.b*wt }

// aboveNear0 reports whether l ranks above m on the open interval just
// inside wt = 0 (ties between identical lines break by ID, matching
// score.Better).
func (l scoreLine) aboveNear0(m scoreLine) bool {
	da := l.a - m.a
	db := l.b - m.b
	if da != 0 {
		return da > 0
	}
	if db != 0 {
		return db > 0
	}
	return l.id < m.id
}

// aboveNear1 reports whether l ranks above m just inside wt = 1.
func (l scoreLine) aboveNear1(m scoreLine) bool {
	d1 := (l.a + l.b) - (m.a + m.b)
	if d1 != 0 {
		return d1 > 0
	}
	db := l.b - m.b
	if db != 0 {
		// Equal at 1; approaching from the left the sign is −db.
		return db < 0
	}
	return l.id < m.id
}

// crossing returns the interior crossing point of l and m and whether
// the two lines swap order inside (0, 1). Crossings that round to the
// interval boundary are dropped: the pair then keeps one order over
// (numerically) the whole interval.
func (l scoreLine) crossing(m scoreLine) (float64, bool) {
	if l.aboveNear0(m) == l.aboveNear1(m) {
		return 0, false
	}
	wt := (m.a - l.a) / (l.b - m.b)
	if !(wt > 0 && wt < 1) {
		return 0, false
	}
	return wt, true
}

// prefEvent is one crossing of a missing object's line.
type prefEvent struct {
	wt       float64
	mIdx     int       // index into the missing set
	other    scoreLine // the line crossing the missing object's line
	wasAbove bool      // other above missing before the crossing
}

// AdjustPreference answers the preference-adjusted why-not query
// (Definition 2): it returns the refined query (loc, doc, k′, w⃗′) with
// minimum penalty Eqn 3 whose result contains every missing object.
func (e *Engine) AdjustPreference(q score.Query, missing []object.ID, opts PreferenceOptions) (PreferenceResult, error) {
	return e.AdjustPreferenceCtx(context.Background(), q, missing, opts)
}

// AdjustPreferenceCtx is AdjustPreference under a context: the event
// construction and every rank computation poll the context's
// cancellation signal, and a canceled adjustment returns ctx.Err()
// without caching anything.
func (e *Engine) AdjustPreferenceCtx(ctx context.Context, q score.Query, missing []object.ID, opts PreferenceOptions) (PreferenceResult, error) {
	v, err := e.acquire()
	if err != nil {
		return PreferenceResult{}, err
	}
	s, objs, rankBefore, err := e.validateWhyNot(ctx, v.set, q, missing)
	if err != nil {
		return PreferenceResult{}, err
	}
	if err := validateLambda(opts.Lambda); err != nil {
		return PreferenceResult{}, err
	}
	// The options join the missing IDs in the cache key: λ, algorithm,
	// and grid size all change the refined query. Validation above runs
	// on hits too, so cached and computed paths reject alike.
	epoch := v.set.Epoch()
	extra := make([]uint64, 0, len(missing)+3)
	for _, id := range missing {
		extra = append(extra, uint64(id))
	}
	extra = append(extra, math.Float64bits(opts.Lambda), uint64(opts.Algorithm), uint64(opts.Samples))
	if cached, ok := e.cache.GetValue(epoch, qcache.KindPreference, q, extra); ok {
		return copyPreferenceResult(cached.(PreferenceResult)), nil
	}
	var res PreferenceResult
	switch opts.Algorithm {
	case PrefSweep, PrefSweepIndexed:
		res, err = e.adjustBySweep(ctx, v, s, objs, rankBefore, opts)
	case PrefSampling:
		res, err = e.adjustBySampling(ctx, v, s, objs, rankBefore, opts)
	default:
		return PreferenceResult{}, fmt.Errorf("core: unknown preference algorithm %d", opts.Algorithm)
	}
	if err != nil {
		return PreferenceResult{}, err
	}
	e.cache.PutValue(epoch, qcache.KindPreference, q, extra, copyPreferenceResult(res))
	return res, nil
}

// copyPreferenceResult detaches the one shared slice in a
// PreferenceResult (the refined query's keyword set) so cached values
// never alias caller-owned memory in either direction.
func copyPreferenceResult(r PreferenceResult) PreferenceResult {
	r.Refined.Doc = append(vocab.KeywordSet(nil), r.Refined.Doc...)
	return r
}

// prefPenalty evaluates Eqn 3.
func prefPenalty(q score.Query, lambda float64, rankBefore, rankAfter int, wtNew float64) (penalty float64, deltaK int, deltaW float64) {
	deltaK = rankAfter - q.K
	if deltaK < 0 {
		deltaK = 0
	}
	w2 := score.WeightsFromWt(wtNew)
	deltaW = q.W.Dist(w2)
	kNorm := float64(rankBefore - q.K)
	wNorm := math.Sqrt(1 + q.W.Ws*q.W.Ws + q.W.Wt*q.W.Wt)
	penalty = lambda*float64(deltaK)/kNorm + (1-lambda)*deltaW/wNorm
	return penalty, deltaK, deltaW
}

// crossingNudge is how far past a crossing point a candidate weight is
// placed. Ranks are piecewise constant between crossings and the rank a
// refinement is after is attained on the far side of the crossing (at
// the crossing itself, ties can resolve against the missing object), so
// the minimum-penalty weight is the crossing plus an arbitrarily small
// step away from the initial weight. The nudge realizes that step; it
// also keeps the refined query's re-evaluated scores clear of the exact
// tie, where floating point could order either way.
const crossingNudge = 1e-9

// adjustBySweep implements the exact algorithm of [5]: build the crossing
// events of every missing object's line, sweep them in wt order
// maintaining each missing object's rank incrementally (the rank update
// theorem), and evaluate penalty Eqn 3 at every intersection, nudged one
// epsilon past the crossing away from the initial weight.
func (e *Engine) adjustBySweep(ctx context.Context, v engineView, s score.Scorer, objs []object.Object, rankBefore int, opts PreferenceOptions) (PreferenceResult, error) {
	cc := index.CancelOf(ctx)
	q := s.Query
	mLines := make([]scoreLine, len(objs))
	for i, o := range objs {
		mLines[i] = lineOf(s, o)
	}

	var events []prefEvent
	curAbove := make([]int, len(objs)) // objects above m in the current interval

	// addLine folds one competitor line into missing object mi's event
	// list and interval count.
	addLine := func(mi int, line scoreLine) {
		ml := mLines[mi]
		above0 := line.aboveNear0(ml)
		if wt, ok := line.crossing(ml); ok {
			events = append(events, prefEvent{wt: wt, mIdx: mi, other: line, wasAbove: above0})
			if above0 {
				curAbove[mi]++
			}
		} else if above0 {
			curAbove[mi]++ // above on the whole interval
		}
	}

	if opts.Algorithm == PrefSweep {
		// Missing objects are competitors of each other too, so no
		// object other than m itself is skipped. Score each object once
		// and fold its line into every missing object's events.
		countdown := index.CheckInterval
		for _, o := range e.coll.All() {
			if countdown--; countdown <= 0 {
				if err := ctx.Err(); err != nil {
					return PreferenceResult{}, err
				}
				countdown = index.CheckInterval
			}
			if !e.coll.Alive(o.ID) {
				continue
			}
			line := lineOf(s, o)
			for mi, ml := range mLines {
				if o.ID == ml.id {
					continue
				}
				addLine(mi, line)
			}
		}
	} else {
		// Indexed event construction: one KcR-family descent per missing
		// object, pruning subtrees whose score bounds prove every object
		// stays on one side of the missing line over the whole weight
		// interval — the index-based analogue of the paper's two range
		// queries. Sharded views fan the descent across partitions and
		// report back in global ID space.
		for mi, ml := range mLines {
			mi, ml := mi, ml
			v.kc.ForEachCross(cc, s, ml.a, ml.a+ml.b,
				func(o object.Object) {
					if o.ID == ml.id {
						return
					}
					addLine(mi, lineOf(s, o))
				},
				func(count int) { curAbove[mi] += count })
			if err := ctx.Err(); err != nil {
				// A truncated descent means missing crossing events: the
				// sweep below would compute wrong ranks, so bail out here.
				return PreferenceResult{}, err
			}
		}
	}

	sort.Slice(events, func(i, j int) bool { return events[i].wt < events[j].wt })

	// Candidate 0: keep w⃗, only enlarge k. Penalty λ·1 + (1−λ)·0 = λ.
	best := PreferenceResult{
		Refined:    q.WithWeights(q.W),
		Penalty:    opts.Lambda,
		DeltaK:     rankBefore - q.K,
		DeltaW:     0,
		RankBefore: rankBefore,
		RankAfter:  rankBefore,
		Candidates: 1,
	}
	best.Refined.K = rankBefore

	update := func(wt float64, rankAfter int) {
		pen, dk, dw := prefPenalty(q, opts.Lambda, rankBefore, rankAfter, wt)
		better := pen < best.Penalty-1e-15 ||
			(math.Abs(pen-best.Penalty) <= 1e-15 && dw < best.DeltaW)
		if better {
			refined := q.WithWeights(score.WeightsFromWt(wt))
			if rankAfter > q.K {
				refined.K = rankAfter
			}
			best = PreferenceResult{
				Refined: refined, Penalty: pen, DeltaK: dk, DeltaW: dw,
				RankBefore: rankBefore, RankAfter: rankAfter,
				Candidates: best.Candidates,
			}
		}
	}

	// Sweep groups of events sharing one intersection wt, ascending.
	// curAbove always holds the interval counts between the previous
	// group and the current one.
	wt0 := q.W.Wt
	prevWt := 0.0
	for gi := 0; gi < len(events); {
		gj := gi
		wt := events[gi].wt
		for gj < len(events) && events[gj].wt == wt {
			gj++
		}
		nextWt := 1.0
		if gj < len(events) {
			nextWt = events[gj].wt
		}

		worstBefore := 0 // interval (prevWt, wt)
		for mi := range mLines {
			if r := 1 + curAbove[mi]; r > worstBefore {
				worstBefore = r
			}
		}
		// Apply the flips for the interval after wt.
		for _, ev := range events[gi:gj] {
			if ev.wasAbove {
				curAbove[ev.mIdx]--
			} else {
				curAbove[ev.mIdx]++
			}
		}
		worstAfter := 0 // interval (wt, nextWt)
		for mi := range mLines {
			if r := 1 + curAbove[mi]; r > worstAfter {
				worstAfter = r
			}
		}

		// The candidate weight steps just past the crossing, away from
		// the initial weight, into the interval whose rank it attains.
		if wt < wt0 {
			if cand := wt - min2(crossingNudge, (wt-prevWt)/2, wt/2); cand > 0 && cand < wt {
				best.Candidates++
				update(cand, worstBefore)
			}
		} else {
			if cand := wt + min2(crossingNudge, (nextWt-wt)/2, (1-wt)/2); cand < 1 && cand > wt {
				best.Candidates++
				update(cand, worstAfter)
			}
		}
		prevWt = wt
		gi = gj
	}
	return best, nil
}

func min2(a, b, c float64) float64 {
	return math.Min(a, math.Min(b, c))
}

// adjustBySampling evaluates a uniform grid of wt values, computing
// R(M, q′) through the SetR-family rank primitive. Approximate: the best
// grid point's penalty upper-bounds the optimum.
func (e *Engine) adjustBySampling(ctx context.Context, v engineView, s score.Scorer, objs []object.Object, rankBefore int, opts PreferenceOptions) (PreferenceResult, error) {
	cc := index.CancelOf(ctx)
	q := s.Query
	samples := opts.Samples
	if samples <= 0 {
		samples = 64
	}
	best := PreferenceResult{
		Refined:    q,
		Penalty:    opts.Lambda,
		DeltaK:     rankBefore - q.K,
		RankBefore: rankBefore,
		RankAfter:  rankBefore,
		Candidates: 1,
	}
	best.Refined.K = rankBefore
	for i := 1; i <= samples; i++ {
		wt := float64(i) / float64(samples+1)
		s2 := score.Scorer{Query: q.WithWeights(score.WeightsFromWt(wt)), MaxDist: s.MaxDist}
		worst := 0
		for _, o := range objs {
			if r := index.RankOf(cc, v.set, s2, o); r > worst {
				worst = r
			}
		}
		if err := ctx.Err(); err != nil {
			return PreferenceResult{}, err
		}
		pen, dk, dw := prefPenalty(q, opts.Lambda, rankBefore, worst, wt)
		best.Candidates++
		if pen < best.Penalty-1e-15 || (math.Abs(pen-best.Penalty) <= 1e-15 && dw < best.DeltaW) {
			refined := q.WithWeights(score.WeightsFromWt(wt))
			if worst > q.K {
				refined.K = worst
			}
			best = PreferenceResult{
				Refined: refined, Penalty: pen, DeltaK: dk, DeltaW: dw,
				RankBefore: rankBefore, RankAfter: worst,
				Candidates: best.Candidates,
			}
		}
	}
	return best, nil
}
