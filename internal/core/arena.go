// Arena persistence: the engine half of the mmap-able index snapshots.
//
// When Options.MmapArenas is set on a durable single-index engine,
// every checkpoint also writes one arena file per index family
// (arena-set-<lsn>.yar, arena-kc-<lsn>.yar — the serialized frozen
// rtree.Flat columns, docs/FORMATS.md) with the same atomic-rename
// protocol as the checkpoint itself. Boot then mmaps the arena set
// matching the restored checkpoint LSN and serves queries straight off
// the file-backed columns: no bulk-load, no aug recomputation, warm
// top-k still allocation-free. The WAL suffix replays through the
// ordinary managed path — the first replayed (or live) mutation thaws a
// real tree from the mapped entries.
//
// Arena files are an optimization, never an authority: any open,
// checksum, version, vocabulary, or shape failure falls back to the
// ordinary checkpoint+WAL rebuild with the reason recorded in
// DurabilityStats.Arena. Corruption is surfaced as wal.ErrCorrupt in
// that reason — it can cost boot time, never correctness.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/wal"
)

// arenaKeepSets mirrors wal.KeepCheckpoints: arena files for this many
// checkpoint LSNs survive pruning, so a boot that falls back to the
// previous checkpoint can still find its arenas.
const arenaKeepSets = 2

// arenaFamilies names the per-family arena files, in write order.
var arenaFamilies = [2]string{"set", "kc"}

// arenaPath is the canonical file name of one family's arena at one
// checkpoint LSN.
func arenaPath(dir, family string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("arena-%s-%016x.yar", family, lsn))
}

// ArenaStats is the durability.arena stats section: the state of arena
// persistence on this engine.
type ArenaStats struct {
	// Enabled reports MmapArenas active (durable, unsharded).
	Enabled bool `json:"enabled"`
	// MmapBoot reports that this boot mapped its index arenas instead of
	// rebuilding them.
	MmapBoot bool `json:"mmapBoot"`
	// RebuildSkipped reports that boot did no index-build work at all:
	// arenas mapped AND no WAL suffix forced a thaw during replay.
	RebuildSkipped bool `json:"rebuildSkipped"`
	// MappedNow counts families still serving mapped file-backed columns
	// (0 after the first mutation thaws them).
	MappedNow int `json:"mappedNow"`
	// FallbackReason records why an enabled boot rebuilt instead of
	// mapping (corrupt file, vocabulary conflict, missing arena set, …).
	FallbackReason string `json:"fallbackReason,omitempty"`
	// SetsWritten counts complete arena sets written by checkpoints this
	// process; BytesWritten their total size.
	SetsWritten  int64 `json:"setsWritten"`
	BytesWritten int64 `json:"bytesWritten"`
	// LastWriteError records the most recent failed arena write (the
	// checkpoint itself still succeeded — arenas are best-effort).
	LastWriteError string `json:"lastWriteError,omitempty"`
}

// loadedArenas is the successful result of tryLoadArenas: both families
// decoded over the restored collection.
type loadedArenas struct {
	coll *object.Collection
	set  *settree.Index
	kc   *kcrtree.Index
}

// tryLoadArenas attempts the mmap boot path: open both family arenas
// for the checkpoint LSN, pin the embedded vocabulary, restore the
// collection, and build both indexes over the mapped columns. It
// returns nil with a reason on ANY failure — the caller falls back to
// the ordinary rebuild; nothing here is allowed to fail the boot.
func tryLoadArenas(opts Options, lsn uint64, rows []wal.Row) (*loadedArenas, string) {
	if opts.Shards > 1 {
		return nil, "sharded backend (arenas are per single-index engine)"
	}
	maxE := opts.MaxEntries
	if maxE == 0 {
		maxE = rtree.DefaultMaxEntries
	}
	raws := make([]*rtree.RawArena, 0, len(arenaFamilies))
	// On any fallback the mappings must be released: nothing was
	// published, so unmapping is safe here and keeps a corrupt-file
	// retry loop (or a fault-injection test) from leaking mappings.
	closeAll := func() {
		for _, r := range raws {
			r.Close()
		}
	}
	for _, family := range arenaFamilies {
		raw, err := rtree.OpenArena(arenaPath(opts.DataDir, family, lsn))
		if err != nil {
			closeAll()
			return nil, fmt.Sprintf("opening %s arena: %v", family, err)
		}
		raws = append(raws, raw)
		if got := raw.LSN(); got != lsn {
			closeAll()
			return nil, fmt.Sprintf("%s arena stamped LSN %d, checkpoint is %d", family, got, lsn)
		}
		if raw.HasSigs() == opts.DisableSignatures {
			closeAll()
			return nil, fmt.Sprintf("%s arena signature columns do not match engine configuration", family)
		}
		if !opts.Vocab.EnsurePrefix(raw.Vocab()) {
			closeAll()
			return nil, fmt.Sprintf("%s arena vocabulary conflicts with already-interned keywords", family)
		}
	}
	coll, err := collectionFromRows(rows, opts.Vocab)
	if err != nil {
		closeAll()
		return nil, fmt.Sprintf("restoring collection: %v", err)
	}
	for i, family := range arenaFamilies {
		if got := raws[i].MaxDist(); got != coll.MaxDist() {
			closeAll()
			return nil, fmt.Sprintf("%s arena normalization constant %v does not match collection %v", family, got, coll.MaxDist())
		}
	}
	set, err := settree.LoadArena(raws[0], coll, maxE)
	if err != nil {
		closeAll()
		return nil, fmt.Sprintf("decoding set arena: %v", err)
	}
	kc, err := kcrtree.LoadArena(raws[1], coll, maxE)
	if err != nil {
		closeAll()
		return nil, fmt.Sprintf("decoding kc arena: %v", err)
	}
	if set.Flat().Len() != coll.LiveLen() || kc.Flat().Len() != coll.LiveLen() {
		closeAll()
		return nil, fmt.Sprintf("arena entry counts (%d, %d) do not cover the %d live objects",
			set.Flat().Len(), kc.Flat().Len(), coll.LiveLen())
	}
	// Published from here on: the mappings live for the process —
	// in-flight queries may hold their slices at any point.
	return &loadedArenas{coll: coll, set: set, kc: kc}, ""
}

// writeArenasLocked persists both family arenas for the checkpoint at
// lsn. Called under e.mu right after the checkpoint file lands; a
// failure is recorded, not returned — the checkpoint alone already
// guarantees recovery, arenas only make it cheap.
func (e *Engine) writeArenasLocked(lsn uint64) {
	d := e.dur
	if d == nil || !d.arenasEnabled || e.group != nil {
		return
	}
	if e.pending > 0 {
		// The published flats lag the collection by the buffered
		// mutations; the arena must equal the checkpoint exactly.
		e.refreshLocked()
	}
	words := d.vocab.All()
	var bytes int64
	for i, family := range arenaFamilies {
		var data []byte
		if i == 0 {
			data = e.set.SaveArena(lsn, words)
		} else {
			data = e.kc.SaveArena(lsn, words)
		}
		if err := rtree.WriteArenaFile(arenaPath(d.dir, family, lsn), data); err != nil {
			d.arenaWriteErr = fmt.Sprintf("writing %s arena: %v", family, err)
			return
		}
		bytes += int64(len(data))
	}
	d.arenasWritten++
	d.arenaBytes += bytes
	d.arenaWriteErr = ""
	pruneArenas(d.dir)
}

// pruneArenas removes arena files older than the arenaKeepSets newest
// checkpoint LSNs present in the directory. Best-effort, like
// checkpoint pruning: a leftover file can waste disk, never correctness
// (boot only maps the exact LSN it restored).
func pruneArenas(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type af struct {
		name string
		lsn  uint64
	}
	var files []af
	lsns := map[uint64]bool{}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "arena-") || !strings.HasSuffix(name, ".yar") {
			continue
		}
		hex := name[strings.LastIndexByte(name, '-')+1 : len(name)-len(".yar")]
		lsn, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		files = append(files, af{name: name, lsn: lsn})
		lsns[lsn] = true
	}
	if len(lsns) <= arenaKeepSets {
		return
	}
	keep := make([]uint64, 0, len(lsns))
	for lsn := range lsns {
		keep = append(keep, lsn)
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] > keep[j] })
	cut := keep[arenaKeepSets-1]
	for _, f := range files {
		if f.lsn < cut {
			os.Remove(filepath.Join(dir, f.name))
		}
	}
}

// arenaStatsLocked assembles the durability.arena section; e.mu held.
func (e *Engine) arenaStatsLocked() *ArenaStats {
	d := e.dur
	st := &ArenaStats{
		Enabled:        d.arenasEnabled,
		MmapBoot:       d.mmapBoot,
		RebuildSkipped: d.rebuildSkipped,
		FallbackReason: d.arenaFallback,
		SetsWritten:    d.arenasWritten,
		BytesWritten:   d.arenaBytes,
		LastWriteError: d.arenaWriteErr,
	}
	if e.group == nil && e.set != nil {
		if e.set.Mapped() {
			st.MappedNow++
		}
		if e.kc.Mapped() {
			st.MappedNow++
		}
	}
	return st
}
