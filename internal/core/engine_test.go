package core

import (
	"context"
	"strings"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/vocab"
)

func testEngine(t *testing.T, n int, seed int64) (*Engine, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(ds.Objects, Options{MaxEntries: 16}), ds
}

// missingFromResult returns IDs of objects ranked right below the top-k
// under q: ranks k+1 .. k+count. These are guaranteed-valid why-not
// targets.
func missingFromResult(e *Engine, q score.Query, count int) []object.ID {
	extended := q
	extended.K = q.K + count
	res, _ := e.TopK(extended)
	ids := make([]object.ID, 0, count)
	for _, r := range res[q.K:] {
		ids = append(ids, r.Obj.ID)
	}
	return ids
}

func TestTopKValidation(t *testing.T) {
	e, ds := testEngine(t, 100, 1)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 2, K: 3, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	res, err := e.TopK(q)
	if err != nil || len(res) != 3 {
		t.Fatalf("TopK = %d results, err %v", len(res), err)
	}
	bad := q
	bad.K = 0
	if _, err := e.TopK(bad); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad2 := q
	bad2.Doc = nil
	if _, err := e.TopK(bad2); err == nil {
		t.Fatal("empty doc accepted")
	}
}

func TestValidateWhyNotErrors(t *testing.T) {
	e, ds := testEngine(t, 200, 3)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 4, K: 3, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	res, _ := e.TopK(q)

	v, err := e.acquireSet()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.validateWhyNot(context.Background(), v, q, nil); err == nil {
		t.Error("empty missing set accepted")
	}
	if _, _, _, err := e.validateWhyNot(context.Background(), v, q, []object.ID{9999}); err == nil {
		t.Error("unknown ID accepted")
	}
	m := missingFromResult(e, q, 1)
	if _, _, _, err := e.validateWhyNot(context.Background(), v, q, []object.ID{m[0], m[0]}); err == nil {
		t.Error("duplicate missing accepted")
	}
	// An object already in the result is not a why-not question.
	if _, _, _, err := e.validateWhyNot(context.Background(), v, q, []object.ID{res[0].Obj.ID}); err == nil {
		t.Error("result member accepted as missing")
	}
	// Valid case returns the worst initial rank.
	miss := missingFromResult(e, q, 2)
	s := score.NewScorer(q, ds.Objects)
	_, objs, worst, err := e.validateWhyNot(context.Background(), v, q, miss)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objs = %d", len(objs))
	}
	wantWorst := 0
	for _, id := range miss {
		if r := settree.ScanRank(ds.Objects, s, id); r > wantWorst {
			wantWorst = r
		}
	}
	if worst != wantWorst {
		t.Fatalf("worst rank %d, want %d", worst, wantWorst)
	}
}

func TestMissingDocUnion(t *testing.T) {
	objs := []object.Object{
		{Doc: vocab.NewKeywordSet(1, 2)},
		{Doc: vocab.NewKeywordSet(2, 3)},
	}
	if got := MissingDocUnion(objs); !got.Equal(vocab.NewKeywordSet(1, 2, 3)) {
		t.Fatalf("MissingDocUnion = %v", got)
	}
	if got := MissingDocUnion(nil); !got.Empty() {
		t.Fatalf("empty union = %v", got)
	}
}

func TestExplainReportsTrueRank(t *testing.T) {
	e, ds := testEngine(t, 500, 5)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 6, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	miss := missingFromResult(e, q, 3)
	exps, err := e.Explain(q, miss)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 {
		t.Fatalf("explanations = %d", len(exps))
	}
	s := score.NewScorer(q, ds.Objects)
	for i, ex := range exps {
		if ex.Missing.ID != miss[i] {
			t.Fatalf("explanation %d is for %d", i, ex.Missing.ID)
		}
		if want := settree.ScanRank(ds.Objects, s, miss[i]); ex.Rank != want {
			t.Fatalf("rank %d, scan %d", ex.Rank, want)
		}
		if ex.Rank <= q.K {
			t.Fatal("missing object rank must exceed k")
		}
		if ex.Detail == "" {
			t.Fatal("empty detail")
		}
		if ex.SDist < 0 || ex.SDist > 1 || ex.TSim < 0 || ex.TSim > 1 {
			t.Fatalf("components out of range: %+v", ex)
		}
	}
}

func TestExplainReasonClassification(t *testing.T) {
	// Hand-built scenario: cluster of relevant objects at the query
	// location, one relevant object far away (too-far), one nearby
	// object with disjoint keywords (not-relevant).
	v := vocab.NewVocabulary()
	coffee := v.Intern("coffee")
	cafe := v.Intern("cafe")
	tea := v.Intern("tea")
	bookshop := v.Intern("bookshop")
	objs := []object.Object{
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}, Doc: vocab.NewKeywordSet(coffee, cafe)},
		{ID: 1, Loc: geo.Point{X: 1, Y: 0}, Doc: vocab.NewKeywordSet(coffee, cafe)},
		{ID: 2, Loc: geo.Point{X: 0, Y: 1}, Doc: vocab.NewKeywordSet(coffee, cafe)},
		// Far but perfectly relevant.
		{ID: 3, Loc: geo.Point{X: 90, Y: 90}, Doc: vocab.NewKeywordSet(coffee, cafe)},
		// Near but textually unrelated.
		{ID: 4, Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(tea, bookshop)},
		// Filler so the space is big.
		{ID: 5, Loc: geo.Point{X: 100, Y: 0}, Doc: vocab.NewKeywordSet(tea)},
	}
	e := NewEngine(object.NewCollection(objs), Options{MaxEntries: 4})
	q := score.Query{
		Loc: geo.Point{X: 0, Y: 0},
		Doc: vocab.NewKeywordSet(coffee, cafe),
		K:   3, W: score.DefaultWeights,
	}
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got := score.ResultIDs(res)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("unexpected top-3: %v", got)
	}

	exps, err := e.Explain(q, []object.ID{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if exps[0].Reason != ReasonTooFar {
		t.Errorf("object 3 reason = %v, want too-far (%+v)", exps[0].Reason, exps[0])
	}
	if !exps[0].SuggestPreference {
		t.Error("too-far object should suggest preference adjustment")
	}
	if exps[1].Reason != ReasonNotRelevant {
		t.Errorf("object 4 reason = %v, want not-relevant", exps[1].Reason)
	}
	if !exps[1].SuggestKeyword {
		t.Error("not-relevant object should suggest keyword adaption")
	}
	if !strings.Contains(exps[0].Detail, "far") {
		t.Errorf("detail %q should mention distance", exps[0].Detail)
	}
}

func TestReasonString(t *testing.T) {
	for _, r := range []Reason{ReasonBorderline, ReasonTooFar, ReasonNotRelevant, ReasonBoth, Reason(42)} {
		if r.String() == "" {
			t.Fatalf("empty string for %d", int(r))
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []PreferenceAlgorithm{PrefSweepIndexed, PrefSweep, PrefSampling, PreferenceAlgorithm(9)} {
		if a.String() == "" {
			t.Fatal("empty PreferenceAlgorithm string")
		}
	}
	for _, a := range []KeywordAlgorithm{KwBoundPrune, KwExhaustive, KeywordAlgorithm(9)} {
		if a.String() == "" {
			t.Fatal("empty KeywordAlgorithm string")
		}
	}
}

func TestValidateLambda(t *testing.T) {
	for _, l := range []float64{0, 0.5, 1} {
		if err := validateLambda(l); err != nil {
			t.Errorf("lambda %v rejected", l)
		}
	}
	for _, l := range []float64{-0.1, 1.1} {
		if err := validateLambda(l); err == nil {
			t.Errorf("lambda %v accepted", l)
		}
	}
}

func TestKeywordUniverse(t *testing.T) {
	e, ds := testEngine(t, 300, 7)
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 8, K: 3, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	miss := missingFromResult(e, q, 2)
	u, err := e.KeywordUniverse(q, miss)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Doc
	for _, id := range miss {
		want = want.Union(ds.Objects.Get(id).Doc)
	}
	if !u.Equal(want) {
		t.Fatalf("universe %v, want %v", u, want)
	}
}
