package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/shard"
)

// skewedCollection generates the tightly clustered dataset the STR
// splitter and the rebalancer exist for.
func skewedCollection(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig(n, seed)
	cfg.Clusters = 3
	cfg.ClusterStd = 0.01
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// hotspotObject derives a deterministic insert jittered around a source
// object — the drift pattern that skews a balanced layout.
func hotspotObject(ds *dataset.Dataset, src object.Object, i int) object.Object {
	loc := src.Loc
	loc.X += float64(i%89) * 1e-5
	loc.Y += float64(i%89) * 1e-5
	return object.Object{Loc: loc, Doc: ds.Objects.Get(object.ID(i % ds.Objects.Len())).Doc, Name: "hot"}
}

// TestRebalancedEngineEquivalence is the rebalance acceptance property:
// the STR-sharded engine answers byte-identically to the unsharded
// engine before a rebalance, after explicit rebalances interleaved with
// a hotspot mutation storm, and after the storm settles.
func TestRebalancedEngineEquivalence(t *testing.T) {
	ds := skewedCollection(t, 500, 91)
	for _, shards := range []int{3, 4} {
		single := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16})
		sharded := NewEngine(cloneCollection(ds.Objects), Options{
			MaxEntries: 16, Shards: shards, Splitter: shard.STRSplitter{},
		})
		qs := dataset.Workload(ds, dataset.WorkloadConfig{
			Queries: 4, Seed: 92, K: 5, Keywords: 2,
			W: score.DefaultWeights, FromObjectDocs: true,
		})
		ctx := func(phase string) string { return fmt.Sprintf("%s/shards=%d", phase, shards) }
		assertEquivalent(t, ctx("fresh"), single, sharded, qs)

		// Identical hotspot mutations on both engines, with rebalances
		// interleaved mid-stream on the sharded one only — answers must
		// not move.
		rng := rand.New(rand.NewSource(93))
		hot := ds.Objects.Get(3)
		var added []object.ID
		for i := 0; i < 90; i++ {
			if i%5 == 4 && len(added) > 0 {
				id := added[rng.Intn(len(added))]
				e1, e2 := single.Remove(id), sharded.Remove(id)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("remove(%d) diverges: %v vs %v", id, e1, e2)
				}
			} else {
				o := hotspotObject(ds, hot, i)
				id1, err1 := single.Insert(o)
				id2, err2 := sharded.Insert(o)
				if err1 != nil || err2 != nil || id1 != id2 {
					t.Fatalf("insert diverges: (%d, %v) vs (%d, %v)", id1, err1, id2, err2)
				}
				added = append(added, id1)
			}
			if i%30 == 29 {
				if !sharded.Rebalance() {
					t.Fatal("Rebalance() = false on a sharded engine")
				}
				assertEquivalent(t, ctx(fmt.Sprintf("mid-rebalance-%d", i)), single, sharded, qs[:1])
			}
		}
		assertEquivalent(t, ctx("after-storm"), single, sharded, qs)

		st := sharded.Stats()
		if st.Splitter != "str" {
			t.Fatalf("Stats().Splitter = %q, want str", st.Splitter)
		}
		if st.Rebalances < 3 {
			t.Fatalf("Stats().Rebalances = %d, want ≥ 3", st.Rebalances)
		}
		if st.ImbalanceFactor > 1.6 {
			t.Fatalf("post-rebalance imbalance %.2f — rebalance did not restore balance", st.ImbalanceFactor)
		}
	}
}

// TestAutoRebalance: with a RebalanceFactor configured, a hotspot
// insert storm triggers a background rebalance on its own, balance is
// restored, and answers keep matching the unsharded engine.
func TestAutoRebalance(t *testing.T) {
	ds := skewedCollection(t, 400, 94)
	single := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16})
	sharded := NewEngine(cloneCollection(ds.Objects), Options{
		MaxEntries: 16, Shards: 4, Splitter: shard.STRSplitter{}, RebalanceFactor: 1.5,
	})
	hot := ds.Objects.Get(11)
	for i := 0; i < 400; i++ {
		o := hotspotObject(ds, hot, i)
		if _, err := single.Insert(o); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger fires on the mutation path but the rebalance itself is
	// asynchronous; wait for it to publish.
	deadline := time.Now().Add(10 * time.Second)
	for sharded.Stats().Rebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background rebalance never ran (imbalance %.2f)", sharded.Stats().ImbalanceFactor)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let any in-flight rebalance finish (it holds the mutation mutex),
	// then verify balance and equivalence.
	sharded.Refresh()
	if got := sharded.Stats().ImbalanceFactor; got > 1.5 {
		t.Fatalf("imbalance %.2f after auto-rebalance, want ≤ 1.5", got)
	}
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 4, Seed: 95, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	assertEquivalent(t, "auto-rebalanced", single, sharded, qs)
}

// TestRebalanceStorm drives concurrent top-k traffic against a hotspot
// mutation storm with both automatic and explicit rebalances — the
// race-detector exercise of the publish path. Zero queries may fail,
// and the final state must answer identically to a fresh unsharded
// engine over the same collection.
func TestRebalanceStorm(t *testing.T) {
	ds := skewedCollection(t, 300, 96)
	e := NewEngine(cloneCollection(ds.Objects), Options{
		MaxEntries: 16, Shards: 4, Splitter: shard.STRSplitter{},
		RebalanceFactor: 1.3, RefreshEvery: 5,
	})
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 6, Seed: 97, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(i+w)%len(qs)]
				res, err := e.TopK(q)
				if err != nil {
					t.Errorf("worker %d: TopK: %v", w, err)
					return
				}
				for j := 1; j < len(res); j++ {
					if score.Better(res[j].Score, res[j].Obj.ID, res[j-1].Score, res[j-1].Obj.ID) {
						t.Errorf("worker %d: results out of order", w)
						return
					}
				}
				if i%16 == 0 {
					if _, err := e.Rank(q, res[len(res)-1].Obj.ID); err != nil {
						// The storm may tombstone the object between the
						// two calls — a validation error is fine, only
						// missing answers are not.
						continue
					}
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(98))
	hot := ds.Objects.Get(5)
	var added []object.ID
	for i := 0; i < 250; i++ {
		if i%4 == 3 && len(added) > 0 {
			j := rng.Intn(len(added))
			_ = e.Remove(added[j])
			added = append(added[:j], added[j+1:]...)
			continue
		}
		id, err := e.Insert(hotspotObject(ds, hot, i))
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
		if i%100 == 99 {
			e.Rebalance()
		}
	}
	e.Refresh()
	close(stop)
	wg.Wait()

	if e.Stats().Rebalances == 0 {
		t.Fatal("storm never rebalanced")
	}
	// Final equivalence: a fresh unsharded engine over a clone of the
	// storm's end state answers identically.
	single := NewEngine(cloneCollection(e.Collection()), Options{MaxEntries: 16})
	for qi, q := range qs {
		want, err1 := single.TopK(q)
		got, err2 := e.TopK(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("final q%d: errs %v / %v", qi, err1, err2)
		}
		assertSameResults(t, fmt.Sprintf("final q%d", qi), got, want)
	}
}

// TestStatsBalanceFields: the stats surface carries the balance
// telemetry — splitter name, per-shard balance rows summing to the
// shard count, and an imbalance factor matching the worst row.
func TestStatsBalanceFields(t *testing.T) {
	ds := skewedCollection(t, 400, 99)
	for _, tc := range []struct {
		opts     Options
		splitter string
	}{
		{Options{MaxEntries: 16}, ""},
		{Options{MaxEntries: 16, Shards: 4}, "grid"},
		{Options{MaxEntries: 16, Shards: 4, Splitter: shard.STRSplitter{}}, "str"},
	} {
		e := NewEngine(cloneCollection(ds.Objects), tc.opts)
		st := e.Stats()
		if st.Splitter != tc.splitter {
			t.Fatalf("splitter %q, want %q", st.Splitter, tc.splitter)
		}
		sum, worst := 0.0, 0.0
		for _, row := range st.PerShard {
			sum += row.Balance
			if row.Balance > worst {
				worst = row.Balance
			}
		}
		if diff := sum - float64(st.Shards); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("per-shard balance sums to %v, want %d", sum, st.Shards)
		}
		if diff := worst - st.ImbalanceFactor; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("worst balance %v != imbalance factor %v", worst, st.ImbalanceFactor)
		}
		if tc.splitter == "str" && st.ImbalanceFactor > 1.5 {
			t.Fatalf("STR imbalance %v on build, want near 1", st.ImbalanceFactor)
		}
	}
	// Invalid configuration panics: a factor ≤ 1 would rebalance forever.
	defer func() {
		if recover() == nil {
			t.Fatal("RebalanceFactor 0.5 did not panic")
		}
	}()
	NewEngine(cloneCollection(ds.Objects), Options{Shards: 2, RebalanceFactor: 0.5})
}

// TestRebalanceIrreducibleSkewNoThrash: when many objects share one
// exact coordinate, no cut can separate them, so the rebalance cannot
// push the imbalance below the factor. The engine must pay one rebuild
// and remember that floor — not rebuild the world on every subsequent
// mutation.
func TestRebalanceIrreducibleSkewNoThrash(t *testing.T) {
	ds := skewedCollection(t, 300, 101)
	e := NewEngine(cloneCollection(ds.Objects), Options{
		MaxEntries: 16, Shards: 4, Splitter: shard.STRSplitter{}, RebalanceFactor: 1.2,
	})
	// An irreducible hotspot: every insert lands on the same point.
	hot := ds.Objects.Get(0)
	for i := 0; i < 300; i++ {
		if _, err := e.Insert(object.Object{Loc: hot.Loc, Doc: hot.Doc, Name: "pile"}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the background rebalance(s) to settle: the count must
	// stop moving even though the imbalance stays above the factor.
	deadline := time.Now().Add(10 * time.Second)
	last, stableSince := int64(-1), time.Now()
	for {
		if n := e.Stats().Rebalances; n != last {
			last, stableSince = n, time.Now()
		} else if time.Since(stableSince) > 300*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance count never settled (at %d)", last)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if last < 1 {
		t.Fatalf("Rebalances = %d, want ≥ 1", last)
	}
	if imb := e.Stats().ImbalanceFactor; imb <= 1.2 {
		t.Fatalf("imbalance %.2f — the pile was reducible, test premise broken", imb)
	}
	// More mutations on the same pile must not trigger further rebuilds:
	// the floor remembers what the splitter could not improve.
	for i := 0; i < 20; i++ {
		if _, err := e.Insert(object.Object{Loc: hot.Loc, Doc: hot.Doc, Name: "pile2"}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if got := e.Stats().Rebalances; got != last {
		t.Fatalf("irreducible skew re-triggered rebalances: %d -> %d", last, got)
	}
}
