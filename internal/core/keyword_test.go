package core

import (
	"math"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/vocab"
)

// kwOracle brute-forces the keyword adaption optimum: every non-empty
// subset of q.doc ∪ M.doc, penalty via full-scan rank computation. Only
// usable for small universes.
func kwOracle(t *testing.T, e *Engine, q score.Query, missing []object.ID, lambda float64) KeywordResult {
	t.Helper()
	s := score.NewScorer(q, e.Collection())
	mObjs := make([]object.Object, len(missing))
	for i, id := range missing {
		mObjs[i] = e.Collection().Get(id)
	}
	rankBefore := 0
	for _, m := range mObjs {
		if r := settree.ScanRank(e.Collection(), s, m.ID); r > rankBefore {
			rankBefore = r
		}
	}
	universe := q.Doc.Union(MissingDocUnion(mObjs))
	if universe.Len() > 18 {
		t.Fatalf("universe too large for oracle: %d", universe.Len())
	}
	docNorm := float64(universe.Len())
	kNorm := float64(rankBefore - q.K)

	best := KeywordResult{
		Refined: q, Penalty: lambda,
		DeltaK: rankBefore - q.K, RankBefore: rankBefore, RankAfter: rankBefore,
	}
	best.Refined.K = rankBefore
	for mask := 1; mask < 1<<universe.Len(); mask++ {
		var doc vocab.KeywordSet
		for i, kw := range universe {
			if mask&(1<<i) != 0 {
				doc = append(doc, kw)
			}
		}
		s2 := score.Scorer{Query: q.WithDoc(doc), MaxDist: s.MaxDist}
		worst := 0
		for _, m := range mObjs {
			if r := settree.ScanRank(e.Collection(), s2, m.ID); r > worst {
				worst = r
			}
		}
		dk := worst - q.K
		if dk < 0 {
			dk = 0
		}
		dd := q.Doc.EditDistance(doc)
		pen := lambda*float64(dk)/kNorm + (1-lambda)*float64(dd)/docNorm
		if pen < best.Penalty-1e-15 || (math.Abs(pen-best.Penalty) <= 1e-15 && dd < best.DeltaDoc) {
			refined := q.WithDoc(doc)
			if worst > q.K {
				refined.K = worst
			}
			best = KeywordResult{
				Refined: refined, Penalty: pen, DeltaK: dk, DeltaDoc: dd,
				RankBefore: rankBefore, RankAfter: worst,
			}
		}
	}
	return best
}

func kwWorkload(t *testing.T, e *Engine, ds *dataset.Dataset, seed int64, k, kw, nMiss int) (score.Query, []object.ID) {
	t.Helper()
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: seed, K: k, Keywords: kw, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	return q, missingFromResult(e, q, nMiss)
}

func TestAdaptKeywordsRevivesMissing(t *testing.T) {
	e, ds := testEngine(t, 400, 20)
	for seed := int64(0); seed < 6; seed++ {
		q, miss := kwWorkload(t, e, ds, seed, 5, 2, 2)
		for _, alg := range []KeywordAlgorithm{KwBoundPrune, KwExhaustive} {
			res, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.5, Algorithm: alg})
			if err != nil {
				t.Fatalf("seed %d alg %v: %v", seed, alg, err)
			}
			assertRevived(t, e, res.Refined, miss)
			if res.Penalty < 0 || res.Penalty > 1+1e-12 {
				t.Fatalf("penalty %v out of range", res.Penalty)
			}
		}
	}
}

func TestAdaptKeywordsMatchesOracle(t *testing.T) {
	// Small dataset with a narrow vocabulary so the oracle universe
	// stays enumerable.
	cfg := dataset.DefaultConfig(150, 21)
	cfg.VocabSize = 30
	cfg.MinKeywords, cfg.MaxKeywords = 2, 5
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ds.Objects, Options{MaxEntries: 8})
	for seed := int64(0); seed < 6; seed++ {
		q, miss := kwWorkload(t, e, ds, seed, 3, 2, 1)
		for _, lambda := range []float64{0.3, 0.5, 0.7} {
			want := kwOracle(t, e, q, miss, lambda)
			for _, alg := range []KeywordAlgorithm{KwBoundPrune, KwExhaustive} {
				got, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: lambda, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Penalty-want.Penalty) > 1e-12 {
					t.Fatalf("seed %d λ=%v alg %v: penalty %v, oracle %v (doc %v vs %v)",
						seed, lambda, alg, got.Penalty, want.Penalty, got.Refined.Doc, want.Refined.Doc)
				}
				if got.RankBefore != want.RankBefore {
					t.Fatalf("rankBefore %d, oracle %d", got.RankBefore, want.RankBefore)
				}
			}
		}
	}
}

func TestAdaptKeywordsAlgorithmsAgree(t *testing.T) {
	e, ds := testEngine(t, 500, 22)
	for seed := int64(10); seed < 14; seed++ {
		q, miss := kwWorkload(t, e, ds, seed, 5, 2, 1)
		a, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.5, Algorithm: KwBoundPrune})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.5, Algorithm: KwExhaustive})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Penalty-b.Penalty) > 1e-12 {
			t.Fatalf("seed %d: bound-prune %v vs exhaustive %v", seed, a.Penalty, b.Penalty)
		}
		if a.DeltaDoc != b.DeltaDoc || a.RankAfter != b.RankAfter {
			t.Fatalf("seed %d: results differ: %+v vs %+v", seed, a, b)
		}
		// Pruning must not evaluate more candidates than exhaustive.
		if a.CandidatesEvaluated > b.CandidatesEvaluated {
			t.Fatalf("bound-prune evaluated %d > exhaustive %d", a.CandidatesEvaluated, b.CandidatesEvaluated)
		}
	}
}

func TestAdaptKeywordsEditAccounting(t *testing.T) {
	e, ds := testEngine(t, 400, 23)
	q, miss := kwWorkload(t, e, ds, 30, 5, 3, 2)
	res, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.6, Algorithm: KwBoundPrune})
	if err != nil {
		t.Fatal(err)
	}
	// Added/Removed must reproduce the refined doc.
	rebuilt := q.Doc.Diff(res.Removed).Union(res.Added)
	if !rebuilt.Equal(res.Refined.Doc) {
		t.Fatalf("edits do not rebuild the doc: %v vs %v", rebuilt, res.Refined.Doc)
	}
	if got := q.Doc.EditDistance(res.Refined.Doc); got != res.DeltaDoc {
		t.Fatalf("DeltaDoc %d, edit distance %d", res.DeltaDoc, got)
	}
	// Penalty recomputation.
	universe := q.Doc
	for _, id := range miss {
		universe = universe.Union(ds.Objects.Get(id).Doc)
	}
	kNorm := float64(res.RankBefore - q.K)
	want := 0.6*float64(res.DeltaK)/kNorm + 0.4*float64(res.DeltaDoc)/float64(universe.Len())
	if math.Abs(res.Penalty-want) > 1e-12 {
		t.Fatalf("penalty %v, recomputed %v", res.Penalty, want)
	}
}

func TestAdaptKeywordsLambdaZero(t *testing.T) {
	e, ds := testEngine(t, 300, 24)
	q, miss := kwWorkload(t, e, ds, 40, 5, 2, 1)
	// λ = 0: keyword edits carry the whole penalty, so keeping q.doc and
	// enlarging k is free and optimal.
	res, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0, Algorithm: KwBoundPrune})
	if err != nil {
		t.Fatal(err)
	}
	if res.Penalty != 0 || res.DeltaDoc != 0 {
		t.Fatalf("λ=0: penalty %v Δdoc %d; keeping keywords should be free", res.Penalty, res.DeltaDoc)
	}
	assertRevived(t, e, res.Refined, miss)
}

func TestAdaptKeywordsMaxEditsCap(t *testing.T) {
	e, ds := testEngine(t, 300, 25)
	q, miss := kwWorkload(t, e, ds, 50, 5, 2, 1)
	res, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.9, Algorithm: KwBoundPrune, MaxEdits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaDoc > 1 {
		t.Fatalf("MaxEdits=1 violated: Δdoc %d", res.DeltaDoc)
	}
	assertRevived(t, e, res.Refined, miss)
}

func TestAdaptKeywordsAddsHelpfulKeyword(t *testing.T) {
	// Carol's scenario (Example 2): the expected hotel is described by
	// "luxury", not by the query keywords. The adapter should introduce
	// a keyword from the missing hotel's document.
	v := vocab.NewVocabulary()
	clean := v.Intern("clean")
	comfortable := v.Intern("comfortable")
	luxury := v.Intern("luxury")
	spa := v.Intern("spa")
	objs := []object.Object{
		// Three local hotels matching the query keywords exactly.
		{ID: 0, Loc: geo.Point{X: 1, Y: 0}, Doc: vocab.NewKeywordSet(clean, comfortable)},
		{ID: 1, Loc: geo.Point{X: 0, Y: 1}, Doc: vocab.NewKeywordSet(clean, comfortable)},
		{ID: 2, Loc: geo.Point{X: 1, Y: 1}, Doc: vocab.NewKeywordSet(clean, comfortable)},
		// The well-known international hotel: near, but described by
		// luxury/spa rather than the query terms.
		{ID: 3, Loc: geo.Point{X: 0.5, Y: 0.5}, Doc: vocab.NewKeywordSet(luxury, spa, clean)},
		// Distant noise.
		{ID: 4, Loc: geo.Point{X: 50, Y: 50}, Doc: vocab.NewKeywordSet(spa)},
	}
	e := NewEngine(object.NewCollection(objs), Options{MaxEntries: 4})
	q := score.Query{
		Loc: geo.Point{X: 0, Y: 0},
		Doc: vocab.NewKeywordSet(clean, comfortable),
		K:   3, W: score.DefaultWeights,
	}
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Obj.ID == 3 {
			t.Fatal("hotel 3 unexpectedly in the initial result")
		}
	}
	ref, err := e.AdaptKeywords(q, []object.ID{3}, KeywordOptions{Lambda: 0.5, Algorithm: KwBoundPrune})
	if err != nil {
		t.Fatal(err)
	}
	assertRevived(t, e, ref.Refined, []object.ID{3})
	// The refined doc must draw only from q.doc ∪ m.doc.
	universe := q.Doc.Union(vocab.NewKeywordSet(luxury, spa, clean))
	if ref.Refined.Doc.Diff(universe).Len() != 0 {
		t.Fatalf("refined doc %v outside universe %v", ref.Refined.Doc, universe)
	}
}

func TestAdaptKeywordsInvalidInputs(t *testing.T) {
	e, ds := testEngine(t, 100, 26)
	q, miss := kwWorkload(t, e, ds, 60, 3, 2, 1)
	if _, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 2}); err == nil {
		t.Error("lambda 2 accepted")
	}
	if _, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.5, Algorithm: KeywordAlgorithm(77)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := e.AdaptKeywords(q, nil, KeywordOptions{Lambda: 0.5}); err == nil {
		t.Error("no missing objects accepted")
	}
}

func TestForEachSubset(t *testing.T) {
	set := vocab.NewKeywordSet(1, 2, 3, 4)
	counts := map[int]int{}
	for k := 0; k <= 5; k++ {
		n := 0
		seen := map[string]bool{}
		forEachSubset(set, k, func(s vocab.KeywordSet) {
			n++
			if s.Len() != k {
				t.Fatalf("subset %v has wrong size (want %d)", s, k)
			}
			key := s.Key()
			if seen[key] {
				t.Fatalf("duplicate subset %v", s)
			}
			seen[key] = true
		})
		counts[k] = n
	}
	want := map[int]int{0: 1, 1: 4, 2: 6, 3: 4, 4: 1, 5: 0}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("C(4,%d) enumerated %d times, want %d", k, counts[k], n)
		}
	}
}

func TestForEachSubsetEmptySet(t *testing.T) {
	calls := 0
	forEachSubset(nil, 0, func(s vocab.KeywordSet) {
		if s != nil {
			t.Fatal("empty subset should be nil")
		}
		calls++
	})
	if calls != 1 {
		t.Fatalf("k=0 over empty set called %d times", calls)
	}
	forEachSubset(nil, 1, func(vocab.KeywordSet) { t.Fatal("impossible subset enumerated") })
}

// TestWhyNotUnderDiceModel runs both refinement models under the Dice
// similarity and checks the revival property end to end.
func TestWhyNotUnderDiceModel(t *testing.T) {
	e, ds := testEngine(t, 300, 44)
	base := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 45, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	q := base
	q.Sim = score.SimDice
	miss := missingFromResult(e, q, 1)
	if len(miss) == 0 {
		t.Skip("no missing object available")
	}
	pref, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSweep})
	if err != nil {
		t.Fatal(err)
	}
	assertRevived(t, e, pref.Refined, miss)
	kw, err := e.AdaptKeywords(q, miss, KeywordOptions{Lambda: 0.5, Algorithm: KwBoundPrune})
	if err != nil {
		t.Fatal(err)
	}
	assertRevived(t, e, kw.Refined, miss)
}
