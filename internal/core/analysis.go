package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// RankStep is one piece of a missing object's rank profile over the
// weight interval: the object holds Rank for wt ∈ [From, To).
type RankStep struct {
	From, To float64
	Rank     int
}

// WeightProfile computes the exact rank of a missing object as a step
// function of the textual weight wt ∈ (0, 1) — the ranking analysis the
// demo's explanation panel visualizes, and the raw material of the
// preference-adjustment optimum. The profile is exact between crossing
// points; the rank at each interval is the rank attained by any wt
// strictly inside it.
func (e *Engine) WeightProfile(q score.Query, missing object.ID) ([]RankStep, error) {
	return e.WeightProfileCtx(context.Background(), q, missing)
}

// WeightProfileCtx is WeightProfile under a context; the full scan over
// the collection polls the cancellation signal every
// index.CheckInterval objects.
func (e *Engine) WeightProfileCtx(ctx context.Context, q score.Query, missing object.ID) ([]RankStep, error) {
	sn, err := e.acquireSet()
	if err != nil {
		return nil, err
	}
	s, objs, _, err := e.validateWhyNot(ctx, sn, q, []object.ID{missing})
	if err != nil {
		return nil, err
	}
	m := objs[0]
	ml := lineOf(s, m)

	// Build the crossing events of the missing object's line.
	type ev struct {
		wt       float64
		wasAbove bool
	}
	var events []ev
	above := 0
	countdown := index.CheckInterval
	for _, o := range e.coll.All() {
		if countdown--; countdown <= 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			countdown = index.CheckInterval
		}
		if o.ID == m.ID || !e.coll.Alive(o.ID) {
			continue
		}
		line := lineOf(s, o)
		above0 := line.aboveNear0(ml)
		if wt, ok := line.crossing(ml); ok {
			events = append(events, ev{wt: wt, wasAbove: above0})
			if above0 {
				above++
			}
		} else if above0 {
			above++
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].wt < events[j].wt })

	steps := []RankStep{}
	from := 0.0
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].wt == events[i].wt {
			j++
		}
		steps = append(steps, RankStep{From: from, To: events[i].wt, Rank: 1 + above})
		for _, evt := range events[i:j] {
			if evt.wasAbove {
				above--
			} else {
				above++
			}
		}
		from = events[i].wt
		i = j
	}
	steps = append(steps, RankStep{From: from, To: 1, Rank: 1 + above})
	return steps, nil
}

// KeywordImpact reports, for one candidate single-keyword edit, the
// rank the missing objects would reach — the per-keyword analysis the
// explanation panel offers before the user commits to full adaption.
type KeywordImpact struct {
	// Keyword is the edited keyword.
	Keyword vocab.Keyword
	// Add is true for an insertion into q.doc, false for a deletion.
	Add bool
	// RankAfter is R(M, q′) under the single-edit refined query.
	RankAfter int
	// Improvement is RankBefore − RankAfter (positive = helps).
	Improvement int
}

// KeywordImpacts evaluates every single-keyword edit over the candidate
// universe q.doc ∪ M.doc and returns them sorted by decreasing rank
// improvement (ties by keyword ID). It answers the user's "which one
// keyword should I change?" directly.
func (e *Engine) KeywordImpacts(q score.Query, missing []object.ID) ([]KeywordImpact, error) {
	return e.KeywordImpactsCtx(context.Background(), q, missing)
}

// KeywordImpactsCtx is KeywordImpacts under a context; each
// single-edit rank computation polls the cancellation signal.
func (e *Engine) KeywordImpactsCtx(ctx context.Context, q score.Query, missing []object.ID) ([]KeywordImpact, error) {
	v, err := e.acquire()
	if err != nil {
		return nil, err
	}
	s, objs, rankBefore, err := e.validateWhyNot(ctx, v.set, q, missing)
	if err != nil {
		return nil, err
	}
	universe := q.Doc.Union(MissingDocUnion(objs))
	cc := index.CancelOf(ctx)

	worstRank := func(doc vocab.KeywordSet) int {
		s2 := score.Scorer{Query: q.WithDoc(doc), MaxDist: s.MaxDist}
		worst := 0
		for _, m := range objs {
			if r := index.RankOf(cc, v.kc, s2, m); r > worst {
				worst = r
			}
		}
		return worst
	}

	var out []KeywordImpact
	for _, kw := range universe {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if q.Doc.Contains(kw) {
			doc := q.Doc.Remove(kw)
			if doc.Empty() {
				continue // a query must keep at least one keyword
			}
			r := worstRank(doc)
			out = append(out, KeywordImpact{Keyword: kw, Add: false, RankAfter: r, Improvement: rankBefore - r})
		} else {
			r := worstRank(q.Doc.Add(kw))
			out = append(out, KeywordImpact{Keyword: kw, Add: true, RankAfter: r, Improvement: rankBefore - r})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Improvement != out[j].Improvement {
			return out[i].Improvement > out[j].Improvement
		}
		return out[i].Keyword < out[j].Keyword
	})
	return out, nil
}

// RefinementModel tags which module produced a refinement.
type RefinementModel int

const (
	// ModelPreference is the preference-adjustment module.
	ModelPreference RefinementModel = iota
	// ModelKeyword is the keyword-adaption module.
	ModelKeyword
	// ModelCombined applies preference adjustment on top of the
	// keyword-adapted query — "users can apply the two refinement
	// functions simultaneously to find better solutions" (§3.2).
	ModelCombined
)

// String implements fmt.Stringer.
func (m RefinementModel) String() string {
	switch m {
	case ModelPreference:
		return "preference"
	case ModelKeyword:
		return "keyword"
	case ModelCombined:
		return "combined"
	default:
		return fmt.Sprintf("RefinementModel(%d)", int(m))
	}
}

// BestRefinement is the outcome of RefineBest: the winning model's
// refined query and penalty, with the losing candidates' penalties for
// the explanation panel's comparison.
type BestRefinement struct {
	Model   RefinementModel
	Refined score.Query
	// Penalty is the winning model's own penalty (Eqn 3 or Eqn 4; for
	// the combined model, the sum of the stage penalties — each stage
	// minimally modifies its own dimension).
	Penalty float64
	// PreferencePenalty and KeywordPenalty are the single-model optima,
	// reported for comparison.
	PreferencePenalty, KeywordPenalty float64
	// RankBefore and RankAfter are the worst missing ranks under the
	// initial and winning refined query.
	RankBefore, RankAfter int
}

// RefineBest runs both refinement modules (and their composition) and
// returns the lowest-penalty refined query. The two single-model
// penalties are not directly commensurable in general — they normalize
// against different modification spaces — but both lie in [0, 1] with
// identical λ·Δk terms, which is the comparison the demo's explanation
// panel presents to the user.
func (e *Engine) RefineBest(q score.Query, missing []object.ID, lambda float64) (BestRefinement, error) {
	return e.RefineBestCtx(context.Background(), q, missing, lambda)
}

// RefineBestCtx is RefineBest under a context; both refinement modules
// and the composition stage propagate the cancellation signal.
func (e *Engine) RefineBestCtx(ctx context.Context, q score.Query, missing []object.ID, lambda float64) (BestRefinement, error) {
	pref, err := e.AdjustPreferenceCtx(ctx, q, missing, PreferenceOptions{Lambda: lambda})
	if err != nil {
		return BestRefinement{}, err
	}
	kw, err := e.AdaptKeywordsCtx(ctx, q, missing, KeywordOptions{Lambda: lambda})
	if err != nil {
		return BestRefinement{}, err
	}

	best := BestRefinement{
		Model:             ModelPreference,
		Refined:           pref.Refined,
		Penalty:           pref.Penalty,
		PreferencePenalty: pref.Penalty,
		KeywordPenalty:    kw.Penalty,
		RankBefore:        pref.RankBefore,
		RankAfter:         pref.RankAfter,
	}
	if kw.Penalty < best.Penalty {
		best.Model = ModelKeyword
		best.Refined = kw.Refined
		best.Penalty = kw.Penalty
		best.RankAfter = kw.RankAfter
	}

	// Combined: adjust the preference of the keyword-adapted query. If
	// the keyword stage already needed no k enlargement there is nothing
	// left to recover, so only try the composition when Δk > 0.
	if kw.DeltaK > 0 {
		sn, err := e.acquireSet()
		if err != nil {
			return BestRefinement{}, err
		}
		s2 := setScorer(sn, kw.Refined)
		cc := index.CancelOf(ctx)
		stillMissing := make([]object.ID, 0, len(missing))
		for _, id := range missing {
			if index.RankOf(cc, sn, s2, e.coll.Get(id)) > q.K {
				stillMissing = append(stillMissing, id)
			}
		}
		if err := ctx.Err(); err != nil {
			return BestRefinement{}, err
		}
		if len(stillMissing) > 0 {
			q2 := kw.Refined
			q2.K = q.K // re-refine from the user's k, not the enlarged one
			pref2, err := e.AdjustPreferenceCtx(ctx, q2, stillMissing, PreferenceOptions{Lambda: lambda})
			if err == nil {
				combined := kw.Penalty - lambda*float64(kw.DeltaK)/float64(kw.RankBefore-q.K) + pref2.Penalty
				// The weight change may push an object the keyword stage
				// had already revived back out; accept the composition
				// only if every missing object survives it.
				if combined < best.Penalty && e.allWithin(pref2.Refined, missing) {
					best.Model = ModelCombined
					best.Refined = pref2.Refined
					best.Penalty = combined
					best.RankAfter = pref2.RankAfter
				}
			}
		}
	}
	return best, nil
}

// allWithin reports whether every listed object ranks within q.K under
// query q. A stale snapshot counts as "not within": the composition is
// simply not accepted.
func (e *Engine) allWithin(q score.Query, ids []object.ID) bool {
	sn, err := e.acquireSet()
	if err != nil {
		return false
	}
	s := setScorer(sn, q)
	for _, id := range ids {
		if index.RankOf(index.NoCancel, sn, s, e.coll.Get(id)) > q.K {
			return false
		}
	}
	return true
}
