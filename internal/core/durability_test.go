package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// wordQuery is a vocabulary-independent query spec: recovery re-interns
// keywords into a fresh vocabulary, so cross-engine comparisons must
// carry words, not keyword IDs.
type wordQuery struct {
	loc   geo.Point
	words []string
	k     int
}

func (wq wordQuery) query(v *vocab.Vocabulary) score.Query {
	return score.Query{Loc: wq.loc, Doc: v.InternSet(wq.words...), K: wq.k, W: score.DefaultWeights}
}

// mutation is one step of a deterministic mutation script.
type mutation struct {
	remove bool
	id     object.ID // remove target
	loc    geo.Point
	words  []string
	name   string
}

// mutationScript derives n mutations from the dataset: inserts reusing
// existing docs (spelled as words) and removes of previously inserted
// or seed IDs. The script is pure data, so it can be applied to any
// engine over any vocabulary.
func mutationScript(ds *dataset.Dataset, n int, seed int64) []mutation {
	rng := rand.New(rand.NewSource(seed))
	space := ds.Objects.Space()
	muts := make([]mutation, 0, n)
	nextID := ds.Objects.Len()
	var ids []object.ID
	for i := 0; i < ds.Objects.Len(); i++ {
		ids = append(ids, object.ID(i))
	}
	removed := map[object.ID]bool{}
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			// Remove a random still-live ID.
			for tries := 0; tries < 50; tries++ {
				id := ids[rng.Intn(len(ids))]
				if !removed[id] {
					removed[id] = true
					muts = append(muts, mutation{remove: true, id: id})
					break
				}
			}
			continue
		}
		src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len())))
		m := mutation{
			loc:   src.Loc,
			words: ds.Vocab.Words(src.Doc),
			name:  fmt.Sprintf("mut-%d", i),
		}
		if i%9 == 5 {
			m.loc.X = space.Max.X + rng.Float64() // out-of-space growth
		}
		muts = append(muts, m)
		ids = append(ids, object.ID(nextID))
		nextID++
	}
	return muts
}

// apply runs one mutation against an engine whose docs are interned in
// v. Returns the insert's assigned ID (or the removed ID).
func (m mutation) apply(t *testing.T, e *Engine, v *vocab.Vocabulary) object.ID {
	t.Helper()
	if m.remove {
		if err := e.Remove(m.id); err != nil {
			t.Fatalf("remove %d: %v", m.id, err)
		}
		return m.id
	}
	id, err := e.Insert(object.Object{Loc: m.loc, Doc: v.InternSet(m.words...), Name: m.name})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	return id
}

// assertAnswersMatch drives the full query surface of both engines —
// each with its own vocabulary — and fails on any divergence. Keyword
// sets are compared as sorted word lists, everything else (IDs, scores,
// ranks, penalties) must be byte-identical: scores are set-cardinality
// based and tie-breaks use object IDs, so vocabulary relabeling must
// never change an answer.
func assertAnswersMatch(t *testing.T, ctx string, ref *Engine, refV *vocab.Vocabulary, got *Engine, gotV *vocab.Vocabulary, qs []wordQuery) {
	t.Helper()
	if ref.Collection().Len() != got.Collection().Len() || ref.Collection().LiveLen() != got.Collection().LiveLen() {
		t.Fatalf("%s: collection %d/%d live, want %d/%d live", ctx,
			got.Collection().Len(), got.Collection().LiveLen(),
			ref.Collection().Len(), ref.Collection().LiveLen())
	}
	for qi, wq := range qs {
		refQ, gotQ := wq.query(refV), wq.query(gotV)
		for _, k := range []int{1, 5, 20} {
			rq, gq := refQ, gotQ
			rq.K, gq.K = k, k
			want, err1 := ref.TopK(rq)
			have, err2 := got.TopK(gq)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s q%d k=%d: errs %v / %v", ctx, qi, k, err1, err2)
			}
			if len(have) != len(want) {
				t.Fatalf("%s q%d k=%d: %d results, want %d", ctx, qi, k, len(have), len(want))
			}
			for i := range want {
				if have[i].Obj.ID != want[i].Obj.ID || have[i].Score != want[i].Score {
					t.Fatalf("%s q%d k=%d rank %d: got (%d, %v), want (%d, %v)",
						ctx, qi, k, i, have[i].Obj.ID, have[i].Score, want[i].Obj.ID, want[i].Score)
				}
			}
		}

		missing := missingFromResult(ref, refQ, 2)
		if len(missing) == 0 {
			continue
		}
		for _, id := range missing {
			w, err1 := ref.Rank(refQ, id)
			g, err2 := got.Rank(gotQ, id)
			if err1 != nil || err2 != nil || g != w {
				t.Fatalf("%s q%d: rank(%d) = %d (%v), want %d (%v)", ctx, qi, id, g, err2, w, err1)
			}
		}

		wantP, err1 := ref.AdjustPreference(refQ, missing, PreferenceOptions{Lambda: 0.5})
		gotP, err2 := got.AdjustPreference(gotQ, missing, PreferenceOptions{Lambda: 0.5})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s q%d: preference errs %v / %v", ctx, qi, err1, err2)
		}
		if gotP.Refined.W != wantP.Refined.W || gotP.Refined.K != wantP.Refined.K ||
			gotP.Penalty != wantP.Penalty || gotP.RankAfter != wantP.RankAfter {
			t.Fatalf("%s q%d: preference diverges:\n got %+v\nwant %+v", ctx, qi, gotP, wantP)
		}

		wantK, err1 := ref.AdaptKeywords(refQ, missing[:1], KeywordOptions{Lambda: 0.5})
		gotK, err2 := got.AdaptKeywords(gotQ, missing[:1], KeywordOptions{Lambda: 0.5})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s q%d: keyword errs %v / %v", ctx, qi, err1, err2)
		}
		refWords := strings.Join(refV.Words(wantK.Refined.Doc), " ")
		gotWords := strings.Join(gotV.Words(gotK.Refined.Doc), " ")
		if gotWords != refWords || gotK.Refined.K != wantK.Refined.K ||
			gotK.Penalty != wantK.Penalty || gotK.DeltaK != wantK.DeltaK ||
			gotK.DeltaDoc != wantK.DeltaDoc || gotK.RankAfter != wantK.RankAfter {
			t.Fatalf("%s q%d: keyword diverges:\n got %q %+v\nwant %q %+v",
				ctx, qi, gotWords, gotK, refWords, wantK)
		}
	}
}

// initialObjects clones the dataset's objects for seeding a durable
// engine.
func initialObjects(ds *dataset.Dataset) []object.Object {
	objs := make([]object.Object, ds.Objects.Len())
	copy(objs, ds.Objects.All())
	return objs
}

func testWorkload(ds *dataset.Dataset, n int, seed int64) []wordQuery {
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: seed, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	out := make([]wordQuery, len(qs))
	for i, q := range qs {
		out[i] = wordQuery{loc: q.Loc, words: ds.Vocab.Words(q.Doc), k: q.K}
	}
	return out
}

// TestDurableEngineLifecycle: boot from a dataset, mutate, restart —
// state and answers survive; counters reflect the WAL and checkpoints.
func TestDurableEngineLifecycle(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(150, 71))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 3, 72)
	dir := t.TempDir()
	muts := mutationScript(ds, 30, 73)

	// Reference: memory-only engine over the same script.
	ref := NewEngine(object.NewCollection(initialObjects(ds)), Options{MaxEntries: 16})

	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab, Fsync: wal.SyncAlways,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := e.Stats()
	if st.Durability == nil || st.Durability.Fsync != "always" {
		t.Fatalf("fresh durable engine stats: %+v", st.Durability)
	}
	if st.Durability.LastCheckpoint != 0 || st.Durability.ReplayedRecords != 0 {
		t.Fatalf("first boot counters: %+v", st.Durability)
	}
	for _, m := range muts {
		m.apply(t, e, ds.Vocab)
		m.apply(t, ref, ds.Vocab)
	}
	st = e.Stats()
	if st.Durability.WalAppends != int64(len(muts)) || st.Durability.LastLSN != uint64(len(muts)) {
		t.Fatalf("after %d mutations: %+v", len(muts), st.Durability)
	}
	if st.Durability.WalFsyncs < int64(len(muts)) {
		t.Fatalf("SyncAlways fsynced %d times for %d mutations", st.Durability.WalFsyncs, len(muts))
	}
	assertAnswersMatch(t, "live", ref, ds.Vocab, e, ds.Vocab, qs)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := e.Insert(object.Object{Doc: ds.Vocab.InternSet("x"), Loc: geo.Point{}}); !errors.Is(err, errEngineClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := e.Remove(0); !errors.Is(err, errEngineClosed) {
		t.Fatalf("remove after close: %v", err)
	}

	// Restart with a fresh vocabulary: the WAL suffix replays on top of
	// the boot checkpoint and every answer matches the never-crashed
	// reference.
	v2 := vocab.NewVocabulary()
	e2, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: v2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	st = e2.Stats()
	if st.Durability.ReplayedRecords != len(muts) {
		t.Fatalf("replayed %d records, want %d", st.Durability.ReplayedRecords, len(muts))
	}
	assertAnswersMatch(t, "recovered", ref, ds.Vocab, e2, v2, qs)

	// The recovered engine keeps accepting mutations at the right IDs.
	extra := mutation{loc: geo.Point{X: 1, Y: 2}, words: []string{"coffee", "late"}, name: "extra"}
	if id1, id2 := extra.apply(t, ref, ds.Vocab), extra.apply(t, e2, v2); id1 != id2 {
		t.Fatalf("post-recovery insert: ID %d, want %d", id2, id1)
	}
	assertAnswersMatch(t, "recovered+mutated", ref, ds.Vocab, e2, v2, qs)
}

// TestCheckpointRetiresWAL: automatic checkpoints bound the log — old
// segments are deleted, reboots replay only the post-checkpoint suffix,
// and old checkpoint files are pruned.
func TestCheckpointRetiresWAL(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(80, 81))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab,
		CheckpointEvery: 10, WALSegmentSize: 512,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	muts := mutationScript(ds, 35, 82)
	for _, m := range muts {
		m.apply(t, e, ds.Vocab)
	}
	st := e.Stats().Durability
	if st.Checkpoints < 3 {
		t.Fatalf("CheckpointEvery=10 over 35 mutations wrote %d checkpoints", st.Checkpoints)
	}
	if st.LastCheckpoint != 30 {
		t.Fatalf("last checkpoint at LSN %d, want 30", st.LastCheckpoint)
	}
	if st.SinceCheckpoint != 5 {
		t.Fatalf("sinceCheckpoint = %d, want 5", st.SinceCheckpoint)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the post-checkpoint suffix replays on reboot.
	v2 := vocab.NewVocabulary()
	e2, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: v2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := e2.Stats().Durability.ReplayedRecords; got != 5 {
		t.Fatalf("replayed %d records, want 5", got)
	}
	e2.Close()

	// KeepCheckpoints bounds the checkpoint files on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".ckpt") {
			ckpts++
		}
	}
	if ckpts > wal.KeepCheckpoints {
		t.Fatalf("%d checkpoint files on disk, want <= %d", ckpts, wal.KeepCheckpoints)
	}
}

// TestCheckpointOnMemoryEngine: Checkpoint is a typed error without a
// data directory; Close is a no-op.
func TestCheckpointOnMemoryEngine(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(30, 91))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cloneCollection(ds.Objects), Options{})
	if err := e.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on memory engine: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close on memory engine: %v", err)
	}
}

// copyDataDir clones a data directory so a crash prefix can be carved
// out without touching the original.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// truncateWALToPrefix carves dir's WAL down to its first p records:
// segments wholly beyond the boundary are deleted, the segment holding
// it is truncated at the record boundary — byte-exactly what a power
// cut right after the p-th acknowledgement leaves behind.
func truncateWALToPrefix(t *testing.T, dir string, p int) {
	t.Helper()
	infos, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, info := range infos {
		if seen >= p {
			if err := os.Remove(info.Path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if seen+len(info.Records) <= p {
			seen += len(info.Records)
			continue
		}
		cut := info.Records[p-seen].Offset
		if err := os.Truncate(info.Path, cut); err != nil {
			t.Fatal(err)
		}
		seen = p
	}
}

// TestRecoveryEquivalenceAtEveryRecordBoundary is the tentpole property
// test: for a random mutation script, a crash after ANY acknowledged
// record — exercised for the single-index backend, the sharded backend,
// and the mmap-arena boot path (which replays the WAL suffix by thawing
// the mapped indexes) — recovers an engine whose whole query surface
// (top-k IDs and scores, ranks, preference and keyword refinements) is
// byte-identical to a never-crashed engine that executed exactly that
// prefix. Recovery uses a fresh vocabulary each time, so the
// equivalence also proves keyword relabeling invariance.
func TestRecoveryEquivalenceAtEveryRecordBoundary(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(120, 101))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 2, 102)
	const nMut = 24
	muts := mutationScript(ds, nMut, 103)

	configs := []struct {
		shards int
		mmap   bool
	}{
		{shards: 1, mmap: false},
		{shards: 3, mmap: false},
		{shards: 1, mmap: true},
		// mmap on a sharded engine must transparently fall back to the
		// rebuild path with the same answers.
		{shards: 3, mmap: true},
	}
	for _, cfg := range configs {
		// One full run writes the WAL all prefixes are carved from.
		master := t.TempDir()
		e, err := Open(initialObjects(ds), Options{
			MaxEntries: 16, Shards: cfg.shards, DataDir: master, Vocab: ds.Vocab,
			Fsync: wal.SyncAlways, WALSegmentSize: 1024, MmapArenas: cfg.mmap,
		})
		if err != nil {
			t.Fatalf("shards=%d: Open: %v", cfg.shards, err)
		}
		for _, m := range muts {
			m.apply(t, e, ds.Vocab)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		// Reference engine advances prefix by prefix alongside the crash
		// points; always unsharded — shard-count invariance of recovery
		// falls out of comparing the sharded recoveries against it.
		//
		// The rebuild path re-interns keywords in checkpoint-row order, so
		// its reference uses a fresh vocabulary (proving relabeling
		// invariance). The mmap boot instead pins the recovering
		// vocabulary to the arena's embedded layout — the writing engine's
		// own — so it is byte-identical to the ORIGINAL labeling,
		// including refinement tie-breaks that order by keyword ID; its
		// reference shares the master vocabulary.
		refV := vocab.NewVocabulary()
		refObjs := reinternedObjects(ds, refV)
		if cfg.mmap && cfg.shards == 1 {
			refV = ds.Vocab
			refObjs = initialObjects(ds)
		}
		ref := NewEngine(object.NewCollection(refObjs), Options{MaxEntries: 16})

		for p := 0; p <= nMut; p++ {
			if p > 0 {
				muts[p-1].apply(t, ref, refV)
			}
			crashed := copyDataDir(t, master)
			truncateWALToPrefix(t, crashed, p)
			recV := vocab.NewVocabulary()
			rec, err := Open(nil, Options{
				MaxEntries: 16, Shards: cfg.shards, DataDir: crashed, Vocab: recV,
				MmapArenas: cfg.mmap,
			})
			if err != nil {
				t.Fatalf("shards=%d prefix %d: recovery: %v", cfg.shards, p, err)
			}
			if got := rec.Stats().Durability.ReplayedRecords; got != p {
				t.Fatalf("shards=%d prefix %d: replayed %d records", cfg.shards, p, got)
			}
			if cfg.mmap && cfg.shards == 1 {
				st := rec.Stats().Durability.Arena
				if st == nil || !st.MmapBoot {
					t.Fatalf("mmap prefix %d: boot did not map the arenas: %+v", p, st)
				}
				if skipped := st.RebuildSkipped; skipped != (p == 0) {
					t.Fatalf("mmap prefix %d: rebuildSkipped = %v", p, skipped)
				}
			}
			ctx := fmt.Sprintf("shards=%d/mmap=%v/prefix=%d", cfg.shards, cfg.mmap, p)
			assertAnswersMatch(t, ctx, ref, refV, rec, recV, qs)
			rec.Close()
		}
	}
}

// reinternedObjects clones the dataset's objects with docs re-interned
// into v, so a reference engine can share a vocabulary with its query
// translations.
func reinternedObjects(ds *dataset.Dataset, v *vocab.Vocabulary) []object.Object {
	objs := make([]object.Object, ds.Objects.Len())
	for i, o := range ds.Objects.All() {
		objs[i] = object.Object{
			ID: o.ID, Loc: o.Loc, Doc: v.InternSet(ds.Vocab.Words(o.Doc)...), Name: o.Name,
		}
	}
	return objs
}

// TestRecoveryRefusesCorruptDir: interior WAL damage and unreadable
// checkpoints refuse to boot with a typed error — never a silently
// wrong engine.
func TestRecoveryRefusesCorruptDir(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(60, 111))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	e, err := Open(initialObjects(ds), Options{MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mutationScript(ds, 12, 112) {
		m.apply(t, e, ds.Vocab)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	t.Run("wal-bit-flip", func(t *testing.T) {
		crashed := copyDataDir(t, dir)
		infos, err := wal.Segments(crashed)
		if err != nil || len(infos) == 0 || len(infos[0].Records) < 2 {
			t.Fatalf("bad segment layout: %v", err)
		}
		// Flip a payload byte of the FIRST record — interior damage.
		first := infos[0].Records[0]
		f, err := os.OpenFile(infos[0].Path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := []byte{0}
		if _, err := f.ReadAt(b, first.Offset+10); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x20
		if _, err := f.WriteAt(b, first.Offset+10); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := Open(nil, Options{DataDir: crashed, Vocab: vocab.NewVocabulary()}); !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("bit-flipped WAL booted: %v", err)
		}
	})

	t.Run("all-checkpoints-damaged", func(t *testing.T) {
		crashed := copyDataDir(t, dir)
		entries, err := os.ReadDir(crashed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if strings.HasSuffix(ent.Name(), ".ckpt") {
				path := filepath.Join(crashed, ent.Name())
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := Open(nil, Options{DataDir: crashed, Vocab: vocab.NewVocabulary()}); !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("damaged checkpoints booted: %v", err)
		}
	})
}
