package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

func liveTestEngine(t *testing.T, n int, seed int64, opts Options) (*Engine, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = 16
	}
	return NewEngine(ds.Objects, opts), ds
}

func liveQuery(ds *dataset.Dataset, seed int64) score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: seed, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
}

func TestEngineInsertVisibleAfterAutoRefresh(t *testing.T) {
	e, ds := liveTestEngine(t, 300, 90, Options{})
	q := liveQuery(ds, 91)

	id, err := e.Insert(object.Object{Loc: q.Loc, Doc: q.Doc, Name: "newcomer"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Obj.ID != id {
		t.Fatalf("inserted object ranks %v first, want %d", res[0].Obj.ID, id)
	}
	// Agreement with the scan oracle over the mutated collection.
	want := settree.ScanTopK(ds.Objects, q)
	for i := range want {
		if res[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("rank %d: index %d, scan %d", i, res[i].Obj.ID, want[i].Obj.ID)
		}
	}
}

func TestEngineInsertValidation(t *testing.T) {
	e, _ := liveTestEngine(t, 50, 92, Options{})
	if _, err := e.Insert(object.Object{Loc: geo.Point{X: 1, Y: 1}}); err == nil {
		t.Fatal("keywordless object accepted")
	}
	if _, err := e.Insert(object.Object{Loc: geo.Point{X: math.NaN(), Y: 0}, Doc: e.coll.Get(0).Doc}); err == nil {
		t.Fatal("NaN location accepted")
	}
}

func TestEngineRemove(t *testing.T) {
	e, ds := liveTestEngine(t, 300, 93, Options{})
	q := liveQuery(ds, 94)
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	victim := res[0].Obj.ID
	if err := e.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(victim); err == nil {
		t.Fatal("double Remove accepted")
	}
	if err := e.Remove(object.ID(ds.Objects.Len() + 5)); err == nil {
		t.Fatal("out-of-range Remove accepted")
	}
	after, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.Obj.ID == victim {
			t.Fatalf("removed object %d still in results", victim)
		}
	}
	// A removed object is no longer a valid why-not target.
	if _, err := e.Explain(q, []object.ID{victim}); err == nil {
		t.Fatal("Explain accepted a removed object")
	}
}

func TestRefreshEveryBatchesMutations(t *testing.T) {
	e, ds := liveTestEngine(t, 200, 95, Options{RefreshEvery: 3})
	q := liveQuery(ds, 96)
	before, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}

	id1, err := e.Insert(object.Object{Loc: q.Loc, Doc: q.Doc})
	if err != nil {
		t.Fatal(err)
	}
	if e.PendingMutations() != 1 {
		t.Fatalf("pending %d after 1 mutation, want 1", e.PendingMutations())
	}
	mid, err := e.TopK(q)
	if err != nil {
		t.Fatalf("query with buffered mutation: %v", err)
	}
	if mid[0].Obj.ID == id1 {
		t.Fatal("buffered insert visible before refresh")
	}
	if mid[0].Obj.ID != before[0].Obj.ID {
		t.Fatal("buffered insert disturbed the published snapshot")
	}

	// Forcing publication flushes the buffer.
	e.Refresh()
	if e.PendingMutations() != 0 {
		t.Fatalf("pending %d after Refresh", e.PendingMutations())
	}
	after, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Obj.ID != id1 {
		t.Fatalf("refreshed top result %d, want inserted %d", after[0].Obj.ID, id1)
	}

	// The third mutation auto-refreshes.
	if _, err := e.Insert(object.Object{Loc: q.Loc, Doc: q.Doc}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(object.Object{Loc: q.Loc, Doc: q.Doc}); err != nil {
		t.Fatal(err)
	}
	if e.PendingMutations() != 2 {
		t.Fatalf("pending %d after 2 buffered mutations", e.PendingMutations())
	}
	if _, err := e.Insert(object.Object{Loc: q.Loc, Doc: q.Doc}); err != nil {
		t.Fatal(err)
	}
	if e.PendingMutations() != 0 {
		t.Fatalf("pending %d after auto-refresh threshold", e.PendingMutations())
	}
}

// TestStaleTreeMutationSurfacesAsError: bypassing the engine and
// mutating an index tree directly must turn engine queries into
// ErrStaleSnapshot errors until Refresh.
func TestStaleTreeMutationSurfacesAsError(t *testing.T) {
	e, ds := liveTestEngine(t, 200, 97, Options{})
	q := liveQuery(ds, 98)
	o := ds.Objects.Get(0)
	e.SetIndex().Tree().Delete(o.Rect(), func(item object.Object) bool { return item.ID == o.ID })

	if _, err := e.TopK(q); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("TopK err = %v, want ErrStaleSnapshot", err)
	}
	if _, err := e.TopKBatch([]score.Query{q}, BatchOptions{}); !errors.Is(err, rtree.ErrStaleSnapshot) {
		t.Fatalf("TopKBatch err = %v, want ErrStaleSnapshot", err)
	}
	e.Refresh()
	if _, err := e.TopK(q); err != nil {
		t.Fatalf("TopK after Refresh: %v", err)
	}
}

// TestConcurrentQueriesDuringMutationStorm is the live-update race test:
// queries, why-not questions, inserts, and removes run concurrently.
// Every query must succeed (zero failed queries) and return a complete,
// consistent result; run under -race this also proves the snapshot swap
// is data-race free.
func TestConcurrentQueriesDuringMutationStorm(t *testing.T) {
	e, ds := liveTestEngine(t, 400, 99, Options{RefreshEvery: 4})
	q := liveQuery(ds, 100)

	const mutations = 150
	var failed atomic.Int64
	var queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// On a single-CPU host the mutation loop can finish before any query
	// goroutine is scheduled; make each worker complete one iteration
	// before the storm starts.
	var ready sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		ready.Add(1)
		go func(w int) {
			defer wg.Done()
			var once sync.Once
			markReady := func() { once.Do(ready.Done) }
			defer markReady()
			for {
				select {
				case <-stop:
					return
				default:
				}
				queries.Add(1)
				res, err := e.TopK(q)
				if err != nil {
					failed.Add(1)
					t.Errorf("TopK failed during storm: %v", err)
					return
				}
				if len(res) != q.K {
					failed.Add(1)
					t.Errorf("TopK returned %d results, want %d", len(res), q.K)
					return
				}
				// Results must be sorted: a torn snapshot would scramble
				// the heap order.
				for i := 1; i < len(res); i++ {
					if score.Better(res[i].Score, res[i].Obj.ID, res[i-1].Score, res[i-1].Obj.ID) {
						failed.Add(1)
						t.Errorf("results out of order during storm")
						return
					}
				}
				markReady()
			}
		}(w)
	}
	ready.Wait()

	doc := ds.Objects.Get(0).Doc
	inserted := make([]object.ID, 0, mutations)
	for i := 0; i < mutations; i++ {
		id, err := e.Insert(object.Object{
			Loc: geo.Point{X: q.Loc.X + float64(i%10), Y: q.Loc.Y - float64(i%7)},
			Doc: doc,
		})
		if err != nil {
			t.Errorf("Insert %d: %v", i, err)
			break
		}
		inserted = append(inserted, id)
		if i%3 == 0 {
			if err := e.Remove(inserted[len(inserted)/2]); err != nil {
				// Removing an already-removed midpoint is fine; any other
				// error is not.
				if !alreadyRemoved(err) {
					t.Errorf("Remove: %v", err)
					break
				}
			}
		}
	}
	e.Refresh()
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d concurrent queries failed", failed.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries ran during the storm")
	}
	// Post-storm: the index agrees with the scan oracle.
	res, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want := settree.ScanTopK(ds.Objects, q)
	for i := range want {
		if res[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("post-storm rank %d: index %d, scan %d", i, res[i].Obj.ID, want[i].Obj.ID)
		}
	}
}

func alreadyRemoved(err error) bool {
	return errors.Is(err, ErrAlreadyRemoved)
}
