package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/qcache"
	"github.com/yask-engine/yask/internal/score"
)

// BatchOptions configures the concurrent batch executors.
type BatchOptions struct {
	// Workers bounds the worker pool; zero or negative means
	// GOMAXPROCS. The pool never exceeds the number of jobs.
	Workers int
}

func (o BatchOptions) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunBatch fans jobs 0..n-1 across a bounded worker pool and blocks
// until all complete. workers is clamped like BatchOptions.Workers
// (≤ 0 means GOMAXPROCS; never more than n). Workers pull the next job
// index from a shared atomic counter, so job costs balance without a
// channel per job; per-query traversal scratch comes from the indexes'
// sync.Pools, giving each worker its own warm state. job must be safe
// to call concurrently and must only touch index i of any shared
// output.
func RunBatch(n, workers int, job func(i int)) {
	RunBatchCtx(context.Background(), n, workers, job)
}

// RunBatchCtx is RunBatch under a context: once ctx is done, workers
// stop pulling new job indices and the pool drains after the jobs
// already in flight return (jobs that traverse an index observe the
// same cancellation through their own tokens, so in-flight work also
// stops within a bounded number of node visits). Jobs skipped after
// the trip simply never run — the caller decides what a partially
// executed batch means, normally by returning ctx.Err() wholesale.
func RunBatchCtx(ctx context.Context, n, workers int, job func(i int)) {
	if n == 0 {
		return
	}
	cc := index.CancelOf(ctx)
	workers = BatchOptions{Workers: workers}.workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cc.Canceled() {
				return
			}
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cc.Canceled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// TopKBatch answers many top-k queries concurrently over a bounded
// worker pool and returns one result slice per query, index-aligned
// with qs. Every query is validated before any work starts; the first
// invalid query fails the whole batch.
//
// The executor schedules (job × partition) work units: on a sharded
// engine every query fans into one unit per shard, all pulled from the
// same pool, so shard work interleaves with query work instead of
// serializing behind it. Units of one query share a cross-partition
// score bound, letting a unit that starts late prune against the best
// k-th score its siblings have proven. A final per-query merge pass
// gathers partition results exactly.
//
// Before any index work, every query is resolved against the result
// cache, and the remaining misses are deduplicated: identical queries
// in one batch (the canonical key makes "identical" mean semantically
// identical) hit the index exactly once, with followers receiving their
// own copy of the leader's answer.
func (e *Engine) TopKBatch(qs []score.Query, opts BatchOptions) ([][]score.Result, error) {
	return e.TopKBatchCtx(context.Background(), qs, opts)
}

// TopKBatchCtx is TopKBatch under a context: one cancellation token is
// shared by every work unit of the batch, so an expired deadline stops
// all in-flight traversals within a bounded number of node visits and
// keeps queued units from starting. A canceled batch returns ctx.Err()
// wholesale and stores nothing in the result cache.
func (e *Engine) TopKBatchCtx(ctx context.Context, qs []score.Query, opts BatchOptions) ([][]score.Result, error) {
	for i := range qs {
		if err := qs[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	// One checked snapshot serves the whole batch: every query in it
	// sees the same consistent arena set even with mutations in flight.
	sn, err := e.acquireSet()
	if err != nil {
		return nil, err
	}
	epoch := sn.Epoch()
	out := make([][]score.Result, len(qs))

	// Resolve-and-dedupe: each query becomes a cache hit, the leader of
	// its equality class, or a follower of an earlier leader.
	const resolved = -1          // answered from cache
	const leader = -2            // computes its own answer
	role := make([]int, len(qs)) // resolved, leader, or the leader's index
	leaders := make([]int, 0, len(qs))
	byHash := make(map[uint64][]int)
	for i := range qs {
		if res, ok := e.cache.GetTopK(epoch, qs[i], nil); ok {
			out[i] = res
			role[i] = resolved
			continue
		}
		h := qcache.HashQuery(qs[i])
		role[i] = leader
		for _, j := range byHash[h] {
			if qcache.EqualQueries(qs[i], qs[j]) {
				role[i] = j
				break
			}
		}
		if role[i] == leader {
			byHash[h] = append(byHash[h], i)
			leaders = append(leaders, i)
		}
	}

	cc := index.CancelOf(ctx)
	parts := sn.Parts()
	switch {
	case len(leaders) == 0:
		// Whole batch served from cache.
	case parts == 1:
		RunBatchCtx(ctx, len(leaders), opts.Workers, func(li int) {
			i := leaders[li]
			out[i], _ = e.topKOn(ctx, sn, qs[i], nil)
		})
	default:
		// Scatter phase: the (leader × partition) grid, unit
		// u = (u/parts)-th leader on the (u%parts)-th shard.
		partial := make([][]score.Result, len(leaders)*parts)
		bounds := make([]index.Bound, len(leaders))
		RunBatchCtx(ctx, len(leaders)*parts, opts.Workers, func(u int) {
			li, p := u/parts, u%parts
			i := leaders[li]
			partial[u] = sn.TopKPart(cc, p, setScorer(sn, qs[i]), qs[i].K, &bounds[li], nil)
		})
		// Gather phase: exact per-leader k-merge, itself fanned over the
		// pool so it does not become a serial tail; each merged answer is
		// stored for future repeats. A canceled batch skips the cache
		// store — partial scatter output must never poison the cache.
		RunBatchCtx(ctx, len(leaders), opts.Workers, func(li int) {
			i := leaders[li]
			out[i] = index.MergeTopK(partial[li*parts:(li+1)*parts], qs[i].K, nil)
			if ctx.Err() == nil {
				e.cache.PutTopK(epoch, qs[i], out[i])
			}
		})
	}
	if err := ctx.Err(); err != nil {
		// Some units never ran and the ones that did were cut short: the
		// whole batch is undefined, so no per-query answers survive.
		return nil, err
	}

	// Followers get their own copy of the leader's answer, so every
	// returned slice is independently caller-owned.
	for i, r := range role {
		if r >= 0 {
			out[i] = append([]score.Result(nil), out[r]...)
		}
	}
	return out, nil
}

// KeywordJob is one keyword-adaption why-not question of a batch.
type KeywordJob struct {
	Query   score.Query
	Missing []object.ID
}

// AdaptKeywordsBatch answers many keyword-adaption why-not questions
// concurrently. Results and errors are index-aligned with jobs; a job
// that fails (for example because a missing object is already in the
// top-k) reports its error without failing the rest of the batch.
func (e *Engine) AdaptKeywordsBatch(jobs []KeywordJob, kopts KeywordOptions, bopts BatchOptions) ([]KeywordResult, []error) {
	return e.AdaptKeywordsBatchCtx(context.Background(), jobs, kopts, bopts)
}

// AdaptKeywordsBatchCtx is AdaptKeywordsBatch under a context. Jobs cut
// short or skipped by cancellation report ctx.Err() in their error
// slot.
func (e *Engine) AdaptKeywordsBatchCtx(ctx context.Context, jobs []KeywordJob, kopts KeywordOptions, bopts BatchOptions) ([]KeywordResult, []error) {
	results := make([]KeywordResult, len(jobs))
	errs := make([]error, len(jobs))
	RunBatchCtx(ctx, len(jobs), bopts.Workers, func(i int) {
		results[i], errs[i] = e.AdaptKeywordsCtx(ctx, jobs[i].Query, jobs[i].Missing, kopts)
	})
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if errs[i] == nil && results[i].Refined.K == 0 {
				errs[i] = err // the job never ran
			}
		}
	}
	return results, errs
}
