package core

import (
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
)

func batchTestEngine(t *testing.T, n int) (*Engine, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, 99))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(ds.Objects, Options{}), ds
}

func batchTestQueries(ds *dataset.Dataset, n, k int) []score.Query {
	return dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: n, Seed: 7, K: k, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

// TestTopKBatchMatchesSequential checks that the concurrent executor
// returns exactly the results of sequential TopK calls, for several
// worker counts (including more workers than queries).
func TestTopKBatchMatchesSequential(t *testing.T) {
	e, ds := batchTestEngine(t, 3000)
	qs := batchTestQueries(ds, 40, 5)

	want := make([][]score.Result, len(qs))
	for i, q := range qs {
		res, err := e.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, workers := range []int{0, 1, 4, 64} {
		got, err := e.TopKBatch(qs, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d result sets, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d results, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j].Obj.ID != want[i][j].Obj.ID || got[i][j].Score != want[i][j].Score {
					t.Fatalf("workers=%d query %d rank %d: got (%d, %v), want (%d, %v)",
						workers, i, j, got[i][j].Obj.ID, got[i][j].Score, want[i][j].Obj.ID, want[i][j].Score)
				}
			}
		}
	}
}

// TestTopKBatchValidation checks that one invalid query fails the whole
// batch up front.
func TestTopKBatchValidation(t *testing.T) {
	e, ds := batchTestEngine(t, 500)
	qs := batchTestQueries(ds, 4, 5)
	qs[2].K = 0
	if _, err := e.TopKBatch(qs, BatchOptions{}); err == nil {
		t.Fatal("batch with an invalid query did not fail")
	}
	if res, err := e.TopKBatch(nil, BatchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}

// TestAdaptKeywordsBatchMatchesSequential checks that the batch keyword
// adapter returns per-job results identical to sequential calls, with
// per-job errors isolated.
func TestAdaptKeywordsBatchMatchesSequential(t *testing.T) {
	e, ds := batchTestEngine(t, 2000)
	qs := batchTestQueries(ds, 8, 3)
	kopts := KeywordOptions{Lambda: 0.5}

	jobs := make([]KeywordJob, 0, len(qs))
	for _, q := range qs {
		// Missing object: the one ranked just outside the top-k.
		ext := q
		ext.K = q.K + 1
		res, err := e.TopK(ext)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) <= q.K {
			continue
		}
		jobs = append(jobs, KeywordJob{Query: q, Missing: []object.ID{res[q.K].Obj.ID}})
	}
	if len(jobs) < 2 {
		t.Skip("not enough valid why-not jobs")
	}
	// One poisoned job: its "missing" object is the top-1 result, which
	// is not a valid why-not question and must error in isolation.
	top, err := e.TopK(jobs[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := len(jobs)
	jobs = append(jobs, KeywordJob{Query: jobs[0].Query, Missing: []object.ID{top[0].Obj.ID}})

	want := make([]KeywordResult, len(jobs))
	wantErr := make([]bool, len(jobs))
	for i, j := range jobs {
		res, err := e.AdaptKeywords(j.Query, j.Missing, kopts)
		want[i], wantErr[i] = res, err != nil
	}
	if !wantErr[poisoned] {
		t.Fatal("poisoned job unexpectedly valid")
	}

	got, errs := e.AdaptKeywordsBatch(jobs, kopts, BatchOptions{Workers: 4})
	for i := range jobs {
		if (errs[i] != nil) != wantErr[i] {
			t.Fatalf("job %d: err=%v, want error=%v", i, errs[i], wantErr[i])
		}
		if errs[i] != nil {
			continue
		}
		if !got[i].Refined.Doc.Equal(want[i].Refined.Doc) ||
			got[i].Refined.K != want[i].Refined.K ||
			got[i].Penalty != want[i].Penalty {
			t.Fatalf("job %d: batch result %+v != sequential %+v", i, got[i], want[i])
		}
	}
}

// TestBatchWorkersBound checks the worker-count clamp.
func TestBatchWorkersBound(t *testing.T) {
	cases := []struct{ workers, jobs, want int }{
		{0, 100, 1}, // GOMAXPROCS on the test machine is at least 1
		{8, 3, 3},
		{-5, 2, 1},
		{2, 0, 1},
	}
	for _, c := range cases {
		got := BatchOptions{Workers: c.workers}.workers(c.jobs)
		if c.workers == 0 {
			if got < 1 || got > c.jobs && c.jobs > 0 {
				t.Fatalf("workers(%d jobs) with default = %d", c.jobs, got)
			}
			continue
		}
		if got != c.want {
			t.Fatalf("BatchOptions{%d}.workers(%d) = %d, want %d", c.workers, c.jobs, got, c.want)
		}
	}
}
