package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
)

// TestSignatureEquivalence is the acceptance sweep of the keyword-
// signature pruning layer: across random datasets, backends (single and
// sharded), and mutation interleavings, every answer of the
// signature-enabled engine — top-k IDs and scores, ranks, explanations,
// preference and keyword refinement optima, batches — is byte-identical
// to the engine with signatures disabled.
func TestSignatureEquivalence(t *testing.T) {
	for _, seed := range []int64{41, 42} {
		ds, err := dataset.Generate(dataset.DefaultConfig(500, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3} {
			ctx := fmt.Sprintf("sig/seed=%d/shards=%d", seed, shards)
			off := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards, DisableSignatures: true})
			on := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
			qs := dataset.Workload(ds, dataset.WorkloadConfig{
				Queries: 4, Seed: seed + 200, K: 5, Keywords: 2,
				W: score.DefaultWeights, FromObjectDocs: true,
			})
			assertEquivalent(t, ctx+"/fresh", off, on, qs)

			// Identical mutation interleaving on both engines, then
			// re-check: freshly frozen arenas re-derive their signature
			// columns.
			rng := rand.New(rand.NewSource(seed + 9))
			for i := 0; i < 30; i++ {
				src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len())))
				o := object.Object{Loc: src.Loc, Doc: src.Doc, Name: "mut"}
				id1, err1 := off.Insert(o)
				id2, err2 := on.Insert(o)
				if err1 != nil || err2 != nil || id1 != id2 {
					t.Fatalf("%s: insert diverges: (%d, %v) vs (%d, %v)", ctx, id1, err1, id2, err2)
				}
				if i%5 == 4 {
					if e1, e2 := off.Remove(id1), on.Remove(id1); (e1 == nil) != (e2 == nil) {
						t.Fatalf("%s: remove diverges: %v vs %v", ctx, e1, e2)
					}
				}
			}
			assertEquivalent(t, ctx+"/mutated", off, on, qs)
		}
	}
}

// TestSignatureEquivalenceDice: the signature bounds adapt to the Dice
// similarity model too — same sweep under Sim = SimDice.
func TestSignatureEquivalenceDice(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(500, 43))
	if err != nil {
		t.Fatal(err)
	}
	off := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, DisableSignatures: true})
	on := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16})
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 5, Seed: 44, K: 5, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	for i := range qs {
		qs[i].Sim = score.SimDice
	}
	assertEquivalent(t, "sig/dice", off, on, qs)
}

// TestSignatureStats: the engine surfaces the signature configuration
// and live hit/probe counters, aggregated across shards and families.
func TestSignatureStats(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(400, 45))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
		qs := dataset.Workload(ds, dataset.WorkloadConfig{
			Queries: 5, Seed: 46, K: 10, Keywords: 2,
			W: score.DefaultWeights, FromObjectDocs: true,
		})
		for _, q := range qs {
			if _, err := e.TopK(q); err != nil {
				t.Fatal(err)
			}
		}
		st := e.Stats()
		if !st.Signatures {
			t.Fatalf("shards=%d: Signatures = false, want true by default", shards)
		}
		if st.SigProbes == 0 || st.SigHits == 0 {
			t.Fatalf("shards=%d: no signature activity recorded (probes %d, hits %d)", shards, st.SigProbes, st.SigHits)
		}
		if st.SigHitRate <= 0 || st.SigHitRate > 1 {
			t.Fatalf("shards=%d: hit rate %v outside (0, 1]", shards, st.SigHitRate)
		}
		var probes, hits int64
		for _, row := range st.PerShard {
			probes += row.SetSigProbes + row.KcSigProbes
			hits += row.SetSigHits + row.KcSigHits
		}
		if probes != st.SigProbes || hits != st.SigHits {
			t.Fatalf("shards=%d: per-shard counters (%d, %d) do not sum to totals (%d, %d)",
				shards, probes, hits, st.SigProbes, st.SigHits)
		}

		disabled := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards, DisableSignatures: true})
		for _, q := range qs {
			if _, err := disabled.TopK(q); err != nil {
				t.Fatal(err)
			}
		}
		dst := disabled.Stats()
		if dst.Signatures || dst.SigProbes != 0 || dst.SigHits != 0 {
			t.Fatalf("shards=%d: disabled engine reports signature activity: %+v", shards, dst)
		}
	}
}
