package core

import (
	"context"
	"fmt"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/qcache"
	"github.com/yask-engine/yask/internal/score"
)

// Reason classifies why an expected object is missing from the result,
// the two causes the paper identifies (Section 1): a spatial/textual
// preference mismatch or query keywords that do not describe the object.
type Reason int

const (
	// ReasonBorderline: the object barely missed the result; neither
	// component stands out as the cause.
	ReasonBorderline Reason = iota
	// ReasonTooFar: the object's spatial distance is the dominant cause.
	ReasonTooFar
	// ReasonNotRelevant: low textual similarity to the query keywords is
	// the dominant cause.
	ReasonNotRelevant
	// ReasonBoth: both components are far behind the current results.
	ReasonBoth
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonBorderline:
		return "borderline"
	case ReasonTooFar:
		return "too-far"
	case ReasonNotRelevant:
		return "not-relevant"
	case ReasonBoth:
		return "too-far-and-not-relevant"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Explanation is the explanation generator's analysis of one missing
// object with regard to the initial query (Section 3.3, "Explanation
// Generator Module").
type Explanation struct {
	// Missing is the analyzed object.
	Missing object.Object
	// Rank is the object's true rank under the initial query; the paper
	// always reports it ("The ranking of the missing object under the
	// initial query is also provided").
	Rank int
	// Score, SDist, and TSim are the object's ranking components.
	Score, SDist, TSim float64
	// KthScore is the score of the current k-th result, the bar the
	// object failed to clear.
	KthScore float64
	// ResultAvgSDist and ResultAvgTSim are the averages over the current
	// top-k result, the baselines the classification compares against.
	ResultAvgSDist, ResultAvgTSim float64
	// Reason is the classified cause.
	Reason Reason
	// Detail is a human-readable explanation sentence.
	Detail string
	// SuggestPreference and SuggestKeyword report which refinement
	// model(s) the generator expects to help, steering the user's choice
	// between the two modules.
	SuggestPreference, SuggestKeyword bool
}

// Explain runs the explanation generator for each missing object. The
// missing objects must be absent from the initial top-k result.
func (e *Engine) Explain(q score.Query, missing []object.ID) ([]Explanation, error) {
	return e.ExplainCtx(context.Background(), q, missing)
}

// ExplainCtx is Explain under a context: the top-k and every rank
// computation poll the context's cancellation signal, and a canceled
// analysis returns ctx.Err() without caching anything.
func (e *Engine) ExplainCtx(ctx context.Context, q score.Query, missing []object.ID) ([]Explanation, error) {
	// One checked view serves the whole analysis, so the top-k and
	// every rank computation agree on one consistent arena set.
	sn, err := e.acquireSet()
	if err != nil {
		return nil, err
	}
	s, objs, _, err := e.validateWhyNot(ctx, sn, q, missing)
	if err != nil {
		return nil, err
	}
	// Cached analyses are keyed on the missing IDs as well as the query;
	// validation above runs either way, so a hit and a recompute reject
	// exactly the same inputs. Hits hand out a fresh slice: Explanation
	// values are plain data the caller may scribble on.
	epoch := sn.Epoch()
	extra := make([]uint64, len(missing))
	for i, id := range missing {
		extra[i] = uint64(id)
	}
	if v, ok := e.cache.GetValue(epoch, qcache.KindExplain, q, extra); ok {
		return append([]Explanation(nil), v.([]Explanation)...), nil
	}
	cc := index.CancelOf(ctx)
	result := sn.TopK(cc, s, q.K, nil, nil)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(result) == 0 {
		return nil, fmt.Errorf("core: initial query has an empty result")
	}
	kth := result[len(result)-1]
	var avgSD, avgTS float64
	for _, r := range result {
		avgSD += s.SDist(r.Obj)
		avgTS += s.TSim(r.Obj)
	}
	avgSD /= float64(len(result))
	avgTS /= float64(len(result))

	out := make([]Explanation, len(objs))
	for i, o := range objs {
		sd := s.SDist(o)
		ts := s.TSim(o)
		ex := Explanation{
			Missing:        o,
			Rank:           index.RankOf(cc, sn, s, o),
			Score:          s.Score(o),
			SDist:          sd,
			TSim:           ts,
			KthScore:       kth.Score,
			ResultAvgSDist: avgSD,
			ResultAvgTSim:  avgTS,
		}
		// An object is "behind" on a component when it trails the
		// result average by more than the k-th object's winning margin
		// would forgive. The thresholds compare against the average of
		// the winners: distinctly farther, or distinctly less relevant.
		const margin = 0.10
		farBehindSpace := sd > avgSD+margin
		farBehindText := ts < avgTS-margin
		switch {
		case farBehindSpace && farBehindText:
			ex.Reason = ReasonBoth
			ex.Detail = fmt.Sprintf(
				"%s is both farther away (SDist %.3f vs result avg %.3f) and less relevant to the query keywords (TSim %.3f vs avg %.3f) than the current results; it ranks %d.",
				displayName(o), sd, avgSD, ts, avgTS, ex.Rank)
		case farBehindSpace:
			ex.Reason = ReasonTooFar
			ex.Detail = fmt.Sprintf(
				"%s matches the query keywords (TSim %.3f) but is too far from the query location (SDist %.3f vs result avg %.3f); it ranks %d. Raising the weight of textual similarity can revive it.",
				displayName(o), ts, sd, avgSD, ex.Rank)
		case farBehindText:
			ex.Reason = ReasonNotRelevant
			ex.Detail = fmt.Sprintf(
				"%s is close by (SDist %.3f) but the query keywords describe it poorly (TSim %.3f vs result avg %.3f); it ranks %d. Adapting the query keywords can revive it.",
				displayName(o), sd, ts, avgTS, ex.Rank)
		default:
			ex.Reason = ReasonBorderline
			ex.Detail = fmt.Sprintf(
				"%s only barely missed the result (score %.4f vs k-th score %.4f, rank %d); a small refinement of either kind can revive it.",
				displayName(o), ex.Score, kth.Score, ex.Rank)
		}
		// Preference adjustment helps when the object wins on one
		// component (a different weighting can surface it); keyword
		// adaption helps when textual relevance is the weak component.
		ex.SuggestPreference = ex.Reason == ReasonBorderline || (farBehindSpace != farBehindText)
		ex.SuggestKeyword = ex.Reason == ReasonBorderline || farBehindText
		out[i] = ex
	}
	if err := ctx.Err(); err != nil {
		// Canceled mid-analysis: the ranks above are partial counts, so
		// the explanations are garbage — discard, and never cache them.
		return nil, err
	}
	e.cache.PutValue(epoch, qcache.KindExplain, q, extra, append([]Explanation(nil), out...))
	return out, nil
}

func displayName(o object.Object) string {
	if o.Name != "" {
		return fmt.Sprintf("%q", o.Name)
	}
	return fmt.Sprintf("object %d", o.ID)
}
