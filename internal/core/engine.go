// Package core implements YASK's query processor (Fig. 1 of the paper):
// the spatial keyword top-k query engine and the why-not question
// answering engine with its three modules — the explanation generator,
// the preference-adjusted why-not module (Definition 2, penalty Eqn 3),
// and the keyword-adapted why-not module (Definition 3, penalty Eqn 4).
//
// The Engine owns a SetR-tree (top-k, explanations, preference
// adjustment) and a KcR-tree (keyword adaption) over one collection —
// either as two single indexes (Options.Shards ≤ 1, the fast path) or
// as two spatially sharded families executing every query by
// scatter-gather (Options.Shards > 1). Both backends are driven through
// the shared index.Provider/index.Snapshot contract, so every algorithm
// here is written once: it acquires one consistent view per computation
// and runs against index.Snapshot primitives, never a concrete arena.
//
// Queries run against immutable frozen snapshots of the indexes, so all
// methods — including the live-update path Insert/Remove/Refresh — are
// safe for concurrent use: a query always sees a complete, consistent
// arena, never a half-applied mutation.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/qcache"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/shard"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// DefaultLambda is the default preference λ between modifying k and
// modifying w⃗/doc in the penalty functions (Eqns 3 and 4).
const DefaultLambda = 0.5

// Engine is the YASK query processor.
type Engine struct {
	coll *object.Collection

	// Single-index backend (Options.Shards ≤ 1): the two indexes plus
	// their provider slice, through which the lifecycle fan-out runs.
	set       *settree.Index
	kc        *kcrtree.Index
	providers []index.Provider

	// Sharded backend (Options.Shards > 1): family 0 is the SetR-tree,
	// family 1 the KcR-tree.
	group *shard.Group

	// mu serializes the mutation path (Insert/Remove/Refresh); queries
	// never take it — they read atomically published snapshots.
	mu sync.Mutex
	// epochMu makes snapshot acquisition atomic across the two index
	// families: refreshLocked holds the write side while it republishes
	// both, acquire/acquireSet hold the read side, so a view can never
	// pair a post-refresh SetR arena with a pre-refresh KcR arena (or
	// vice versa). Mutations never take it — they buffer without
	// swapping arenas — and readers only wait while a refresh publishes.
	epochMu sync.RWMutex
	// pending counts mutations applied to the trees since the last
	// snapshot refresh; refreshEvery bounds it.
	pending         int
	refreshEvery    int
	refreshInterval time.Duration
	lastRefresh     time.Time
	// refreshTimerSet guards the single outstanding trailing-edge timer
	// that publishes mutations deferred by the interval rate limit.
	refreshTimerSet bool
	// rebalanceFactor is the max/mean imbalance that triggers an online
	// rebalance of the sharded backend; 0 disables.
	rebalanceFactor float64
	// rebalanceFloor is the imbalance measured right after the last
	// rebalance — the level the splitter proved it cannot get below for
	// the current data. The automatic trigger requires the imbalance to
	// exceed this floor (with headroom) again, so a dataset whose skew
	// is irreducible (many objects at one exact coordinate, which no
	// cut can separate) costs one rebuild, not one per mutation.
	// Guarded by mu.
	rebalanceFloor float64
	// rebalancing claims the single in-flight background rebalance.
	rebalancing atomic.Bool
	// signatures records whether the keyword-signature pruning layer is
	// active (Options.DisableSignatures inverted), for stats reporting.
	signatures bool
	// cache is the epoch-keyed result cache; nil when disabled. Answers
	// are keyed by the SetR-family epoch of the snapshot they were
	// computed against — both families always republish together under
	// epochMu, so that epoch uniquely identifies the engine's whole
	// published state.
	cache *qcache.Cache
	// subs manages continuous top-k subscriptions; re-evaluation is
	// kicked after every published epoch.
	subs *subManager
	// dur is the durability state (nil for a memory-only engine). Set
	// once by Open before the engine is shared; the mutation path reads
	// it under mu.
	dur *durability
	// closed marks an engine shut down by Close: mutations fail, queries
	// keep serving the last published snapshots. Guarded by mu.
	closed bool
}

// Options configures engine construction.
type Options struct {
	// MaxEntries is the R-tree node fanout for both indexes.
	// Zero means rtree.DefaultMaxEntries.
	MaxEntries int
	// RefreshEvery batches snapshot refreshes on the live-update path:
	// the engine re-freezes the index arenas after every RefreshEvery
	// mutations instead of after each one, amortizing the O(n) freeze
	// over a mutation storm. Until the refresh, queries serve the last
	// published snapshot (complete and consistent, minus the buffered
	// mutations). Zero or one refreshes on every mutation; Refresh
	// forces one at any time.
	RefreshEvery int
	// RefreshInterval rate-limits mutation-triggered refreshes: under a
	// mutation storm the engine re-freezes at most once per interval,
	// even when the RefreshEvery count threshold is reached, bounding
	// the O(n) freeze work a storm can cause. Mutations deferred inside
	// the window publish automatically at its trailing edge (a one-shot
	// timer), so staleness is bounded by the interval even when the
	// storm stops — or immediately through an explicit Refresh, which
	// is never rate-limited. Zero disables the rate limit.
	RefreshInterval time.Duration
	// Shards partitions the collection into this many spatial shards,
	// each with its own independently built and refreshed indexes;
	// queries execute by scatter-gather and return results byte-
	// identical to the unsharded engine. Values ≤ 1 select the
	// single-index fast path (identical allocations to before sharding
	// existed).
	Shards int
	// Splitter selects the spatial partitioning strategy of the sharded
	// backend: nil selects shard.GridSplitter{} (the uniform grid),
	// shard.STRSplitter{} packs a sample of the collection into balanced
	// rectangles so skewed datasets keep even shard populations. Ignored
	// for Shards ≤ 1.
	Splitter shard.Splitter
	// DisableSignatures turns off the keyword-signature pruning layer:
	// the fixed-width hashed bitmaps frozen into every index arena that
	// give traversals a constant-time upper bound on keyword
	// intersections, skipping the exact merge-walks whenever the bound
	// alone is decisive. Signatures are on by default and never change
	// results (answers are byte-identical either way); the switch exists
	// for ablation measurements and as an operational escape hatch.
	DisableSignatures bool
	// RebalanceFactor enables online shard rebalancing: after a
	// mutation, when the max/mean live-population ratio across shards
	// exceeds this factor, a background rebalance re-splits the
	// collection with the configured splitter, rebuilds every family off
	// the query path, and publishes the new partition atomically behind
	// the epoch lock — in-flight queries keep a consistent view
	// throughout. A rebalance counts as a refresh (the rebuilt arenas
	// include every buffered mutation). Skew the splitter provably
	// cannot reduce (e.g. many objects at one exact coordinate) is
	// remembered as a floor: the trigger only re-fires after the
	// imbalance drifts ~10% past it, so an irreducible hotspot costs
	// one rebuild, not one per mutation. Zero disables; values in
	// (0, 1] panic, because every non-empty layout has imbalance ≥ 1
	// and the engine would rebalance forever. Ignored for Shards ≤ 1.
	RebalanceFactor float64
	// CacheEntries and CacheBytes bound the epoch-keyed result cache
	// (entry count and approximate retained bytes); zero selects the
	// qcache defaults. DisableCache turns the cache off entirely — the
	// ablation and escape hatch, mirroring DisableSignatures. The cache
	// never changes answers: entries are keyed by the epoch identity of
	// the published snapshot they were computed against, so any publish
	// (refresh, rebalance, recovery) silently orphans stale entries.
	CacheEntries int
	CacheBytes   int64
	DisableCache bool

	// DataDir enables durability (via Open, not NewEngine): the
	// directory holding the engine's WAL segments and checkpoint files.
	// Empty means memory-only.
	DataDir string
	// Fsync selects when a WAL append is made power-cut durable
	// (wal.SyncAlways, the zero value, acknowledges a mutation only
	// after fsync). FsyncInterval is the flush period of
	// wal.SyncInterval.
	Fsync         wal.SyncPolicy
	FsyncInterval time.Duration
	// WALSegmentSize overrides the WAL segment rotation threshold
	// (bytes); zero means wal.DefaultSegmentSize.
	WALSegmentSize int64
	// CheckpointEvery writes a snapshot checkpoint (and retires the WAL
	// segments it covers) after this many logged mutations; zero means
	// checkpoints happen only through explicit Checkpoint calls and at
	// shutdown.
	CheckpointEvery int
	// MmapArenas persists the frozen index arenas alongside every
	// checkpoint (arena-<family>-<lsn>.yar, see docs/FORMATS.md) and
	// boots by mmap'ing the newest set matching the restored checkpoint
	// instead of rebuilding the indexes — recovery skips the bulk-load
	// and the first mutation thaws a live tree on demand. Any damaged,
	// missing, or incompatible arena file falls back to the ordinary
	// rebuild (reason recorded in DurabilityStats.Arena), never a wrong
	// answer. Ignored for sharded engines (Shards > 1) and memory-only
	// engines; requires Open.
	MmapArenas bool
	// Vocab is the vocabulary the collection's keyword sets are interned
	// in. Durability needs it to spell keyword IDs back into strings for
	// WAL records and checkpoints (and to re-intern them on replay), so
	// recovery is independent of vocabulary ID assignment order.
	// Required when DataDir is set.
	Vocab *vocab.Vocabulary
	// WrapWALFile is the fault-injection hook passed through to
	// wal.Options.WrapFile; tests only.
	WrapWALFile func(*os.File) wal.File
}

// NewEngine builds the engine (both indexes) over the collection.
func NewEngine(c *object.Collection, opts Options) *Engine {
	return newEngineWith(c, opts, nil, nil)
}

// newEngineWith is NewEngine with optionally pre-built single-index
// backends: the mmap-arena boot path (Open) loads both families from
// checkpoint-consistent arena files and passes them in, skipping the
// bulk-load rebuild. Both must be non-nil together, built over c, and
// configured consistently with opts; nil/nil builds them here.
func newEngineWith(c *object.Collection, opts Options, set *settree.Index, kc *kcrtree.Index) *Engine {
	maxE := opts.MaxEntries
	if maxE == 0 {
		maxE = rtree.DefaultMaxEntries
	}
	refreshEvery := opts.RefreshEvery
	if refreshEvery < 1 {
		refreshEvery = 1
	}
	if opts.RebalanceFactor != 0 && opts.RebalanceFactor <= 1 {
		panic(fmt.Sprintf("core: rebalance factor %v must exceed 1 (imbalance is never below 1)", opts.RebalanceFactor))
	}
	e := &Engine{
		coll:            c,
		refreshEvery:    refreshEvery,
		refreshInterval: opts.RefreshInterval,
		lastRefresh:     time.Now(),
		rebalanceFactor: opts.RebalanceFactor,
		signatures:      !opts.DisableSignatures,
	}
	if !opts.DisableCache {
		e.cache = qcache.New(opts.CacheEntries, opts.CacheBytes)
	}
	e.subs = newSubManager(e)
	if opts.Shards > 1 {
		e.group = shard.NewGroup(c, opts.Shards, opts.Splitter, []index.Builder{
			settree.BuilderWith(maxE, e.signatures),
			kcrtree.BuilderWith(maxE, e.signatures),
		})
	} else {
		if set != nil && kc != nil {
			e.set, e.kc = set, kc
		} else {
			e.set = settree.BuildWith(c, maxE, e.signatures)
			e.kc = kcrtree.BuildWith(c, maxE, e.signatures)
		}
		e.providers = []index.Provider{e.set, e.kc}
	}
	return e
}

// Shards returns the number of spatial shards the engine executes over
// (1 for the single-index backend).
func (e *Engine) Shards() int {
	if e.group != nil {
		return e.group.Map().Shards()
	}
	return 1
}

// engineView is one consistent cross-index acquisition: the SetR-family
// snapshot the top-k and explanation paths run on and the KcR-family
// snapshot the rank-bound machinery runs on, taken together so a whole
// why-not computation sees one arena set. Both fields are
// index.Snapshots — a single arena or a sharded scatter-gather view —
// which is what keeps every algorithm in this package backend-agnostic.
type engineView struct {
	set index.Snapshot
	kc  index.Snapshot
}

// acquire returns the current cross-index view, atomically with
// respect to refreshes. It fails with an error matching
// rtree.ErrStaleSnapshot if any index was mutated outside the managed
// path.
func (e *Engine) acquire() (engineView, error) {
	e.epochMu.RLock()
	defer e.epochMu.RUnlock()
	if e.group != nil {
		_, families := e.group.State()
		sv, err := families[0].Acquire()
		if err != nil {
			return engineView{}, err
		}
		kv, err := families[1].Acquire()
		if err != nil {
			return engineView{}, err
		}
		return engineView{set: sv, kc: kv}, nil
	}
	sa, err := e.set.Snapshot()
	if err != nil {
		return engineView{}, err
	}
	ka, err := e.kc.Snapshot()
	if err != nil {
		return engineView{}, err
	}
	return engineView{set: sa, kc: ka}, nil
}

// acquireSet returns only the SetR-family snapshot — the cheaper
// acquisition for the paths that never touch the rank-bound machinery
// (top-k, rank, batches): a sharded KcR acquisition would otherwise
// assemble a whole unused scatter-gather view per query.
func (e *Engine) acquireSet() (index.Snapshot, error) {
	e.epochMu.RLock()
	defer e.epochMu.RUnlock()
	if e.group != nil {
		return e.group.Family(0).AcquireSnapshot()
	}
	return e.set.Acquire()
}

// setScorer builds a scorer for q pinned to the snapshot's
// normalization constant.
func setScorer(sn index.Snapshot, q score.Query) score.Scorer {
	return score.Scorer{Query: q, MaxDist: sn.MaxDist()}
}

// Insert adds a new object to the collection and both indexes and
// returns its assigned ID. The o.ID field is ignored; IDs stay dense.
// The new object becomes visible to queries at the next snapshot refresh
// (immediately unless Options.RefreshEvery or Options.RefreshInterval
// batches mutations).
func (e *Engine) Insert(o object.Object) (object.ID, error) {
	if o.Doc.Empty() {
		return 0, errors.New("core: object needs at least one keyword")
	}
	if !o.Doc.Canonical() {
		return 0, errors.New("core: object keyword set not canonical")
	}
	if math.IsNaN(o.Loc.X) || math.IsInf(o.Loc.X, 0) ||
		math.IsNaN(o.Loc.Y) || math.IsInf(o.Loc.Y, 0) {
		return 0, fmt.Errorf("core: object location %v is not finite", o.Loc)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, errEngineClosed
	}
	// Write-ahead: the mutation is logged (and acknowledged per the
	// fsync policy) before any in-memory state changes, so recovery
	// replays exactly the acknowledged sequence in global-ID order. A
	// failed append leaves the engine untouched.
	if e.dur != nil {
		if err := e.dur.logInsert(object.ID(e.coll.Len()), o); err != nil {
			return 0, err
		}
	}
	id := e.applyInsertLocked(o)
	e.subs.noteInsert(e.coll.Get(id))
	e.bumpPendingLocked()
	e.maybeRebalanceLocked()
	e.maybeCheckpointLocked()
	return id, nil
}

var errEngineClosed = errors.New("core: engine is closed")

// ErrAlreadyRemoved reports a Remove of an object that is already
// tombstoned. Callers distinguish it with errors.Is, never by matching
// error text.
var ErrAlreadyRemoved = errors.New("already removed")

// applyInsertLocked performs the in-memory half of an insert: append to
// the collection (assigning the next dense global ID) and insert into
// the index backend. Shared by the live mutation path and WAL replay —
// both run under mu and in global-ID order, which is what keeps a
// recovered engine (sharded or not) byte-identical to the original.
func (e *Engine) applyInsertLocked(o object.Object) object.ID {
	if e.group != nil {
		return e.group.Insert(o)
	}
	id := e.coll.Append(o)
	o = e.coll.Get(id) // pick up the assigned ID
	for _, p := range e.providers {
		p.Insert(o)
	}
	return id
}

// Remove tombstones the object and deletes it from both indexes. The ID
// remains addressable (why-not questions over old sessions keep
// resolving) but the object stops appearing in results at the next
// snapshot refresh.
func (e *Engine) Remove(id object.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errEngineClosed
	}
	if int(id) >= e.coll.Len() {
		return fmt.Errorf("core: unknown object ID %d", id)
	}
	// Reject before logging: only accepted mutations reach the WAL.
	// Under mu the aliveness check cannot race the apply below.
	if !e.coll.Alive(id) {
		return fmt.Errorf("core: object %d: %w", id, ErrAlreadyRemoved)
	}
	if e.dur != nil {
		if err := e.dur.logRemove(id); err != nil {
			return err
		}
	}
	e.applyRemoveLocked(id)
	e.subs.noteRemove(id)
	e.bumpPendingLocked()
	e.maybeRebalanceLocked()
	e.maybeCheckpointLocked()
	return nil
}

// applyRemoveLocked performs the in-memory half of a remove; the caller
// has verified id is in range and alive.
func (e *Engine) applyRemoveLocked(id object.ID) {
	if e.group != nil {
		e.group.Remove(id)
		return
	}
	e.coll.Tombstone(id)
	o := e.coll.Get(id)
	for _, p := range e.providers {
		p.Remove(o)
	}
}

// Refresh re-freezes both index arenas (every shard's, when sharded)
// and atomically publishes them, making every buffered mutation visible
// to queries. The copy-on-write freeze runs off the query path:
// concurrent queries keep traversing the old snapshots until the swap.
// Explicit refreshes are never debounced.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

func (e *Engine) bumpPendingLocked() {
	e.pending++
	if e.pending < e.refreshEvery {
		return
	}
	if e.refreshInterval > 0 {
		if wait := e.refreshInterval - time.Since(e.lastRefresh); wait > 0 {
			// Mid-storm: the count threshold fired inside the rate-limit
			// window. Keep buffering, and arm one trailing-edge timer so
			// the buffered mutations publish at the window's end even if
			// the storm stops — staleness stays bounded by the interval.
			if !e.refreshTimerSet {
				e.refreshTimerSet = true
				time.AfterFunc(wait, e.trailingRefresh)
			}
			return
		}
	}
	e.refreshLocked()
}

// trailingRefresh is the interval rate limit's trailing edge: it
// publishes whatever is still buffered when the window closes.
func (e *Engine) trailingRefresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshTimerSet = false
	if e.pending == 0 {
		return
	}
	if wait := e.refreshInterval - time.Since(e.lastRefresh); wait > 0 {
		// An explicit Refresh moved the window forward while this timer
		// was armed; re-arm for the new trailing edge instead of
		// re-freezing inside the window — the rate limit stays
		// at-most-once-per-interval.
		e.refreshTimerSet = true
		time.AfterFunc(wait, e.trailingRefresh)
		return
	}
	e.refreshLocked()
}

func (e *Engine) refreshLocked() {
	e.epochMu.Lock()
	if e.group != nil {
		e.group.Refresh()
	} else {
		for _, p := range e.providers {
			p.Refresh()
		}
	}
	e.epochMu.Unlock()
	e.pending = 0
	e.lastRefresh = time.Now()
	e.postPublishLocked()
}

// postPublishLocked runs after every epoch publication (refresh or
// rebalance), still under the mutation lock: it reclaims result-cache
// entries orphaned by the old epoch and hands the new snapshot plus the
// closed mutation window to the subscription manager. Both are
// off-query-path bookkeeping; subscription evaluation itself runs on
// the manager's drain goroutine.
func (e *Engine) postPublishLocked() {
	if e.cache == nil && e.subs == nil {
		return
	}
	sn, err := e.acquireSet()
	if err != nil {
		return
	}
	e.cache.PurgeBelow(sn.Epoch())
	e.subs.kick(sn)
}

// rebalanceHeadroom is how much the imbalance must grow past the last
// rebalance's floor before the automatic trigger re-fires: re-splitting
// an essentially unchanged distribution yields an essentially identical
// partition, so re-attempts are only worth a full rebuild after real
// drift. The 10% margin bounds rebuild frequency geometrically under a
// steadily worsening hotspot.
const rebalanceHeadroom = 1.1

// maybeRebalanceLocked launches a background rebalance when the sharded
// backend's live-population imbalance exceeds the configured factor and
// the floor the previous rebalance could not get below. The caller
// holds e.mu; the rebalance goroutine reacquires it, so the collection
// is stable while the new partition is built, and queries keep
// scatter-gathering the old epoch until the atomic publish. At most one
// rebalance is in flight at a time.
func (e *Engine) maybeRebalanceLocked() {
	if e.group == nil || e.rebalanceFactor == 0 {
		return
	}
	if !e.wantRebalanceLocked() {
		return
	}
	if !e.rebalancing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.rebalancing.Store(false)
		e.mu.Lock()
		defer e.mu.Unlock()
		if !e.wantRebalanceLocked() {
			return // the mutation storm evened itself out meanwhile
		}
		e.rebalanceLocked()
	}()
}

// wantRebalanceLocked reports whether the automatic trigger should
// fire: the imbalance exceeds the configured factor and has drifted
// past what the last rebalance achieved.
func (e *Engine) wantRebalanceLocked() bool {
	imb := e.group.Imbalance()
	return imb > e.rebalanceFactor && imb > e.rebalanceFloor*rebalanceHeadroom
}

// rebalanceLocked re-splits the collection with the configured splitter,
// rebuilds every family off the query path, and publishes the new
// partition behind the epoch lock — snapshot acquisitions see the old
// epoch or the new one, never a mix. The rebuilt arenas are frozen from
// the live collection, so a rebalance also publishes every buffered
// mutation: it accounts as a refresh.
func (e *Engine) rebalanceLocked() {
	commit := e.group.PrepareRebalance()
	e.epochMu.Lock()
	commit()
	e.epochMu.Unlock()
	e.pending = 0
	e.lastRefresh = time.Now()
	e.postPublishLocked()
	// Whatever imbalance survived the re-split is irreducible for the
	// current data; don't burn rebuilds re-attempting it until the
	// distribution actually drifts further.
	e.rebalanceFloor = e.group.Imbalance()
}

// Rebalance forces a synchronous re-split of the sharded backend,
// regardless of the current imbalance or the RebalanceFactor setting —
// the post-bulk-load hook. It reports whether a rebalance ran (false
// for the single-index backend, which has nothing to re-split).
func (e *Engine) Rebalance() bool {
	if e.group == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rebalanceLocked()
	return true
}

// PendingMutations returns the number of mutations buffered since the
// last snapshot refresh (always 0 unless Options.RefreshEvery or
// Options.RefreshInterval batches mutations).
func (e *Engine) PendingMutations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending
}

// Collection returns the indexed collection (the global one, when
// sharded).
func (e *Engine) Collection() *object.Collection { return e.coll }

// SetIndex returns the single-backend SetR-tree, nil when the engine is
// sharded (per-shard providers live behind the shard group).
func (e *Engine) SetIndex() *settree.Index { return e.set }

// KcIndex returns the single-backend KcR-tree, nil when the engine is
// sharded.
func (e *Engine) KcIndex() *kcrtree.Index { return e.kc }

// ShardStats is one shard's row of EngineStats.
type ShardStats struct {
	// Shard is the shard number (0 for the single-index backend).
	Shard int `json:"shard"`
	// Objects is the size of the shard's ID space, Live the number of
	// live (non-tombstoned) objects in it.
	Objects int `json:"objects"`
	Live    int `json:"live"`
	// SetNodeAccesses and KcNodeAccesses are the cumulative index node
	// accesses of the shard's two indexes.
	SetNodeAccesses int64 `json:"setNodeAccesses"`
	KcNodeAccesses  int64 `json:"kcNodeAccesses"`
	// SetSigProbes/SetSigHits and KcSigProbes/KcSigHits are the shard's
	// keyword-signature pruning counters per index family: probes are
	// signature bounds consulted, hits the decisive ones (each an exact
	// keyword set operation skipped).
	SetSigProbes int64 `json:"setSigProbes"`
	SetSigHits   int64 `json:"setSigHits"`
	KcSigProbes  int64 `json:"kcSigProbes"`
	KcSigHits    int64 `json:"kcSigHits"`
	// Balance is the shard's live population relative to the ideal
	// (total live / shards): 1.0 is a perfectly balanced shard, 0 an
	// empty one, values near Shards mean the shard holds everything.
	Balance float64 `json:"balance"`
}

// EngineStats is the engine's execution snapshot: shard layout, buffered
// mutations, and per-shard index statistics.
type EngineStats struct {
	Shards  int     `json:"shards"`
	Objects int     `json:"objects"`
	Live    int     `json:"live"`
	Pending int     `json:"pendingMutations"`
	MaxDist float64 `json:"maxDist"`
	// Splitter names the sharding strategy ("grid", "str"); empty for
	// the single-index backend.
	Splitter string `json:"splitter,omitempty"`
	// ImbalanceFactor is the max/mean live-population ratio across
	// shards: 1.0 is perfectly balanced, Shards means one shard holds
	// everything, 0 an empty engine. The single-index backend trivially
	// reports 1 (or 0 when empty).
	ImbalanceFactor float64 `json:"imbalanceFactor"`
	// Rebalances counts the online rebalances published so far.
	Rebalances int64 `json:"rebalances"`
	// Signatures reports whether the keyword-signature pruning layer is
	// active; SigProbes/SigHits aggregate the per-shard, per-family
	// counters and SigHitRate is hits/probes (0 when never probed) —
	// the fraction of textual evaluations answered by a constant-time
	// bitmap bound instead of an exact keyword merge-walk.
	Signatures bool    `json:"signatures"`
	SigProbes  int64   `json:"sigProbes"`
	SigHits    int64   `json:"sigHits"`
	SigHitRate float64 `json:"sigHitRate"`
	// PerShard has one row per shard (one row for the single backend).
	PerShard []ShardStats `json:"perShard"`
	// Cache reports the epoch-keyed result cache; nil when disabled.
	Cache *CacheStats `json:"cache,omitempty"`
	// Subscriptions reports the continuous-query counters.
	Subscriptions *SubscriptionStats `json:"subscriptions,omitempty"`
	// Durability reports the WAL/checkpoint state; nil for a memory-only
	// engine.
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// CacheStats is the result cache's row of EngineStats.
type CacheStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses), 0 before any lookup.
	HitRate   float64 `json:"hitRate"`
	Evictions int64   `json:"evictions"`
	// OrphanedEpochs counts epochs that still held entries when a
	// publish-triggered purge dropped them.
	OrphanedEpochs int64 `json:"orphanedEpochs"`
}

// Stats reports the engine's execution statistics.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Shards:     e.Shards(),
		Objects:    e.coll.Len(),
		Live:       e.coll.LiveLen(),
		Pending:    e.PendingMutations(),
		MaxDist:    e.coll.MaxDist(),
		Signatures: e.signatures,
	}
	st.Durability = e.durabilityStats()
	if e.cache != nil {
		cs := e.cache.Stats()
		st.Cache = &CacheStats{
			Entries:        cs.Entries,
			Bytes:          cs.Bytes,
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			HitRate:        cs.HitRate(),
			Evictions:      cs.Evictions,
			OrphanedEpochs: cs.OrphanedEpochs,
		}
	}
	if e.subs != nil {
		ss := e.subs.stats()
		st.Subscriptions = &ss
	}
	if e.group == nil {
		if st.Live > 0 {
			st.ImbalanceFactor = 1
		}
		setS, kcS := e.set.Stats(), e.kc.Stats()
		st.PerShard = []ShardStats{{
			Shard:           0,
			Objects:         e.coll.Len(),
			Live:            e.coll.LiveLen(),
			SetNodeAccesses: setS.NodeAccesses(),
			KcNodeAccesses:  kcS.NodeAccesses(),
			SetSigProbes:    setS.SigProbes(),
			SetSigHits:      setS.SigHits(),
			KcSigProbes:     kcS.SigProbes(),
			KcSigHits:       kcS.SigHits(),
			Balance:         st.ImbalanceFactor,
		}}
		st.finishSigTotals()
		return st
	}
	m, families := e.group.State()
	st.Splitter = e.group.Splitter().Name()
	st.ImbalanceFactor = m.ImbalanceFactor()
	st.Rebalances = e.group.Rebalances()
	setP := families[0].Providers()
	kcP := families[1].Providers()
	totalLive := 0
	for _, live := range m.LiveCounts() {
		totalLive += live
	}
	st.PerShard = make([]ShardStats, m.Shards())
	for t := range st.PerShard {
		c := m.Part(t).Collection()
		setS, kcS := setP[t].Stats(), kcP[t].Stats()
		row := ShardStats{
			Shard:           t,
			Objects:         c.Len(),
			Live:            c.LiveLen(),
			SetNodeAccesses: setS.NodeAccesses(),
			KcNodeAccesses:  kcS.NodeAccesses(),
			SetSigProbes:    setS.SigProbes(),
			SetSigHits:      setS.SigHits(),
			KcSigProbes:     kcS.SigProbes(),
			KcSigHits:       kcS.SigHits(),
		}
		if totalLive > 0 {
			row.Balance = float64(row.Live) * float64(m.Shards()) / float64(totalLive)
		}
		st.PerShard[t] = row
	}
	st.finishSigTotals()
	return st
}

// finishSigTotals aggregates the per-shard signature counters into the
// engine-level totals and hit rate.
func (st *EngineStats) finishSigTotals() {
	for _, row := range st.PerShard {
		st.SigProbes += row.SetSigProbes + row.KcSigProbes
		st.SigHits += row.SetSigHits + row.KcSigHits
	}
	if st.SigProbes > 0 {
		st.SigHitRate = float64(st.SigHits) / float64(st.SigProbes)
	}
}

// TopK answers a spatial keyword top-k query (Definition 1).
func (e *Engine) TopK(q score.Query) ([]score.Result, error) {
	return e.TopKAppendCtx(context.Background(), q, nil)
}

// TopKCtx is TopK under a context: the search polls the context's
// cancellation signal every ≤ index.CheckInterval node visits, and a
// canceled or deadline-expired query returns ctx.Err() with no result
// (and stores nothing in the result cache).
func (e *Engine) TopKCtx(ctx context.Context, q score.Query) ([]score.Result, error) {
	return e.TopKAppendCtx(ctx, q, nil)
}

// TopKAppend is TopK appending into a caller-owned buffer — the
// allocation-free warm path: on a result-cache hit the cached entry is
// copied straight into dst (zero allocations once dst has capacity),
// and on a miss the index search itself appends into dst and the
// freshly computed answer is stored for the next repeat.
func (e *Engine) TopKAppend(q score.Query, dst []score.Result) ([]score.Result, error) {
	return e.TopKAppendCtx(context.Background(), q, dst)
}

// TopKAppendCtx is TopKAppend under a context; see TopKCtx for the
// cancellation contract. On error dst is returned truncated to its
// original length, so callers can keep reusing their buffer.
func (e *Engine) TopKAppendCtx(ctx context.Context, q score.Query, dst []score.Result) ([]score.Result, error) {
	if err := q.Validate(); err != nil {
		return dst, err
	}
	sn, err := e.acquireSet()
	if err != nil {
		return dst, err
	}
	return e.topKOn(ctx, sn, q, dst)
}

// topKOn answers q against the acquired snapshot through the result
// cache: epoch-keyed hit, or compute-and-store. Results append to dst.
// Shared by the single-query path, the batch executor, and the
// subscription evaluator, so every repeat of a query — wherever it
// comes from — lands on the same entry.
//
// Cancellation discipline: a canceled search returns dst truncated back
// to its original length together with ctx.Err(), and the partial
// answer is never stored — the result cache only ever holds complete
// answers, so a shed or abandoned request cannot poison later repeats.
func (e *Engine) topKOn(ctx context.Context, sn index.Snapshot, q score.Query, dst []score.Result) ([]score.Result, error) {
	epoch := sn.Epoch()
	if res, ok := e.cache.GetTopK(epoch, q, dst); ok {
		return res, nil
	}
	base := len(dst)
	dst = sn.TopK(index.CancelOf(ctx), setScorer(sn, q), q.K, nil, dst)
	if err := ctx.Err(); err != nil {
		return dst[:base], err
	}
	e.cache.PutTopK(epoch, q, dst[base:])
	return dst, nil
}

// Rank returns the 1-based rank of an object under the query.
func (e *Engine) Rank(q score.Query, id object.ID) (int, error) {
	return e.RankCtx(context.Background(), q, id)
}

// RankCtx is Rank under a context; see TopKCtx for the cancellation
// contract.
func (e *Engine) RankCtx(ctx context.Context, q score.Query, id object.ID) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if int(id) >= e.coll.Len() {
		return 0, fmt.Errorf("core: unknown object ID %d", id)
	}
	if !e.coll.Alive(id) {
		return 0, fmt.Errorf("core: object %d has been removed", id)
	}
	sn, err := e.acquireSet()
	if err != nil {
		return 0, err
	}
	epoch := sn.Epoch()
	extra := [1]uint64{uint64(id)}
	if v, ok := e.cache.GetValue(epoch, qcache.KindRank, q, extra[:]); ok {
		return v.(int), nil
	}
	rank := index.RankOf(index.CancelOf(ctx), sn, setScorer(sn, q), e.coll.Get(id))
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e.cache.PutValue(epoch, qcache.KindRank, q, extra[:], rank)
	return rank, nil
}

// validateWhyNot checks the common preconditions of the why-not
// operations against an already-acquired SetR-family snapshot: a valid
// initial query and a non-empty missing set of objects that are
// genuinely absent from the initial result (rank > k). It returns the
// scorer (pinned to the snapshot), the missing objects, and R(M, q) —
// the lowest (worst) rank of any missing object under the initial
// query, the normalization constant of both penalty functions.
func (e *Engine) validateWhyNot(ctx context.Context, sn index.Snapshot, q score.Query, missing []object.ID) (score.Scorer, []object.Object, int, error) {
	if err := q.Validate(); err != nil {
		return score.Scorer{}, nil, 0, err
	}
	if len(missing) == 0 {
		return score.Scorer{}, nil, 0, errors.New("core: why-not question needs at least one missing object")
	}
	cc := index.CancelOf(ctx)
	s := setScorer(sn, q)
	seen := make(map[object.ID]bool, len(missing))
	objs := make([]object.Object, 0, len(missing))
	worst := 0
	for _, id := range missing {
		if int(id) >= e.coll.Len() {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: unknown object ID %d", id)
		}
		if !e.coll.Alive(id) {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: object %d has been removed", id)
		}
		if seen[id] {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: duplicate missing object %d", id)
		}
		seen[id] = true
		o := e.coll.Get(id)
		rank := index.RankOf(cc, sn, s, o)
		if err := ctx.Err(); err != nil {
			// A canceled rank is an undefined partial count; it must not
			// drive the already-in-top-k rejection below.
			return score.Scorer{}, nil, 0, err
		}
		if rank <= q.K {
			return score.Scorer{}, nil, 0, fmt.Errorf(
				"core: object %d is already in the top-%d result (rank %d); not a why-not question", id, q.K, rank)
		}
		if rank > worst {
			worst = rank
		}
		objs = append(objs, o)
	}
	return s, objs, worst, nil
}

// MissingDocUnion returns M.doc = ⋃ o.doc over the missing objects, the
// keyword universe of the Δdoc normalization in Eqn 4. For a sharded
// engine this is exactly the union of the per-shard candidate keyword
// sets: each missing object's document is gathered from its home shard
// before the global re-rank.
func MissingDocUnion(objs []object.Object) vocab.KeywordSet {
	var u vocab.KeywordSet
	for _, o := range objs {
		u = u.Union(o.Doc)
	}
	return u
}

// validateLambda rejects λ outside [0, 1].
func validateLambda(lambda float64) error {
	if lambda < 0 || lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0, 1]", lambda)
	}
	return nil
}
