// Package core implements YASK's query processor (Fig. 1 of the paper):
// the spatial keyword top-k query engine and the why-not question
// answering engine with its three modules — the explanation generator,
// the preference-adjusted why-not module (Definition 2, penalty Eqn 3),
// and the keyword-adapted why-not module (Definition 3, penalty Eqn 4).
//
// The Engine owns a SetR-tree (top-k, explanations, preference
// adjustment) and a KcR-tree (keyword adaption) over one immutable
// collection. All methods are safe for concurrent use.
package core

import (
	"errors"
	"fmt"

	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/vocab"
)

// DefaultLambda is the default preference λ between modifying k and
// modifying w⃗/doc in the penalty functions (Eqns 3 and 4).
const DefaultLambda = 0.5

// Engine is the YASK query processor.
type Engine struct {
	coll *object.Collection
	set  *settree.Index
	kc   *kcrtree.Index
}

// Options configures engine construction.
type Options struct {
	// MaxEntries is the R-tree node fanout for both indexes.
	// Zero means rtree.DefaultMaxEntries.
	MaxEntries int
}

// NewEngine builds the engine (both indexes) over the collection.
func NewEngine(c *object.Collection, opts Options) *Engine {
	maxE := opts.MaxEntries
	if maxE == 0 {
		maxE = rtree.DefaultMaxEntries
	}
	return &Engine{
		coll: c,
		set:  settree.Build(c, maxE),
		kc:   kcrtree.Build(c, maxE),
	}
}

// Collection returns the indexed collection.
func (e *Engine) Collection() *object.Collection { return e.coll }

// SetIndex returns the SetR-tree the top-k engine runs on.
func (e *Engine) SetIndex() *settree.Index { return e.set }

// KcIndex returns the KcR-tree the keyword-adaption module runs on.
func (e *Engine) KcIndex() *kcrtree.Index { return e.kc }

// TopK answers a spatial keyword top-k query (Definition 1).
func (e *Engine) TopK(q score.Query) ([]score.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return e.set.TopK(q), nil
}

// validateWhyNot checks the common preconditions of the why-not
// operations: a valid initial query and a non-empty missing set of
// objects that are genuinely absent from the initial result (rank > k).
// It returns the scorer, the missing objects, and R(M, q) — the lowest
// (worst) rank of any missing object under the initial query, the
// normalization constant of both penalty functions.
func (e *Engine) validateWhyNot(q score.Query, missing []object.ID) (score.Scorer, []object.Object, int, error) {
	if err := q.Validate(); err != nil {
		return score.Scorer{}, nil, 0, err
	}
	if len(missing) == 0 {
		return score.Scorer{}, nil, 0, errors.New("core: why-not question needs at least one missing object")
	}
	s := score.NewScorer(q, e.coll)
	seen := make(map[object.ID]bool, len(missing))
	objs := make([]object.Object, 0, len(missing))
	worst := 0
	for _, id := range missing {
		if int(id) >= e.coll.Len() {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: unknown object ID %d", id)
		}
		if seen[id] {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: duplicate missing object %d", id)
		}
		seen[id] = true
		o := e.coll.Get(id)
		rank := e.set.RankOf(s, id)
		if rank <= q.K {
			return score.Scorer{}, nil, 0, fmt.Errorf(
				"core: object %d is already in the top-%d result (rank %d); not a why-not question", id, q.K, rank)
		}
		if rank > worst {
			worst = rank
		}
		objs = append(objs, o)
	}
	return s, objs, worst, nil
}

// MissingDocUnion returns M.doc = ⋃ o.doc over the missing objects, the
// keyword universe of the Δdoc normalization in Eqn 4.
func MissingDocUnion(objs []object.Object) vocab.KeywordSet {
	var u vocab.KeywordSet
	for _, o := range objs {
		u = u.Union(o.Doc)
	}
	return u
}

// validateLambda rejects λ outside [0, 1].
func validateLambda(lambda float64) error {
	if lambda < 0 || lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0, 1]", lambda)
	}
	return nil
}
