// Package core implements YASK's query processor (Fig. 1 of the paper):
// the spatial keyword top-k query engine and the why-not question
// answering engine with its three modules — the explanation generator,
// the preference-adjusted why-not module (Definition 2, penalty Eqn 3),
// and the keyword-adapted why-not module (Definition 3, penalty Eqn 4).
//
// The Engine owns a SetR-tree (top-k, explanations, preference
// adjustment) and a KcR-tree (keyword adaption) over one collection.
// Queries run against immutable frozen snapshots of the indexes, so all
// methods — including the live-update path Insert/Remove/Refresh — are
// safe for concurrent use: a query always sees a complete, consistent
// arena, never a half-applied mutation.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
	"github.com/yask-engine/yask/internal/vocab"
)

// DefaultLambda is the default preference λ between modifying k and
// modifying w⃗/doc in the penalty functions (Eqns 3 and 4).
const DefaultLambda = 0.5

// Engine is the YASK query processor.
type Engine struct {
	coll *object.Collection
	set  *settree.Index
	kc   *kcrtree.Index

	// mu serializes the mutation path (Insert/Remove/Refresh); queries
	// never take it — they read atomically published snapshots.
	mu sync.Mutex
	// pending counts mutations applied to the trees since the last
	// snapshot refresh; refreshEvery bounds it.
	pending      int
	refreshEvery int
}

// Options configures engine construction.
type Options struct {
	// MaxEntries is the R-tree node fanout for both indexes.
	// Zero means rtree.DefaultMaxEntries.
	MaxEntries int
	// RefreshEvery batches snapshot refreshes on the live-update path:
	// the engine re-freezes the index arenas after every RefreshEvery
	// mutations instead of after each one, amortizing the O(n) freeze
	// over a mutation storm. Until the refresh, queries serve the last
	// published snapshot (complete and consistent, minus the buffered
	// mutations). Zero or one refreshes on every mutation; Refresh
	// forces one at any time.
	//
	// One caveat while mutations are buffered: the SDist normalization
	// constant (the data-space diagonal) is engine-global and grows the
	// moment an out-of-space insert lands, so queries in the window
	// between the insert and its refresh score the old arena under the
	// new constant. Each query is still internally consistent — bounds
	// and exact scores share one Scorer — but absolute scores can
	// differ from both the pre-insert and post-refresh answers.
	RefreshEvery int
}

// NewEngine builds the engine (both indexes) over the collection.
func NewEngine(c *object.Collection, opts Options) *Engine {
	maxE := opts.MaxEntries
	if maxE == 0 {
		maxE = rtree.DefaultMaxEntries
	}
	refreshEvery := opts.RefreshEvery
	if refreshEvery < 1 {
		refreshEvery = 1
	}
	return &Engine{
		coll:         c,
		set:          settree.Build(c, maxE),
		kc:           kcrtree.Build(c, maxE),
		refreshEvery: refreshEvery,
	}
}

// Insert adds a new object to the collection and both indexes and
// returns its assigned ID. The o.ID field is ignored; IDs stay dense.
// The new object becomes visible to queries at the next snapshot refresh
// (immediately unless Options.RefreshEvery batches mutations).
func (e *Engine) Insert(o object.Object) (object.ID, error) {
	if o.Doc.Empty() {
		return 0, errors.New("core: object needs at least one keyword")
	}
	if !o.Doc.Canonical() {
		return 0, errors.New("core: object keyword set not canonical")
	}
	if math.IsNaN(o.Loc.X) || math.IsInf(o.Loc.X, 0) ||
		math.IsNaN(o.Loc.Y) || math.IsInf(o.Loc.Y, 0) {
		return 0, fmt.Errorf("core: object location %v is not finite", o.Loc)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.coll.Append(o)
	o = e.coll.Get(id) // pick up the assigned ID
	e.set.Insert(o)
	e.kc.Insert(o)
	e.bumpPendingLocked()
	return id, nil
}

// Remove tombstones the object and deletes it from both indexes. The ID
// remains addressable (why-not questions over old sessions keep
// resolving) but the object stops appearing in results at the next
// snapshot refresh.
func (e *Engine) Remove(id object.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(id) >= e.coll.Len() {
		return fmt.Errorf("core: unknown object ID %d", id)
	}
	if !e.coll.Tombstone(id) {
		return fmt.Errorf("core: object %d is already removed", id)
	}
	o := e.coll.Get(id)
	e.set.Remove(o)
	e.kc.Remove(o)
	e.bumpPendingLocked()
	return nil
}

// Refresh re-freezes both index arenas and atomically publishes them,
// making every buffered mutation visible to queries. The copy-on-write
// freeze runs off the query path: concurrent queries keep traversing the
// old snapshots until the swap.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

func (e *Engine) bumpPendingLocked() {
	e.pending++
	if e.pending >= e.refreshEvery {
		e.refreshLocked()
	}
}

func (e *Engine) refreshLocked() {
	e.set.Refresh()
	e.kc.Refresh()
	e.pending = 0
}

// PendingMutations returns the number of mutations buffered since the
// last snapshot refresh (always 0 unless Options.RefreshEvery > 1).
func (e *Engine) PendingMutations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending
}

// Collection returns the indexed collection.
func (e *Engine) Collection() *object.Collection { return e.coll }

// SetIndex returns the SetR-tree the top-k engine runs on.
func (e *Engine) SetIndex() *settree.Index { return e.set }

// KcIndex returns the KcR-tree the keyword-adaption module runs on.
func (e *Engine) KcIndex() *kcrtree.Index { return e.kc }

// TopK answers a spatial keyword top-k query (Definition 1).
func (e *Engine) TopK(q score.Query) ([]score.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return e.set.TopK(q)
}

// validateWhyNot checks the common preconditions of the why-not
// operations: a valid initial query and a non-empty missing set of
// objects that are genuinely absent from the initial result (rank > k).
// It returns the scorer, the missing objects, and R(M, q) — the lowest
// (worst) rank of any missing object under the initial query, the
// normalization constant of both penalty functions.
func (e *Engine) validateWhyNot(q score.Query, missing []object.ID) (score.Scorer, []object.Object, int, error) {
	if err := q.Validate(); err != nil {
		return score.Scorer{}, nil, 0, err
	}
	if len(missing) == 0 {
		return score.Scorer{}, nil, 0, errors.New("core: why-not question needs at least one missing object")
	}
	s := score.NewScorer(q, e.coll)
	seen := make(map[object.ID]bool, len(missing))
	objs := make([]object.Object, 0, len(missing))
	worst := 0
	for _, id := range missing {
		if int(id) >= e.coll.Len() {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: unknown object ID %d", id)
		}
		if !e.coll.Alive(id) {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: object %d has been removed", id)
		}
		if seen[id] {
			return score.Scorer{}, nil, 0, fmt.Errorf("core: duplicate missing object %d", id)
		}
		seen[id] = true
		o := e.coll.Get(id)
		rank, err := e.set.RankOf(s, id)
		if err != nil {
			return score.Scorer{}, nil, 0, err
		}
		if rank <= q.K {
			return score.Scorer{}, nil, 0, fmt.Errorf(
				"core: object %d is already in the top-%d result (rank %d); not a why-not question", id, q.K, rank)
		}
		if rank > worst {
			worst = rank
		}
		objs = append(objs, o)
	}
	return s, objs, worst, nil
}

// MissingDocUnion returns M.doc = ⋃ o.doc over the missing objects, the
// keyword universe of the Δdoc normalization in Eqn 4.
func MissingDocUnion(objs []object.Object) vocab.KeywordSet {
	var u vocab.KeywordSet
	for _, o := range objs {
		u = u.Union(o.Doc)
	}
	return u
}

// validateLambda rejects λ outside [0, 1].
func validateLambda(lambda float64) error {
	if lambda < 0 || lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0, 1]", lambda)
	}
	return nil
}
