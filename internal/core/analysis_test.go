package core

import (
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

func TestWeightProfileCoversInterval(t *testing.T) {
	e, ds := testEngine(t, 300, 30)
	q, miss := prefWorkload(t, e, ds, 70, 5, 2, 1)
	steps, err := e.WeightProfile(q, miss[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("empty profile")
	}
	if steps[0].From != 0 || steps[len(steps)-1].To != 1 {
		t.Fatalf("profile does not cover (0,1): %+v", steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].From != steps[i-1].To {
			t.Fatalf("gap between steps %d and %d", i-1, i)
		}
		if steps[i].Rank == steps[i-1].Rank {
			t.Fatalf("adjacent steps with identical rank should be merged by events: %+v", steps)
		}
	}
	for _, st := range steps {
		if st.Rank < 1 || st.Rank > ds.Objects.Len() {
			t.Fatalf("rank %d out of range", st.Rank)
		}
	}
}

// TestWeightProfileMatchesScanRank samples wt inside each step and
// cross-checks against the brute-force rank at that weight.
func TestWeightProfileMatchesScanRank(t *testing.T) {
	e, ds := testEngine(t, 250, 31)
	rng := rand.New(rand.NewSource(32))
	for seed := int64(0); seed < 5; seed++ {
		q, miss := prefWorkload(t, e, ds, 80+seed, 4, 2, 1)
		steps, err := e.WeightProfile(q, miss[0])
		if err != nil {
			t.Fatal(err)
		}
		s := score.NewScorer(q, ds.Objects)
		for _, st := range steps {
			if st.To-st.From < 1e-9 {
				continue // interval too thin to sample robustly
			}
			wt := st.From + (st.To-st.From)*(0.25+0.5*rng.Float64())
			s2 := score.Scorer{Query: q.WithWeights(score.WeightsFromWt(wt)), MaxDist: s.MaxDist}
			want := settree.ScanRank(ds.Objects, s2, miss[0])
			if want != st.Rank {
				t.Fatalf("step [%v,%v) rank %d, scan at wt=%v says %d",
					st.From, st.To, st.Rank, wt, want)
			}
		}
	}
}

// TestWeightProfileConsistentWithAdjustPreference: the rank the
// preference optimum reports must appear in the profile at the refined
// weight's interval.
func TestWeightProfileConsistentWithAdjustPreference(t *testing.T) {
	e, ds := testEngine(t, 300, 33)
	q, miss := prefWorkload(t, e, ds, 90, 5, 2, 1)
	res, err := e.AdjustPreference(q, miss, PreferenceOptions{Lambda: 0.5, Algorithm: PrefSweep})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := e.WeightProfile(q, miss[0])
	if err != nil {
		t.Fatal(err)
	}
	wt := res.Refined.W.Wt
	for _, st := range steps {
		if wt >= st.From && wt < st.To {
			if st.Rank != res.RankAfter {
				t.Fatalf("profile says rank %d at wt=%v, optimum says %d", st.Rank, wt, res.RankAfter)
			}
			return
		}
	}
	t.Fatalf("refined wt %v not covered by profile", wt)
}

func TestKeywordImpacts(t *testing.T) {
	e, ds := testEngine(t, 300, 34)
	q, miss := kwWorkload(t, e, ds, 95, 5, 2, 1)
	impacts, err := e.KeywordImpacts(q, miss)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) == 0 {
		t.Fatal("no impacts")
	}
	// Sorted by decreasing improvement.
	for i := 1; i < len(impacts); i++ {
		if impacts[i].Improvement > impacts[i-1].Improvement {
			t.Fatal("impacts not sorted")
		}
	}
	// Each impact must agree with a direct rank computation.
	s := score.NewScorer(q, ds.Objects)
	for _, im := range impacts[:minInt(5, len(impacts))] {
		var doc = q.Doc
		if im.Add {
			doc = doc.Add(im.Keyword)
		} else {
			doc = doc.Remove(im.Keyword)
		}
		s2 := score.Scorer{Query: q.WithDoc(doc), MaxDist: s.MaxDist}
		want := settree.ScanRank(ds.Objects, s2, miss[0])
		if want != im.RankAfter {
			t.Fatalf("impact %+v: direct rank %d", im, want)
		}
	}
	// Adding a keyword of the missing object's doc must be among the
	// evaluated edits.
	m := ds.Objects.Get(miss[0])
	foundAdd := false
	for _, im := range impacts {
		if im.Add && m.Doc.Contains(im.Keyword) {
			foundAdd = true
			break
		}
	}
	if !foundAdd && m.Doc.Diff(q.Doc).Len() > 0 {
		t.Fatal("no addition from the missing object's doc evaluated")
	}
}

func TestKeywordImpactsNeverEmptyQuery(t *testing.T) {
	e, ds := testEngine(t, 200, 35)
	q, miss := kwWorkload(t, e, ds, 96, 3, 1, 1)
	impacts, err := e.KeywordImpacts(q, miss)
	if err != nil {
		t.Fatal(err)
	}
	// |q.doc| = 1: removal would empty the query and must not appear.
	for _, im := range impacts {
		if !im.Add && q.Doc.Contains(im.Keyword) && q.Doc.Len() == 1 {
			t.Fatalf("impact removes the only query keyword: %+v", im)
		}
	}
}

func TestRefineBestNeverWorseThanSingles(t *testing.T) {
	e, ds := testEngine(t, 400, 36)
	for seed := int64(0); seed < 6; seed++ {
		q, miss := kwWorkload(t, e, ds, 100+seed, 5, 2, 1)
		best, err := e.RefineBest(q, miss, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if best.Penalty > best.PreferencePenalty+1e-12 || best.Penalty > best.KeywordPenalty+1e-12 {
			t.Fatalf("best %v worse than singles (%v, %v)",
				best.Penalty, best.PreferencePenalty, best.KeywordPenalty)
		}
		// The winning refined query must revive the missing objects.
		assertRevived(t, e, best.Refined, miss)
		if best.Model.String() == "" {
			t.Fatal("empty model name")
		}
	}
}

func TestRefinementModelString(t *testing.T) {
	for _, m := range []RefinementModel{ModelPreference, ModelKeyword, ModelCombined, RefinementModel(9)} {
		if m.String() == "" {
			t.Fatal("empty model string")
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
