package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// Continuous top-k subscriptions: a registered query is re-evaluated
// after each published epoch — but only when the epoch's mutation delta
// could possibly have changed its answer. The engine accumulates, per
// refresh window, a sound summary of what changed (merged keyword
// signature, MBR and length range of inserted documents, the removed
// IDs, whether the normalization constant moved) and each subscription
// is tested against it:
//
//   - the normalization constant changed → every score moved → re-eval;
//   - a removed object sits in the subscription's current result →
//     re-eval (removals outside the result cannot change it: scores are
//     independent and the candidate set only shrank);
//   - insertions: an upper bound on any inserted object's score —
//     ws·(1−minSDist(insert MBR)) + wt·SigSimUpperBound over the merged
//     insert signature — at or below the current k-th score proves no
//     inserted object can crack the result. Inserted objects always
//     carry larger IDs than every existing object (dense append order),
//     so a score tie never displaces an incumbent and the bound may be
//     compared non-strictly. A result still short of k entries accepts
//     any insertion, so it always re-evaluates.
//
// A skip is only taken when the window's delta provably covers every
// change since the subscription's previous evaluation (the epoch chain
// below); every skip is therefore answer-preserving, and a subscriber's
// view stays byte-identical to polling at every epoch — the equivalence
// the tests assert.

// maxTrackedRemovals caps the per-window removed-ID list; a window
// that overflows it re-evaluates every subscription (sound, never
// wrong, just unprofitable for enormous delete storms).
const maxTrackedRemovals = 64

// DefaultSubscribeBuffer is the per-subscription update-channel
// capacity used when SubscribeOptions.Buffer is zero.
const DefaultSubscribeBuffer = 8

// mutDelta summarizes the mutations of one refresh window.
type mutDelta struct {
	inserts int
	// insSig is the OR of every inserted document's signature; insMBR
	// the bounding rectangle of inserted locations; insMinLen/insMaxLen
	// the document length range — together the inputs of the admissible
	// insertion score bound.
	insSig    vocab.Signature
	insMBR    geo.Rect
	insMinLen int
	insMaxLen int
	removed   []object.ID
	// overflow is set when removed would exceed maxTrackedRemovals; the
	// window then re-evaluates unconditionally.
	overflow bool
}

func (d *mutDelta) noteInsert(o object.Object) {
	sig := o.Doc.Signature()
	if d.inserts == 0 {
		d.insMBR = geo.RectFromPoint(o.Loc)
		d.insMinLen, d.insMaxLen = len(o.Doc), len(o.Doc)
	} else {
		d.insMBR = d.insMBR.UnionPoint(o.Loc)
		if len(o.Doc) < d.insMinLen {
			d.insMinLen = len(o.Doc)
		}
		if len(o.Doc) > d.insMaxLen {
			d.insMaxLen = len(o.Doc)
		}
	}
	d.insSig.Merge(&sig)
	d.inserts++
}

func (d *mutDelta) noteRemove(id object.ID) {
	if d.overflow {
		return
	}
	if len(d.removed) >= maxTrackedRemovals {
		d.overflow = true
		d.removed = nil
		return
	}
	d.removed = append(d.removed, id)
}

// Update is one pushed subscription result: the new top-k and the epoch
// it was computed at.
type Update struct {
	Epoch   uint64
	Results []score.Result
}

// Subscription is one registered continuous top-k query. Updates are
// delivered on Updates(); the channel closes when the subscription is
// cancelled (Close) or force-dropped because the receiver fell behind
// its buffer (slow-client disconnect).
type Subscription struct {
	mgr *subManager
	id  uint64
	q   score.Query
	// qsig is the query's prepared signature, probed against each
	// window's merged insert signature.
	qsig vocab.QuerySig

	updates chan Update
	// sendMu makes (closed-check, send) and (close) mutually exclusive,
	// so a slow-client drop can never race a send onto a closed channel.
	sendMu sync.Mutex
	closed atomic.Bool

	// last is the result of the newest evaluation, lastMaxDist the
	// normalization constant it was computed under, and lastEpoch the
	// epoch it answers. Written by Subscribe before registration, then
	// owned by the manager's serialized drain loop.
	last        []score.Result
	lastMaxDist float64
	lastEpoch   uint64
}

// Updates returns the receive side of the subscription's update
// channel. The initial result is delivered as the first update.
func (s *Subscription) Updates() <-chan Update { return s.updates }

// Query returns the subscribed query.
func (s *Subscription) Query() score.Query { return s.q }

// Close cancels the subscription and closes its update channel.
// Closing twice is a no-op.
func (s *Subscription) Close() { s.mgr.drop(s) }

// trySend delivers u unless the channel is closed (not sent) or full
// (full=true, the slow-client signal).
func (s *Subscription) trySend(u Update) (sent, full bool) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed.Load() {
		return false, false
	}
	select {
	case s.updates <- u:
		return true, false
	default:
		return false, true
	}
}

// hasResult reports whether id is in the subscription's current result.
func (s *Subscription) hasResult(id object.ID) bool {
	for _, r := range s.last {
		if r.Obj.ID == id {
			return true
		}
	}
	return false
}

// SubscriptionStats are the engine's continuous-query counters.
type SubscriptionStats struct {
	// Active is the number of live subscriptions.
	Active int `json:"active"`
	// Reevaluated counts full top-k re-evaluations across all epochs and
	// subscriptions; SigSkipped counts the re-evaluations the mutation
	// delta prefilter proved unnecessary.
	Reevaluated int64 `json:"reevaluated"`
	SigSkipped  int64 `json:"sigSkipped"`
	// Pushed counts updates actually delivered (changed results).
	Pushed int64 `json:"pushed"`
	// Dropped counts slow-client force-disconnects.
	Dropped int64 `json:"dropped"`
}

// evalTask is one published epoch awaiting subscription evaluation: the
// snapshot and the mutation delta of the window it closed.
type evalTask struct {
	sn index.Snapshot
	d  mutDelta
}

// subManager owns the subscription set, the per-window mutation delta,
// and the post-publish evaluation queue. Evaluation runs on a single
// drain goroutine in strict publish order, so the per-window deltas
// chain exactly: each task's delta is precisely the change set between
// the previous task's snapshot and its own.
type subManager struct {
	e *Engine

	// mu guards subs, nextID, delta, queue, and draining.
	mu       sync.Mutex
	subs     map[uint64]*Subscription
	nextID   uint64
	delta    mutDelta
	queue    []evalTask
	draining bool
	// drained wakes WaitIdle when the queue empties; tests use it to
	// observe a quiescent manager.
	drained *sync.Cond

	// prevEpoch is the snapshot epoch of the last drained task — the
	// left edge of the next window. Only subscriptions last evaluated
	// exactly at prevEpoch may use the window's delta to skip; any other
	// lineage re-evaluates unconditionally. Owned by the drain loop.
	prevEpoch uint64

	reevaluated atomic.Int64
	sigSkipped  atomic.Int64
	pushed      atomic.Int64
	dropped     atomic.Int64
}

func newSubManager(e *Engine) *subManager {
	m := &subManager{e: e, subs: make(map[uint64]*Subscription)}
	m.drained = sync.NewCond(&m.mu)
	return m
}

func (m *subManager) noteInsert(o object.Object) {
	m.mu.Lock()
	m.delta.noteInsert(o)
	m.mu.Unlock()
}

func (m *subManager) noteRemove(id object.ID) {
	m.mu.Lock()
	m.delta.noteRemove(id)
	m.mu.Unlock()
}

// SubscribeOptions configures one subscription.
type SubscribeOptions struct {
	// Buffer is the update-channel capacity; a subscriber that falls
	// this many undelivered updates behind is force-disconnected (its
	// channel closes) rather than allowed to stall the engine. Zero
	// means DefaultSubscribeBuffer.
	Buffer int
}

// Subscribe registers a continuous top-k query. The initial result is
// computed synchronously against the current snapshot and delivered as
// the first update; afterwards the engine re-evaluates the query after
// each published epoch whose mutation delta could have changed the
// answer, pushing an update whenever the result actually changed.
func (e *Engine) Subscribe(q score.Query, opts SubscribeOptions) (*Subscription, error) {
	if e.subs == nil {
		return nil, errors.New("core: engine built without subscription support")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = DefaultSubscribeBuffer
	}
	sn, err := e.acquireSet()
	if err != nil {
		return nil, err
	}
	m := e.subs
	sub := &Subscription{
		mgr:         m,
		q:           q,
		qsig:        vocab.NewQuerySig(q.Doc),
		updates:     make(chan Update, buffer),
		lastMaxDist: sn.MaxDist(),
		lastEpoch:   sn.Epoch(),
	}
	sub.last, _ = e.topKOn(context.Background(), sn, q, nil)
	// Deliver the initial result before registering: the buffered
	// channel is empty so the send always fits, and registration
	// ordering guarantees no evaluation update can precede it.
	sub.updates <- Update{Epoch: sn.Epoch(), Results: append([]score.Result(nil), sub.last...)}

	m.mu.Lock()
	m.nextID++
	sub.id = m.nextID
	m.subs[sub.id] = sub
	m.mu.Unlock()
	return sub, nil
}

// drop removes the subscription and closes its channel (idempotent).
func (m *subManager) drop(s *Subscription) {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	m.mu.Lock()
	delete(m.subs, s.id)
	m.mu.Unlock()
	// Close under sendMu so an in-flight trySend either completes first
	// or observes the closed flag.
	s.sendMu.Lock()
	close(s.updates)
	s.sendMu.Unlock()
}

// active returns the current subscription list.
func (m *subManager) active() []*Subscription {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Subscription, 0, len(m.subs))
	for _, s := range m.subs {
		out = append(out, s)
	}
	return out
}

// kick is called after each published epoch, under the engine's
// mutation lock: it captures and resets the window's mutation delta and
// enqueues the (snapshot, delta) pair for the drain loop. With no
// subscribers the delta is dropped — the epoch chain breaks, and the
// next evaluated window simply re-evaluates instead of skipping.
func (m *subManager) kick(sn index.Snapshot) {
	m.mu.Lock()
	d := m.delta
	m.delta = mutDelta{}
	if len(m.subs) == 0 {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, evalTask{sn: sn, d: d})
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.mu.Unlock()
	go m.drain()
}

// drain processes queued epochs in publish order until the queue is
// empty. At most one drain goroutine exists at a time.
func (m *subManager) drain() {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.draining = false
			m.drained.Broadcast()
			m.mu.Unlock()
			return
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.evaluate(t.sn, &t.d)
	}
}

// WaitIdle blocks until the evaluation queue is empty and no drain is
// running — the point where every published epoch has been applied to
// every subscription. Tests synchronize on it.
func (m *subManager) WaitIdle() {
	m.mu.Lock()
	for m.draining || len(m.queue) > 0 {
		m.drained.Wait()
	}
	m.mu.Unlock()
}

// needsEval decides whether the window's delta could have changed the
// subscription's answer; every false is a proof the previous result is
// still byte-identical to a fresh evaluation against sn.
func (m *subManager) needsEval(s *Subscription, sn index.Snapshot, d *mutDelta) bool {
	// The delta only describes the window (prevEpoch, sn.Epoch()]; a
	// subscription last evaluated anywhere else (registered mid-window,
	// or registered while no drain chain was running) re-evaluates.
	if s.lastEpoch != m.prevEpoch {
		return true
	}
	if d.overflow {
		return true
	}
	// The normalization constant moving rescales every score.
	if sn.MaxDist() != s.lastMaxDist {
		return true
	}
	for _, id := range d.removed {
		if s.hasResult(id) {
			return true
		}
	}
	if d.inserts == 0 {
		return false
	}
	// A short result accepts any insertion.
	if len(s.last) < s.q.K {
		return true
	}
	// Admissible score upper bound over every inserted object.
	sc := setScorer(sn, s.q)
	mBound := s.qsig.IntersectBound(&d.insSig)
	tsimUB := score.SigSimUpperBound(s.q.Sim, mBound, d.insMinLen, d.insMaxLen, 0, len(s.q.Doc))
	bound := s.q.W.Ws*(1-sc.SDistRectMin(d.insMBR)) + s.q.W.Wt*tsimUB
	kth := s.last[len(s.last)-1].Score
	// Ties lose: inserted IDs exceed every incumbent's, so only a
	// strictly better score can displace the k-th result.
	return bound > kth
}

// sameResults reports whether two result lists are identical in
// (ID, score) order.
func sameResults(a, b []score.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Obj.ID != b[i].Obj.ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// evaluate runs one window: each subscription is either proven
// unchanged (skip) or re-evaluated, and changed results are pushed. A
// subscriber whose buffer is full is force-dropped rather than waited
// on.
func (m *subManager) evaluate(sn index.Snapshot, d *mutDelta) {
	epoch := sn.Epoch()
	for _, s := range m.active() {
		if s.closed.Load() || s.lastEpoch >= epoch {
			continue
		}
		if !m.needsEval(s, sn, d) {
			m.sigSkipped.Add(1)
			s.lastEpoch = epoch
			continue
		}
		m.reevaluated.Add(1)
		res, _ := m.e.topKOn(context.Background(), sn, s.q, nil)
		changed := !sameResults(s.last, res)
		s.last = res
		s.lastMaxDist = sn.MaxDist()
		s.lastEpoch = epoch
		if !changed {
			continue
		}
		sent, full := s.trySend(Update{Epoch: epoch, Results: append([]score.Result(nil), res...)})
		switch {
		case sent:
			m.pushed.Add(1)
		case full:
			// Slow client: its buffer is full. Dropping the subscription
			// (and closing the channel) is the disconnect signal.
			m.dropped.Add(1)
			m.drop(s)
		}
	}
	m.prevEpoch = epoch
}

// stats snapshots the counters.
func (m *subManager) stats() SubscriptionStats {
	m.mu.Lock()
	active := len(m.subs)
	m.mu.Unlock()
	return SubscriptionStats{
		Active:      active,
		Reevaluated: m.reevaluated.Load(),
		SigSkipped:  m.sigSkipped.Load(),
		Pushed:      m.pushed.Load(),
		Dropped:     m.dropped.Load(),
	}
}
