package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/score"
)

// TestCanceledQueryHygiene is the cancellation property test: a
// canceled or deadline-expired call on any query-surface entry point
// returns ctx.Err() and leaves the engine pristine — the pooled
// scratch state is reusable and the result cache never holds a partial
// answer. Pristineness is proven by running the full equivalence
// check against an untouched cache-disabled twin after the canceled
// probes, on both the single-index and sharded backends.
func TestCanceledQueryHygiene(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(150, 301))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 3, 302)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()

	for _, shards := range []int{1, 3} {
		e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
		plain := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards, DisableCache: true})

		for qi, wq := range qs {
			q := wq.query(ds.Vocab)
			if _, err := e.TopKCtx(canceled, q); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled TopK err = %v", shards, qi, err)
			}
			if res, err := e.TopKCtx(expired, q); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("shards=%d q%d: expired TopK = (%v, %v)", shards, qi, res, err)
			}
			// The append variant must hand back the caller's buffer
			// truncated to its original contents.
			buf := make([]score.Result, 2, 16)
			if got, err := e.TopKAppendCtx(canceled, q, buf); err == nil || len(got) != 2 {
				t.Fatalf("shards=%d q%d: canceled append = (%d results, %v)", shards, qi, len(got), err)
			}
			if _, err := e.TopKBatchCtx(canceled, []score.Query{q, q}, BatchOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled batch err = %v", shards, qi, err)
			}

			missing := missingFromResult(plain, q, 2)
			if len(missing) == 0 {
				continue
			}
			if _, err := e.RankCtx(canceled, q, missing[0]); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled Rank err = %v", shards, qi, err)
			}
			if _, err := e.ExplainCtx(canceled, q, missing); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled Explain err = %v", shards, qi, err)
			}
			if _, err := e.AdjustPreferenceCtx(canceled, q, missing, PreferenceOptions{Lambda: 0.5}); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled AdjustPreference err = %v", shards, qi, err)
			}
			if _, err := e.AdaptKeywordsCtx(canceled, q, missing[:1], KeywordOptions{Lambda: 0.5}); !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d q%d: canceled AdaptKeywords err = %v", shards, qi, err)
			}
		}

		// After all those aborted traversals, the engine answers the
		// whole query surface byte-identically to the untouched twin —
		// twice, so the second pass also proves no canceled probe left a
		// partial entry behind for the cache to serve.
		assertAnswersMatch(t, fmt.Sprintf("shards=%d/after-cancel/fill", shards), plain, ds.Vocab, e, ds.Vocab, qs)
		assertAnswersMatch(t, fmt.Sprintf("shards=%d/after-cancel/hit", shards), plain, ds.Vocab, e, ds.Vocab, qs)

		if st := e.Stats(); st.Cache == nil || st.Cache.Hits == 0 {
			t.Fatalf("shards=%d: equivalence pass never hit the cache", shards)
		}
	}
}

// TestCancelStormScratchHygiene runs concurrent queries whose contexts
// expire at arbitrary points mid-traversal, interleaved with
// uncancelled queries that must keep returning the exact precomputed
// answers. Under -race this proves a traversal cut short at any node
// still returns its pooled scratch (priority-queue pairs, DFS stacks,
// signature counters) in a reusable state — the uncancelled
// goroutines are drawing from the same pools the whole time.
func TestCancelStormScratchHygiene(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(200, 311))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 4, 312)
	// Cache disabled: every query must traverse, so every iteration
	// exercises the scratch pools rather than the cache fast path.
	e := NewEngine(cloneCollection(ds.Objects), Options{Shards: 3, DisableCache: true})

	queries := make([]score.Query, len(qs))
	want := make([][]score.Result, len(qs))
	for i, wq := range qs {
		queries[i] = wq.query(ds.Vocab)
		res, err := e.TopK(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const (
		goroutines = 8
		iters      = 200
	)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(313 + g)))
			for it := 0; it < iters; it++ {
				qi := rng.Intn(len(queries))
				if it%2 == 0 {
					// Deadline somewhere between "already expired" and
					// "comfortably past the query": both completed and
					// canceled outcomes occur across the storm, and a
					// completed answer must still be exact.
					d := time.Duration(rng.Intn(200)) * time.Microsecond
					ctx, cancel := context.WithTimeout(context.Background(), d)
					res, err := e.TopKCtx(ctx, queries[qi])
					cancel()
					switch {
					case err == nil:
						assertSameResults(t, fmt.Sprintf("g%d it%d q%d (completed-in-time)", g, it, qi), res, want[qi])
					case errors.Is(err, context.DeadlineExceeded):
						if len(res) != 0 {
							t.Errorf("g%d it%d: canceled query returned %d results", g, it, len(res))
							return
						}
					default:
						t.Errorf("g%d it%d: unexpected error %v", g, it, err)
						return
					}
					continue
				}
				res, err := e.TopK(queries[qi])
				if err != nil {
					t.Errorf("g%d it%d: %v", g, it, err)
					return
				}
				assertSameResults(t, fmt.Sprintf("g%d it%d q%d (no-cancel)", g, it, qi), res, want[qi])
			}
		}()
	}
	wg.Wait()
}
