package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

// cloneCollection returns an independent collection with the same
// objects, so two engines can apply identical mutation sequences
// without sharing state.
func cloneCollection(c *object.Collection) *object.Collection {
	objs := make([]object.Object, c.Len())
	copy(objs, c.All())
	coll := object.NewCollection(objs)
	for id := 0; id < c.Len(); id++ {
		if !c.Alive(object.ID(id)) {
			coll.Tombstone(object.ID(id))
		}
	}
	return coll
}

// assertSameResults fails unless the two result lists are byte-identical
// in IDs and scores.
func assertSameResults(t *testing.T, ctx string, got, want []score.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Obj.ID != want[i].Obj.ID || got[i].Score != want[i].Score {
			t.Fatalf("%s rank %d: got (%d, %v), want (%d, %v)",
				ctx, i, got[i].Obj.ID, got[i].Score, want[i].Obj.ID, want[i].Score)
		}
	}
}

// assertEquivalent drives the full query surface of both engines and
// fails on any divergence: top-k (several k), batch top-k, ranks,
// explanations, and both why-not refinement modules.
func assertEquivalent(t *testing.T, ctx string, single, sharded *Engine, qs []score.Query) {
	t.Helper()
	for qi, q := range qs {
		for _, k := range []int{1, 3, 10, 40} {
			qk := q
			qk.K = k
			want, err := single.TopK(qk)
			if err != nil {
				t.Fatalf("%s q%d k=%d: single: %v", ctx, qi, k, err)
			}
			got, err := sharded.TopK(qk)
			if err != nil {
				t.Fatalf("%s q%d k=%d: sharded: %v", ctx, qi, k, err)
			}
			assertSameResults(t, ctx, got, want)
		}

		missing := missingFromResult(single, q, 2)
		if len(missing) < 2 {
			continue
		}
		for _, id := range missing {
			w, err1 := single.Rank(q, id)
			g, err2 := sharded.Rank(q, id)
			if err1 != nil || err2 != nil || g != w {
				t.Fatalf("%s q%d: rank(%d) = %d (%v), want %d (%v)", ctx, qi, id, g, err2, w, err1)
			}
		}

		wantEx, err1 := single.Explain(q, missing)
		gotEx, err2 := sharded.Explain(q, missing)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s q%d: explain errs %v / %v", ctx, qi, err1, err2)
		}
		for i := range wantEx {
			if gotEx[i].Rank != wantEx[i].Rank || gotEx[i].Score != wantEx[i].Score ||
				gotEx[i].Reason != wantEx[i].Reason {
				t.Fatalf("%s q%d: explanation %d diverges: got (rank %d, %v, %v), want (rank %d, %v, %v)",
					ctx, qi, i, gotEx[i].Rank, gotEx[i].Score, gotEx[i].Reason,
					wantEx[i].Rank, wantEx[i].Score, wantEx[i].Reason)
			}
		}

		for _, alg := range []PreferenceAlgorithm{PrefSweepIndexed, PrefSweep} {
			wantP, err1 := single.AdjustPreference(q, missing, PreferenceOptions{Lambda: 0.5, Algorithm: alg})
			gotP, err2 := sharded.AdjustPreference(q, missing, PreferenceOptions{Lambda: 0.5, Algorithm: alg})
			if err1 != nil || err2 != nil {
				t.Fatalf("%s q%d %v: errs %v / %v", ctx, qi, alg, err1, err2)
			}
			if gotP.Refined.W != wantP.Refined.W || gotP.Refined.K != wantP.Refined.K ||
				gotP.Penalty != wantP.Penalty || gotP.DeltaK != wantP.DeltaK ||
				gotP.RankBefore != wantP.RankBefore || gotP.RankAfter != wantP.RankAfter {
				t.Fatalf("%s q%d %v: preference diverges:\n got %+v\nwant %+v", ctx, qi, alg, gotP, wantP)
			}
		}

		wantK, err1 := single.AdaptKeywords(q, missing[:1], KeywordOptions{Lambda: 0.5})
		gotK, err2 := sharded.AdaptKeywords(q, missing[:1], KeywordOptions{Lambda: 0.5})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s q%d: keyword errs %v / %v", ctx, qi, err1, err2)
		}
		// Candidate counters may differ (per-shard rank bounds prune
		// differently) but the optimum must not.
		if !gotK.Refined.Doc.Equal(wantK.Refined.Doc) || gotK.Refined.K != wantK.Refined.K ||
			gotK.Penalty != wantK.Penalty || gotK.DeltaK != wantK.DeltaK ||
			gotK.DeltaDoc != wantK.DeltaDoc || gotK.RankBefore != wantK.RankBefore ||
			gotK.RankAfter != wantK.RankAfter {
			t.Fatalf("%s q%d: keyword diverges:\n got %+v\nwant %+v", ctx, qi, gotK, wantK)
		}
	}

	// Batch executor: the (job × shard) grid must gather exactly.
	wantB, err1 := single.TopKBatch(qs, BatchOptions{Workers: 4})
	gotB, err2 := sharded.TopKBatch(qs, BatchOptions{Workers: 4})
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: batch errs %v / %v", ctx, err1, err2)
	}
	for i := range wantB {
		assertSameResults(t, ctx+" batch", gotB[i], wantB[i])
	}
}

// TestShardedEngineEquivalence is the property-style acceptance test of
// the sharded executor: across random datasets, shard counts, k values,
// and mutation interleavings, every answer of the sharded engine —
// top-k IDs and scores, ranks, explanations, preference and keyword
// refinements — is identical to the unsharded engine's.
func TestShardedEngineEquivalence(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		ds, err := dataset.Generate(dataset.DefaultConfig(500, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 7} {
			single := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16})
			sharded := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
			if got := sharded.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}
			qs := dataset.Workload(ds, dataset.WorkloadConfig{
				Queries: 4, Seed: seed + 100, K: 5, Keywords: 2,
				W: score.DefaultWeights, FromObjectDocs: true,
			})
			assertEquivalent(t, ctxName("fresh", seed, shards), single, sharded, qs)

			// Identical mutation interleaving on both engines: inserts
			// (some outside the original data space), removes, and the
			// default refresh-per-mutation lifecycle.
			rng := rand.New(rand.NewSource(seed + 7))
			space := ds.Objects.Space()
			var added []object.ID
			for i := 0; i < 40; i++ {
				if i%4 == 3 && len(added) > 0 {
					id := added[rng.Intn(len(added))]
					e1, e2 := single.Remove(id), sharded.Remove(id)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("remove(%d) diverges: %v vs %v", id, e1, e2)
					}
					continue
				}
				src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len())))
				o := object.Object{Loc: src.Loc, Doc: src.Doc, Name: "mut"}
				if i%10 == 5 {
					o.Loc.X = space.Max.X + rng.Float64() // out-of-space growth
				}
				id1, err1 := single.Insert(o)
				id2, err2 := sharded.Insert(o)
				if err1 != nil || err2 != nil || id1 != id2 {
					t.Fatalf("insert diverges: (%d, %v) vs (%d, %v)", id1, err1, id2, err2)
				}
				added = append(added, id1)
			}
			assertEquivalent(t, ctxName("mutated", seed, shards), single, sharded, qs)
		}
	}
}

func ctxName(phase string, seed int64, shards int) string {
	return fmt.Sprintf("%s/seed=%d/shards=%d", phase, seed, shards)
}

// TestShardedBufferedEquivalence: with mutation batching the two
// backends also agree while mutations are buffered — both serve the
// last published snapshot under the snapshot-scoped normalization
// constant.
func TestShardedBufferedEquivalence(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(300, 31))
	if err != nil {
		t.Fatal(err)
	}
	single := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, RefreshEvery: 100})
	sharded := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, RefreshEvery: 100, Shards: 4})
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 3, Seed: 32, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	space := ds.Objects.Space()
	for i := 0; i < 10; i++ {
		src := ds.Objects.Get(object.ID(i * 7))
		o := object.Object{Loc: src.Loc, Doc: src.Doc}
		if i == 4 {
			o.Loc.X = space.Max.X * 2 // grows the live constant, not the snapshot's
		}
		if _, err := single.Insert(o); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if single.PendingMutations() != 10 || sharded.PendingMutations() != 10 {
		t.Fatalf("pending = %d / %d, want 10", single.PendingMutations(), sharded.PendingMutations())
	}
	assertEquivalent(t, "buffered", single, sharded, qs)
	single.Refresh()
	sharded.Refresh()
	assertEquivalent(t, "refreshed", single, sharded, qs)
}

// TestRefreshIntervalDebounce: with a rate limit configured, the count
// threshold alone does not trigger a re-freeze inside the window;
// buffered mutations publish on the first trigger past it or on an
// explicit Refresh.
func TestRefreshIntervalDebounce(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(200, 41))
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 42, K: 3, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, RefreshInterval: time.Hour})

	before, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// A winner at the query point would take rank 1 the moment a refresh
	// publishes it.
	winner := object.Object{Loc: q.Loc, Doc: q.Doc}
	for i := 0; i < 5; i++ {
		if _, err := e.Insert(winner); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.PendingMutations(); got != 5 {
		t.Fatalf("pending = %d, want 5 (interval must debounce the count trigger)", got)
	}
	mid, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "debounced", mid, before)

	e.Refresh() // explicit refresh is never rate-limited
	if got := e.PendingMutations(); got != 0 {
		t.Fatalf("pending after Refresh = %d", got)
	}
	after, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// The inserted winner scores the maximal 1.0 (zero distance, exact
	// keyword match); only a seed object that already scored 1.0 can
	// outrank it on the ID tie-break.
	if len(after) == 0 || (int(after[0].Obj.ID) < ds.Objects.Len() && after[0].Score != 1) {
		t.Fatalf("inserted winner not published by Refresh: %+v", after[0])
	}

	// The trailing edge of the window publishes deferred mutations on
	// its own: staleness is bounded by the interval even when the storm
	// stops after one mutation.
	e2 := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, RefreshInterval: 30 * time.Millisecond})
	if _, err := e2.Insert(winner); err != nil {
		t.Fatal(err)
	}
	if e2.PendingMutations() != 1 {
		t.Fatalf("pending = %d, want 1 (deferred inside the window)", e2.PendingMutations())
	}
	deadline := time.Now().Add(2 * time.Second)
	for e2.PendingMutations() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("trailing-edge timer never published the deferred mutation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotScopedMaxDist: an out-of-space insert buffered behind
// RefreshEvery must not shift the scores of queries against the old
// arena — the normalization constant is captured inside the published
// snapshot, not read live from the collection.
func TestSnapshotScopedMaxDist(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(200, 51))
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 1, Seed: 52, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})[0]
	for _, shards := range []int{1, 4} {
		coll := cloneCollection(ds.Objects)
		e := NewEngine(coll, Options{MaxEntries: 16, RefreshEvery: 100, Shards: shards})
		before, err := e.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		oldMax := coll.MaxDist()

		far := object.Object{
			Loc: coll.Space().Max,
			Doc: ds.Objects.Get(0).Doc,
		}
		far.Loc.X += 100 * oldMax // grows the live constant dramatically
		if _, err := e.Insert(far); err != nil {
			t.Fatal(err)
		}
		if coll.MaxDist() <= oldMax {
			t.Fatal("out-of-space insert did not grow the live constant")
		}

		mid, err := e.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic window: scores are byte-identical to before the
		// insert, because the snapshot pins both arena and constant.
		assertSameResults(t, "pinned constant", mid, before)

		e.Refresh()
		after, err := e.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		// The refreshed snapshot scores under the grown constant: every
		// normalized distance shrank, so the top score strictly grew
		// unless the winner sat exactly on the query point.
		if len(after) == 0 {
			t.Fatal("no results after refresh")
		}
		if after[0].Score < before[0].Score {
			t.Fatalf("shards=%d: top score shrank after constant growth: %v -> %v",
				shards, before[0].Score, after[0].Score)
		}
	}
}

// TestShardedEngineStorm exercises the sharded engine under the race
// detector: concurrent top-k and why-not traffic against an
// insert/remove/refresh storm, with zero failed queries.
func TestShardedEngineStorm(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(300, 61))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: 4, RefreshEvery: 3})
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 6, Seed: 62, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(i+w)%len(qs)]
				if _, err := e.TopK(q); err != nil {
					t.Errorf("worker %d: TopK: %v", w, err)
					return
				}
				if i%10 == 0 {
					if missing := missingFromSharded(e, q, 1); len(missing) == 1 {
						// The storm may revive or remove the target
						// between picking and asking (a validation
						// error, fine); a stale snapshot is a bug.
						if _, err := e.AdaptKeywords(q, missing, KeywordOptions{Lambda: 0.5, MaxEdits: 1}); err != nil && errors.Is(err, rtree.ErrStaleSnapshot) {
							t.Errorf("worker %d: stale snapshot: %v", w, err)
							return
						}
					}
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(63))
	var added []object.ID
	for i := 0; i < 200; i++ {
		if i%4 == 3 && len(added) > 0 {
			j := rng.Intn(len(added))
			_ = e.Remove(added[j])
			added = append(added[:j], added[j+1:]...)
			continue
		}
		src := ds.Objects.Get(object.ID(rng.Intn(ds.Objects.Len())))
		id, err := e.Insert(object.Object{Loc: src.Loc, Doc: src.Doc})
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}
	e.Refresh()
	close(stop)
	wg.Wait()
}

// missingFromSharded mirrors missingFromResult for engines whose
// single-backend set index is nil.
func missingFromSharded(e *Engine, q score.Query, count int) []object.ID {
	extended := q
	extended.K = q.K + count
	res, err := e.TopK(extended)
	if err != nil || len(res) <= q.K {
		return nil
	}
	ids := make([]object.ID, 0, count)
	for _, r := range res[q.K:] {
		ids = append(ids, r.Obj.ID)
	}
	return ids
}
