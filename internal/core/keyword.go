package core

import (
	"context"
	"fmt"
	"math"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// KeywordAlgorithm selects the keyword-adaption implementation.
type KeywordAlgorithm int

const (
	// KwBoundPrune is the paper's optimized algorithm [6]: candidates
	// are enumerated in increasing Δdoc order; each candidate's penalty
	// is first bounded through shallow KcR-tree rank bounds and pruned
	// against the best penalty seen; only survivors pay for an exact
	// rank computation (itself index-pruned). Exact over the candidate
	// space.
	KwBoundPrune KeywordAlgorithm = iota
	// KwExhaustive computes the exact rank of every candidate by full
	// scan: the brute-force baseline of [6]'s evaluation.
	KwExhaustive
)

// String implements fmt.Stringer.
func (a KeywordAlgorithm) String() string {
	switch a {
	case KwBoundPrune:
		return "bound-and-prune"
	case KwExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("KeywordAlgorithm(%d)", int(a))
	}
}

// KeywordOptions configures AdaptKeywords.
type KeywordOptions struct {
	// Lambda is the penalty preference λ ∈ [0, 1] of Eqn 4 between
	// enlarging k and editing the keyword set.
	Lambda float64
	// Algorithm selects the implementation; the zero value is the
	// paper's bound-and-prune.
	Algorithm KeywordAlgorithm
	// MaxEdits caps the candidate edit distance. Zero means no cap
	// beyond the penalty floor: candidates with
	// (1−λ)·Δdoc/|q.doc ∪ M.doc| above the best seen penalty can never
	// win, which terminates enumeration early for λ < 1. At λ = 1
	// keyword edits are free and the floor never prunes, so set
	// MaxEdits explicitly there to bound the exponential candidate
	// space.
	MaxEdits int
	// BoundDepth is the KcR-tree depth of the cheap rank bound used to
	// prune candidates before exact evaluation (KwBoundPrune only).
	// Zero means 2.
	BoundDepth int
}

// KeywordResult is a keyword-adapted refined query (Definition 3)
// together with its penalty decomposition.
type KeywordResult struct {
	// Refined is q′ = (loc, doc′, k′, w⃗): original location and
	// weights, adapted keyword set, possibly enlarged k.
	Refined score.Query
	// Penalty is Eqn 4 evaluated for Refined.
	Penalty float64
	// DeltaK is max(0, R(M, q′) − q.k).
	DeltaK int
	// DeltaDoc is the keyword edit distance between q.doc and q′.doc.
	DeltaDoc int
	// RankBefore is R(M, q); RankAfter is R(M, q′).
	RankBefore, RankAfter int
	// Added and Removed are the keyword edits q′.doc applies to q.doc.
	Added, Removed vocab.KeywordSet
	// CandidatesGenerated counts enumerated candidate keyword sets;
	// CandidatesEvaluated counts those that survived bound pruning and
	// paid for an exact rank computation.
	CandidatesGenerated, CandidatesEvaluated int
}

// AdaptKeywords answers the keyword-adapted why-not query (Definition
// 3): it returns the refined query (loc, doc′, k′, w⃗) minimizing
// penalty Eqn 4 whose result contains every missing object. The
// candidate space is the non-empty subsets of q.doc ∪ M.doc — keywords
// outside that universe appear in no missing object's document, so
// adding one strictly lowers every missing object's similarity while
// costing an edit, and can never improve the penalty.
//
// One checked cross-index view serves the whole enumeration — every
// candidate is ranked against the same consistent arena (or arena set,
// when sharded: per-shard rank bounds and counts sum into the global
// rank).
func (e *Engine) AdaptKeywords(q score.Query, missing []object.ID, opts KeywordOptions) (KeywordResult, error) {
	return e.AdaptKeywordsCtx(context.Background(), q, missing, opts)
}

// AdaptKeywordsCtx is AdaptKeywords under a context: candidate rank
// bounds and exact ranks poll the context's cancellation signal, and a
// canceled adaption returns ctx.Err().
func (e *Engine) AdaptKeywordsCtx(ctx context.Context, q score.Query, missing []object.ID, opts KeywordOptions) (KeywordResult, error) {
	v, err := e.acquire()
	if err != nil {
		return KeywordResult{}, err
	}
	s, objs, rankBefore, err := e.validateWhyNot(ctx, v.set, q, missing)
	if err != nil {
		return KeywordResult{}, err
	}
	if err := validateLambda(opts.Lambda); err != nil {
		return KeywordResult{}, err
	}
	if opts.Algorithm != KwBoundPrune && opts.Algorithm != KwExhaustive {
		return KeywordResult{}, fmt.Errorf("core: unknown keyword algorithm %d", opts.Algorithm)
	}

	mDoc := MissingDocUnion(objs)
	universe := q.Doc.Union(mDoc)
	docNorm := float64(universe.Len()) // |q.doc ∪ M.doc|, the Δdoc normalizer
	kNorm := float64(rankBefore - q.K)

	removable := q.Doc              // candidates may drop any original keyword
	addable := universe.Diff(q.Doc) // and add any keyword of the universe
	maxEdits := universe.Len() + 1  // an edit distance beyond this is impossible
	if opts.MaxEdits > 0 && opts.MaxEdits < maxEdits {
		maxEdits = opts.MaxEdits
	}
	boundDepth := opts.BoundDepth
	if boundDepth <= 0 {
		boundDepth = 2
	}

	// Start from the trivial refinement: keep q.doc, enlarge k.
	best := KeywordResult{
		Refined:    q,
		Penalty:    opts.Lambda,
		DeltaK:     rankBefore - q.K,
		DeltaDoc:   0,
		RankBefore: rankBefore,
		RankAfter:  rankBefore,
	}
	best.Refined.K = rankBefore
	best.CandidatesGenerated = 1
	best.CandidatesEvaluated = 1

	cc := index.CancelOf(ctx)

	// worstRank returns R(M, q′) for candidate doc, exactly.
	worstRank := func(doc vocab.KeywordSet) int {
		s2 := score.Scorer{Query: q.WithDoc(doc), MaxDist: s.MaxDist}
		worst := 0
		for _, m := range objs {
			var r int
			if opts.Algorithm == KwExhaustive {
				r = index.ScanRank(e.coll, s2, m.ID)
			} else {
				r = index.RankOf(cc, v.kc, s2, m)
			}
			if r > worst {
				worst = r
			}
		}
		return worst
	}

	// rankLowerBound returns a cheap lower bound on R(M, q′) from a
	// depth-limited KcR-tree traversal.
	rankLowerBound := func(doc vocab.KeywordSet) int {
		s2 := score.Scorer{Query: q.WithDoc(doc), MaxDist: s.MaxDist}
		worstLo := 0
		for _, m := range objs {
			refScore := s2.Score(m)
			lo, _ := v.kc.RankBounds(cc, s2, refScore, m.ID, boundDepth)
			if lo+1 > worstLo {
				worstLo = lo + 1
			}
		}
		return worstLo
	}

	var ctxErr error
	evaluate := func(doc vocab.KeywordSet, deltaDoc int) {
		if ctxErr != nil {
			return
		}
		if ctxErr = ctx.Err(); ctxErr != nil {
			// Any rank computed after the trip is an undefined partial
			// count; stop scoring candidates against it.
			return
		}
		best.CandidatesGenerated++
		docPart := (1 - opts.Lambda) * float64(deltaDoc) / docNorm
		// Penalty floor: Δk ≥ 0, so docPart alone already loses ⇒ prune.
		if docPart >= best.Penalty-1e-15 {
			return
		}
		if opts.Algorithm == KwBoundPrune {
			// Cheap rank lower bound ⇒ penalty lower bound.
			loRank := rankLowerBound(doc)
			loDK := loRank - q.K
			if loDK < 0 {
				loDK = 0
			}
			if opts.Lambda*float64(loDK)/kNorm+docPart >= best.Penalty-1e-15 {
				return
			}
		}
		best.CandidatesEvaluated++
		rankAfter := worstRank(doc)
		dk := rankAfter - q.K
		if dk < 0 {
			dk = 0
		}
		pen := opts.Lambda*float64(dk)/kNorm + docPart
		if pen < best.Penalty-1e-15 ||
			(math.Abs(pen-best.Penalty) <= 1e-15 && deltaDoc < best.DeltaDoc) {
			refined := q.WithDoc(doc)
			if rankAfter > q.K {
				refined.K = rankAfter
			}
			gen, eval := best.CandidatesGenerated, best.CandidatesEvaluated
			best = KeywordResult{
				Refined: refined, Penalty: pen,
				DeltaK: dk, DeltaDoc: deltaDoc,
				RankBefore: rankBefore, RankAfter: rankAfter,
				Added:               doc.Diff(q.Doc),
				Removed:             q.Doc.Diff(doc),
				CandidatesGenerated: gen, CandidatesEvaluated: eval,
			}
		}
	}

	// Enumerate candidates in increasing Δdoc = removals + additions.
	// The floor (1−λ)·Δdoc/docNorm is monotone in Δdoc, so once it
	// reaches the best penalty the enumeration can stop entirely.
	for d := 1; d <= maxEdits && ctxErr == nil; d++ {
		if (1-opts.Lambda)*float64(d)/docNorm >= best.Penalty-1e-15 {
			break
		}
		for removals := 0; removals <= d && removals <= removable.Len(); removals++ {
			additions := d - removals
			if additions > addable.Len() {
				continue
			}
			forEachSubset(removable, removals, func(rem vocab.KeywordSet) {
				kept := q.Doc.Diff(rem)
				forEachSubset(addable, additions, func(add vocab.KeywordSet) {
					doc := kept.Union(add)
					if doc.Empty() {
						return
					}
					evaluate(doc, d)
				})
			})
		}
	}
	if ctxErr != nil {
		return KeywordResult{}, ctxErr
	}
	return best, nil
}

// forEachSubset calls fn for every size-k subset of set. fn must not
// retain the argument across calls: the backing array is reused.
func forEachSubset(set vocab.KeywordSet, k int, fn func(vocab.KeywordSet)) {
	if k == 0 {
		fn(nil)
		return
	}
	if k > set.Len() {
		return
	}
	idx := make([]int, k)
	buf := make(vocab.KeywordSet, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			for i, ix := range idx {
				buf[i] = set[ix]
			}
			fn(buf)
			return
		}
		for i := start; i <= set.Len()-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// KeywordUniverse exposes the candidate keyword universe q.doc ∪ M.doc
// for a why-not question; tooling and the web UI use it to show users
// what the adapter may add.
func (e *Engine) KeywordUniverse(q score.Query, missing []object.ID) (vocab.KeywordSet, error) {
	v, err := e.acquire()
	if err != nil {
		return nil, err
	}
	_, objs, _, err := e.validateWhyNot(context.Background(), v.set, q, missing)
	if err != nil {
		return nil, err
	}
	return q.Doc.Union(MissingDocUnion(objs)), nil
}
