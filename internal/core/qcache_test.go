package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// TestCacheEquivalenceAcrossMutationsAndPublish is the cache's core
// property test: an engine with the result cache enabled must answer
// the whole query surface (top-k, ranks, preference and keyword
// refinements) byte-identically to a cache-disabled twin at every step
// of a mutation script, across refreshes, and across an online
// rebalance — on both the single-index and the sharded backend. Every
// check runs twice, so the second pass reads answers the first pass
// cached; the final stats assert the cache really was exercised (hits)
// and really was invalidated (orphaned epochs).
func TestCacheEquivalenceAcrossMutationsAndPublish(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(150, 201))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 3, 202)
	muts := mutationScript(ds, 20, 203)

	for _, shards := range []int{1, 3} {
		cached := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
		plain := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards, DisableCache: true})
		check := func(ctx string) {
			t.Helper()
			// Twice: the first pass fills the cache, the second serves
			// from it — both must match the uncached engine exactly.
			assertAnswersMatch(t, ctx+"/fill", plain, ds.Vocab, cached, ds.Vocab, qs)
			assertAnswersMatch(t, ctx+"/hit", plain, ds.Vocab, cached, ds.Vocab, qs)
		}
		check(fmt.Sprintf("shards=%d/initial", shards))
		for i, m := range muts {
			m.apply(t, cached, ds.Vocab)
			m.apply(t, plain, ds.Vocab)
			if i%5 == 4 {
				check(fmt.Sprintf("shards=%d/mut=%d", shards, i))
			}
		}
		cached.Refresh()
		plain.Refresh()
		check(fmt.Sprintf("shards=%d/refresh", shards))
		if shards > 1 {
			if !cached.Rebalance() || !plain.Rebalance() {
				t.Fatalf("shards=%d: rebalance did not run", shards)
			}
			check(fmt.Sprintf("shards=%d/rebalance", shards))
		}

		st := cached.Stats()
		if st.Cache == nil {
			t.Fatalf("shards=%d: no cache stats on a cache-enabled engine", shards)
		}
		if st.Cache.Hits == 0 {
			t.Fatalf("shards=%d: equivalence ran without a single cache hit", shards)
		}
		if st.Cache.OrphanedEpochs == 0 {
			t.Fatalf("shards=%d: mutations published %d epochs but no entries were ever orphaned", shards, len(muts))
		}
		if pst := plain.Stats(); pst.Cache != nil {
			t.Fatalf("shards=%d: DisableCache engine reports cache stats %+v", shards, pst.Cache)
		}
	}
}

// TestCacheEquivalenceAcrossRecovery extends the equivalence across a
// crash-recovery reopen: answers cached before the crash must never
// leak into the recovered engine (its snapshot carries a fresh epoch),
// and the recovered engine's own cache must again serve answers
// identical to an uncached reference that executed the same script.
func TestCacheEquivalenceAcrossRecovery(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(120, 211))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 3, 212)
	muts := mutationScript(ds, 12, 213)

	ref := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, DisableCache: true})

	dir := t.TempDir()
	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab,
		Fsync: wal.SyncAlways, WALSegmentSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		m.apply(t, e, ds.Vocab)
		m.apply(t, ref, ds.Vocab)
	}
	// Prime the pre-crash cache, then crash (close without checkpoint
	// beyond what Close writes; the WAL carries the script either way).
	assertAnswersMatch(t, "pre-crash/fill", ref, ds.Vocab, e, ds.Vocab, qs)
	assertAnswersMatch(t, "pre-crash/hit", ref, ds.Vocab, e, ds.Vocab, qs)
	if st := e.Stats(); st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatal("pre-crash cache never hit")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	recV := vocab.NewVocabulary()
	rec, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: recV})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	assertAnswersMatch(t, "post-recovery/fill", ref, ds.Vocab, rec, recV, qs)
	assertAnswersMatch(t, "post-recovery/hit", ref, ds.Vocab, rec, recV, qs)
	if st := rec.Stats(); st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatal("post-recovery cache never hit")
	}
}

// subTestObjects builds a tiny hand-placed collection: a cluster of
// "cafe bar" objects around the origin and one far-away "hotel pool"
// outlier that fixes maxDist, so later far-away inserts cannot move the
// normalization constant and force re-evaluations for that reason.
func subTestObjects(v *vocab.Vocabulary) []object.Object {
	mk := func(id int, x, y float64, words ...string) object.Object {
		return object.Object{
			ID: object.ID(id), Loc: geo.Point{X: x, Y: y},
			Doc: v.InternSet(words...), Name: fmt.Sprintf("o%d", id),
		}
	}
	return []object.Object{
		mk(0, 0, 0, "cafe", "bar"),
		mk(1, 1, 0, "cafe", "bar"),
		mk(2, 0, 1, "cafe", "wifi"),
		mk(3, 1, 1, "bar", "wifi"),
		mk(4, 100, 100, "hotel", "pool"),
		mk(5, 99, 100, "hotel", "spa"),
	}
}

// TestSubscriptionSkipAndUpdate pins the two deterministic halves of
// the continuous-query prefilter: a far-away, keyword-disjoint insert
// is provably irrelevant to a subscribed query (skipped, no update
// pushed), while a matching insert next to the query location must
// re-evaluate and push the changed result.
func TestSubscriptionSkipAndUpdate(t *testing.T) {
	v := vocab.NewVocabulary()
	e := NewEngine(object.NewCollection(subTestObjects(v)), Options{MaxEntries: 4})
	q := score.Query{
		Loc: geo.Point{X: 0.2, Y: 0.2}, Doc: v.InternSet("cafe", "bar"),
		K: 2, W: score.DefaultWeights,
	}
	sub, err := e.Subscribe(q, SubscribeOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	initial := <-sub.Updates()
	if len(initial.Results) != 2 {
		t.Fatalf("initial update has %d results, want 2", len(initial.Results))
	}

	// Prime the epoch chain: the first window after a Subscribe always
	// re-evaluates (the manager cannot yet prove the delta covers the
	// gap back to the subscription's own snapshot).
	if _, err := e.Insert(object.Object{
		Loc: geo.Point{X: 99, Y: 98}, Doc: v.InternSet("hotel", "gym"), Name: "prime",
	}); err != nil {
		t.Fatal(err)
	}
	e.subs.WaitIdle()

	// Irrelevant insert: far from the query, signature-disjoint
	// keywords, inside the existing maxDist envelope. The prefilter must
	// skip the re-evaluation and push nothing.
	if _, err := e.Insert(object.Object{
		Loc: geo.Point{X: 98, Y: 99}, Doc: v.InternSet("hotel", "gym"), Name: "far",
	}); err != nil {
		t.Fatal(err)
	}
	e.subs.WaitIdle()
	st := e.subs.stats()
	if st.SigSkipped != 1 {
		t.Fatalf("irrelevant insert: sigSkipped = %d, want 1 (reevaluated %d)", st.SigSkipped, st.Reevaluated)
	}
	select {
	case u := <-sub.Updates():
		t.Fatalf("irrelevant insert pushed an update: %+v", u)
	default:
	}

	// Relevant insert: matching keywords right at the query location
	// must take over rank 1 and arrive as a pushed update.
	id, err := e.Insert(object.Object{
		Loc: geo.Point{X: 0.2, Y: 0.2}, Doc: v.InternSet("cafe", "bar"), Name: "new",
	})
	if err != nil {
		t.Fatal(err)
	}
	e.subs.WaitIdle()
	select {
	case u := <-sub.Updates():
		if len(u.Results) != 2 || u.Results[0].Obj.ID != id {
			t.Fatalf("update after relevant insert = %+v, want %d first", u.Results, id)
		}
		if u.Epoch <= initial.Epoch {
			t.Fatalf("update epoch %d did not advance past initial %d", u.Epoch, initial.Epoch)
		}
	default:
		t.Fatal("relevant insert pushed no update")
	}

	// Removing the new winner must push again; the prefilter may never
	// skip a removal that sits in the subscribed result.
	if err := e.Remove(id); err != nil {
		t.Fatal(err)
	}
	e.subs.WaitIdle()
	select {
	case u := <-sub.Updates():
		if len(u.Results) != 2 || u.Results[0].Obj.ID == id {
			t.Fatalf("update after removal still lists %d: %+v", id, u.Results)
		}
	default:
		t.Fatal("removal of a result member pushed no update")
	}

	if st := e.subs.stats(); st.Active != 1 || st.Pushed < 2 {
		t.Fatalf("stats = %+v, want 1 active and ≥ 2 pushed", st)
	}
}

// TestSubscriptionMatchesPolling is the subscription equivalence
// property: across a random mutation script, the newest pushed update
// of every subscription equals what polling TopK returns at the end —
// whether the prefilter skipped or re-evaluated along the way — on both
// backends.
func TestSubscriptionMatchesPolling(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(150, 301))
	if err != nil {
		t.Fatal(err)
	}
	muts := mutationScript(ds, 25, 302)
	qs := testWorkload(ds, 4, 303)

	for _, shards := range []int{1, 3} {
		e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: shards})
		subs := make([]*Subscription, len(qs))
		latest := make([][]score.Result, len(qs))
		for i, wq := range qs {
			sub, err := e.Subscribe(wq.query(ds.Vocab), SubscribeOptions{Buffer: len(muts) + 2})
			if err != nil {
				t.Fatalf("shards=%d: subscribe %d: %v", shards, i, err)
			}
			defer sub.Close()
			subs[i] = sub
		}
		for _, m := range muts {
			m.apply(t, e, ds.Vocab)
		}
		e.subs.WaitIdle()
		for i, sub := range subs {
			for {
				select {
				case u, ok := <-sub.Updates():
					if !ok {
						t.Fatalf("shards=%d: subscription %d dropped (buffer sized for the script)", shards, i)
					}
					latest[i] = u.Results
					continue
				default:
				}
				break
			}
			want, err := e.TopK(qs[i].query(ds.Vocab))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, fmt.Sprintf("shards=%d sub=%d", shards, i), latest[i], want)
		}
		st := e.subs.stats()
		if st.Reevaluated == 0 || st.Pushed == 0 {
			t.Fatalf("shards=%d: script drove no subscription work: %+v", shards, st)
		}
	}
}

// TestSubscriptionSlowClientDisconnect: a subscriber that never reads
// is force-dropped once it falls a full buffer behind — its channel
// closes instead of the engine stalling or leaking queued updates.
func TestSubscriptionSlowClientDisconnect(t *testing.T) {
	v := vocab.NewVocabulary()
	e := NewEngine(object.NewCollection(subTestObjects(v)), Options{MaxEntries: 4})
	q := score.Query{
		Loc: geo.Point{X: 0, Y: 0}, Doc: v.InternSet("cafe", "bar"),
		K: 2, W: score.DefaultWeights,
	}
	sub, err := e.Subscribe(q, SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Never read. Every insert at the query location changes rank 1, so
	// each publish wants to push; the initial update already fills the
	// one-slot buffer, so the first changed result forces the drop.
	for i := 0; i < 5; i++ {
		if _, err := e.Insert(object.Object{
			Loc: geo.Point{X: 0, Y: 0}, Doc: v.InternSet("cafe", "bar"),
			Name: fmt.Sprintf("n%d", i),
		}); err != nil {
			t.Fatal(err)
		}
		e.subs.WaitIdle()
	}
	// The initial update drains, then the channel must report closed.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Updates():
			if !ok {
				if st := e.subs.stats(); st.Dropped != 1 || st.Active != 0 {
					t.Fatalf("stats after drop = %+v, want 1 dropped / 0 active", st)
				}
				return
			}
		case <-deadline:
			t.Fatal("slow subscriber was never disconnected")
		}
	}
}

// TestCacheAndSubscriptionStorm races queries, batch queries,
// mutations, refreshes, rebalances, and subscription churn against each
// other; the -race tier-1 lane proves the cache and subscription
// manager are data-race free, and every returned result is checked for
// internal consistency (k-bounded, descending scores).
func TestCacheAndSubscriptionStorm(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(200, 401))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cloneCollection(ds.Objects), Options{MaxEntries: 16, Shards: 3})
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: 16, Seed: 402, K: 5, Keywords: 2, W: score.DefaultWeights, FromObjectDocs: true,
	})
	muts := mutationScript(ds, 64, 403)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	checkDescending := func(rs []score.Result) {
		for i := 1; i < len(rs); i++ {
			if rs[i].Score > rs[i-1].Score {
				t.Errorf("results out of order: %v then %v", rs[i-1].Score, rs[i].Score)
				return
			}
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[(w+i)%len(qs)]
				if res, err := e.TopK(q); err != nil {
					t.Error(err)
				} else if len(res) > q.K {
					t.Errorf("TopK returned %d > k=%d", len(res), q.K)
				} else {
					checkDescending(res)
				}
				if i%7 == 0 {
					if _, err := e.TopKBatch(qs[:4], BatchOptions{Workers: 2}); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := e.Subscribe(qs[i%len(qs)], SubscribeOptions{Buffer: 2})
			if err != nil {
				t.Error(err)
				return
			}
			<-sub.Updates()
			sub.Close()
		}
	}()
	for i, m := range muts {
		if m.remove {
			// The script may target an ID another iteration removed;
			// apply inserts strictly, tolerate remove races.
			_ = e.Remove(m.id)
		} else {
			m.apply(t, e, ds.Vocab)
		}
		if i%16 == 15 {
			e.Refresh()
			e.Rebalance()
		}
	}
	close(stop)
	wg.Wait()
	if st := e.Stats(); st.Cache == nil {
		t.Fatal("no cache stats after storm")
	}
}
