package core

import (
	"fmt"
	"os"
	"testing"

	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
	"github.com/yask-engine/yask/internal/wal/faultio"
)

// arenaStats fetches the durability.arena stats section or fails.
func arenaStats(t *testing.T, e *Engine) *ArenaStats {
	t.Helper()
	st := e.Stats().Durability
	if st == nil || st.Arena == nil {
		t.Fatal("durable engine with MmapArenas has no arena stats section")
	}
	return st.Arena
}

// TestMmapBootSkipsRebuild is the tentpole acceptance test: a durable
// engine with MmapArenas reboots by mapping its arena files — the stats
// prove the index rebuild was skipped — and serves byte-identical
// answers; the first post-boot mutation thaws the mapped families, and
// the next checkpoint writes a fresh arena set that the next boot maps
// again.
func TestMmapBootSkipsRebuild(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(150, 201))
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 4, 202)
	dir := t.TempDir()

	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab,
		Fsync: wal.SyncAlways, MmapArenas: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := arenaStats(t, e)
	if !first.Enabled || first.MmapBoot || first.SetsWritten != 1 || first.BytesWritten == 0 {
		t.Fatalf("first boot arena stats: %+v", first)
	}
	for _, family := range arenaFamilies {
		if _, err := os.Stat(arenaPath(dir, family, 0)); err != nil {
			t.Fatalf("first checkpoint left no %s arena: %v", family, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot with a fresh vocabulary: must map, not rebuild.
	recV := vocab.NewVocabulary()
	rec, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: recV, MmapArenas: true})
	if err != nil {
		t.Fatal(err)
	}
	st := arenaStats(t, rec)
	if !st.MmapBoot || !st.RebuildSkipped || st.MappedNow != 2 || st.FallbackReason != "" {
		t.Fatalf("mmap boot stats: %+v", st)
	}
	refV := vocab.NewVocabulary()
	ref := NewEngine(object.NewCollection(reinternedObjects(ds, refV)), Options{MaxEntries: 16})
	assertAnswersMatch(t, "mmap boot", ref, refV, rec, recV, qs)

	// First mutation thaws; a checkpoint then persists a fresh arena set.
	m := mutationScript(ds, 1, 203)[0]
	m.apply(t, rec, recV)
	m.apply(t, ref, refV)
	if st := arenaStats(t, rec); st.MappedNow != 0 {
		t.Fatalf("after mutation %d families still mapped", st.MappedNow)
	}
	assertAnswersMatch(t, "after thawing mutation", ref, refV, rec, recV, qs)
	if err := rec.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsn := rec.Stats().Durability.LastCheckpoint
	if lsn == 0 {
		t.Fatal("checkpoint after mutation kept LSN 0")
	}
	for _, family := range arenaFamilies {
		if _, err := os.Stat(arenaPath(dir, family, lsn)); err != nil {
			t.Fatalf("checkpoint left no %s arena at LSN %d: %v", family, lsn, err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Third boot maps the post-mutation arena set.
	recV2 := vocab.NewVocabulary()
	rec2, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: recV2, MmapArenas: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if st := arenaStats(t, rec2); !st.MmapBoot || !st.RebuildSkipped {
		t.Fatalf("post-mutation mmap boot stats: %+v", st)
	}
	assertAnswersMatch(t, "second mmap boot", ref, refV, rec2, recV2, qs)
}

// TestMmapBootWithoutArenasFallsBack: enabling the option on a
// directory whose checkpoints predate it (no .yar files) boots by
// rebuild with a recorded reason — and the engine still works.
func TestMmapBootWithoutArenasFallsBack(t *testing.T) {
	ds, err := dataset.Generate(dataset.DefaultConfig(80, 205))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 16, DataDir: dir, Vocab: ds.Vocab, Fsync: wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	recV := vocab.NewVocabulary()
	rec, err := Open(nil, Options{MaxEntries: 16, DataDir: dir, Vocab: recV, MmapArenas: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st := arenaStats(t, rec)
	if st.MmapBoot || st.RebuildSkipped || st.FallbackReason == "" {
		t.Fatalf("boot without arena files: %+v", st)
	}
	refV := vocab.NewVocabulary()
	ref := NewEngine(object.NewCollection(reinternedObjects(ds, refV)), Options{MaxEntries: 16})
	assertAnswersMatch(t, "fallback boot", ref, refV, rec, recV, testWorkload(ds, 2, 206))
}

// TestArenaFaultFallbackEveryByte is the end-to-end fault acceptance
// test: with a bit flipped at EVERY byte offset of either arena file —
// and the file truncated at every offset — Open must still succeed and
// serve byte-identical answers. Detected damage records a fallback
// reason matching wal.ErrCorrupt semantics; undetected flips can only
// land in padding, where the mapped answers are provably identical.
func TestArenaFaultFallbackEveryByte(t *testing.T) {
	// A small vocabulary keeps the arena files a few KB so the
	// every-byte sweep stays fast; the format paths exercised are
	// identical.
	cfg := dataset.DefaultConfig(24, 207)
	cfg.VocabSize, cfg.MinKeywords, cfg.MaxKeywords = 60, 2, 4
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := testWorkload(ds, 1, 208)
	dir := t.TempDir()
	e, err := Open(initialObjects(ds), Options{
		MaxEntries: 8, DataDir: dir, Vocab: ds.Vocab,
		Fsync: wal.SyncAlways, MmapArenas: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	refV := vocab.NewVocabulary()
	ref := NewEngine(object.NewCollection(reinternedObjects(ds, refV)), Options{MaxEntries: 8})

	ckptLSN, rows, err := wal.LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	// load drives the complete arena boot decision — open, verify, pin
	// vocabulary, decode, or fall back with a reason — exactly as Open
	// does, without re-reading the WAL each time. A fault must either be
	// rejected (reason recorded; Open then rebuilds, proven by the full
	// boots below) or yield an engine with byte-identical answers.
	load := func(ctx string) {
		recV := vocab.NewVocabulary()
		arenas, reason := tryLoadArenas(Options{
			MaxEntries: 8, DataDir: dir, Vocab: recV, MmapArenas: true,
		}, ckptLSN, rows)
		if arenas == nil {
			if reason == "" {
				t.Fatalf("%s: fallback with no recorded reason", ctx)
			}
			return
		}
		rec := newEngineWith(arenas.coll, Options{MaxEntries: 8}, arenas.set, arenas.kc)
		assertAnswersMatch(t, ctx, ref, refV, rec, recV, qs)
	}
	// boot is the end-to-end variant: a full Open that must always
	// succeed — detected damage means silent rebuild — with identical
	// answers. Run on a stride (it re-reads checkpoint and WAL per call).
	boot := func(ctx string) {
		recV := vocab.NewVocabulary()
		rec, err := Open(nil, Options{MaxEntries: 8, DataDir: dir, Vocab: recV, MmapArenas: true})
		if err != nil {
			t.Fatalf("%s: Open: %v", ctx, err)
		}
		assertAnswersMatch(t, ctx, ref, refV, rec, recV, qs)
		rec.Close()
	}

	for _, family := range arenaFamilies {
		path := arenaPath(dir, family, 0)
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		restore := func() {
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for off := int64(0); off < int64(len(pristine)); off++ {
			if err := faultio.FlipBit(path, off); err != nil {
				t.Fatal(err)
			}
			load(fmt.Sprintf("%s arena, bit flip at byte %d", family, off))
			if off%101 == 0 {
				boot(fmt.Sprintf("%s arena, bit flip at byte %d (full boot)", family, off))
			}
			restore()
		}
		for n := int64(0); n < int64(len(pristine)); n++ {
			if err := faultio.TruncateAt(path, n); err != nil {
				t.Fatal(err)
			}
			load(fmt.Sprintf("%s arena truncated to %d bytes", family, n))
			if n%101 == 0 {
				boot(fmt.Sprintf("%s arena truncated to %d bytes (full boot)", family, n))
			}
			restore()
		}
		// A missing file is the cheapest fault of all.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		boot(fmt.Sprintf("%s arena missing", family))
		restore()
	}
}
