// Durability: the engine half of the WAL + checkpoint subsystem.
//
// Open boots a durable engine from Options.DataDir: it loads the newest
// valid checkpoint (a full snapshot of the collection at some LSN),
// builds the engine over it, replays every WAL record past that LSN
// through the same managed apply path live mutations use, and
// republishes the index snapshots. Because live inserts log the global
// ID they are about to be assigned and replay re-applies in LSN order
// under the mutation lock, a recovered engine — sharded or not —
// assigns identical IDs and answers every query byte-identically to the
// engine that wrote the log.
//
// On the mutation path, every accepted Insert/Remove is appended to the
// WAL (and acknowledged per the fsync policy) before any in-memory
// state changes; a checkpoint snapshots the collection, rotates the
// log, retires the segments the snapshot covers, and prunes old
// checkpoint files.
package core

import (
	"errors"
	"fmt"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// ErrNotDurable is returned by Checkpoint on a memory-only engine.
var ErrNotDurable = errors.New("core: engine has no data directory")

// durability is the engine's WAL/checkpoint state. The log serializes
// its own appends, but every field below it is guarded by Engine.mu —
// the mutation path holds it across append+apply, which is what pins
// the WAL order to the global-ID order.
type durability struct {
	dir    string
	vocab  *vocab.Vocabulary
	log    *wal.Log
	policy wal.SyncPolicy

	checkpointEvery   int
	sinceCheckpoint   int
	lastCheckpointLSN uint64
	checkpoints       int64
	replayed          int

	// Arena persistence bookkeeping (arena.go). arenasEnabled is
	// MmapArenas resolved against the backend (sharded engines never
	// write or map arenas); the rest feed DurabilityStats.Arena.
	arenasEnabled  bool
	mmapBoot       bool
	rebuildSkipped bool
	arenaFallback  string
	arenasWritten  int64
	arenaBytes     int64
	arenaWriteErr  string
}

// DurabilityStats is the WAL/checkpoint section of EngineStats.
type DurabilityStats struct {
	// Dir is the data directory, Fsync the acknowledgement policy.
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WalAppends / WalFsyncs / WalRotations count records appended,
	// explicit fsyncs issued, and segment rotations since boot.
	WalAppends   int64 `json:"walAppends"`
	WalFsyncs    int64 `json:"walFsyncs"`
	WalRotations int64 `json:"walRotations"`
	// Segments is the number of live WAL segment files, WalBytes their
	// total size.
	Segments int   `json:"segments"`
	WalBytes int64 `json:"walBytes"`
	// LastLSN is the newest logged mutation; LastCheckpoint the LSN the
	// newest completed checkpoint covers; SinceCheckpoint the mutations
	// logged after it; Checkpoints how many checkpoints this process
	// wrote.
	LastLSN         uint64 `json:"lastLSN"`
	LastCheckpoint  uint64 `json:"lastCheckpoint"`
	SinceCheckpoint int    `json:"sinceCheckpoint"`
	Checkpoints     int64  `json:"checkpoints"`
	// ReplayedRecords is how many WAL records boot recovery replayed.
	ReplayedRecords int `json:"replayedRecords"`
	// Arena reports mmap arena persistence state; present when
	// Options.MmapArenas was requested.
	Arena *ArenaStats `json:"arena,omitempty"`
}

// fsyncPolicy reports the policy the log was opened with.
func (d *durability) fsyncPolicy() string { return d.policy.String() }

// Open boots an engine from opts.DataDir. When the directory holds no
// checkpoint and no WAL yet (first boot), initial seeds the collection
// — pass the dataset's objects, or nil for an empty engine — and an
// initial checkpoint is written immediately so the directory is
// self-contained from then on. On later boots initial is ignored: the
// newest valid checkpoint plus the WAL suffix fully determine the
// state.
//
// Recovery errors are permanent (a damaged non-tail record, a missing
// segment, every checkpoint unreadable): Open fails with an error
// matching wal.ErrCorrupt rather than serving wrong or silently stale
// answers.
func Open(initial []object.Object, opts Options) (*Engine, error) {
	if opts.DataDir == "" {
		return nil, ErrNotDurable
	}
	if opts.Vocab == nil {
		return nil, errors.New("core: durability requires Options.Vocab")
	}

	ckptLSN, rows, err := wal.LoadCheckpoint(opts.DataDir)
	if err != nil {
		return nil, fmt.Errorf("core: loading checkpoint: %w", err)
	}

	var coll *object.Collection
	firstBoot := rows == nil && ckptLSN == 0
	var arenas *loadedArenas
	var arenaFallback string
	if opts.MmapArenas && !firstBoot {
		// The mmap path restores the collection itself (the embedded
		// vocabulary must be pinned before keywords are interned); on any
		// failure it reports why and we rebuild below as if the option
		// were off.
		arenas, arenaFallback = tryLoadArenas(opts, ckptLSN, rows)
	}
	switch {
	case arenas != nil:
		coll = arenas.coll
	case firstBoot:
		coll = object.NewCollection(initial)
	default:
		if coll, err = collectionFromRows(rows, opts.Vocab); err != nil {
			return nil, err
		}
	}

	memOpts := opts
	memOpts.DataDir = "" // newEngineWith builds the in-memory engine only
	var e *Engine
	if arenas != nil {
		e = newEngineWith(coll, memOpts, arenas.set, arenas.kc)
	} else {
		e = NewEngine(coll, memOpts)
	}

	log, records, err := wal.Open(opts.DataDir, ckptLSN, wal.Options{
		SegmentSize:  opts.WALSegmentSize,
		Sync:         opts.Fsync,
		SyncInterval: opts.FsyncInterval,
		WrapFile:     opts.WrapWALFile,
	})
	if err != nil {
		return nil, fmt.Errorf("core: opening wal: %w", err)
	}
	d := &durability{
		dir:               opts.DataDir,
		vocab:             opts.Vocab,
		log:               log,
		policy:            opts.Fsync,
		checkpointEvery:   opts.CheckpointEvery,
		lastCheckpointLSN: ckptLSN,
		arenasEnabled:     opts.MmapArenas && e.group == nil,
		mmapBoot:          arenas != nil,
		arenaFallback:     arenaFallback,
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range records {
		if err := e.replayLocked(r, opts.Vocab); err != nil {
			log.Close()
			return nil, err
		}
	}
	d.replayed = len(records)
	d.sinceCheckpoint = len(records)
	// A replayed mutation thaws the mapped arenas back into trees; only
	// a clean-suffix boot truly skipped every index build.
	d.rebuildSkipped = d.mmapBoot && len(records) == 0
	e.refreshLocked()
	e.dur = d

	if firstBoot {
		// Make the directory self-contained: later boots must never
		// depend on the caller passing the same initial objects again.
		if err := e.checkpointLocked(); err != nil {
			log.Close()
			return nil, err
		}
	}
	return e, nil
}

// collectionFromRows rebuilds the collection a checkpoint snapshotted,
// re-interning every keyword into vocab. Rows are written in ID order;
// density is validated here (and by the collection constructor) so a
// logically inconsistent checkpoint cannot boot.
func collectionFromRows(rows []wal.Row, v *vocab.Vocabulary) (*object.Collection, error) {
	objs := make([]object.Object, len(rows))
	var dead []bool
	for i, r := range rows {
		if int(r.ID) != i {
			return nil, fmt.Errorf("core: checkpoint row %d has ID %d (IDs must be dense): %w", i, r.ID, wal.ErrCorrupt)
		}
		objs[i] = object.Object{
			ID:   object.ID(r.ID),
			Loc:  geo.Point{X: r.X, Y: r.Y},
			Doc:  v.InternSet(r.Keywords...),
			Name: r.Name,
		}
		if !r.Alive {
			if dead == nil {
				dead = make([]bool, len(rows))
			}
			dead[i] = true
		}
	}
	return object.NewCollectionWithDead(objs, dead), nil
}

// replayLocked re-applies one WAL record through the managed apply
// path, verifying the recorded ID against the replayed assignment — a
// mismatch means the checkpoint and log disagree, which is corruption,
// not something to paper over.
func (e *Engine) replayLocked(r wal.Record, v *vocab.Vocabulary) error {
	switch r.Op {
	case wal.OpInsert:
		o := object.Object{
			Loc:  geo.Point{X: r.X, Y: r.Y},
			Doc:  v.InternSet(r.Keywords...),
			Name: r.Name,
		}
		id := e.applyInsertLocked(o)
		if id != object.ID(r.ID) {
			return fmt.Errorf("core: replay of LSN %d assigned ID %d, record says %d: %w", r.LSN, id, r.ID, wal.ErrCorrupt)
		}
	case wal.OpRemove:
		id := object.ID(r.ID)
		if int(id) >= e.coll.Len() || !e.coll.Alive(id) {
			return fmt.Errorf("core: replay of LSN %d removes ID %d which is %s: %w",
				r.LSN, r.ID, removeReplayState(e.coll, id), wal.ErrCorrupt)
		}
		e.applyRemoveLocked(id)
	default:
		return fmt.Errorf("core: replay of LSN %d has unknown op %d: %w", r.LSN, r.Op, wal.ErrCorrupt)
	}
	return nil
}

func removeReplayState(c *object.Collection, id object.ID) string {
	if int(id) >= c.Len() {
		return "out of range"
	}
	return "already removed"
}

// logInsert appends the insert record for o (to be assigned id) and
// acknowledges it per the fsync policy. Called under e.mu, before any
// in-memory mutation.
func (d *durability) logInsert(id object.ID, o object.Object) error {
	_, err := d.log.Append(wal.Record{
		Op:       wal.OpInsert,
		ID:       uint32(id),
		X:        o.Loc.X,
		Y:        o.Loc.Y,
		Name:     o.Name,
		Keywords: d.vocab.Words(o.Doc),
	})
	return err
}

// logRemove appends the tombstone record for id. Called under e.mu.
func (d *durability) logRemove(id object.ID) error {
	_, err := d.log.Append(wal.Record{Op: wal.OpRemove, ID: uint32(id)})
	return err
}

// maybeCheckpointLocked runs the automatic checkpoint trigger after a
// logged mutation.
func (e *Engine) maybeCheckpointLocked() {
	d := e.dur
	if d == nil {
		return
	}
	d.sinceCheckpoint++
	if d.checkpointEvery <= 0 || d.sinceCheckpoint < d.checkpointEvery {
		return
	}
	// A checkpoint failure must not fail the mutation that triggered it
	// — the mutation is already durable in the WAL; the next trigger or
	// explicit Checkpoint retries (and reports).
	_ = e.checkpointLocked()
}

// Checkpoint atomically writes a full snapshot of the collection,
// rotates the WAL, retires the segments the snapshot covers, and prunes
// old checkpoint files. It returns ErrNotDurable on a memory-only
// engine.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dur == nil {
		return ErrNotDurable
	}
	if e.closed {
		return errEngineClosed
	}
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	d := e.dur
	// Everything at or below the log's current LSN is in the collection
	// — the caller holds mu, so no mutation is in flight.
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("core: checkpoint wal sync: %w", err)
	}
	lsn := d.log.LastLSN()
	v := e.coll.View()
	rows := make([]wal.Row, v.Len())
	for id, o := range v.All() {
		rows[id] = wal.Row{
			ID:       uint32(id),
			Alive:    v.Alive(object.ID(id)),
			X:        o.Loc.X,
			Y:        o.Loc.Y,
			Name:     o.Name,
			Keywords: d.vocab.Words(o.Doc),
		}
	}
	if _, err := wal.WriteCheckpoint(d.dir, lsn, rows); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	// The snapshot is durable; everything it covers can go.
	if err := d.log.Rotate(); err != nil {
		return fmt.Errorf("core: rotating wal after checkpoint: %w", err)
	}
	if _, err := d.log.Retire(lsn); err != nil {
		return fmt.Errorf("core: retiring wal segments: %w", err)
	}
	if _, err := wal.PruneCheckpoints(d.dir); err != nil {
		return fmt.Errorf("core: pruning checkpoints: %w", err)
	}
	d.lastCheckpointLSN = lsn
	d.sinceCheckpoint = 0
	d.checkpoints++
	e.writeArenasLocked(lsn)
	return nil
}

// Close shuts the engine down: the WAL is flushed and closed, and every
// later mutation fails. Queries keep serving the last published
// snapshots. Close is idempotent and a no-op for memory-only engines.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.dur == nil {
		return nil
	}
	return e.dur.log.Close()
}

// durabilityStats snapshots the durability counters (nil for a
// memory-only engine). The checkpoint bookkeeping is read under e.mu;
// the log counters have their own lock.
func (e *Engine) durabilityStats() *DurabilityStats {
	e.mu.Lock()
	d := e.dur
	if d == nil {
		e.mu.Unlock()
		return nil
	}
	st := &DurabilityStats{
		Dir:             d.dir,
		Fsync:           d.fsyncPolicy(),
		LastCheckpoint:  d.lastCheckpointLSN,
		SinceCheckpoint: d.sinceCheckpoint,
		Checkpoints:     d.checkpoints,
		ReplayedRecords: d.replayed,
	}
	if d.arenasEnabled || d.arenaFallback != "" {
		st.Arena = e.arenaStatsLocked()
	}
	e.mu.Unlock()
	ls := d.log.Stats()
	st.WalAppends = ls.Appends
	st.WalFsyncs = ls.Fsyncs
	st.WalRotations = ls.Rotations
	st.Segments = ls.Segments
	st.WalBytes = ls.Size
	st.LastLSN = ls.LastLSN
	return st
}
