// Package wal implements the engine's durability subsystem: a
// segmented, append-only write-ahead log of Insert/Remove mutation
// records plus atomic checkpoint files that snapshot the whole
// collection and retire the log segments they cover. The byte-level
// layout of every structure this package writes — and of the index
// arena files (internal/rtree) that share its CRC framing conventions
// and its typed corruption errors — is specified normatively in
// docs/FORMATS.md.
//
// Every record is framed as
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// (little-endian, Castagnoli polynomial) and carries a log sequence
// number (LSN) assigned densely from 1. Segments are files named
// wal-<first LSN>.log with a 16-byte header; when one grows past
// Options.SegmentSize the log rotates to a new file, and a checkpoint
// at LSN C deletes every segment whose records all have LSN ≤ C.
//
// Checkpoints (ckpt-<LSN>.ckpt) are full-collection snapshots —
// tombstones included, because dead locations keep stretching the
// score-normalization space — sealed by a trailing whole-file CRC32C
// and written with the atomic temp-fsync-rename-dirsync protocol.
// LoadCheckpoint returns the newest checkpoint that verifies
// end-to-end, falling back to older ones over damaged newer ones.
//
// Recovery discipline (the Badger/etcd WAL contract): a crash can only
// tear the tail of the newest segment — rotation syncs a segment before
// the next one is created — so on open a short or CRC-failing record at
// the very end of the newest segment is truncated away (a torn write of
// a record that was never acknowledged), while any damage earlier in
// the chain (a bit flip, a missing segment, an LSN gap) surfaces as a
// *CorruptionError matching ErrCorrupt. Recovery therefore always
// restores an exact prefix of the acknowledged mutation sequence or
// fails loudly — never a wrong or silently stale state. The faultio
// subpackage injects power cuts, bit flips, and truncations to prove
// it.
package wal
