// Record framing and the typed corruption error. The frame and payload
// layouts are specified byte by byte in docs/FORMATS.md.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Op is the mutation kind of one log record.
type Op uint8

const (
	// OpInsert records an object insertion (the full object travels in
	// the record, keywords as strings so recovery survives vocabulary
	// re-interning).
	OpInsert Op = 1
	// OpRemove records a tombstone of an existing object ID.
	OpRemove Op = 2
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged mutation. LSNs are dense from 1; the log assigns
// them on Append and replay returns them so callers can checkpoint at
// an exact position.
type Record struct {
	LSN uint64
	Op  Op
	// ID is the dense object ID the mutation targets: the ID the insert
	// will be assigned (recovery verifies the replayed assignment
	// matches) or the ID being removed.
	ID uint32
	// X, Y, Name, Keywords carry the inserted object; zero for removes.
	X, Y     float64
	Name     string
	Keywords []string
}

// ErrCorrupt is the sentinel every *CorruptionError matches via
// errors.Is: damage to the log or a checkpoint that recovery cannot
// attribute to a torn tail write.
var ErrCorrupt = errors.New("wal: corruption")

// CorruptionError reports unrecoverable damage at a byte offset of a
// log segment or checkpoint file. It matches ErrCorrupt.
type CorruptionError struct {
	Path   string
	Offset int64
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: corrupt %s at offset %d: %s", e.Path, e.Offset, e.Detail)
}

// Is reports target == ErrCorrupt so errors.Is(err, wal.ErrCorrupt)
// identifies any corruption error.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorrupt }

func corrupt(path string, off int64, format string, args ...any) error {
	return &CorruptionError{Path: path, Offset: off, Detail: fmt.Sprintf(format, args...)}
}

// castagnoli is the CRC32C table shared by record frames and
// checkpoints (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// frameHeaderSize is the per-record prefix: u32 length + u32 CRC32C.
	frameHeaderSize = 8
	// maxRecordSize bounds one payload; a declared length beyond it is
	// corruption, never a real record — it also caps the allocation a
	// corrupt length field can demand during a scan.
	maxRecordSize = 16 << 20
	// maxStringLen bounds names and keywords inside a payload.
	maxStringLen = math.MaxUint16
)

// appendPayload serializes r (without the frame) onto buf.
func appendPayload(buf []byte, r Record) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN)
	buf = append(buf, byte(r.Op))
	buf = binary.LittleEndian.AppendUint32(buf, r.ID)
	if r.Op == OpRemove {
		return buf, nil
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Y))
	var err error
	if buf, err = appendString(buf, r.Name); err != nil {
		return nil, err
	}
	if len(r.Keywords) > maxStringLen {
		return nil, fmt.Errorf("wal: record has %d keywords (max %d)", len(r.Keywords), maxStringLen)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Keywords)))
	for _, kw := range r.Keywords {
		if buf, err = appendString(buf, kw); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return nil, fmt.Errorf("wal: string of %d bytes exceeds the %d-byte record field limit", len(s), maxStringLen)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// appendFrame serializes r as a full frame (header + payload) onto buf.
func appendFrame(buf []byte, r Record) ([]byte, error) {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf, err := appendPayload(buf, r)
	if err != nil {
		return nil, err
	}
	payload := buf[base+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// payloadReader is a bounds-checked cursor over one record payload.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) need(n int) ([]byte, error) {
	if p.off+n > len(p.b) {
		return nil, fmt.Errorf("payload truncated: need %d bytes at offset %d of %d", n, p.off, len(p.b))
	}
	b := p.b[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *payloadReader) u16() (uint16, error) {
	b, err := p.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (p *payloadReader) u32() (uint32, error) {
	b, err := p.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (p *payloadReader) u64() (uint64, error) {
	b, err := p.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.u16()
	if err != nil {
		return "", err
	}
	b, err := p.need(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodePayload parses one CRC-verified payload back into a Record.
func decodePayload(b []byte) (Record, error) {
	p := payloadReader{b: b}
	var r Record
	var err error
	if r.LSN, err = p.u64(); err != nil {
		return Record{}, err
	}
	op, err := p.need(1)
	if err != nil {
		return Record{}, err
	}
	r.Op = Op(op[0])
	if id, err := p.u32(); err != nil {
		return Record{}, err
	} else {
		r.ID = id
	}
	switch r.Op {
	case OpRemove:
	case OpInsert:
		xb, err := p.u64()
		if err != nil {
			return Record{}, err
		}
		yb, err := p.u64()
		if err != nil {
			return Record{}, err
		}
		r.X, r.Y = math.Float64frombits(xb), math.Float64frombits(yb)
		if r.Name, err = p.str(); err != nil {
			return Record{}, err
		}
		nkw, err := p.u16()
		if err != nil {
			return Record{}, err
		}
		if nkw > 0 {
			r.Keywords = make([]string, nkw)
			for i := range r.Keywords {
				if r.Keywords[i], err = p.str(); err != nil {
					return Record{}, err
				}
			}
		}
	default:
		return Record{}, fmt.Errorf("unknown op %d", uint8(r.Op))
	}
	if p.off != len(b) {
		return Record{}, fmt.Errorf("%d trailing payload bytes", len(b)-p.off)
	}
	return r, nil
}
