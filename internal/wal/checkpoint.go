package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Row is one object in a checkpoint snapshot. Dead rows are kept:
// tombstoned IDs stay addressable (Rank and why-not accept them) and
// dead locations still stretch the collection's bounding space, which
// normalizes distance scores — dropping them would change answers.
type Row struct {
	ID       uint32
	Alive    bool
	X, Y     float64
	Name     string
	Keywords []string
}

const (
	ckptMagic      = "YASKCKP1"
	ckptVersion    = 1
	ckptHeaderSize = 8 + 4 + 8 + 4 // magic + version u32 + lsn u64 + count u32
	ckptPrefix     = "ckpt-"
	ckptSuffix     = ".ckpt"
	// KeepCheckpoints is how many newest checkpoints PruneCheckpoints
	// preserves: the latest plus one fallback in case the latest is
	// damaged on disk.
	KeepCheckpoints = 2
)

func checkpointName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// appendRow serializes one checkpoint row.
func appendRow(buf []byte, r Row) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, r.ID)
	if r.Alive {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Y))
	var err error
	if buf, err = appendString(buf, r.Name); err != nil {
		return nil, err
	}
	if len(r.Keywords) > maxStringLen {
		return nil, fmt.Errorf("wal: checkpoint row has %d keywords (max %d)", len(r.Keywords), maxStringLen)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Keywords)))
	for _, kw := range r.Keywords {
		if buf, err = appendString(buf, kw); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func readRow(p *payloadReader) (Row, error) {
	var r Row
	id, err := p.u32()
	if err != nil {
		return Row{}, err
	}
	r.ID = id
	ab, err := p.need(1)
	if err != nil {
		return Row{}, err
	}
	switch ab[0] {
	case 0:
	case 1:
		r.Alive = true
	default:
		return Row{}, fmt.Errorf("bad alive flag %d", ab[0])
	}
	xb, err := p.u64()
	if err != nil {
		return Row{}, err
	}
	yb, err := p.u64()
	if err != nil {
		return Row{}, err
	}
	r.X, r.Y = math.Float64frombits(xb), math.Float64frombits(yb)
	if r.Name, err = p.str(); err != nil {
		return Row{}, err
	}
	nkw, err := p.u16()
	if err != nil {
		return Row{}, err
	}
	if nkw > 0 {
		r.Keywords = make([]string, nkw)
		for i := range r.Keywords {
			if r.Keywords[i], err = p.str(); err != nil {
				return Row{}, err
			}
		}
	}
	return r, nil
}

// WriteCheckpoint atomically writes a snapshot of rows covering every
// mutation through lsn into dir as ckpt-<lsn>.ckpt: serialized to a
// same-dir temp file, fsynced, closed, renamed into place, and the
// directory fsynced — a crash at any point leaves either the complete
// previous state or the complete new file, never a partial one. It
// returns the final path.
func WriteCheckpoint(dir string, lsn uint64, rows []Row) (string, error) {
	buf := make([]byte, 0, ckptHeaderSize+len(rows)*64)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	var err error
	for _, r := range rows {
		if buf, err = appendRow(buf, r); err != nil {
			return "", err
		}
	}
	// Trailing CRC32C over everything before it seals the whole file.
	buf = binary.LittleEndian.AppendUint32(buf, crc32Checksum(buf))

	final := filepath.Join(dir, checkpointName(lsn))
	tmp, err := os.CreateTemp(dir, ckptPrefix+"*.tmp")
	if err != nil {
		return "", err
	}
	tmpPath := tmp.Name()
	cleanup := func() { os.Remove(tmpPath) }
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", err
	}
	if err := os.Rename(tmpPath, final); err != nil {
		cleanup()
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readCheckpoint parses and fully verifies one checkpoint file.
func readCheckpoint(path string) (lsn uint64, rows []Row, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < ckptHeaderSize+4 {
		return 0, nil, corrupt(path, 0, "checkpoint shorter than its header")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if c := crc32Checksum(body); c != binary.LittleEndian.Uint32(tail) {
		return 0, nil, corrupt(path, int64(len(body)), "checkpoint CRC mismatch")
	}
	if string(body[:8]) != ckptMagic {
		return 0, nil, corrupt(path, 0, "bad checkpoint magic")
	}
	if v := binary.LittleEndian.Uint32(body[8:]); v != ckptVersion {
		return 0, nil, corrupt(path, 8, "unsupported checkpoint version %d", v)
	}
	lsn = binary.LittleEndian.Uint64(body[12:])
	count := binary.LittleEndian.Uint32(body[20:])
	p := payloadReader{b: body, off: ckptHeaderSize}
	rows = make([]Row, 0, count)
	for i := uint32(0); i < count; i++ {
		r, err := readRow(&p)
		if err != nil {
			return 0, nil, corrupt(path, int64(p.off), "checkpoint row %d: %v", i, err)
		}
		rows = append(rows, r)
	}
	if p.off != len(body) {
		return 0, nil, corrupt(path, int64(p.off), "%d trailing checkpoint bytes", len(body)-p.off)
	}
	return lsn, rows, nil
}

// listCheckpoints returns dir's checkpoint files sorted by LSN
// ascending.
func listCheckpoints(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var cps []segmentFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		lsn, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // a *.tmp leftover or foreign file; ignore
		}
		cps = append(cps, segmentFile{path: filepath.Join(dir, name), start: lsn})
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].start < cps[j].start })
	return cps, nil
}

// LoadCheckpoint returns the newest checkpoint in dir that verifies
// end-to-end, skipping damaged newer ones (the atomic-write protocol
// makes damage unlikely, but a fallback beats refusing to start when an
// older complete snapshot exists). It returns lsn 0 and nil rows when
// dir holds no checkpoint at all; it returns an error only when every
// present checkpoint is damaged — silently booting empty over corrupt
// snapshots would be the "silently stale answer" failure mode.
func LoadCheckpoint(dir string) (lsn uint64, rows []Row, err error) {
	cps, err := listCheckpoints(dir)
	if err != nil {
		return 0, nil, err
	}
	if len(cps) == 0 {
		return 0, nil, nil
	}
	var firstErr error
	for i := len(cps) - 1; i >= 0; i-- {
		lsn, rows, err := readCheckpoint(cps[i].path)
		if err == nil {
			return lsn, rows, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return 0, nil, firstErr
}

// PruneCheckpoints deletes all but the newest KeepCheckpoints
// checkpoint files, returning how many were removed.
func PruneCheckpoints(dir string) (int, error) {
	cps, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+KeepCheckpoints < len(cps); i++ {
		if err := os.Remove(cps[i].path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
