package wal_test

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"github.com/yask-engine/yask/internal/wal"
	"github.com/yask-engine/yask/internal/wal/faultio"
)

func rec(i int) wal.Record {
	if i%4 == 3 {
		return wal.Record{Op: wal.OpRemove, ID: uint32(i - 1)}
	}
	return wal.Record{
		Op:       wal.OpInsert,
		ID:       uint32(i),
		X:        float64(i) * 0.5,
		Y:        float64(-i) * 0.25,
		Name:     fmt.Sprintf("obj-%d", i),
		Keywords: []string{"coffee", "bar", fmt.Sprintf("k%d", i%3)},
	}
}

// writeFully appends n records with no fault and returns the directory
// and total bytes the log occupies, so crash tests can enumerate every
// byte offset.
func writeFully(t *testing.T, n int, segSize int64) (dir string, totalBytes int64, acked int) {
	t.Helper()
	dir = t.TempDir()
	l, _, err := wal.Open(dir, 0, wal.Options{Sync: wal.SyncAlways, SegmentSize: segSize})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, st.Size, n
}

// TestCrashAtEveryByteOffset is the core power-cut property: for every
// byte budget from 0 to the full log size, a writer that dies at that
// offset must leave a log that recovers to an exact prefix of the
// acknowledged records — never a wrong record, never an error.
func TestCrashAtEveryByteOffset(t *testing.T) {
	const n = 12
	// Small segments so the crash points also cover rotation boundaries.
	_, totalBytes, _ := writeFully(t, n, 256)

	for limit := int64(0); limit <= totalBytes; limit++ {
		dir := t.TempDir()
		in := faultio.NewInjector(limit)
		l, _, err := wal.Open(dir, 0, wal.Options{
			Sync:        wal.SyncAlways,
			SegmentSize: 256,
			WrapFile:    in.Wrap,
		})
		acked := 0
		if err == nil {
			for i := 0; i < n; i++ {
				if _, err := l.Append(rec(i)); err != nil {
					break
				}
				acked++
			}
			l.Close()
		}

		// Recover with a plain writer: the "power is back" boot.
		l2, recs, err := wal.Open(dir, 0, wal.Options{Sync: wal.SyncAlways, SegmentSize: 256})
		if err != nil {
			t.Fatalf("limit %d: recovery failed: %v", limit, err)
		}
		// Under SyncAlways every acknowledged record must survive, and
		// nothing beyond the attempted sequence can exist.
		if len(recs) < acked {
			t.Fatalf("limit %d: recovered %d records, acknowledged %d", limit, len(recs), acked)
		}
		if len(recs) > acked+1 {
			t.Fatalf("limit %d: recovered %d records but only %d+1 were ever written", limit, len(recs), acked)
		}
		for i, r := range recs {
			want := rec(i)
			want.LSN = uint64(i + 1)
			if !recordsEqual(r, want) {
				t.Fatalf("limit %d: record %d mismatch:\n got %+v\nwant %+v", limit, i, r, want)
			}
		}
		// The recovered log must accept new appends at the right LSN.
		lsn, err := l2.Append(rec(len(recs)))
		if err != nil || lsn != uint64(len(recs)+1) {
			t.Fatalf("limit %d: post-recovery append: lsn %d, err %v", limit, lsn, err)
		}
		l2.Close()
	}
}

func recordsEqual(a, b wal.Record) bool {
	if a.LSN != b.LSN || a.Op != b.Op || a.ID != b.ID || a.X != b.X || a.Y != b.Y || a.Name != b.Name || len(a.Keywords) != len(b.Keywords) {
		return false
	}
	for i := range a.Keywords {
		if a.Keywords[i] != b.Keywords[i] {
			return false
		}
	}
	return true
}

// TestShortWriteRepairKeepsLogUsable drives appends into an injected
// short write and checks the same process can keep appending after the
// error — the truncate-repair path, not just the reopen path.
func TestShortWriteRepairKeepsLogUsable(t *testing.T) {
	for limit := int64(20); limit <= 400; limit += 7 {
		dir := t.TempDir()
		in := faultio.NewInjector(limit)
		l, _, err := wal.Open(dir, 0, wal.Options{Sync: wal.SyncNone, SegmentSize: 1 << 20, WrapFile: in.Wrap})
		if err != nil {
			continue // header write already hit the limit
		}
		acked := 0
		sawErr := false
		for i := 0; i < 10; i++ {
			if _, err := l.Append(rec(i)); err != nil {
				sawErr = true
				break
			}
			acked++
		}
		l.Close()
		if !sawErr && acked == 10 {
			continue // limit above total volume; nothing tripped
		}
		_, recs, err := wal.Open(dir, 0, wal.Options{})
		if err != nil {
			t.Fatalf("limit %d: recovery: %v", limit, err)
		}
		if len(recs) != acked {
			t.Fatalf("limit %d: recovered %d records, acknowledged %d", limit, len(recs), acked)
		}
	}
}

// TestBitFlipSurfacesTypedCorruption flips every byte inside sealed
// (non-final) segments and the interior records of the final segment:
// recovery must fail with an error matching wal.ErrCorrupt — a wrong
// answer is never acceptable, and interior damage is never a torn tail.
func TestBitFlipSurfacesTypedCorruption(t *testing.T) {
	const n = 10
	dir, _, _ := writeFully(t, n, 256)
	infos, err := wal.Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	for si, info := range infos {
		data, err := os.ReadFile(info.Path)
		if err != nil {
			t.Fatal(err)
		}
		final := si == len(infos)-1
		// In the final segment only damage strictly before the last
		// record is unambiguous corruption; at the tail it is
		// indistinguishable from a torn write and may legally truncate.
		flipEnd := int64(len(data))
		if final && len(info.Records) > 0 {
			last := info.Records[len(info.Records)-1]
			flipEnd = last.Offset
		}
		for off := int64(0); off < flipEnd; off++ {
			corrupted := make([]byte, len(data))
			copy(corrupted, data)
			corrupted[off] ^= 0x80
			if err := os.WriteFile(info.Path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := wal.Open(dir, 0, wal.Options{})
			if err == nil {
				t.Fatalf("segment %d byte %d: bit flip recovered silently", si, off)
			}
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("segment %d byte %d: err %v does not match wal.ErrCorrupt", si, off, err)
			}
			var ce *wal.CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("segment %d byte %d: err %T is not *wal.CorruptionError", si, off, err)
			}
		}
		if err := os.WriteFile(info.Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTailFlipNeverYieldsWrongRecord flips bytes in the final record of
// the newest segment: the outcome may be a clean truncation (torn-tail
// classification) or a typed corruption error, but never a record that
// differs from what was written.
func TestTailFlipNeverYieldsWrongRecord(t *testing.T) {
	const n = 6
	dir, _, _ := writeFully(t, n, 1<<20) // one segment
	infos, err := wal.Segments(dir)
	if err != nil || len(infos) != 1 {
		t.Fatalf("want 1 segment, got %d (err %v)", len(infos), err)
	}
	info := infos[0]
	last := info.Records[len(info.Records)-1]
	data, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	for off := last.Offset; off < int64(len(data)); off++ {
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		corrupted[off] ^= 0x01
		if err := os.WriteFile(info.Path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		_, recs, err := wal.Open(dir, 0, wal.Options{})
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("byte %d: untyped error %v", off, err)
			}
			continue
		}
		if len(recs) > n {
			t.Fatalf("byte %d: recovered %d records from a log of %d", off, len(recs), n)
		}
		for i, r := range recs {
			want := rec(i)
			want.LSN = uint64(i + 1)
			if !recordsEqual(r, want) {
				t.Fatalf("byte %d: flip produced a wrong record %d: %+v", off, i, r)
			}
		}
	}
	if err := os.WriteFile(info.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMissingSegmentIsCorruption deletes an interior segment: the LSN
// chain break must surface as typed corruption.
func TestMissingSegmentIsCorruption(t *testing.T) {
	dir, _, _ := writeFully(t, 12, 256)
	infos, err := wal.Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	if len(infos) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(infos))
	}
	if err := os.Remove(infos[1].Path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(dir, 0, wal.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("missing interior segment: err = %v, want ErrCorrupt", err)
	}
}

// TestFailSyncSurfacesError checks a failing fsync is reported to the
// appender under SyncAlways — an unreported sync failure would break
// the acknowledgement contract.
func TestFailSyncSurfacesError(t *testing.T) {
	dir := t.TempDir()
	in := faultio.NewInjector(200).FailSync()
	l, _, err := wal.Open(dir, 0, wal.Options{Sync: wal.SyncAlways, WrapFile: in.Wrap})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	sawErr := false
	for i := 0; i < 20; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatalf("20 appends with a tripping injector all acknowledged")
	}
}
