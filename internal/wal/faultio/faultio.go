// Package faultio provides a fault-injecting file wrapper for the WAL
// tests: a writer that short-writes or fails outright once a byte
// budget is exhausted, simulating a power cut at an exact byte offset,
// and optionally failing Sync. Injected via wal.Options.WrapFile, it
// exercises the log's short-write repair and torn-tail recovery without
// touching the on-disk format.
package faultio

import (
	"errors"
	"os"
	"sync"

	"github.com/yask-engine/yask/internal/wal"
)

// ErrInjected is the error every injected failure returns (wrapped).
var ErrInjected = errors.New("faultio: injected fault")

// Injector produces wrapped files sharing one byte budget, so a limit
// spans segment rotations exactly like a machine-wide power cut would.
type Injector struct {
	mu sync.Mutex
	// remaining is how many more bytes writes may consume before faults
	// begin; negative means unlimited.
	remaining int64
	failSync  bool
	tripped   bool
}

// NewInjector returns an injector that lets limit bytes through across
// all wrapped files, then short-writes the crossing write and fails
// every write after it. A negative limit never trips.
func NewInjector(limit int64) *Injector {
	return &Injector{remaining: limit}
}

// FailSync makes every Sync after the trip point fail too.
func (in *Injector) FailSync() *Injector {
	in.mu.Lock()
	in.failSync = true
	in.mu.Unlock()
	return in
}

// Tripped reports whether the byte budget has been exhausted.
func (in *Injector) Tripped() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tripped
}

// Wrap is the wal.Options.WrapFile hook.
func (in *Injector) Wrap(f *os.File) wal.File {
	return &file{in: in, f: f}
}

type file struct {
	in *Injector
	f  *os.File
}

func (w *file) Write(p []byte) (int, error) {
	w.in.mu.Lock()
	defer w.in.mu.Unlock()
	if w.in.remaining < 0 {
		return w.f.Write(p)
	}
	if w.in.remaining == 0 {
		w.in.tripped = true
		return 0, ErrInjected
	}
	if int64(len(p)) > w.in.remaining {
		// The power cut lands mid-write: persist the prefix, report the
		// short write.
		n, err := w.f.Write(p[:w.in.remaining])
		w.in.remaining = 0
		w.in.tripped = true
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	n, err := w.f.Write(p)
	w.in.remaining -= int64(n)
	return n, err
}

func (w *file) Sync() error {
	w.in.mu.Lock()
	failing := w.in.tripped && w.in.failSync
	w.in.mu.Unlock()
	if failing {
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *file) Close() error { return w.f.Close() }

// FlipBit flips bit (off mod 8) of the byte at offset off in the file
// at path — the at-rest counterpart to the injector's in-flight faults,
// used to prove every on-disk structure (WAL segments, checkpoints,
// arena files) detects single-bit rot at any offset.
func FlipBit(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (off % 8)
	_, err = f.WriteAt(b[:], off)
	return err
}

// TruncateAt cuts the file at path to n bytes, simulating a torn write
// or partial copy of an at-rest file.
func TruncateAt(path string, n int64) error {
	return os.Truncate(path, n)
}
