package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func insertRec(id uint32) Record {
	return Record{
		Op:       OpInsert,
		ID:       id,
		X:        float64(id) * 1.5,
		Y:        float64(id) * -0.25,
		Name:     fmt.Sprintf("object-%d", id),
		Keywords: []string{"coffee", fmt.Sprintf("kw%d", id%7)},
	}
}

func mustAppend(t *testing.T, l *Log, r Record) uint64 {
	t.Helper()
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func sameRecord(a, b Record) bool {
	if a.LSN != b.LSN || a.Op != b.Op || a.ID != b.ID || a.X != b.X || a.Y != b.Y || a.Name != b.Name {
		return false
	}
	if len(a.Keywords) != len(b.Keywords) {
		return false
	}
	for i := range a.Keywords {
		if a.Keywords[i] != b.Keywords[i] {
			return false
		}
	}
	return true
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want []Record
	for i := 0; i < 25; i++ {
		r := insertRec(uint32(i))
		if i%5 == 4 {
			r = Record{Op: OpRemove, ID: uint32(i - 2)}
		}
		lsn := mustAppend(t, l, r)
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d, want %d", i, lsn, i+1)
		}
		r.LSN = lsn
		want = append(want, r)
	}
	// The live byte counter must track what is actually on disk — it is
	// the walBytes operators watch, not a recount-time snapshot.
	onDisk := int64(0)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	if st := l.Stats(); st.Size != onDisk {
		t.Fatalf("Stats.Size %d, on-disk %d", st.Size, onDisk)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, got, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestOpenSkipsThroughAfterLSN(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, insertRec(uint32(i)))
	}
	l.Close()

	_, recs, err := Open(dir, 6, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 4 || recs[0].LSN != 7 {
		t.Fatalf("afterLSN=6 replayed %d records starting at %d, want 4 starting at 7", len(recs), recs[0].LSN)
	}
}

func TestSegmentRotationAndRetire(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l, _, err := Open(dir, 0, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, insertRec(uint32(i)))
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations at SegmentSize=128 after 20 records")
	}
	if st.Segments < 2 {
		t.Fatalf("got %d segments, want >= 2", st.Segments)
	}

	// Everything except the active segment is retirable at the last LSN.
	removed, err := l.Retire(l.LastLSN())
	if err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if removed != st.Segments-1 {
		t.Fatalf("retired %d segments, want %d", removed, st.Segments-1)
	}
	// Retiring below the oldest remaining record removes nothing.
	if n, _ := l.Retire(l.LastLSN()); n != 0 {
		t.Fatalf("second retire removed %d segments", n)
	}
	l.Close()

	// The chain must still replay from the records' own LSNs after
	// retirement, given a checkpoint covering the deleted prefix.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 segment after retire, got %d (err %v)", len(segs), err)
	}
	_, recs, err := Open(dir, segs[0].start-1, Options{})
	if err != nil {
		t.Fatalf("reopen after retire: %v", err)
	}
	if len(recs) == 0 || recs[0].LSN != segs[0].start {
		t.Fatalf("replay after retire got %d records starting at %d, want start %d", len(recs), recs[0].LSN, segs[0].start)
	}
	// Without a covering checkpoint the missing prefix is corruption.
	if _, _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with afterLSN=0 over a retired prefix: err = %v, want ErrCorrupt", err)
	}
}

func TestRotateSealsForRetire(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, l, insertRec(uint32(i)))
	}
	// Nothing retirable while all records sit in the active segment.
	if n, _ := l.Retire(l.LastLSN()); n != 0 {
		t.Fatalf("retired %d segments before rotate", n)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	n, err := l.Retire(l.LastLSN())
	if err != nil || n != 1 {
		t.Fatalf("retire after rotate removed %d (err %v), want 1", n, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), 0, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		for i := 0; i < 3; i++ {
			mustAppend(t, l, insertRec(uint32(i)))
		}
		// Header write plus three records: at least one fsync per append.
		if st := l.Stats(); st.Fsyncs < 3 {
			t.Fatalf("SyncAlways issued %d fsyncs for 3 appends", st.Fsyncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), 0, Options{Sync: SyncInterval, SyncInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		for i := 0; i < 3; i++ {
			mustAppend(t, l, insertRec(uint32(i)))
		}
		deadline := time.Now().Add(5 * time.Second)
		for l.Stats().Fsyncs == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("interval sync never fired")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("none", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), 0, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i := 0; i < 3; i++ {
			mustAppend(t, l, insertRec(uint32(i)))
		}
		if st := l.Stats(); st.Fsyncs != 0 {
			t.Fatalf("SyncNone issued %d fsyncs before close", st.Fsyncs)
		}
		l.Close()
	})
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"none", SyncNone, true},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip %v via %q failed: %v, %v", p, p.String(), back, err)
		}
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{Sync: SyncNone, SegmentSize: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(insertRec(uint32(w*per + i))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Stats must be safe to read concurrently with appends.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = l.Stats()
		}
	}()
	wg.Wait()
	<-done
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recs, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _, err := Open(t.TempDir(), 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Close()
	if _, err := l.Append(insertRec(1)); err == nil {
		t.Fatalf("Append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestEmptySegmentAfterHeaderTornAway(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, insertRec(1))
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	l.Close()
	// Tear the newest (empty) segment down to a partial header.
	segs, _ := listSegments(dir)
	last := segs[len(segs)-1].path
	if err := os.Truncate(last, 3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	l2, recs, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("reopen over torn header: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	// The log must still be appendable (header rewritten).
	if _, err := l2.Append(insertRec(2)); err != nil {
		t.Fatalf("append after torn-header repair: %v", err)
	}
	l2.Close()
	if _, recs, err = Open(dir, 0, Options{}); err != nil || len(recs) != 2 {
		t.Fatalf("final replay: %d records, err %v", len(recs), err)
	}
}

func TestSegmentsScan(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, insertRec(uint32(i)))
	}
	l.Close()
	infos, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	total, next := 0, uint64(1)
	for _, info := range infos {
		off := int64(segHeaderSize)
		for _, rp := range info.Records {
			if rp.Offset != off {
				t.Fatalf("record %d of %s at offset %d, want %d", rp.Record.LSN, info.Path, rp.Offset, off)
			}
			if rp.Record.LSN != next {
				t.Fatalf("scan out of order: LSN %d, want %d", rp.Record.LSN, next)
			}
			off += rp.Size
			next++
			total++
		}
		fi, err := os.Stat(info.Path)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if off != fi.Size() {
			t.Fatalf("%s: record sizes sum to %d, file is %d", info.Path, off, fi.Size())
		}
	}
	if total != 10 {
		t.Fatalf("scanned %d records, want 10", total)
	}
}

func TestOversizeFieldsRejected(t *testing.T) {
	l, _, err := Open(t.TempDir(), 0, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	big := make([]byte, maxStringLen+1)
	if _, err := l.Append(Record{Op: OpInsert, ID: 0, Name: string(big)}); err == nil {
		t.Fatalf("oversize name accepted")
	}
	// The failed append must not burn an LSN or poison the log.
	lsn := mustAppend(t, l, insertRec(1))
	if lsn != 1 {
		t.Fatalf("LSN after rejected append = %d, want 1", lsn)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "wal-subdir.log"), 0o755); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("Open with foreign files: %v", err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from foreign files", len(recs))
	}
}
