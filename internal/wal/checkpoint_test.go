package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ckptRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			ID:       uint32(i),
			Alive:    i%4 != 3,
			X:        float64(i) * 2.5,
			Y:        float64(i) * -1.25,
			Name:     fmt.Sprintf("row-%d", i),
			Keywords: []string{"kw", fmt.Sprintf("tag%d", i%5)},
		}
	}
	return rows
}

func sameRows(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Alive != b[i].Alive || a[i].X != b[i].X || a[i].Y != b[i].Y || a[i].Name != b[i].Name {
			return false
		}
		if len(a[i].Keywords) != len(b[i].Keywords) {
			return false
		}
		for j := range a[i].Keywords {
			if a[i].Keywords[j] != b[i].Keywords[j] {
				return false
			}
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := ckptRows(37)
	path, err := WriteCheckpoint(dir, 99, want)
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("checkpoint landed in %s", path)
	}
	lsn, got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if lsn != 99 {
		t.Fatalf("lsn = %d, want 99", lsn)
	}
	if !sameRows(got, want) {
		t.Fatalf("rows mismatch")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadCheckpointEmptyDir(t *testing.T) {
	lsn, rows, err := LoadCheckpoint(t.TempDir())
	if err != nil || lsn != 0 || rows != nil {
		t.Fatalf("empty dir: lsn=%d rows=%v err=%v", lsn, rows, err)
	}
	// A directory that does not exist at all behaves the same.
	lsn, rows, err = LoadCheckpoint(filepath.Join(t.TempDir(), "nope"))
	if err != nil || lsn != 0 || rows != nil {
		t.Fatalf("missing dir: lsn=%d rows=%v err=%v", lsn, rows, err)
	}
}

func TestLoadCheckpointNewestWinsAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	oldRows, newRows := ckptRows(5), ckptRows(9)
	if _, err := WriteCheckpoint(dir, 10, oldRows); err != nil {
		t.Fatal(err)
	}
	newest, err := WriteCheckpoint(dir, 20, newRows)
	if err != nil {
		t.Fatal(err)
	}
	lsn, rows, err := LoadCheckpoint(dir)
	if err != nil || lsn != 20 || !sameRows(rows, newRows) {
		t.Fatalf("newest-wins failed: lsn=%d err=%v", lsn, err)
	}

	// Damage the newest: loading falls back to the older complete one.
	data, _ := os.ReadFile(newest)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lsn, rows, err = LoadCheckpoint(dir)
	if err != nil || lsn != 10 || !sameRows(rows, oldRows) {
		t.Fatalf("fallback failed: lsn=%d err=%v", lsn, err)
	}
}

func TestLoadCheckpointAllDamagedIsTypedError(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteCheckpoint(dir, 5, ckptRows(3))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	for off := 0; off < len(data); off++ {
		c := make([]byte, len(data))
		copy(c, data)
		c[off] ^= 0x40
		if err := os.WriteFile(path, c, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// Truncations anywhere must also be typed corruption.
	for cut := 0; cut < len(data); cut += 7 {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 5; i++ {
		if _, err := WriteCheckpoint(dir, uint64(i*10), ckptRows(i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneCheckpoints(dir)
	if err != nil {
		t.Fatalf("PruneCheckpoints: %v", err)
	}
	if removed != 5-KeepCheckpoints {
		t.Fatalf("removed %d, want %d", removed, 5-KeepCheckpoints)
	}
	cps, err := listCheckpoints(dir)
	if err != nil || len(cps) != KeepCheckpoints {
		t.Fatalf("left %d checkpoints (err %v), want %d", len(cps), err, KeepCheckpoints)
	}
	if cps[len(cps)-1].start != 50 {
		t.Fatalf("newest surviving checkpoint at LSN %d, want 50", cps[len(cps)-1].start)
	}
	lsn, _, err := LoadCheckpoint(dir)
	if err != nil || lsn != 50 {
		t.Fatalf("load after prune: lsn=%d err=%v", lsn, err)
	}
}

func TestCheckpointIgnoresForeignAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ckptPrefix+"x.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 7, ckptRows(2)); err != nil {
		t.Fatal(err)
	}
	lsn, _, err := LoadCheckpoint(dir)
	if err != nil || lsn != 7 {
		t.Fatalf("temp file confused loading: lsn=%d err=%v", lsn, err)
	}
}

func TestCheckpointEmptyRows(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, 0, nil); err != nil {
		t.Fatalf("empty checkpoint: %v", err)
	}
	lsn, rows, err := LoadCheckpoint(dir)
	if err != nil || lsn != 0 || len(rows) != 0 {
		t.Fatalf("empty checkpoint load: lsn=%d rows=%d err=%v", lsn, len(rows), err)
	}
}
