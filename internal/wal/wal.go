package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when an Append is made power-cut durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs every record before Append returns: an
	// acknowledged mutation survives a power cut. The safest and
	// slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes every record to the file immediately (so a
	// process crash loses nothing) but fsyncs on a timer: a power cut
	// may lose up to SyncInterval of acknowledged mutations — recovery
	// still restores an exact earlier prefix, never a wrong state.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	// Process crashes lose nothing, power cuts may lose unbounded
	// acknowledged mutations (still to an exact prefix on the happy
	// path, or a typed corruption error if the page cache landed out of
	// order).
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy resolves the flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or none)", s)
}

// File is the writable-file surface the log needs; *os.File satisfies
// it. Options.WrapFile lets tests interpose a failing writer
// (faultio.Wrap) without touching the on-disk layout.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures Open.
type Options struct {
	// SegmentSize rotates to a new segment file once the current one
	// grows past this many bytes; zero means DefaultSegmentSize.
	SegmentSize int64
	// Sync selects the fsync policy (zero value: SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the flush period of SyncInterval; zero means
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// WrapFile, when non-nil, wraps every segment file the log writes
	// through — the fault-injection hook. Scanning and truncation still
	// operate on the underlying file.
	WrapFile func(*os.File) File
}

const (
	// DefaultSegmentSize keeps individual segments comfortably
	// re-scannable while bounding the file count.
	DefaultSegmentSize = 64 << 20
	// DefaultSyncInterval is the SyncInterval flush period.
	DefaultSyncInterval = 100 * time.Millisecond
)

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	return o
}

const (
	segMagic      = "YASKWAL1"
	segVersion    = 1
	segHeaderSize = 16 // magic(8) + version u32 + reserved u32
	segPrefix     = "wal-"
	segSuffix     = ".log"
)

func segmentName(startLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, startLSN, segSuffix)
}

// Stats is a point-in-time snapshot of the log's durability counters.
type Stats struct {
	// Appends counts records appended since open; Fsyncs the explicit
	// file syncs issued; Rotations the segment rotations.
	Appends   int64
	Fsyncs    int64
	Rotations int64
	// Segments is the number of live segment files, Size their total
	// bytes.
	Segments int
	Size     int64
	// LastLSN is the newest assigned LSN (0 before any record).
	LastLSN uint64
}

// Log is an open write-ahead log. Append is safe for concurrent use;
// callers that need WAL order to match an external apply order (the
// engine does) serialize Append with the apply under their own lock.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current segment (truncation, size)
	w        File     // write surface (f, possibly wrapped)
	path     string
	size     int64
	startLSN uint64 // first LSN of the current segment
	lastLSN  uint64
	segments int
	dirty    bool // bytes written since the last fsync
	timerSet bool // SyncInterval trailing-edge flush armed
	closed   bool
	broken   error  // sticky failure after an unrepairable short write
	buf      []byte // frame scratch, reused across appends

	appends   atomic.Int64
	fsyncs    atomic.Int64
	rotations atomic.Int64
	totalSize atomic.Int64 // bytes in retired-eligible segments + current
}

// Open scans dir's segments, truncates a torn tail on the newest one,
// and returns the log positioned for append plus every intact record
// with LSN > afterLSN, in order. afterLSN is the LSN the caller's
// checkpoint already covers (0 for none); records at or below it are
// skipped, and a chain that starts above afterLSN+1 is corruption
// (segments the checkpoint does not cover are missing).
func Open(dir string, afterLSN uint64, opts Options) (*Log, []Record, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, opts: opts, lastLSN: afterLSN}
	var recs []Record
	chainNext := uint64(0) // expected start LSN of the next segment; 0 = first
	for i, sg := range segs {
		final := i == len(segs)-1
		if chainNext != 0 && sg.start != chainNext {
			return nil, nil, corrupt(sg.path, 0, "segment starts at LSN %d, want %d (missing or misnamed segment)", sg.start, chainNext)
		}
		if chainNext == 0 && sg.start > afterLSN+1 {
			return nil, nil, corrupt(sg.path, 0, "oldest segment starts at LSN %d but the checkpoint only covers through %d", sg.start, afterLSN)
		}
		srecs, validLen, err := scanSegment(sg.path, sg.start, final)
		if err != nil {
			return nil, nil, err
		}
		if final {
			if fi, err := os.Stat(sg.path); err == nil && fi.Size() > validLen {
				// Torn tail: drop the partial record of the crashed append.
				// It was never acknowledged under SyncAlways; under the
				// relaxed policies this is the documented loss window.
				if err := os.Truncate(sg.path, validLen); err != nil {
					return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", sg.path, err)
				}
			}
		}
		for _, r := range srecs {
			if r.LSN > afterLSN {
				recs = append(recs, r)
			}
		}
		if n := len(srecs); n > 0 {
			chainNext = srecs[n-1].LSN + 1
			if srecs[n-1].LSN > l.lastLSN {
				l.lastLSN = srecs[n-1].LSN
			}
		} else {
			chainNext = sg.start
		}
	}

	if len(segs) > 0 {
		// Continue appending to the newest segment.
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f, l.path, l.size, l.startLSN = f, last.path, fi.Size(), last.start
		l.w = l.wrap(f)
		l.segments = len(segs)
		if l.size == 0 {
			// A crash tore the segment down to nothing (or creation never
			// landed); rewrite the header.
			if err := l.writeHeaderLocked(); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	} else if err := l.newSegmentLocked(l.lastLSN + 1); err != nil {
		return nil, nil, err
	}
	l.recountSizeLocked()
	return l, recs, nil
}

func (l *Log) wrap(f *os.File) File {
	if l.opts.WrapFile != nil {
		return l.opts.WrapFile(f)
	}
	return f
}

// writeHeaderLocked writes the 16-byte segment header at the current
// position (the start of an empty segment).
func (l *Log) writeHeaderLocked() error {
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	n, err := l.w.Write(hdr)
	l.size += int64(n)
	l.totalSize.Add(int64(n))
	if err != nil {
		return err
	}
	l.dirty = true
	return nil
}

// newSegmentLocked creates and opens segment wal-<startLSN>.log.
func (l *Log) newSegmentLocked(startLSN uint64) error {
	path := filepath.Join(l.dir, segmentName(startLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f, l.path, l.size, l.startLSN = f, path, 0, startLSN
	l.w = l.wrap(f)
	l.segments++
	if err := l.writeHeaderLocked(); err != nil {
		return err
	}
	// Make the directory entry durable so recovery sees the chain link.
	return syncDir(l.dir)
}

// Append assigns the next LSN to r, writes the record, and
// acknowledges it per the sync policy. The returned LSN is dense from
// 1 across the log's whole life. A failed append leaves the log exactly
// as before (a short write is truncated away); if even the repair
// fails, the log turns sticky-broken and every later Append reports it.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log is failed: %w", l.broken)
	}
	if l.size >= l.opts.SegmentSize && l.size > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	r.LSN = l.lastLSN + 1
	buf, err := appendFrame(l.buf[:0], r)
	if err != nil {
		return 0, err
	}
	l.buf = buf[:0]
	pre := l.size
	n, err := l.w.Write(buf)
	l.size += int64(n)
	l.totalSize.Add(int64(n))
	if err != nil {
		// Cut the torn record back off so the next append starts clean.
		if terr := l.f.Truncate(pre); terr != nil {
			l.broken = fmt.Errorf("append failed (%v) and truncate-repair failed: %w", err, terr)
		} else {
			l.size = pre
			l.totalSize.Add(-int64(n))
			if _, serr := l.f.Seek(pre, io.SeekStart); serr != nil {
				l.broken = fmt.Errorf("append failed (%v) and reseek failed: %w", err, serr)
			}
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.lastLSN = r.LSN
	l.dirty = true
	l.appends.Add(1)
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	case SyncInterval:
		if !l.timerSet {
			l.timerSet = true
			time.AfterFunc(l.opts.SyncInterval, l.intervalSync)
		}
	}
	return r.LSN, nil
}

var errClosed = fmt.Errorf("wal: log is closed")

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// intervalSync is the SyncInterval trailing edge: flush whatever
// accumulated since the timer was armed.
func (l *Log) intervalSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timerSet = false
	if l.closed {
		return
	}
	// A flush failure here has no caller to report to; the next Append
	// with SyncAlways semantics (Close, Rotate, Checkpoint) surfaces it.
	_ = l.syncLocked()
}

// Sync forces an fsync of the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	return l.syncLocked()
}

// rotateLocked syncs and closes the current segment and starts the
// next one at lastLSN+1. Syncing before the new segment exists is what
// confines torn writes to the newest segment — recovery relies on it.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.w.Close(); err != nil {
		return err
	}
	l.rotations.Add(1)
	return l.newSegmentLocked(l.lastLSN + 1)
}

// Rotate forces a segment rotation so every record appended so far
// lives in a sealed segment — the checkpoint path calls it right after
// writing a snapshot, making those segments retirable.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if l.size <= segHeaderSize {
		return nil // already empty; nothing to seal
	}
	return l.rotateLocked()
}

// Retire deletes every sealed segment whose records all have LSN ≤
// upTo — the WAL-garbage-collection half of a checkpoint. The active
// segment is never deleted. It returns how many segments were removed.
func (l *Log) Retire(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, sg := range segs {
		if sg.path == l.path {
			break // the active segment and anything after it stay
		}
		// A sealed segment's records end right before the next segment's
		// first LSN.
		if i+1 >= len(segs) || segs[i+1].start > upTo+1 {
			break
		}
		if err := os.Remove(sg.path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		l.segments -= removed
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	l.recountSizeLocked()
	return removed, nil
}

func (l *Log) recountSizeLocked() {
	total := int64(0)
	if segs, err := listSegments(l.dir); err == nil {
		l.segments = len(segs)
		for _, sg := range segs {
			if sg.path == l.path {
				total += l.size
				continue
			}
			if fi, err := os.Stat(sg.path); err == nil {
				total += fi.Size()
			}
		}
	}
	l.totalSize.Store(total)
}

// LastLSN returns the newest assigned LSN (0 before any record).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Stats snapshots the durability counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segments, lastLSN := l.segments, l.lastLSN
	l.mu.Unlock()
	return Stats{
		Appends:   l.appends.Load(),
		Fsyncs:    l.fsyncs.Load(),
		Rotations: l.rotations.Load(),
		Segments:  segments,
		Size:      l.totalSize.Load(),
		LastLSN:   lastLSN,
	}
}

// Close flushes, fsyncs, and closes the log. The log is unusable
// afterwards; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// segmentFile is one discovered segment.
type segmentFile struct {
	path  string
	start uint64
}

// listSegments returns dir's segment files sorted by start LSN.
func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, corrupt(filepath.Join(dir, name), 0, "unparseable segment name")
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, name), start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// scanSegment validates one segment and returns its intact records plus
// the byte length of the valid prefix. For the final (newest) segment a
// short or tail-terminal damaged record is classified as a torn write
// and simply ends the valid prefix; anywhere else the same damage is a
// *CorruptionError — rotation syncs segments before sealing them, so
// only the newest segment can legitimately hold a torn tail.
func scanSegment(path string, startLSN uint64, final bool) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < segHeaderSize {
		if final {
			return nil, 0, nil // torn creation; Open rewrites the header
		}
		return nil, 0, corrupt(path, 0, "segment shorter than its header")
	}
	if string(data[:8]) != segMagic {
		return nil, 0, corrupt(path, 0, "bad segment magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != segVersion {
		return nil, 0, corrupt(path, 8, "unsupported segment version %d", v)
	}
	if r := binary.LittleEndian.Uint32(data[12:]); r != 0 {
		return nil, 0, corrupt(path, 12, "nonzero reserved header field %#x", r)
	}

	var recs []Record
	next := startLSN
	off := int64(segHeaderSize)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < frameHeaderSize {
			if final {
				return classifyTail(path, data, off, next, recs) // torn header
			}
			return nil, 0, corrupt(path, off, "truncated frame header inside a sealed segment")
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		pcrc := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordSize {
			if final {
				return classifyTail(path, data, off, next, recs) // garbage length
			}
			return nil, 0, corrupt(path, off, "frame length %d exceeds the record limit", plen)
		}
		end := off + frameHeaderSize + plen
		if end > int64(len(data)) {
			if final {
				return classifyTail(path, data, off, next, recs) // ran past the crash point
			}
			return nil, 0, corrupt(path, off, "record of %d bytes runs past the sealed segment end", plen)
		}
		payload := data[off+frameHeaderSize : end]
		if c := crc32Checksum(payload); c != pcrc {
			if final {
				return classifyTail(path, data, off, next, recs)
			}
			return nil, 0, corrupt(path, off, "record CRC mismatch (stored %08x, computed %08x)", pcrc, c)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, 0, corrupt(path, off, "undecodable record: %v", err)
		}
		if rec.LSN != next {
			return nil, 0, corrupt(path, off, "record LSN %d, want %d (sequence gap)", rec.LSN, next)
		}
		next++
		recs = append(recs, rec)
		off = end
	}
}

// classifyTail decides whether damage at off in the newest segment is a
// torn tail (truncate, keep the prefix) or interior corruption (typed
// error). A genuine torn write is the last thing in the file — nothing
// intact can follow it — so if any complete, CRC-valid record with a
// plausible LSN parses at a later offset, a bit flip damaged an interior
// record and silently dropping it (and everything after) would lose
// acknowledged mutations.
func classifyTail(path string, data []byte, off int64, next uint64, recs []Record) ([]Record, int64, error) {
	for c := off + 1; c+frameHeaderSize <= int64(len(data)); c++ {
		plen := int64(binary.LittleEndian.Uint32(data[c:]))
		if plen > maxRecordSize || c+frameHeaderSize+plen > int64(len(data)) {
			continue
		}
		payload := data[c+frameHeaderSize : c+frameHeaderSize+plen]
		if crc32Checksum(payload) != binary.LittleEndian.Uint32(data[c+4:]) {
			continue
		}
		r, err := decodePayload(payload)
		if err != nil || r.LSN < next {
			continue
		}
		return nil, 0, corrupt(path, off, "damaged record is followed by an intact record (LSN %d at offset %d): interior corruption, not a torn tail", r.LSN, c)
	}
	return recs, off, nil
}

func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// RecordPos locates one intact record inside a segment: the byte offset
// of its frame and the frame's total size. Tests and tooling use it to
// enumerate crash points.
type RecordPos struct {
	Record Record
	Offset int64
	Size   int64
}

// SegmentInfo describes one segment file and its intact records.
type SegmentInfo struct {
	Path     string
	StartLSN uint64
	Records  []RecordPos
}

// Segments scans dir read-only and returns every segment with its
// record positions. The newest segment's torn tail (if any) is
// tolerated and simply ends its record list; corruption elsewhere is a
// *CorruptionError.
func Segments(dir string) ([]SegmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for i, sg := range segs {
		recs, _, err := scanSegment(sg.path, sg.start, i == len(segs)-1)
		if err != nil {
			return nil, err
		}
		info := SegmentInfo{Path: sg.path, StartLSN: sg.start}
		off := int64(segHeaderSize)
		for _, r := range recs {
			// Re-derive the frame size from the record to keep the scan
			// single-pass; encoding is deterministic.
			frame, err := appendFrame(nil, r)
			if err != nil {
				return nil, err
			}
			info.Records = append(info.Records, RecordPos{Record: r, Offset: off, Size: int64(len(frame))})
			off += int64(len(frame))
		}
		out = append(out, info)
	}
	return out, nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
