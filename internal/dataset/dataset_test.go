package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(200, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objects.Len() != 200 || b.Objects.Len() != 200 {
		t.Fatalf("sizes %d/%d", a.Objects.Len(), b.Objects.Len())
	}
	for i := 0; i < 200; i++ {
		oa, ob := a.Objects.Get(object.ID(i)), b.Objects.Get(object.ID(i))
		if oa.Loc != ob.Loc || !oa.Doc.Equal(ob.Doc) {
			t.Fatalf("object %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(50, 1))
	b, _ := Generate(DefaultConfig(50, 2))
	same := true
	for i := 0; i < 50; i++ {
		if a.Objects.Get(object.ID(i)).Loc != b.Objects.Get(object.ID(i)).Loc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical locations")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	cfg := DefaultConfig(300, 7)
	cfg.MinKeywords, cfg.MaxKeywords = 2, 5
	cfg.Extent = 100
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	space := ds.Objects.Space()
	for _, o := range ds.Objects.All() {
		if n := o.Doc.Len(); n < 2 || n > 5 {
			t.Fatalf("object %d has %d keywords, want [2,5]", o.ID, n)
		}
		if o.Loc.X < 0 || o.Loc.X > 100 || o.Loc.Y < 0 || o.Loc.Y > 100 {
			t.Fatalf("object %d at %v outside extent", o.ID, o.Loc)
		}
		if !o.Doc.Canonical() {
			t.Fatalf("object %d doc not canonical", o.ID)
		}
	}
	if space.Width() > 100 || space.Height() > 100 {
		t.Fatalf("space %v larger than extent", space)
	}
}

func TestGenerateUniform(t *testing.T) {
	cfg := DefaultConfig(500, 3)
	cfg.Spatial = Uniform
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data should spread over most of the extent.
	if ds.Objects.Space().Width() < cfg.Extent/2 {
		t.Fatalf("uniform data suspiciously narrow: %v", ds.Objects.Space())
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{N: -1, VocabSize: 10, MinKeywords: 1, MaxKeywords: 2, ZipfS: 1.5, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 0, MinKeywords: 1, MaxKeywords: 2, ZipfS: 1.5, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 10, MinKeywords: 0, MaxKeywords: 2, ZipfS: 1.5, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 10, MinKeywords: 3, MaxKeywords: 2, ZipfS: 1.5, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 4, MinKeywords: 1, MaxKeywords: 5, ZipfS: 1.5, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 10, MinKeywords: 1, MaxKeywords: 2, ZipfS: 0.9, Extent: 1, Clusters: 1},
		{N: 10, VocabSize: 10, MinKeywords: 1, MaxKeywords: 2, ZipfS: 1.5, Extent: 0, Clusters: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestHKHotels(t *testing.T) {
	ds := HKHotels()
	if ds.Objects.Len() != HKHotelCount {
		t.Fatalf("HKHotels = %d objects, want %d", ds.Objects.Len(), HKHotelCount)
	}
	// Deterministic across calls.
	ds2 := HKHotels()
	for i := 0; i < HKHotelCount; i++ {
		a, b := ds.Objects.Get(object.ID(i)), ds2.Objects.Get(object.ID(i))
		if a.Loc != b.Loc || !a.Doc.Equal(b.Doc) || a.Name != b.Name {
			t.Fatalf("HKHotels not deterministic at %d", i)
		}
	}
	// All hotels in the Hong Kong bounding box.
	for _, o := range ds.Objects.All() {
		if o.Loc.X < 113.8 || o.Loc.X > 114.4 || o.Loc.Y < 22.1 || o.Loc.Y > 22.6 {
			t.Fatalf("hotel %q at %v outside Hong Kong", o.Name, o.Loc)
		}
		if o.Doc.Len() < 4 || o.Doc.Len() > 12 {
			t.Fatalf("hotel %q has %d keywords", o.Name, o.Doc.Len())
		}
		if o.Name == "" {
			t.Fatal("hotel without name")
		}
	}
	// The demo's query keywords must exist in the vocabulary.
	for _, w := range []string{"clean", "comfortable", "luxury", "wifi"} {
		if _, ok := ds.Vocab.Lookup(w); !ok {
			t.Errorf("keyword %q missing from HK vocabulary", w)
		}
	}
}

func TestWorkload(t *testing.T) {
	ds := HKHotels()
	qs := Workload(ds, WorkloadConfig{
		Queries: 20, Seed: 5, K: 3, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if q.Doc.Len() != 2 {
			t.Fatalf("query %d has %d keywords", i, q.Doc.Len())
		}
	}
	// Deterministic.
	qs2 := Workload(ds, WorkloadConfig{
		Queries: 20, Seed: 5, K: 3, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	for i := range qs {
		if qs[i].Loc != qs2[i].Loc || !qs[i].Doc.Equal(qs2[i].Doc) {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestWorkloadUniformKeywords(t *testing.T) {
	ds, _ := Generate(DefaultConfig(100, 9))
	qs := Workload(ds, WorkloadConfig{Queries: 5, Seed: 1, K: 10, Keywords: 3, W: score.DefaultWeights})
	for _, q := range qs {
		if q.Doc.Len() != 3 || q.K != 10 {
			t.Fatalf("bad query %+v", q)
		}
	}
}

func TestWorkloadEmpty(t *testing.T) {
	ds := &Dataset{Objects: object.NewCollection(nil), Vocab: nil}
	if qs := Workload(ds, WorkloadConfig{Queries: 5}); qs != nil {
		t.Fatal("workload over empty dataset should be nil")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := HKHotels()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	compareDatasets(t, ds, back)
}

func TestCSVRoundTrip(t *testing.T) {
	ds := HKHotels()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	compareDatasets(t, ds, back)
}

func compareDatasets(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Objects.Len() != b.Objects.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Objects.Len(), b.Objects.Len())
	}
	for i := 0; i < a.Objects.Len(); i++ {
		oa, ob := a.Objects.Get(object.ID(i)), b.Objects.Get(object.ID(i))
		if oa.Loc != ob.Loc {
			t.Fatalf("object %d location %v vs %v", i, oa.Loc, ob.Loc)
		}
		if oa.Name != ob.Name {
			t.Fatalf("object %d name %q vs %q", i, oa.Name, ob.Name)
		}
		wa := a.Vocab.Words(oa.Doc)
		wb := b.Vocab.Words(ob.Doc)
		if len(wa) != len(wb) {
			t.Fatalf("object %d keyword count %d vs %d", i, len(wa), len(wb))
		}
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("object %d keyword %q vs %q", i, wa[j], wb[j])
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	ds, _ := Generate(DefaultConfig(50, 11))
	dir := t.TempDir()
	for _, name := range []string{"ds.json", "ds.csv"} {
		path := filepath.Join(dir, name)
		if err := ds.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareDatasets(t, ds, back)
	}
	if err := ds.SaveFile(filepath.Join(dir, "ds.xml")); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "ds.xml")); err == nil {
		t.Fatal("unknown extension accepted on load")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Fatal("garbage CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("id,name,x,y,keywords\n0,h,notanumber,2,wifi\n")); err == nil {
		t.Fatal("bad coordinate accepted")
	}
}

func TestDescribe(t *testing.T) {
	ds := HKHotels()
	s := ds.Describe()
	if s == "" {
		t.Fatal("empty description")
	}
}
