package dataset

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSaveFileReportsWriteError: a failing write must surface as an
// error from SaveFile instead of being swallowed by the old double-Close
// path. /dev/full fails every write with ENOSPC; reach it through a
// symlink so the extension-based format switch still sees ".json".
func TestSaveFileReportsWriteError(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs /dev/full")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	link := filepath.Join(t.TempDir(), "out.json")
	if err := os.Symlink("/dev/full", link); err != nil {
		t.Skipf("cannot symlink: %v", err)
	}
	ds := HKHotels()
	if err := ds.SaveFile(link); err == nil {
		t.Fatal("SaveFile to a full device reported success")
	}
}

// TestSaveFileSingleClose: a successful save must not error (the old
// code closed the file twice; on some platforms the second close
// reports EBADF and a healthy save failed spuriously).
func TestSaveFileSingleClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.csv")
	ds := HKHotels()
	if err := ds.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Objects.Len() != ds.Objects.Len() {
		t.Fatalf("round trip lost objects: %d != %d", back.Objects.Len(), ds.Objects.Len())
	}
}

// TestSaveFileAtomicReplace: overwriting an existing dataset must never
// leave a truncated file, and a failed save must leave the old contents
// untouched (and no temp litter).
func TestSaveFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	ds := HKHotels()
	if err := ds.SaveFile(path); err != nil {
		t.Fatalf("first save: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save into an unwritable directory fails without touching the
	// destination.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := ds.SaveFile(path); err == nil {
		if os.Getuid() != 0 { // root ignores directory permissions
			t.Fatal("save into read-only dir succeeded")
		}
	}
	if err := os.Chmod(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("failed save changed the destination")
	}
	// Successful re-save replaces the contents and leaves no temp files.
	if err := ds.SaveFile(path); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ds.json" {
			t.Fatalf("leftover file %q after save", e.Name())
		}
	}
}

// TestSaveFileBadExtensionTouchesNothing: an unknown extension fails
// before any file is created.
func TestSaveFileBadExtensionTouchesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := HKHotels().SaveFile(filepath.Join(dir, "ds.xml")); err == nil {
		t.Fatal("unknown extension accepted")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("bad-extension save left %d files", len(entries))
	}
}
