package dataset

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSaveFileReportsWriteError: a failing write must surface as an
// error from SaveFile instead of being swallowed by the old double-Close
// path. /dev/full fails every write with ENOSPC; reach it through a
// symlink so the extension-based format switch still sees ".json".
func TestSaveFileReportsWriteError(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs /dev/full")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	link := filepath.Join(t.TempDir(), "out.json")
	if err := os.Symlink("/dev/full", link); err != nil {
		t.Skipf("cannot symlink: %v", err)
	}
	ds := HKHotels()
	if err := ds.SaveFile(link); err == nil {
		t.Fatal("SaveFile to a full device reported success")
	}
}

// TestSaveFileSingleClose: a successful save must not error (the old
// code closed the file twice; on some platforms the second close
// reports EBADF and a healthy save failed spuriously).
func TestSaveFileSingleClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.csv")
	ds := HKHotels()
	if err := ds.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Objects.Len() != ds.Objects.Len() {
		t.Fatalf("round trip lost objects: %d != %d", back.Objects.Len(), ds.Objects.Len())
	}
}
