package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/vocab"
)

// jsonObject is the wire form of one object. Keywords travel as strings
// so files survive vocabulary re-interning.
type jsonObject struct {
	ID       uint32   `json:"id"`
	Name     string   `json:"name,omitempty"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords"`
}

// WriteJSON writes the dataset as a JSON array of objects.
func (d *Dataset) WriteJSON(w io.Writer) error {
	objs := make([]jsonObject, d.Objects.Len())
	for i, o := range d.Objects.All() {
		objs[i] = jsonObject{
			ID:       uint32(o.ID),
			Name:     o.Name,
			X:        o.Loc.X,
			Y:        o.Loc.Y,
			Keywords: d.Vocab.Words(o.Doc),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(objs)
}

// ReadJSON reads a dataset written by WriteJSON. Object IDs are
// reassigned densely in file order.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var objs []jsonObject
	if err := json.NewDecoder(r).Decode(&objs); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	v := vocab.NewVocabulary()
	out := make([]object.Object, len(objs))
	for i, jo := range objs {
		out[i] = object.Object{
			ID:   object.ID(i),
			Name: jo.Name,
			Loc:  geo.Point{X: jo.X, Y: jo.Y},
			Doc:  v.InternSet(jo.Keywords...),
		}
	}
	return &Dataset{Objects: object.NewCollection(out), Vocab: v}, nil
}

// WriteCSV writes the dataset as CSV rows: id,name,x,y,keywords where
// keywords are space-separated.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "name", "x", "y", "keywords"}); err != nil {
		return err
	}
	for _, o := range d.Objects.All() {
		rec := []string{
			strconv.FormatUint(uint64(o.ID), 10),
			o.Name,
			strconv.FormatFloat(o.Loc.X, 'g', -1, 64),
			strconv.FormatFloat(o.Loc.Y, 'g', -1, 64),
			strings.Join(d.Vocab.Words(o.Doc), " "),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. Object IDs are reassigned
// densely in file order.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("dataset: unexpected CSV header %v", header)
	}
	v := vocab.NewVocabulary()
	var out []object.Object
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad x %q: %w", len(out)+1, rec[2], err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad y %q: %w", len(out)+1, rec[3], err)
		}
		out = append(out, object.Object{
			ID:   object.ID(len(out)),
			Name: rec[1],
			Loc:  geo.Point{X: x, Y: y},
			Doc:  v.InternSet(strings.Fields(rec[4])...),
		})
	}
	return &Dataset{Objects: object.NewCollection(out), Vocab: v}, nil
}

// encode writes the dataset to w in the format named by path's
// extension: .json or .csv.
func (d *Dataset) encode(w io.Writer, path string) error {
	switch {
	case strings.HasSuffix(path, ".json"):
		return d.WriteJSON(w)
	case strings.HasSuffix(path, ".csv"):
		return d.WriteCSV(w)
	default:
		return fmt.Errorf("dataset: unknown extension in %q (want .json or .csv)", path)
	}
}

// SaveFile writes the dataset to path, choosing the format from the
// extension: .json or .csv. The write is atomic: the data goes to a
// same-directory temporary file, is synced to disk and closed, and only
// then renamed over path — a crash or full disk mid-save never leaves a
// truncated dataset where a good one was. When path already exists as
// something other than a regular file (a symlink, a device node),
// renaming would silently replace what the name is, so SaveFile writes
// through the name in place instead.
func (d *Dataset) SaveFile(path string) (err error) {
	// Reject a bad extension before touching the filesystem.
	if !strings.HasSuffix(path, ".json") && !strings.HasSuffix(path, ".csv") {
		return fmt.Errorf("dataset: unknown extension in %q (want .json or .csv)", path)
	}
	if fi, lerr := os.Lstat(path); lerr == nil && !fi.Mode().IsRegular() {
		return d.saveInPlace(path)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = d.encode(bw, path); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	// Sync before rename: the rename must never become visible ahead of
	// the data it names.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// saveInPlace is the non-atomic fallback for destinations that are not
// regular files. The file is closed exactly once; a close error (the
// last chance for the OS to report a failed write) is returned unless
// an earlier write error already explains the failure.
func (d *Dataset) saveInPlace(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err = d.encode(bw, path); err != nil {
		return err
	}
	return bw.Flush()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a dataset from path, choosing the format from the
// extension: .json or .csv.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	switch {
	case strings.HasSuffix(path, ".json"):
		return ReadJSON(br)
	case strings.HasSuffix(path, ".csv"):
		return ReadCSV(br)
	default:
		return nil, fmt.Errorf("dataset: unknown extension in %q (want .json or .csv)", path)
	}
}
