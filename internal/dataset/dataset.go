// Package dataset builds the data the YASK demo and benches run on.
//
// The paper demonstrates on 539 Hong Kong hotels crawled from
// booking.com, with keyword sets extracted from hotel facilities and
// user comments. That crawl is not redistributable, so HKHotels
// generates a deterministic synthetic stand-in with the same published
// statistics: 539 hotels, clustered around real Hong Kong district
// coordinates, described by facility/comment vocabulary whose
// frequencies follow the heavy-tailed (Zipf-like) distribution real
// amenity keywords show. Generate scales the same recipe to the
// "millions of objects" regime the paper claims the engines support.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// Dataset is a generated or loaded collection plus its vocabulary.
type Dataset struct {
	Objects *object.Collection
	Vocab   *vocab.Vocabulary
}

// SpatialDist selects the spatial layout of generated objects.
type SpatialDist int

const (
	// Uniform scatters locations uniformly over the unit square scaled
	// by Extent.
	Uniform SpatialDist = iota
	// Clustered draws locations from Gaussian clusters, the layout of
	// real points of interest in cities.
	Clustered
)

// Config parameterizes Generate. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// N is the number of objects.
	N int
	// Seed makes generation deterministic.
	Seed int64
	// Spatial selects the location layout.
	Spatial SpatialDist
	// Extent is the side length of the square data space.
	Extent float64
	// Clusters is the number of Gaussian clusters (Clustered only).
	Clusters int
	// ClusterStd is the cluster standard deviation relative to Extent.
	ClusterStd float64
	// VocabSize is the number of distinct keywords.
	VocabSize int
	// ZipfS is the Zipf exponent of keyword frequencies (> 1).
	ZipfS float64
	// MinKeywords and MaxKeywords bound keywords per object.
	MinKeywords, MaxKeywords int
}

// DefaultConfig returns the configuration the benches use as baseline:
// a clustered city-like layout with a heavy-tailed facility vocabulary.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		N:          n,
		Seed:       seed,
		Spatial:    Clustered,
		Extent:     1000,
		Clusters:   16,
		ClusterStd: 0.04,
		// Vocabulary statistics follow real POI tag sets: thousands of
		// distinct terms with a heavy but not degenerate tail, so that
		// document frequencies span common ("wifi") to rare ("rooftop
		// shisha") — the regime the textual index bounds matter in.
		VocabSize:   2000,
		ZipfS:       1.15,
		MinKeywords: 3,
		MaxKeywords: 12,
	}
}

func (c Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("dataset: negative N %d", c.N)
	}
	if c.VocabSize < 1 {
		return fmt.Errorf("dataset: vocab size %d < 1", c.VocabSize)
	}
	if c.MinKeywords < 1 || c.MaxKeywords < c.MinKeywords {
		return fmt.Errorf("dataset: keyword bounds [%d,%d] invalid", c.MinKeywords, c.MaxKeywords)
	}
	if c.MaxKeywords > c.VocabSize {
		return fmt.Errorf("dataset: MaxKeywords %d exceeds vocabulary %d", c.MaxKeywords, c.VocabSize)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("dataset: Zipf exponent %v must be > 1", c.ZipfS)
	}
	if c.Extent <= 0 {
		return fmt.Errorf("dataset: extent %v must be positive", c.Extent)
	}
	if c.Spatial == Clustered && c.Clusters < 1 {
		return fmt.Errorf("dataset: clustered layout needs at least 1 cluster")
	}
	return nil
}

// Generate produces a synthetic dataset according to cfg. The same cfg
// always yields the same dataset.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.NewVocabulary()
	// Synthetic vocabulary: kw0000 … kwNNNN. Word identity does not
	// matter for the engines; frequency distribution does.
	words := make([]vocab.Keyword, cfg.VocabSize)
	for i := range words {
		words[i] = v.Intern(fmt.Sprintf("kw%04d", i))
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))

	var centers []geo.Point
	if cfg.Spatial == Clustered {
		centers = make([]geo.Point, cfg.Clusters)
		for i := range centers {
			centers[i] = geo.Point{X: rng.Float64() * cfg.Extent, Y: rng.Float64() * cfg.Extent}
		}
	}

	objs := make([]object.Object, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var loc geo.Point
		switch cfg.Spatial {
		case Uniform:
			loc = geo.Point{X: rng.Float64() * cfg.Extent, Y: rng.Float64() * cfg.Extent}
		case Clustered:
			c := centers[rng.Intn(len(centers))]
			std := cfg.ClusterStd * cfg.Extent
			loc = geo.Point{
				X: clamp(c.X+rng.NormFloat64()*std, 0, cfg.Extent),
				Y: clamp(c.Y+rng.NormFloat64()*std, 0, cfg.Extent),
			}
		}
		nk := cfg.MinKeywords + rng.Intn(cfg.MaxKeywords-cfg.MinKeywords+1)
		ids := make([]vocab.Keyword, 0, nk)
		for len(vocab.NewKeywordSet(ids...)) < nk {
			ids = append(ids, words[zipf.Uint64()])
		}
		objs[i] = object.Object{
			ID:   object.ID(i),
			Loc:  loc,
			Doc:  vocab.NewKeywordSet(ids...),
			Name: fmt.Sprintf("obj-%06d", i),
		}
	}
	return &Dataset{Objects: object.NewCollection(objs), Vocab: v}, nil
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// hkDistricts are the demo's spatial clusters: Hong Kong districts with
// hotel density weights. Coordinates are (longitude, latitude).
var hkDistricts = []struct {
	name   string
	center geo.Point
	weight int
}{
	{"Central", geo.Point{X: 114.158, Y: 22.281}, 9},
	{"Wan Chai", geo.Point{X: 114.173, Y: 22.277}, 8},
	{"Causeway Bay", geo.Point{X: 114.184, Y: 22.280}, 8},
	{"Tsim Sha Tsui", geo.Point{X: 114.172, Y: 22.298}, 10},
	{"Jordan", geo.Point{X: 114.171, Y: 22.305}, 7},
	{"Mong Kok", geo.Point{X: 114.169, Y: 22.319}, 7},
	{"Sheung Wan", geo.Point{X: 114.150, Y: 22.287}, 5},
	{"North Point", geo.Point{X: 114.200, Y: 22.291}, 4},
	{"Hung Hom", geo.Point{X: 114.182, Y: 22.306}, 3},
	{"Kowloon Bay", geo.Point{X: 114.214, Y: 22.323}, 2},
	{"Tung Chung", geo.Point{X: 113.941, Y: 22.289}, 1},
	{"Sha Tin", geo.Point{X: 114.188, Y: 22.381}, 1},
}

// hkFacilities is the facility/comment vocabulary of the demo dataset,
// ordered by descending real-world frequency; the generator assigns them
// Zipf-decaying probabilities in this order.
var hkFacilities = []string{
	"wifi", "clean", "comfortable", "breakfast", "restaurant", "bar",
	"gym", "pool", "spa", "harbour", "view", "metro", "shuttle",
	"luxury", "budget", "family", "business", "quiet", "modern",
	"spacious", "rooftop", "parking", "laundry", "concierge", "airport",
	"seaview", "boutique", "historic", "shopping", "nightlife", "pets",
	"accessible", "kitchen", "balcony", "terrace", "lounge", "sauna",
	"coffee", "tea", "minibar", "safe", "desk", "aircon", "heating",
	"soundproof", "nonsmoking", "smoking", "suite", "penthouse", "hostel",
}

// hotelAdjectives and hotelNouns build synthetic hotel names.
var hotelAdjectives = []string{
	"Grand", "Royal", "Harbour", "Golden", "Imperial", "Pearl", "Jade",
	"Lucky", "Silver", "Crystal", "Island", "Garden", "Star", "Dragon",
	"Victoria", "Panorama", "Metro", "City", "Bay", "Peak",
}
var hotelNouns = []string{
	"Hotel", "Inn", "Suites", "Residence", "Lodge", "Palace", "House",
	"Court", "Plaza", "Mansion",
}

// HKHotelCount is the size of the demo dataset, matching the 539 hotels
// of the paper's Section 4.
const HKHotelCount = 539

// HKHotels returns the deterministic synthetic stand-in for the demo's
// Hong Kong hotel dataset: exactly 539 hotels clustered around real
// district coordinates with facility/comment keyword sets.
func HKHotels() *Dataset {
	rng := rand.New(rand.NewSource(20160913)) // PVLDB Vol 9 No 13.
	v := vocab.NewVocabulary()
	facilityIDs := make([]vocab.Keyword, len(hkFacilities))
	for i, w := range hkFacilities {
		facilityIDs[i] = v.Intern(w)
	}
	zipf := rand.NewZipf(rng, 1.2, 1.8, uint64(len(hkFacilities)-1))

	totalWeight := 0
	for _, d := range hkDistricts {
		totalWeight += d.weight
	}

	objs := make([]object.Object, HKHotelCount)
	for i := range objs {
		// Weighted district choice.
		pick := rng.Intn(totalWeight)
		di := 0
		for acc := 0; ; di++ {
			acc += hkDistricts[di].weight
			if pick < acc {
				break
			}
		}
		d := hkDistricts[di]
		// ~0.004° ≈ 400 m standard deviation around the district core.
		loc := geo.Point{
			X: d.center.X + rng.NormFloat64()*0.004,
			Y: d.center.Y + rng.NormFloat64()*0.004,
		}
		nk := 4 + rng.Intn(9) // 4..12 facility keywords
		ids := make([]vocab.Keyword, 0, nk)
		for len(vocab.NewKeywordSet(ids...)) < nk {
			ids = append(ids, facilityIDs[zipf.Uint64()])
		}
		name := fmt.Sprintf("%s %s %s",
			hotelAdjectives[rng.Intn(len(hotelAdjectives))],
			hotelNouns[rng.Intn(len(hotelNouns))],
			d.name)
		objs[i] = object.Object{
			ID:   object.ID(i),
			Loc:  loc,
			Doc:  vocab.NewKeywordSet(ids...),
			Name: name,
		}
	}
	return &Dataset{Objects: object.NewCollection(objs), Vocab: v}
}

// WorkloadConfig parameterizes query generation.
type WorkloadConfig struct {
	// Queries is the number of queries to generate.
	Queries int
	// Seed makes the workload deterministic.
	Seed int64
	// K is the result size of each query.
	K int
	// Keywords is the number of query keywords.
	Keywords int
	// W is the preference weight vector.
	W score.Weights
	// FromObjectDocs draws query keywords from a random object's
	// document (guaranteeing non-trivial textual matches, the way real
	// users query for things that exist) instead of uniformly from the
	// vocabulary.
	FromObjectDocs bool
}

// Workload generates queries over ds: locations are perturbed object
// locations (users stand near things), keywords per cfg.
func Workload(ds *Dataset, cfg WorkloadConfig) []score.Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ds.Objects.Len()
	if n == 0 || cfg.Queries <= 0 {
		return nil
	}
	space := ds.Objects.Space()
	jitter := space.Diagonal() * 0.02
	queries := make([]score.Query, cfg.Queries)
	for qi := range queries {
		anchor := ds.Objects.Get(object.ID(rng.Intn(n)))
		loc := geo.Point{
			X: anchor.Loc.X + (rng.Float64()*2-1)*jitter,
			Y: anchor.Loc.Y + (rng.Float64()*2-1)*jitter,
		}
		var doc vocab.KeywordSet
		if cfg.FromObjectDocs {
			// Draw keywords from the anchor's own document: users ask
			// for things that exist near where they stand (the paper's
			// Example 1 — Bob queries "coffee" near a cafe).
			src := anchor.Doc
			for doc.Len() < cfg.Keywords {
				if doc.Len() >= src.Len() {
					// Anchor doc exhausted; top up from another object.
					src = src.Union(ds.Objects.Get(object.ID(rng.Intn(n))).Doc)
					continue
				}
				doc = doc.Add(src[rng.Intn(src.Len())])
			}
		} else {
			for doc.Len() < cfg.Keywords {
				doc = doc.Add(vocab.Keyword(rng.Intn(ds.Vocab.Len())))
			}
		}
		queries[qi] = score.Query{Loc: loc, Doc: doc, K: cfg.K, W: cfg.W}
	}
	return queries
}

// Describe returns a short human-readable summary of the dataset.
func (d *Dataset) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d objects, %d keywords, space %s",
		d.Objects.Len(), d.Vocab.Len(), d.Objects.Space())
	return b.String()
}
