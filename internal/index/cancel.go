// Cooperative cancellation for index traversals.
//
// The query path carries deadlines as context.Context down to the core
// engine, but a context cannot cross into the //yask:hotpath traversal
// code: ctx.Done() and ctx.Err() are dynamic interface calls the
// hot-path analyzer cannot verify allocation-free, and ctx.Err() takes
// a mutex on the cancelCtx fast path. Cancel is the bridge — a plain
// value wrapping the context's done channel, captured once per request
// on the non-hot side (CancelOf) and polled in hot loops with an
// allocation-free non-blocking receive (Canceled).
//
// Cancellation is communicated out of band: a tripped traversal stops
// visiting nodes and returns whatever partial state it has (heaps are
// still drained, stacks still recycled, so pooled scratch stays
// reusable), and the caller — which owns the context — checks ctx.Err()
// after the call, discards the partial answer, and returns the error.
// The zero Cancel never trips, so every pre-existing call site keeps
// byte-identical behavior by passing NoCancel.

package index

import "context"

// CheckInterval is the number of node visits between cooperative
// cancellation checks in the shared traversal drivers. A canceled
// traversal therefore stops within at most CheckInterval node visits
// (plus the entries of the leaf in hand) of the cancellation — the
// bounded-latency guarantee the serving layer's deadlines rely on —
// while the warm path pays one channel poll per 256 visits instead of
// one per node.
const CheckInterval = 256

// Cancel is an allocation-free cancellation token for index
// traversals: a by-value wrapper around a context's done channel. The
// zero value never cancels. Tokens are immutable and safe to share
// across the goroutines of a scatter-gather fan-out — every sibling
// shard polls the same channel, so one expired deadline stops them
// all.
type Cancel struct {
	done <-chan struct{}
}

// NoCancel is the zero token: a traversal given it never stops early.
// Hot-path callers that have no deadline pass it by name so they don't
// need a composite literal in annotated code.
var NoCancel Cancel

// CancelOf captures ctx's cancellation signal as a traversal token.
// It is deliberately not a hot-path function: the dynamic ctx.Done()
// call happens once per request here, so the traversal loops never
// touch the context interface.
func CancelOf(ctx context.Context) Cancel {
	return Cancel{done: ctx.Done()}
}

// Canceled reports whether the token has tripped. It is a non-blocking
// receive on the captured done channel: allocation-free, lock-free,
// and safe to call from any goroutine.
//
//yask:hotpath
func (c Cancel) Canceled() bool {
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}
