package index

import (
	"math"
	"slices"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

// SigCounters batches one query's signature-layer statistics so hot
// paths never touch the arena's atomic counters per node or entry; each
// family keeps one in its pooled scratch and flushes it once per
// traversal.
type SigCounters struct {
	// Probes counts signature bounds consulted, Hits the decisive ones
	// (an exact keyword set operation skipped), Exact the exact set
	// operations that ran (with signatures disabled: all of them).
	Probes, Hits, Exact int64
}

// Flush adds the counters to st and zeroes them.
//
//yask:hotpath
func (c *SigCounters) Flush(st *rtree.Stats) {
	st.AddSigCounts(c.Probes, c.Hits, c.Exact)
	c.Probes, c.Hits, c.Exact = 0, 0, 0
}

// SigScoreEntry scores one leaf entry under s, probing the entry's
// keyword signature before the exact similarity merge-walk:
//
//   - a disjoint signature AND proves TSim = 0, so the exact score is
//     returned without the walk;
//   - otherwise, if the signature's intersection upper bound caps the
//     score strictly below limit, the entry is skipped (skip = true,
//     the returned score is meaningless) — strictness preserves the
//     (score, ID) tie-break, so skipping never changes results;
//   - otherwise the exact score is computed.
//
// exactAvoided reports whether the merge-walk was avoided (either way
// above). Pass limit = math.Inf(-1) to force an exact score.
//
//yask:hotpath
func SigScoreEntry(s *score.Scorer, e *rtree.LeafEntry[object.Object], esig *vocab.Signature, qs *vocab.QuerySig, limit float64) (scv float64, skip, exactAvoided bool) {
	w := s.Query.W
	sp := w.Ws * (1 - s.SDistAt(e.Item.Loc))
	if qs.Disjoint(esig) {
		return sp, false, true
	}
	olen := len(e.Item.Doc)
	m := qs.IntersectBound(esig)
	if ub := sp + w.Wt*score.SigSimUpperBound(s.Query.Sim, m, olen, olen, olen, qs.Len); ub < limit {
		return 0, true, true
	}
	return sp + w.Wt*s.TSim(e.Item), false, false
}

// PrepareSig readies one traversal's signature state: the query
// signature (computed once, a pure stack value) and the arena's
// entry-signature column, when the family's layer is enabled and the
// arena carries columns; the zero state with use = false otherwise.
// Every traversal entry point of every family starts with this call.
//
//yask:hotpath
func PrepareSig[A any](f *rtree.Flat[object.Object, A], enabled bool, qdoc vocab.KeywordSet) (qs vocab.QuerySig, esigs []vocab.Signature, use bool) {
	if !enabled || !f.HasSigs() {
		return vocab.QuerySig{}, nil, false
	}
	return vocab.NewQuerySig(qdoc), f.EntrySigs(), true
}

// ScoreEntryCounted is the one leaf-entry scoring wrapper every
// set-scored traversal shares: SigScoreEntry through the counter
// protocol when the entry signature column is present (esigs non-nil),
// the plain exact score otherwise. Returned ok = false means the entry
// is provably strictly below limit and must be skipped. It is a plain
// function — call it from an inline closure so the closure itself can
// stay off the heap.
//
//yask:hotpath
func ScoreEntryCounted(s *score.Scorer, e *rtree.LeafEntry[object.Object], esigs []vocab.Signature, ei int32, qs *vocab.QuerySig, limit float64, ctr *SigCounters) (scv float64, ok bool) {
	if esigs != nil {
		ctr.Probes++
		scv, skip, avoided := SigScoreEntry(s, e, &esigs[ei], qs, limit)
		if avoided {
			ctr.Hits++
		} else {
			ctr.Exact++
		}
		return scv, !skip
	}
	ctr.Exact++
	return s.Score(e.Item), true
}

// PrunedDFS is the one pruned depth-first traversal driver the rank
// and crossing primitives of every index family share: an explicit
// stack from the caller's pooled scratch, a per-child decision
// callback — descend (true) or not (false: the caller pruned the
// subtree or accounted for it wholesale from its augmentation) — and a
// leaf callback receiving every reached leaf node. Node accesses are
// recorded into the arena's stats; the (drained) stack's backing
// storage is returned for the caller to pool.
//
// The traversal polls cc every CheckInterval node visits and stops
// early once it trips; the partial visit set is meaningless then, and
// the caller (which owns the context behind cc) must discard it.
//
//yask:hotpath
func PrunedDFS[A any](f *rtree.Flat[object.Object, A], cc Cancel, stack []int32, leaf func(n int32), child func(c int32) bool) []int32 {
	if f.Empty() {
		return stack[:0]
	}
	stack = append(stack[:0], 0) //yask:allocok(pooled scratch; grows only on a pool miss)
	accesses := int64(0)
	countdown := CheckInterval
	for len(stack) > 0 {
		if countdown--; countdown <= 0 {
			if cc.Canceled() {
				break
			}
			countdown = CheckInterval
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		accesses++
		if f.IsLeaf(n) {
			leaf(n)
			continue
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if child(c) {
				stack = append(stack, c) //yask:allocok(pooled scratch; growth is amortized across queries)
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	return stack[:0]
}

// NodeEntry is one best-first frontier element: a flat-arena node and
// its score upper bound.
type NodeEntry struct {
	Bound float64
	Node  int32
}

// NodeOrder orders frontier entries best bound first — the less
// function of the frontier heap every index family pools.
//
//yask:hotpath
func NodeOrder(a, b NodeEntry) bool { return a.Bound > b.Bound }

// BestFirstTopK is the one best-first top-k driver all index families
// share: a max-heap of nodes ordered by the family's admissible score
// upper bound, a bounded min-heap of the k best objects seen, and the
// shared-bound protocol for cross-partition pruning. The caller
// supplies the two family-specific ingredients — bound (node score
// upper bound) and scoreEntry (leaf-entry scoring) — plus its pooled
// heaps, which the driver drains before returning; results append to
// dst in rank order (score desc, ID asc).
//
// Both callbacks receive the pruning limit current at their call, which
// is what lets a signature-accelerated family stop short of its exact
// bound: bound(n, limit) may return any admissible upper bound when the
// result is ≥ limit, and any value < limit once a cheaper bound already
// proves the node cannot contribute (the driver discards it either
// way). scoreEntry(ei, e, limit) returns the entry's exact score, or
// ok = false to skip an entry it proved strictly below limit — entries
// at the limit must be scored, since an equal score with a smaller ID
// still wins the tie-break. Entries are addressed by arena index ei so
// families can consult per-entry signature columns, and passed by
// pointer to keep the hot loop free of large copies.
//
// A node whose bound is strictly below the pruning limit cannot
// contribute; ties must still be expanded — they can hide an
// equal-score object with a smaller ID. The limit is the local k-th
// best once the candidate heap is full, tightened by the shared
// cross-partition bound when concurrent sibling searches exchange one
// (entry skipping uses only the local k-th best, keeping per-partition
// results deterministic).
//
// The search polls cc every CheckInterval node visits and stops early
// once it trips. The candidate heap is still drained into dst (so the
// caller's pooled scratch comes back clean), but the partial ranking
// is not a valid answer — the caller must check its context and
// discard it.
//
//yask:hotpath
func BestFirstTopK[A any](
	f *rtree.Flat[object.Object, A],
	cc Cancel,
	k int,
	shared *Bound,
	nodes *pqueue.Queue[NodeEntry],
	cand *pqueue.Queue[score.Result],
	bound func(n int32, limit float64) float64,
	scoreEntry func(ei int32, e *rtree.LeafEntry[object.Object], limit float64) (float64, bool),
	dst []score.Result,
) []score.Result {
	if f.Empty() || k <= 0 {
		return dst
	}
	negInf := math.Inf(-1)
	entries := f.AllEntries()
	nodes.Push(NodeEntry{Bound: bound(0, negInf), Node: 0})
	accesses := int64(0)
	countdown := CheckInterval
	for nodes.Len() > 0 {
		if countdown--; countdown <= 0 {
			if cc.Canceled() {
				break
			}
			countdown = CheckInterval
		}
		top := nodes.Pop()
		limit := -1.0
		if cand.Len() == k {
			limit = cand.Peek().Score
		}
		if shared != nil {
			if b := shared.Load(); b > limit {
				limit = b
			}
		}
		if top.Bound < limit {
			break // no remaining node can contribute
		}
		n := top.Node
		accesses++
		if f.IsLeaf(n) {
			elimit := negInf
			eLo, eHi := f.EntryRange(n)
			for ei := eLo; ei < eHi; ei++ {
				e := &entries[ei]
				if cand.Len() == k {
					elimit = cand.Peek().Score
				}
				scv, ok := scoreEntry(ei, e, elimit)
				if !ok {
					continue
				}
				if cand.Len() < k {
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				} else if w := cand.Peek(); score.Better(scv, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				}
			}
			if shared != nil && cand.Len() == k {
				// k candidates at ≥ this score exist, so the global k-th
				// best is at least it: let lagging partitions prune.
				shared.Raise(cand.Peek().Score)
			}
			continue
		}
		// The leaf pass may have raised the local k-th best past the
		// limit computed at pop time; re-tighten before fanning out.
		if cand.Len() == k && cand.Peek().Score > limit {
			limit = cand.Peek().Score
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if b := bound(c, limit); b >= limit {
				nodes.Push(NodeEntry{Bound: b, Node: c})
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	base, n := len(dst), cand.Len()
	dst = slices.Grow(dst, n)[:base+n] //yask:allocok(result buffer; callers reuse dst across queries)
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = cand.Pop()
	}
	return dst
}
