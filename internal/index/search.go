package index

import (
	"slices"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

// PrunedDFS is the one pruned depth-first traversal driver the rank
// and crossing primitives of every index family share: an explicit
// stack from the caller's pooled scratch, a per-child decision
// callback — descend (true) or not (false: the caller pruned the
// subtree or accounted for it wholesale from its augmentation) — and a
// leaf callback receiving every reached leaf node. Node accesses are
// recorded into the arena's stats; the (drained) stack's backing
// storage is returned for the caller to pool.
func PrunedDFS[A any](f *rtree.Flat[object.Object, A], stack []int32, leaf func(n int32), child func(c int32) bool) []int32 {
	if f.Empty() {
		return stack[:0]
	}
	stack = append(stack[:0], 0)
	accesses := int64(0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		accesses++
		if f.IsLeaf(n) {
			leaf(n)
			continue
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if child(c) {
				stack = append(stack, c)
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	return stack[:0]
}

// NodeEntry is one best-first frontier element: a flat-arena node and
// its score upper bound.
type NodeEntry struct {
	Bound float64
	Node  int32
}

// NodeOrder orders frontier entries best bound first — the less
// function of the frontier heap every index family pools.
func NodeOrder(a, b NodeEntry) bool { return a.Bound > b.Bound }

// BestFirstTopK is the one best-first top-k driver all index families
// share: a max-heap of nodes ordered by the family's admissible score
// upper bound, a bounded min-heap of the k best objects seen, and the
// shared-bound protocol for cross-partition pruning. The caller
// supplies the two family-specific ingredients — bound (node score
// upper bound) and scoreOf (exact object score) — plus its pooled
// heaps, which the driver drains before returning; results append to
// dst in rank order (score desc, ID asc).
//
// A node whose bound is strictly below the pruning limit cannot
// contribute; ties must still be expanded — they can hide an
// equal-score object with a smaller ID. The limit is the local k-th
// best once the candidate heap is full, tightened by the shared
// cross-partition bound when concurrent sibling searches exchange one.
func BestFirstTopK[A any](
	f *rtree.Flat[object.Object, A],
	k int,
	shared *Bound,
	nodes *pqueue.Queue[NodeEntry],
	cand *pqueue.Queue[score.Result],
	bound func(n int32) float64,
	scoreOf func(o object.Object) float64,
	dst []score.Result,
) []score.Result {
	if f.Empty() || k <= 0 {
		return dst
	}
	nodes.Push(NodeEntry{Bound: bound(0), Node: 0})
	accesses := int64(0)
	for nodes.Len() > 0 {
		top := nodes.Pop()
		limit := -1.0
		if cand.Len() == k {
			limit = cand.Peek().Score
		}
		if shared != nil {
			if b := shared.Load(); b > limit {
				limit = b
			}
		}
		if top.Bound < limit {
			break // no remaining node can contribute
		}
		n := top.Node
		accesses++
		if f.IsLeaf(n) {
			for _, e := range f.Entries(n) {
				scv := scoreOf(e.Item)
				if cand.Len() < k {
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				} else if w := cand.Peek(); score.Better(scv, e.Item.ID, w.Score, w.Obj.ID) {
					cand.Pop()
					cand.Push(score.Result{Obj: e.Item, Score: scv})
				}
			}
			if shared != nil && cand.Len() == k {
				// k candidates at ≥ this score exist, so the global k-th
				// best is at least it: let lagging partitions prune.
				shared.Raise(cand.Peek().Score)
			}
			continue
		}
		// The leaf pass may have raised the local k-th best past the
		// limit computed at pop time; re-tighten before fanning out.
		if cand.Len() == k && cand.Peek().Score > limit {
			limit = cand.Peek().Score
		}
		lo, hi := f.Children(n)
		for c := lo; c < hi; c++ {
			if b := bound(c); b >= limit {
				nodes.Push(NodeEntry{Bound: b, Node: c})
			}
		}
	}
	f.Stats().AddNodeAccesses(accesses)
	base, n := len(dst), cand.Len()
	dst = slices.Grow(dst, n)[:base+n]
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = cand.Pop()
	}
	return dst
}
