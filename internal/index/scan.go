package index

import (
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/pqueue"
	"github.com/yask-engine/yask/internal/score"
)

// ScanTopK is the brute-force oracle: score every object and select the
// top k. It exists as the baseline the benches compare against and as
// the reference implementation tests validate every index family
// against; it lives here (not in a family package) because it depends
// only on the collection and the scoring model.
func ScanTopK(c *object.Collection, q score.Query) []score.Result {
	s := score.NewScorer(q, c)
	if q.K <= 0 || c.Len() == 0 {
		return nil
	}
	// Keep a bounded max-heap (invert: pop worst) of the k best.
	pq := pqueue.NewWithCapacity(score.WorstFirst, q.K+1)
	for _, o := range c.All() {
		if !c.Alive(o.ID) {
			continue
		}
		pq.Push(score.Result{Obj: o, Score: s.Score(o)})
		if pq.Len() > q.K {
			pq.Pop()
		}
	}
	out := make([]score.Result, pq.Len())
	for i := pq.Len() - 1; i >= 0; i-- {
		out[i] = pq.Pop()
	}
	return out
}

// ScanRank is the brute-force rank oracle matching the families'
// RankOf.
func ScanRank(c *object.Collection, s score.Scorer, oid object.ID) int {
	ref := c.Get(oid)
	refScore := s.Score(ref)
	rank := 1
	for _, o := range c.All() {
		if o.ID == oid || !c.Alive(o.ID) {
			continue
		}
		if score.Better(s.Score(o), o.ID, refScore, oid) {
			rank++
		}
	}
	return rank
}
