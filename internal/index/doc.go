// Package index defines the contract every YASK index family — the
// SetR-tree, the KcR-tree, and the IR-tree baseline — exposes to the
// engine layers above it: a Provider owning the build/mutate/refresh
// lifecycle and a Snapshot carrying the arena-scoped query primitives.
//
// The contract is what makes the engine composable: internal/core
// drives the publish/settle/epoch protocol of every family through one
// Provider slice, and internal/shard stacks S per-partition Providers
// behind a single scatter-gather Snapshot without knowing which family
// it is sharding. A sharded family is itself a Snapshot, so every query
// algorithm in core is written once and runs unchanged over one arena
// or over S of them. The same indirection is what lets a memory-mapped
// arena (docs/FORMATS.md) serve in place of a heap-built index: core
// cannot tell the difference, and the yasklint snapshotdiscipline
// analyzer statically keeps it that way.
//
// The package also hosts the brute-force oracles (ScanTopK, ScanRank)
// every equivalence property suite validates the families against.
package index
