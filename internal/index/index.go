// The Provider/Snapshot contract itself. Package overview in doc.go.

package index

import (
	"math"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
)

// Snapshot is one immutable, consistent arena of an index: the unit a
// multi-traversal algorithm (a why-not sweep, a candidate enumeration,
// a batch) acquires once so every traversal it runs sees the same data.
//
// Scoring runs under the caller's score.Scorer; implementations must
// not substitute their own normalization constant — MaxDist exists so
// the caller can build a scorer pinned to the snapshot. The reference
// ID in CountBetter and RankBounds is a tie-break threshold, not an
// object to skip: the count is over objects whose (score, ID) pair
// strictly dominates the reference pair, which is what lets a sharded
// composite translate one global reference into per-shard thresholds.
//
// Every traversal primitive takes a Cancel token and must stop within
// CheckInterval node visits of it tripping. A tripped traversal's
// return value is an undefined partial answer: the caller owns the
// context behind the token and must check it after the call, discard
// the result, and propagate ctx.Err(). Callers without a deadline pass
// NoCancel, which restores the exact pre-cancellation behavior.
type Snapshot interface {
	// MaxDist is the SDist normalization constant (the data-space
	// diagonal) captured when this snapshot was published. Scorers built
	// from it make scores deterministic even while mutations are
	// buffered: the constant and the arena always agree.
	MaxDist() float64

	// Epoch is the process-wide identity of this published state, drawn
	// from the rtree epoch counter at publication. Two snapshots with
	// equal epochs are the same immutable state, so any answer computed
	// against one is valid for the other — the invariant result caches
	// key on. Refresh, rebalance, and recovery all publish new epochs,
	// silently orphaning entries keyed to old ones.
	Epoch() uint64

	// Parts reports how many independently queryable partitions back the
	// snapshot: 1 for a single arena, the shard count for a sharded
	// composite. Batch executors schedule (job × part) work units.
	Parts() int

	// TopK appends the k best objects under scorer s to dst, best first,
	// ranked by (score desc, ID asc). A non-nil shared bound lets
	// concurrent sibling searches exchange their k-th-best scores so a
	// lagging partition can prune; pass nil when searching alone.
	TopK(cc Cancel, s score.Scorer, k int, shared *Bound, dst []score.Result) []score.Result

	// TopKPart is TopK restricted to partition part ∈ [0, Parts()).
	// Partition results merge exactly via MergeTopK. For a single-arena
	// snapshot, TopKPart(0, ...) is TopK.
	TopKPart(cc Cancel, part int, s score.Scorer, k int, shared *Bound, dst []score.Result) []score.Result

	// CountBetter returns the number of objects whose (score, ID) pair
	// strictly dominates (refScore, tie) under scorer s, per
	// score.Better. The rank of an object o is CountBetter(s, s.Score(o),
	// o.ID) + 1 — see RankOf.
	CountBetter(cc Cancel, s score.Scorer, refScore float64, tie object.ID) int

	// RankBounds returns bounds [lo, hi] on CountBetter(s, refScore,
	// tie), descending at most maxDepth levels and bounding whole
	// subtrees from their augmentations. Families without subtree
	// cardinality summaries may return the exact count as both bounds.
	RankBounds(cc Cancel, s score.Scorer, refScore float64, tie object.ID, maxDepth int) (lo, hi int)

	// ForEachCross supports the preference-adjustment sweep: the
	// reference score line runs from m0 at wt=0 to m1 at wt=1, and the
	// index must call visit for every object whose own line is not
	// provably strictly below the reference over the whole interval.
	// Subtrees provably strictly above at both ends may be reported
	// wholesale through above(count) instead of being visited, when the
	// family's augmentation can prove it. The reference object itself may
	// be visited; callers filter by ID.
	ForEachCross(cc Cancel, s score.Scorer, m0, m1 float64, visit func(object.Object), above func(count int))
}

// Provider owns one index's lifecycle: building, the managed mutation
// path, and checked snapshot acquisition. All implementations follow
// the copy-on-write publication protocol of rtree.SnapshotPublisher:
// mutations buffer against the live tree while queries keep serving the
// last published arena, and Refresh atomically swaps in a fresh one.
type Provider interface {
	// Acquire returns the published snapshot after verifying every
	// mutation since the freeze went through the managed path; it fails
	// with an error matching rtree.ErrStaleSnapshot otherwise.
	Acquire() (Snapshot, error)

	// Insert adds the object through the managed mutation path. It
	// becomes visible at the next Refresh.
	Insert(o object.Object)

	// Remove deletes the object (matched by ID at its location) through
	// the managed mutation path and reports whether it was present.
	Remove(o object.Object) bool

	// Refresh re-freezes the index and atomically publishes the new
	// snapshot; concurrent queries keep the old one until the swap.
	Refresh()

	// Stats returns the node-access statistics collector.
	Stats() *rtree.Stats
}

// Builder constructs one Provider over a collection — the factory the
// shard subsystem calls once per partition, which is how it stays
// generic over index families.
type Builder func(c *object.Collection) Provider

// RankOf returns the 1-based rank of object o under scorer s in the
// snapshot: one plus the number of objects strictly dominating it.
// Like every snapshot primitive it takes a Cancel token; the returned
// rank is meaningless once the token has tripped.
func RankOf(cc Cancel, sn Snapshot, s score.Scorer, o object.Object) int {
	return sn.CountBetter(cc, s, s.Score(o), o.ID) + 1
}

// Bound is a monotonically increasing score shared by concurrent top-k
// searches over disjoint partitions. Once any partition holds k
// candidates, the global k-th best score is at least that partition's
// k-th best, so every sibling may prune nodes bounded strictly below
// it. The zero value is ready to use (no bound yet — scores are never
// negative, so the initial 0 prunes nothing).
type Bound struct {
	bits atomic.Uint64
}

// Load returns the current bound.
//
//yask:hotpath
func (b *Bound) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Raise lifts the bound to x if x exceeds it; lower values are ignored,
// so the bound only tightens.
//
//yask:hotpath
func (b *Bound) Raise(x float64) {
	for {
		cur := b.bits.Load()
		if x <= math.Float64frombits(cur) {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(x)) {
			return
		}
	}
}

// MergeTopK merges per-partition top-k lists — each already in rank
// order — into the global top k, appended to dst. The merge compares
// (score, ID) exactly like every index traversal, so the result is
// byte-identical to a single-arena search over the union.
func MergeTopK(parts [][]score.Result, k int, dst []score.Result) []score.Result {
	// Cursor per non-empty partition; repeatedly take the best head.
	// Partition counts are small (k lists of ≤ k entries), so the linear
	// scan beats a heap in practice and keeps the code obvious.
	heads := make([]int, len(parts))
	base := len(dst)
	for len(dst)-base < k {
		best := -1
		for p, h := range heads {
			if h >= len(parts[p]) {
				continue
			}
			if best == -1 {
				best = p
				continue
			}
			a, b := parts[p][h], parts[best][heads[best]]
			if score.Better(a.Score, a.Obj.ID, b.Score, b.Obj.ID) {
				best = p
			}
		}
		if best == -1 {
			break
		}
		dst = append(dst, parts[best][heads[best]])
		heads[best]++
	}
	return dst
}
