package rtree

import (
	"errors"
	"fmt"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

// KeywordSigger is the optional companion interface of an Augmenter:
// when the augmenter passed to New implements it, Freeze materializes a
// keyword-signature column alongside the arena — one fixed-width hashed
// bitmap per node (covering the keyword union of everything below, via
// the augmentation) and one per leaf entry (the entry's own document).
// Query traversals use the signatures as constant-time upper bounds on
// keyword intersections, skipping exact merge-walks whenever the bound
// alone is decisive.
type KeywordSigger[L, A any] interface {
	// NodeSig returns the signature covering every keyword below a node
	// with augmentation a. It must be a superset signature: every
	// keyword of every object below must set its bit.
	NodeSig(a *A) vocab.Signature
	// LeafSig returns the signature of one leaf item's keyword set.
	LeafSig(item *L) vocab.Signature
}

// ErrStaleSnapshot is the sentinel matched (via errors.Is) by every
// stale-snapshot error: the source tree has been mutated since the Flat
// was frozen, so traversing the snapshot could silently serve results
// that no longer reflect the data. Callers repair the condition by
// re-freezing (Index.Refresh in the index packages).
var ErrStaleSnapshot = errors.New("rtree: flat snapshot is stale")

// StaleSnapshotError reports a freshness check failure together with the
// two generations involved. It matches ErrStaleSnapshot under errors.Is.
type StaleSnapshotError struct {
	// FrozenGen is the tree generation the snapshot was frozen at.
	FrozenGen uint64
	// TreeGen is the tree's generation at check time.
	TreeGen uint64
}

// Error implements error.
func (e *StaleSnapshotError) Error() string {
	return fmt.Sprintf(
		"rtree: flat snapshot is stale (frozen at generation %d, tree now at %d); refresh the index before querying",
		e.FrozenGen, e.TreeGen)
}

// Is reports whether target is ErrStaleSnapshot.
func (e *StaleSnapshotError) Is(target error) bool { return target == ErrStaleSnapshot }

// Flat is a frozen, contiguous snapshot of a Tree laid out as a struct
// of arrays: per-node MBRs, augmentations, child ranges, and leaf
// payload ranges live in flat slices indexed by a dense int32 node ID,
// and all leaf entries share one backing slice. Nodes are numbered in
// breadth-first order, so the children of any node are a contiguous
// index range and the root is node 0.
//
// The layout removes the pointer chasing of the Node graph from query
// traversals: a best-first search touches four parallel slices instead
// of scattered heap objects, which is what makes the steady-state query
// paths cache-friendly and allocation-free. Augmentation values are
// copied by value, so slice-backed summaries (keyword sets, postings,
// count maps) share their backing arrays with the source tree.
//
// A Flat is immutable and safe for concurrent readers. It records node
// accesses into the source tree's Stats collector, so existing
// instrumentation keeps working after a freeze.
type Flat[L, A any] struct {
	rects      []geo.Rect
	augs       []A
	childStart []int32
	childEnd   []int32
	entryStart []int32
	entryEnd   []int32
	entries    []LeafEntry[L]
	// sigs and entrySigs are the keyword-signature columns, parallel to
	// the node slices and to entries respectively; nil when the tree's
	// augmenter does not implement KeywordSigger.
	sigs      []vocab.Signature
	entrySigs []vocab.Signature
	size      int
	stats     *Stats
	// tree is the source tree and gen the generation it had when the
	// snapshot was frozen; together they implement the staleness check.
	tree *Tree[L, A]
	gen  uint64
	// epoch is the process-wide epoch identity stamped by the publisher
	// at publication; 0 for snapshots frozen outside a publisher.
	epoch uint64
}

// Epoch returns the process-wide epoch identity stamped when the
// snapshot was published, or 0 if it was frozen outside a publisher.
// Distinct published states always carry distinct epochs, which is the
// identity result caches key on.
func (f *Flat[L, A]) Epoch() uint64 { return f.epoch }

// Freeze returns a Flat snapshot of the tree's current content. Later
// mutations of the tree are not reflected in the snapshot; the snapshot
// records the tree generation it was frozen at, and CheckFresh reports
// an error once the tree has moved past it.
func (t *Tree[L, A]) Freeze() *Flat[L, A] {
	f := &Flat[L, A]{stats: &t.stats, size: t.size, tree: t, gen: t.gen.Load()}
	if t.root == nil {
		return f
	}
	nodes := t.NodeCount()
	f.rects = make([]geo.Rect, 0, nodes)
	f.augs = make([]A, 0, nodes)
	f.childStart = make([]int32, 0, nodes)
	f.childEnd = make([]int32, 0, nodes)
	f.entryStart = make([]int32, 0, nodes)
	f.entryEnd = make([]int32, 0, nodes)
	f.entries = make([]LeafEntry[L], 0, t.size)
	sigger, _ := t.aug.(KeywordSigger[L, A])
	if t.noFreezeSigs {
		sigger = nil
	}
	if sigger != nil {
		f.sigs = make([]vocab.Signature, 0, nodes)
		f.entrySigs = make([]vocab.Signature, 0, t.size)
	}

	// Breadth-first layout: the queue position of a node is its ID, so
	// appending a node's children consecutively yields contiguous child
	// ranges for free.
	queue := make([]*Node[L, A], 1, nodes)
	queue[0] = t.root
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		f.rects = append(f.rects, n.rect)
		f.augs = append(f.augs, n.aug)
		if sigger != nil {
			f.sigs = append(f.sigs, sigger.NodeSig(&n.aug))
		}
		if n.leaf {
			f.childStart = append(f.childStart, 0)
			f.childEnd = append(f.childEnd, 0)
			f.entryStart = append(f.entryStart, int32(len(f.entries)))
			f.entries = append(f.entries, n.entries...)
			f.entryEnd = append(f.entryEnd, int32(len(f.entries)))
			if sigger != nil {
				for i := range n.entries {
					f.entrySigs = append(f.entrySigs, sigger.LeafSig(&n.entries[i].Item))
				}
			}
		} else {
			lo := int32(len(queue))
			queue = append(queue, n.children...)
			f.childStart = append(f.childStart, lo)
			f.childEnd = append(f.childEnd, lo+int32(len(n.children)))
			f.entryStart = append(f.entryStart, 0)
			f.entryEnd = append(f.entryEnd, 0)
		}
	}
	return f
}

// Empty reports whether the snapshot holds no nodes.
//
//yask:hotpath
func (f *Flat[L, A]) Empty() bool { return len(f.rects) == 0 }

// NumNodes returns the number of nodes in the snapshot.
//
//yask:hotpath
func (f *Flat[L, A]) NumNodes() int { return len(f.rects) }

// Len returns the number of leaf items in the snapshot.
//
//yask:hotpath
func (f *Flat[L, A]) Len() int { return f.size }

// Stats returns the statistics collector shared with the source tree.
//
//yask:hotpath
func (f *Flat[L, A]) Stats() *Stats { return f.stats }

// Generation returns the tree generation the snapshot was frozen at.
//
//yask:hotpath
func (f *Flat[L, A]) Generation() uint64 { return f.gen }

// Stale reports whether the source tree has been mutated since the
// snapshot was frozen. A Flat frozen from the zero-value (never-mutated)
// path with no tree is never stale.
func (f *Flat[L, A]) Stale() bool {
	return f.tree != nil && f.tree.gen.Load() != f.gen
}

// CheckFresh returns a *StaleSnapshotError (matching ErrStaleSnapshot)
// when the source tree has been mutated since the freeze, nil otherwise.
// It is the primitive for callers holding a Flat directly; the index
// packages do NOT call it per traversal — they gate queries through
// their publisher's managed-generation check (SnapshotPublisher.Snapshot),
// which additionally tolerates managed mutations pending a Refresh. A
// Flat held past its index's Refresh keeps serving its frozen content
// without error; check here explicitly if that matters to you.
func (f *Flat[L, A]) CheckFresh() error {
	if f.tree == nil {
		return nil
	}
	if g := f.tree.gen.Load(); g != f.gen {
		return &StaleSnapshotError{FrozenGen: f.gen, TreeGen: g}
	}
	return nil
}

// Rect returns node n's MBR.
//
//yask:hotpath
func (f *Flat[L, A]) Rect(n int32) geo.Rect { return f.rects[n] }

// Aug returns a pointer to node n's augmentation summary. The summary
// must not be mutated.
//
//yask:hotpath
func (f *Flat[L, A]) Aug(n int32) *A { return &f.augs[n] }

// IsLeaf reports whether node n is a leaf.
//
//yask:hotpath
func (f *Flat[L, A]) IsLeaf(n int32) bool { return f.childEnd[n] == f.childStart[n] }

// Children returns the contiguous node-ID range [lo, hi) of node n's
// children; empty for leaves.
//
//yask:hotpath
func (f *Flat[L, A]) Children(n int32) (lo, hi int32) {
	return f.childStart[n], f.childEnd[n]
}

// Entries returns node n's leaf entries as a sub-slice of the shared
// entry arena; empty for internal nodes. Callers must not mutate it.
//
//yask:hotpath
func (f *Flat[L, A]) Entries(n int32) []LeafEntry[L] {
	return f.entries[f.entryStart[n]:f.entryEnd[n]]
}

// EntryRange returns the index range [lo, hi) of node n's leaf entries
// in the shared entry arena (AllEntries / EntrySigs); empty for
// internal nodes. Traversals that need the per-entry signature column
// address entries by arena index instead of Entries' sub-slice.
//
//yask:hotpath
func (f *Flat[L, A]) EntryRange(n int32) (lo, hi int32) {
	return f.entryStart[n], f.entryEnd[n]
}

// AllEntries returns every leaf entry in the snapshot in layout order.
// Callers must not mutate the returned slice.
//
//yask:hotpath
func (f *Flat[L, A]) AllEntries() []LeafEntry[L] { return f.entries }

// HasSigs reports whether the snapshot carries keyword-signature
// columns (the source tree's augmenter implements KeywordSigger).
//
//yask:hotpath
func (f *Flat[L, A]) HasSigs() bool { return f.sigs != nil }

// Sig returns a pointer to node n's keyword signature. Only valid when
// HasSigs; the signature must not be mutated.
//
//yask:hotpath
func (f *Flat[L, A]) Sig(n int32) *vocab.Signature { return &f.sigs[n] }

// EntrySigs returns the per-entry signature column, parallel to
// AllEntries; nil when the snapshot carries no signatures. Callers must
// not mutate it.
//
//yask:hotpath
func (f *Flat[L, A]) EntrySigs() []vocab.Signature { return f.entrySigs }
