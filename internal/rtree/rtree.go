// Package rtree implements the R-tree substrate all YASK indexes are
// built on: a Guttman-style R-tree with quadratic node splitting, STR
// (sort-tile-recursive) bulk loading, deletion with re-insertion, range
// and k-nearest-neighbour search, and — the feature the paper's index
// family depends on — per-node *augmentation*.
//
// An Augmenter folds leaf items into a per-node summary A that is
// maintained through inserts, deletes, splits, and bulk loads. The
// SetR-tree stores the intersection and union of the keyword sets below a
// node, the KcR-tree stores a keyword→count map plus an object count
// (Fig. 2 of the paper), and the IR-tree stores a per-node inverted file.
// Each of those indexes is this tree with a different Augmenter plus its
// own query algorithms over the exposed node structure.
//
// The tree is safe for concurrent readers once construction and mutation
// have finished; mutating methods must be externally serialized.
package rtree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
)

// Augmenter computes and combines per-node summaries of type A over leaf
// items of type L. Implementations must be pure: results may be retained
// and must not alias mutable caller state.
type Augmenter[L, A any] interface {
	// FromLeaf returns the summary of a single leaf item.
	FromLeaf(item L) A
	// Merge combines two summaries. It must be associative and
	// commutative so that fold order does not matter.
	Merge(a, b A) A
}

// None is the augmentation type of a plain (un-augmented) R-tree.
type None struct{}

type noAug[L any] struct{}

func (noAug[L]) FromLeaf(L) None      { return None{} }
func (noAug[L]) Merge(_, _ None) None { return None{} }

// NoAug returns an Augmenter that maintains no per-node summary; use it
// for a plain spatial R-tree.
func NoAug[L any]() Augmenter[L, None] { return noAug[L]{} }

// LeafEntry is one item stored in a leaf node together with its MBR (a
// degenerate rectangle for point objects).
type LeafEntry[L any] struct {
	Rect geo.Rect
	Item L
}

// Stats counts node visits during queries. Node accesses are the classic
// proxy for I/O cost in the disk-resident indexes of the paper; the
// benches report them alongside wall-clock time. It also tracks the
// keyword-signature pruning layer: probes (signature bounds consulted),
// hits (exact keyword set operations the signature made unnecessary),
// and the exact set operations that still ran. Counters are atomic so
// concurrent readers can share a tree; traversals batch their counts
// locally and flush once per query.
type Stats struct {
	nodeAccesses atomic.Int64
	sigProbes    atomic.Int64
	sigHits      atomic.Int64
	exactSetOps  atomic.Int64
}

// AddNodeAccesses records n node visits. Exported so that the index
// packages' custom traversals contribute to the same counter as the
// built-in queries.
//
//yask:hotpath
func (s *Stats) AddNodeAccesses(n int64) { s.nodeAccesses.Add(n) }

// NodeAccesses returns the number of node visits recorded so far.
func (s *Stats) NodeAccesses() int64 { return s.nodeAccesses.Load() }

// AddSigCounts records one query's signature-layer activity: probes
// signature bounds consulted, of which hits were decisive (the exact
// keyword set operation was skipped), plus exact set operations
// (merge-walks, per-keyword augmentation walks) that ran.
//
//yask:hotpath
func (s *Stats) AddSigCounts(probes, hits, exact int64) {
	if probes != 0 {
		s.sigProbes.Add(probes)
	}
	if hits != 0 {
		s.sigHits.Add(hits)
	}
	if exact != 0 {
		s.exactSetOps.Add(exact)
	}
}

// SigProbes returns the number of signature bounds consulted so far.
func (s *Stats) SigProbes() int64 { return s.sigProbes.Load() }

// SigHits returns the number of signature probes that were decisive —
// each one an exact keyword set operation skipped.
func (s *Stats) SigHits() int64 { return s.sigHits.Load() }

// ExactSetOps returns the number of exact keyword set operations
// (similarity merge-walks and per-keyword augmentation walks) query
// traversals have performed. With signatures disabled it counts every
// textual evaluation; the ratio against a signatures-on run is the
// data-skipping win the e12 bench reports.
func (s *Stats) ExactSetOps() int64 { return s.exactSetOps.Load() }

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.nodeAccesses.Store(0)
	s.sigProbes.Store(0)
	s.sigHits.Store(0)
	s.exactSetOps.Store(0)
}

// DefaultMaxEntries is the default node fanout. 64 entries per node
// approximates a 4 KiB page of 64-byte entries, the page model the
// disk-oriented originals assume.
const DefaultMaxEntries = 64

// Tree is an augmented R-tree over leaf items of type L with per-node
// summaries of type A.
type Tree[L, A any] struct {
	aug   Augmenter[L, A]
	root  *Node[L, A]
	size  int
	minE  int
	maxE  int
	stats Stats
	// gen counts structural mutations (Insert, Delete, BulkLoad). Flat
	// snapshots record the generation they were frozen at, which is how
	// a reader can detect that its snapshot no longer reflects the tree.
	// Atomic because snapshot freshness checks run concurrently with
	// (externally serialized) mutations.
	gen atomic.Uint64
	// noFreezeSigs suppresses the keyword-signature columns at Freeze
	// even when the augmenter implements KeywordSigger — set by index
	// packages whose signature layer is disabled, so the off switch
	// skips the column build cost and memory, not just the probes.
	noFreezeSigs bool
}

// SetFreezeSigs controls whether Freeze materializes keyword-signature
// columns (on by default when the augmenter implements KeywordSigger).
// Like the index-level signature toggles it must be set before the tree
// is shared; already-frozen snapshots keep whatever columns they have.
func (t *Tree[L, A]) SetFreezeSigs(on bool) { t.noFreezeSigs = !on }

// New returns an empty tree with the given augmenter and node fanout.
// maxEntries < 4 is raised to 4; minimum fill is 40% of the maximum, the
// classic R-tree setting.
func New[L, A any](aug Augmenter[L, A], maxEntries int) *Tree[L, A] {
	if maxEntries < 4 {
		maxEntries = 4
	}
	minE := maxEntries * 2 / 5
	if minE < 2 {
		minE = 2
	}
	return &Tree[L, A]{aug: aug, minE: minE, maxE: maxEntries}
}

// Node is one R-tree node. Leaf nodes carry LeafEntry values; internal
// nodes carry children. Both carry the MBR of everything below and the
// augmentation summary.
type Node[L, A any] struct {
	rect     geo.Rect
	aug      A
	leaf     bool
	entries  []LeafEntry[L]
	children []*Node[L, A]
}

// Rect returns the node's MBR.
func (n *Node[L, A]) Rect() geo.Rect { return n.rect }

// Aug returns the node's augmentation summary.
func (n *Node[L, A]) Aug() A { return n.aug }

// IsLeaf reports whether the node is a leaf.
func (n *Node[L, A]) IsLeaf() bool { return n.leaf }

// Entries returns the leaf entries; only valid for leaf nodes. Callers
// must not mutate the returned slice.
func (n *Node[L, A]) Entries() []LeafEntry[L] { return n.entries }

// Children returns the child nodes; only valid for internal nodes.
// Callers must not mutate the returned slice.
func (n *Node[L, A]) Children() []*Node[L, A] { return n.children }

// Root returns the root node, or nil for an empty tree. Index packages
// run their custom best-first traversals from here.
func (t *Tree[L, A]) Root() *Node[L, A] { return t.root }

// Stats returns the query statistics collector of this tree.
func (t *Tree[L, A]) Stats() *Stats { return &t.stats }

// Generation returns the tree's mutation generation: a counter bumped by
// every Insert, successful Delete, and BulkLoad. A Flat frozen at
// generation g is stale exactly when Generation() != g.
func (t *Tree[L, A]) Generation() uint64 { return t.gen.Load() }

// Len returns the number of stored items.
func (t *Tree[L, A]) Len() int { return t.size }

// MaxEntries returns the node fanout the tree was built with.
func (t *Tree[L, A]) MaxEntries() int { return t.maxE }

// Height returns the number of levels (0 for an empty tree, 1 for a
// single leaf root).
func (t *Tree[L, A]) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// NodeCount returns the total number of nodes.
func (t *Tree[L, A]) NodeCount() int {
	var count func(n *Node[L, A]) int
	count = func(n *Node[L, A]) int {
		if n == nil {
			return 0
		}
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

// recomputeAug rebuilds a node's summary from its direct content.
func (t *Tree[L, A]) recomputeAug(n *Node[L, A]) {
	if n.leaf {
		if len(n.entries) == 0 {
			var zero A
			n.aug = zero
			return
		}
		a := t.aug.FromLeaf(n.entries[0].Item)
		for _, e := range n.entries[1:] {
			a = t.aug.Merge(a, t.aug.FromLeaf(e.Item))
		}
		n.aug = a
		return
	}
	a := n.children[0].aug
	for _, c := range n.children[1:] {
		a = t.aug.Merge(a, c.aug)
	}
	n.aug = a
}

// recomputeRect rebuilds a node's MBR from its direct content.
func (n *Node[L, A]) recomputeRect() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.rect = geo.Rect{}
			return
		}
		r := n.entries[0].Rect
		for _, e := range n.entries[1:] {
			r = r.Union(e.Rect)
		}
		n.rect = r
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	n.rect = r
}

// Insert adds item with the given MBR.
func (t *Tree[L, A]) Insert(rect geo.Rect, item L) {
	t.gen.Add(1)
	t.size++
	if t.root == nil {
		t.root = &Node[L, A]{leaf: true}
	}
	leaf, path := t.chooseLeaf(rect)
	leaf.entries = append(leaf.entries, LeafEntry[L]{Rect: rect, Item: item})
	var split *Node[L, A]
	if len(leaf.entries) > t.maxE {
		split = t.splitLeaf(leaf)
	} else {
		leaf.rect = leaf.rect.Union(rect)
		if len(leaf.entries) == 1 {
			leaf.rect = rect
		}
		t.recomputeAug(leaf)
	}
	t.adjustUp(path, split)
}

// chooseLeaf descends by least enlargement (area as tie-breaker) and
// returns the target leaf plus the root→parent path.
func (t *Tree[L, A]) chooseLeaf(rect geo.Rect) (*Node[L, A], []*Node[L, A]) {
	var path []*Node[L, A]
	n := t.root
	for !n.leaf {
		path = append(path, n)
		best := 0
		bestEnl := n.children[0].rect.Enlargement(rect)
		bestArea := n.children[0].rect.Area()
		for i := 1; i < len(n.children); i++ {
			enl := n.children[i].rect.Enlargement(rect)
			area := n.children[i].rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
	}
	return n, path
}

// adjustUp fixes MBRs and augmentations along the path after an insert
// into (a possibly split) child. split is the new sibling produced at the
// lowest level, or nil.
func (t *Tree[L, A]) adjustUp(path []*Node[L, A], split *Node[L, A]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if split != nil {
			n.children = append(n.children, split)
			split = nil
		}
		if len(n.children) > t.maxE {
			split = t.splitInternal(n)
		}
		n.recomputeRect()
		t.recomputeAug(n)
	}
	if split != nil {
		// Root split: grow the tree.
		old := t.root
		t.root = &Node[L, A]{children: []*Node[L, A]{old, split}}
		t.root.recomputeRect()
		t.recomputeAug(t.root)
	}
}

// splitLeaf quadratic-splits an overflowing leaf in place and returns the
// new sibling.
func (t *Tree[L, A]) splitLeaf(n *Node[L, A]) *Node[L, A] {
	rects := make([]geo.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.Rect
	}
	groupA, groupB := quadraticPartition(rects, t.minE)
	entries := n.entries
	n.entries = nil
	sib := &Node[L, A]{leaf: true}
	for _, i := range groupA {
		n.entries = append(n.entries, entries[i])
	}
	for _, i := range groupB {
		sib.entries = append(sib.entries, entries[i])
	}
	n.recomputeRect()
	sib.recomputeRect()
	t.recomputeAug(n)
	t.recomputeAug(sib)
	return sib
}

// splitInternal quadratic-splits an overflowing internal node in place
// and returns the new sibling.
func (t *Tree[L, A]) splitInternal(n *Node[L, A]) *Node[L, A] {
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	groupA, groupB := quadraticPartition(rects, t.minE)
	children := n.children
	n.children = nil
	sib := &Node[L, A]{}
	for _, i := range groupA {
		n.children = append(n.children, children[i])
	}
	for _, i := range groupB {
		sib.children = append(sib.children, children[i])
	}
	n.recomputeRect()
	sib.recomputeRect()
	t.recomputeAug(n)
	t.recomputeAug(sib)
	return sib
}

// quadraticPartition implements Guttman's quadratic split: pick the two
// seeds wasting the most area together, then assign each remaining rect
// to the group whose MBR grows least, forcing assignment when a group
// must absorb all remaining rects to reach minimum fill. It returns the
// index sets of the two groups.
func quadraticPartition(rects []geo.Rect, minFill int) (groupA, groupB []int) {
	n := len(rects)
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA = []int{seedA}
	groupB = []int{seedB}
	rectA, rectB := rects[seedA], rects[seedB]
	assigned := make([]bool, n)
	assigned[seedA], assigned[seedB] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force-assign when one group needs every remaining rect.
		if len(groupA)+remaining == minFill {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupA = append(groupA, i)
					rectA = rectA.Union(rects[i])
					assigned[i] = true
				}
			}
			return groupA, groupB
		}
		if len(groupB)+remaining == minFill {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupB = append(groupB, i)
					rectB = rectB.Union(rects[i])
					assigned[i] = true
				}
			}
			return groupA, groupB
		}
		// Pick the unassigned rect with the strongest preference.
		pick, pickDiff, pickToA := -1, -1.0, false
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			dA := rectA.Enlargement(rects[i])
			dB := rectB.Enlargement(rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > pickDiff {
				pickDiff = diff
				pick = i
				pickToA = dA < dB || (dA == dB && rectA.Area() < rectB.Area()) ||
					(dA == dB && rectA.Area() == rectB.Area() && len(groupA) <= len(groupB))
			}
		}
		if pickToA {
			groupA = append(groupA, pick)
			rectA = rectA.Union(rects[pick])
		} else {
			groupB = append(groupB, pick)
			rectB = rectB.Union(rects[pick])
		}
		assigned[pick] = true
		remaining--
	}
	return groupA, groupB
}

// Delete removes one item whose MBR equals rect and for which match
// returns true. It reports whether an item was removed. Underflowing
// nodes are dissolved and their content re-inserted (Guttman's
// CondenseTree).
func (t *Tree[L, A]) Delete(rect geo.Rect, match func(L) bool) bool {
	if t.root == nil {
		return false
	}
	leaf, path := t.findLeaf(t.root, nil, rect, match)
	if leaf == nil {
		return false
	}
	t.gen.Add(1)
	for i, e := range leaf.entries {
		if e.Rect == rect && match(e.Item) {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf, path)
	return true
}

// findLeaf locates the leaf containing a matching entry via MBR overlap.
func (t *Tree[L, A]) findLeaf(n *Node[L, A], path []*Node[L, A], rect geo.Rect, match func(L) bool) (*Node[L, A], []*Node[L, A]) {
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect == rect && match(e.Item) {
				return n, path
			}
		}
		return nil, nil
	}
	for _, c := range n.children {
		if c.rect.ContainsRect(rect) || c.rect.Intersects(rect) {
			if leaf, p := t.findLeaf(c, append(path, n), rect, match); leaf != nil {
				return leaf, p
			}
		}
	}
	return nil, nil
}

// condense removes underflowing nodes along the path and re-inserts their
// orphaned content, then shrinks the root if needed.
func (t *Tree[L, A]) condense(leaf *Node[L, A], path []*Node[L, A]) {
	var orphanEntries []LeafEntry[L]
	var orphanNodes []*Node[L, A]

	node := leaf
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		under := false
		if node.leaf {
			under = len(node.entries) < t.minE
		} else {
			under = len(node.children) < t.minE
		}
		if under && node != t.root {
			for j, c := range parent.children {
				if c == node {
					parent.children = append(parent.children[:j], parent.children[j+1:]...)
					break
				}
			}
			if node.leaf {
				orphanEntries = append(orphanEntries, node.entries...)
			} else {
				orphanNodes = append(orphanNodes, node.children...)
			}
		} else {
			node.recomputeRect()
			t.recomputeAug(node)
		}
		node = parent
	}
	t.root.recomputeRect()
	t.recomputeAug(t.root)

	// Shrink the root.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &Node[L, A]{leaf: true}
	}
	if t.root.leaf && len(t.root.entries) == 0 && t.size == 0 {
		t.root = nil
	}

	// Re-insert orphans. Subtree orphans are re-inserted leaf by leaf,
	// which is simpler than level-aware re-insertion and preserves all
	// invariants (at the cost of extra work on deep deletes).
	for _, n := range orphanNodes {
		collectEntries(n, &orphanEntries)
	}
	t.size -= len(orphanEntries)
	for _, e := range orphanEntries {
		t.Insert(e.Rect, e.Item)
	}
}

func collectEntries[L, A any](n *Node[L, A], out *[]LeafEntry[L]) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// BulkLoad replaces the tree content with the given entries using STR
// (sort-tile-recursive) packing, which yields near-optimal space
// utilisation and is how the benches construct large indexes.
func (t *Tree[L, A]) BulkLoad(entries []LeafEntry[L]) {
	t.gen.Add(1)
	t.size = len(entries)
	if len(entries) == 0 {
		t.root = nil
		return
	}
	es := make([]LeafEntry[L], len(entries))
	copy(es, entries)

	// Leaf level: STR tiling.
	leafCap := t.maxE
	nLeaves := (len(es) + leafCap - 1) / leafCap
	nStrips := intSqrtCeil(nLeaves)
	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	perStrip := (len(es) + nStrips - 1) / nStrips
	var leaves []*Node[L, A]
	for s := 0; s < len(es); s += perStrip {
		hi := s + perStrip
		if hi > len(es) {
			hi = len(es)
		}
		strip := es[s:hi]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Rect.Center().Y < strip[j].Rect.Center().Y
		})
		for o := 0; o < len(strip); o += leafCap {
			e := o + leafCap
			if e > len(strip) {
				e = len(strip)
			}
			leaf := &Node[L, A]{leaf: true, entries: append([]LeafEntry[L](nil), strip[o:e]...)}
			leaf.recomputeRect()
			t.recomputeAug(leaf)
			leaves = append(leaves, leaf)
		}
	}

	// Upper levels: pack nodes with the same STR strategy.
	level := leaves
	for len(level) > 1 {
		nNodes := (len(level) + t.maxE - 1) / t.maxE
		nStrips := intSqrtCeil(nNodes)
		sort.Slice(level, func(i, j int) bool {
			return level[i].rect.Center().X < level[j].rect.Center().X
		})
		perStrip := (len(level) + nStrips - 1) / nStrips
		var next []*Node[L, A]
		for s := 0; s < len(level); s += perStrip {
			hi := s + perStrip
			if hi > len(level) {
				hi = len(level)
			}
			strip := level[s:hi]
			sort.Slice(strip, func(i, j int) bool {
				return strip[i].rect.Center().Y < strip[j].rect.Center().Y
			})
			for o := 0; o < len(strip); o += t.maxE {
				e := o + t.maxE
				if e > len(strip) {
					e = len(strip)
				}
				n := &Node[L, A]{children: append([]*Node[L, A](nil), strip[o:e]...)}
				n.recomputeRect()
				t.recomputeAug(n)
				next = append(next, n)
			}
		}
		level = next
	}
	t.root = level[0]
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Range calls fn for every item whose MBR intersects rect, stopping early
// if fn returns false. It reports whether the scan ran to completion.
func (t *Tree[L, A]) Range(rect geo.Rect, fn func(LeafEntry[L]) bool) bool {
	if t.root == nil {
		return true
	}
	return t.rangeNode(t.root, rect, fn)
}

func (t *Tree[L, A]) rangeNode(n *Node[L, A], rect geo.Rect, fn func(LeafEntry[L]) bool) bool {
	t.stats.AddNodeAccesses(1)
	if n.leaf {
		for _, e := range n.entries {
			if rect.Intersects(e.Rect) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if rect.Intersects(c.rect) {
			if !t.rangeNode(c, rect, fn) {
				return false
			}
		}
	}
	return true
}

// Neighbor is one kNN result.
type Neighbor[L any] struct {
	Item L
	Dist float64
}

// KNN returns the k items nearest to p in ascending distance order,
// using best-first search over MinDist bounds. Fewer than k items are
// returned when the tree is smaller than k.
func (t *Tree[L, A]) KNN(p geo.Point, k int) []Neighbor[L] {
	if t.root == nil || k <= 0 {
		return nil
	}
	type qe struct {
		dist  float64
		node  *Node[L, A]
		entry LeafEntry[L]
		leafE bool
	}
	pq := newKNNQueue[qe](func(a, b qe) bool {
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		// Visit nodes before items at equal distance so no closer item
		// hiding in the node is skipped.
		return !a.leafE && b.leafE
	})
	pq.push(qe{dist: t.root.rect.MinDist(p), node: t.root})
	var out []Neighbor[L]
	for pq.len() > 0 && len(out) < k {
		top := pq.pop()
		if top.leafE {
			out = append(out, Neighbor[L]{Item: top.entry.Item, Dist: top.dist})
			continue
		}
		n := top.node
		t.stats.AddNodeAccesses(1)
		if n.leaf {
			for _, e := range n.entries {
				pq.push(qe{dist: e.Rect.MinDist(p), entry: e, leafE: true})
			}
			continue
		}
		for _, c := range n.children {
			pq.push(qe{dist: c.rect.MinDist(p), node: c})
		}
	}
	return out
}

// knnQueue is a minimal local heap; kept here rather than importing
// pqueue to keep rtree dependency-free below geo.
type knnQueue[T any] struct {
	items []T
	less  func(a, b T) bool
}

func newKNNQueue[T any](less func(a, b T) bool) *knnQueue[T] {
	return &knnQueue[T]{less: less}
}

func (q *knnQueue[T]) len() int { return len(q.items) }

func (q *knnQueue[T]) push(v T) {
	q.items = append(q.items, v)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.items[i], q.items[p]) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *knnQueue[T]) pop() T {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i, n := 0, len(q.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		b := l
		if r := l + 1; r < n && q.less(q.items[r], q.items[l]) {
			b = r
		}
		if !q.less(q.items[b], q.items[i]) {
			break
		}
		q.items[i], q.items[b] = q.items[b], q.items[i]
		i = b
	}
	return top
}

// Verify checks structural invariants: MBR containment, fill bounds, and
// leaf depth uniformity. It returns a descriptive error for the first
// violation found, or nil. Intended for tests and debugging.
func (t *Tree[L, A]) Verify() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root but size %d", t.size)
		}
		return nil
	}
	leafDepth := -1
	var walk func(n *Node[L, A], depth int, isRoot bool) (int, error)
	walk = func(n *Node[L, A], depth int, isRoot bool) (int, error) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			// Bulk loading may legitimately leave one trailing leaf per
			// strip under-filled, so only emptiness and overflow are
			// structural violations.
			if !isRoot && (len(n.entries) == 0 || len(n.entries) > t.maxE) {
				return 0, fmt.Errorf("rtree: leaf fill %d outside [1,%d]", len(n.entries), t.maxE)
			}
			count := len(n.entries)
			for _, e := range n.entries {
				if !n.rect.ContainsRect(e.Rect) {
					return 0, fmt.Errorf("rtree: leaf MBR %v does not contain entry %v", n.rect, e.Rect)
				}
			}
			return count, nil
		}
		if !isRoot && (len(n.children) == 0 || len(n.children) > t.maxE) {
			return 0, fmt.Errorf("rtree: node fill %d outside [1,%d]", len(n.children), t.maxE)
		}
		if isRoot && len(n.children) < 2 {
			return 0, fmt.Errorf("rtree: internal root with %d children", len(n.children))
		}
		total := 0
		for _, c := range n.children {
			if !n.rect.ContainsRect(c.rect) {
				return 0, fmt.Errorf("rtree: node MBR %v does not contain child %v", n.rect, c.rect)
			}
			sub, err := walk(c, depth+1, false)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	total, err := walk(t.root, 0, true)
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable entries", t.size, total)
	}
	return nil
}
