//go:build unix

package rtree

import (
	"os"
	"syscall"
)

// mapArenaFile maps the file read-only. The returned unmap releases the
// mapping; mapped is true (this is the real zero-copy path). An empty
// file cannot be mmap'd, so it degrades to an empty heap slice — the
// header parser rejects it either way.
func mapArenaFile(path string) (data []byte, unmap func() error, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return syscall.Munmap(b) }, true, nil
}
