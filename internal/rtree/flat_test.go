package rtree

import (
	"math/rand"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
)

// freezeTestTree builds a tree of n random points, bulk-loaded or by
// insertion, keyed by int payloads.
func freezeTestTree(t *testing.T, n, maxE int, bulk bool) *Tree[int, None] {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tree := New(NoAug[int](), maxE)
	if bulk {
		entries := make([]LeafEntry[int], n)
		for i := range entries {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			entries[i] = LeafEntry[int]{Rect: RectFromPointForTest(p), Item: i}
		}
		tree.BulkLoad(entries)
		return tree
	}
	for i := 0; i < n; i++ {
		p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tree.Insert(RectFromPointForTest(p), i)
	}
	return tree
}

// RectFromPointForTest mirrors geo.RectFromPoint without importing it at
// each call site.
func RectFromPointForTest(p geo.Point) geo.Rect {
	return geo.RectFromPoint(p)
}

// TestFreezeStructure checks that the flat snapshot reproduces the node
// graph exactly: same node count, same per-node MBR/leaf-ness/fanout,
// and the same multiset of leaf items, with children contiguous.
func TestFreezeStructure(t *testing.T) {
	for _, bulk := range []bool{true, false} {
		tree := freezeTestTree(t, 5000, 8, bulk)
		f := tree.Freeze()
		if f.NumNodes() != tree.NodeCount() {
			t.Fatalf("bulk=%v: flat has %d nodes, tree has %d", bulk, f.NumNodes(), tree.NodeCount())
		}
		if f.Len() != tree.Len() {
			t.Fatalf("bulk=%v: flat Len %d, tree Len %d", bulk, f.Len(), tree.Len())
		}

		seen := make(map[int]bool)
		var walk func(n *Node[int, None], id int32)
		walk = func(n *Node[int, None], id int32) {
			if f.Rect(id) != n.Rect() {
				t.Fatalf("node %d: rect %v != %v", id, f.Rect(id), n.Rect())
			}
			if f.IsLeaf(id) != n.IsLeaf() {
				t.Fatalf("node %d: leafness mismatch", id)
			}
			if n.IsLeaf() {
				es := f.Entries(id)
				if len(es) != len(n.Entries()) {
					t.Fatalf("node %d: %d entries, want %d", id, len(es), len(n.Entries()))
				}
				for i, e := range es {
					if e.Item != n.Entries()[i].Item || e.Rect != n.Entries()[i].Rect {
						t.Fatalf("node %d entry %d mismatch", id, i)
					}
					if seen[e.Item] {
						t.Fatalf("item %d appears twice", e.Item)
					}
					seen[e.Item] = true
				}
				return
			}
			lo, hi := f.Children(id)
			if int(hi-lo) != len(n.Children()) {
				t.Fatalf("node %d: child range %d, want %d", id, hi-lo, len(n.Children()))
			}
			for i, c := range n.Children() {
				walk(c, lo+int32(i))
			}
		}
		walk(tree.Root(), 0)
		if len(seen) != tree.Len() {
			t.Fatalf("bulk=%v: reached %d items, want %d", bulk, len(seen), tree.Len())
		}
	}
}

// TestFreezeEmpty checks the degenerate snapshots.
func TestFreezeEmpty(t *testing.T) {
	tree := New(NoAug[int](), 8)
	f := tree.Freeze()
	if !f.Empty() || f.NumNodes() != 0 || f.Len() != 0 {
		t.Fatalf("empty tree froze to non-empty flat: %d nodes", f.NumNodes())
	}

	tree.Insert(geo.RectFromPoint(geo.Point{X: 1, Y: 2}), 42)
	f = tree.Freeze()
	if f.Empty() || f.NumNodes() != 1 || !f.IsLeaf(0) {
		t.Fatalf("single-item tree should freeze to one leaf node")
	}
	if es := f.Entries(0); len(es) != 1 || es[0].Item != 42 {
		t.Fatalf("unexpected entries %v", f.Entries(0))
	}
}

// TestFreezeSharesStats checks that traversal instrumentation recorded
// against the flat snapshot lands in the source tree's collector.
func TestFreezeSharesStats(t *testing.T) {
	tree := freezeTestTree(t, 100, 8, true)
	f := tree.Freeze()
	tree.Stats().Reset()
	f.Stats().AddNodeAccesses(7)
	if got := tree.Stats().NodeAccesses(); got != 7 {
		t.Fatalf("tree stats saw %d accesses, want 7", got)
	}
}
