package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/wal"
)

// testCodec is the simplest possible ArenaCodec: int leaf payloads as
// little-endian u32, None augmentations as an empty column.
type testCodec struct{}

func (testCodec) AppendItems(dst []byte, entries []LeafEntry[id]) []byte {
	var b [4]byte
	for i := range entries {
		binary.LittleEndian.PutUint32(b[:], uint32(entries[i].Item))
		dst = append(dst, b[:]...)
	}
	return dst
}

func (testCodec) DecodeItems(blob []byte, n int) ([]LeafEntry[id], error) {
	if len(blob) != n*4 {
		return nil, &wal.CorruptionError{Detail: fmt.Sprintf("test items column is %d bytes, want %d", len(blob), n*4)}
	}
	// The rect column is decoded by the generic layer; a real codec
	// recovers entry rects from its item source (the collection). The
	// test payload is just the ID, so rebuild point rects from it via
	// the deterministic generator below.
	entries := make([]LeafEntry[id], n)
	for i := 0; i < n; i++ {
		v := id(binary.LittleEndian.Uint32(blob[i*4:]))
		entries[i] = LeafEntry[id]{Rect: testArenaPoints[v], Item: v}
	}
	return entries, nil
}

func (testCodec) AppendAugs(dst []byte, _ []None) []byte { return dst }

func (testCodec) DecodeAugs(blob []byte, nodes int) ([]None, error) {
	if len(blob) != 0 {
		return nil, &wal.CorruptionError{Detail: "test aug column must be empty"}
	}
	return make([]None, nodes), nil
}

// testArenaPoints is the fixed rect-per-ID table testCodec decodes
// against (index = leaf item value).
var testArenaPoints = buildTestArenaPoints(80)

func buildTestArenaPoints(n int) []geo.Rect {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, n)
	rects := make([]geo.Rect, n)
	for i, p := range pts {
		rects[i] = geo.RectFromPoint(p)
	}
	return rects
}

func testArenaFlat(t *testing.T) (*Flat[id, None], ArenaMeta) {
	t.Helper()
	tr := New(NoAug[id](), 4)
	entries := make([]LeafEntry[id], len(testArenaPoints))
	for i := range testArenaPoints {
		entries[i] = LeafEntry[id]{Rect: testArenaPoints[i], Item: id(i)}
	}
	tr.BulkLoad(entries)
	return tr.Freeze(), ArenaMeta{LSN: 42, MaxDist: 1234.5, Vocab: []string{"pool", "wifi", "bar"}}
}

func writeTestArena(t *testing.T, f *Flat[id, None], meta ArenaMeta) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arena-test-000000000000002a.yar")
	if err := WriteArenaFile(path, f.AppendArena(nil, testCodec{}, meta)); err != nil {
		t.Fatal(err)
	}
	return path
}

// flatsEqual compares every column of two snapshots.
func flatsEqual(a, b *Flat[id, None]) bool {
	return reflect.DeepEqual(a.rects, b.rects) &&
		reflect.DeepEqual(a.childStart, b.childStart) &&
		reflect.DeepEqual(a.childEnd, b.childEnd) &&
		reflect.DeepEqual(a.entryStart, b.entryStart) &&
		reflect.DeepEqual(a.entryEnd, b.entryEnd) &&
		reflect.DeepEqual(a.entries, b.entries) &&
		a.size == b.size
}

func TestArenaRoundTrip(t *testing.T) {
	f, meta := testArenaFlat(t)
	path := writeTestArena(t, f, meta)

	raw, err := OpenArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if raw.LSN() != meta.LSN || raw.MaxDist() != meta.MaxDist {
		t.Fatalf("meta round trip: LSN=%d MaxDist=%v", raw.LSN(), raw.MaxDist())
	}
	if raw.HasSigs() {
		t.Fatal("signature flag set on a sig-less snapshot")
	}
	if !reflect.DeepEqual(raw.Vocab(), meta.Vocab) {
		t.Fatalf("vocab round trip: %v", raw.Vocab())
	}
	got, err := BuildFlat[id, None](raw, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !flatsEqual(f, got) {
		t.Fatal("loaded snapshot differs from the frozen one")
	}
	if got.Generation() != f.Generation() {
		t.Fatalf("generation: %d vs %d", got.Generation(), f.Generation())
	}
}

// TestArenaFaultEveryByte is the format's exhaustive fault test: for
// EVERY byte of a valid arena file, a single bit flip must either be
// detected (a typed wal.ErrCorrupt) or be provably harmless (the loaded
// snapshot is column-identical — flips landing in inter-frame zero
// padding). Likewise every possible truncation length must be detected.
// There is no third outcome: a fault can never produce a different
// snapshot.
func TestArenaFaultEveryByte(t *testing.T) {
	f, meta := testArenaFlat(t)
	path := writeTestArena(t, f, meta)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(ctx string) {
		raw, err := OpenArena(path)
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("%s: error %v is not wal.ErrCorrupt", ctx, err)
			}
			return
		}
		defer raw.Close()
		got, err := BuildFlat[id, None](raw, testCodec{})
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("%s: decode error %v is not wal.ErrCorrupt", ctx, err)
			}
			return
		}
		if !flatsEqual(f, got) {
			t.Fatalf("%s: fault survived verification AND changed the snapshot", ctx)
		}
	}

	for off := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 1 << (off % 8)
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("bit flip at byte %d", off))
	}
	for n := 0; n < len(pristine); n++ {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("truncation to %d bytes", n))
	}
}
