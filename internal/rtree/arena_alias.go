package rtree

import "unsafe"

// hostLittleEndian reports whether this process can alias the arena
// file's little-endian columns directly as Go slices. The file format
// itself is endianness-fixed (always little-endian); on a big-endian
// host OpenArena refuses and the caller rebuilds instead — correctness
// is never at stake, only the zero-copy boot.
var hostLittleEndian = func() bool {
	x := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}()

// aliasSlice reinterprets a column payload as a slice of its POD
// element type without copying. The payload is 8-byte aligned by the
// frame layout (every frame starts on an 8-byte boundary and the 8-byte
// frame header preserves it), elemSize is unsafe.Sizeof(T), and the
// caller has already verified len(b) is a multiple of elemSize. Only
// valid on little-endian hosts — OpenArena guards that.
func aliasSlice[T any](b []byte, elemSize int) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/elemSize)
}

// AliasColumn is aliasSlice for the family codecs: it reinterprets a
// sub-range of a column payload as a slice of a POD element type
// (keywords, count pairs) without copying. The caller must pass
// elemSize == unsafe.Sizeof(T), ensure len(b) is a multiple of it, and
// keep the base offset aligned for T; decoded slices alias the mapped
// file and must never be written.
func AliasColumn[T any](b []byte, elemSize int) []T { return aliasSlice[T](b, elemSize) }
