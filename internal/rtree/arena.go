package rtree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
	"github.com/yask-engine/yask/internal/wal"
)

// This file implements the on-disk arena format: a frozen Flat snapshot
// serialized as a small checksummed header followed by its
// struct-of-arrays columns, each length-prefixed and CRC32C-framed like
// a WAL record. The encoding is little-endian and every column payload
// starts 8-byte aligned, so on little-endian hosts a loaded file can be
// mmap'd and the POD columns (node MBRs, child/entry ranges, signature
// bitmaps) served as Go slices aliasing the mapping — no copy, no
// rebuild. docs/FORMATS.md is the normative byte-level specification.

const (
	// arenaMagic opens every arena file.
	arenaMagic = "YASKARN1"
	// ArenaVersion is the format version this build reads and writes.
	// Readers refuse any other version (surfaced as wal.ErrCorrupt, which
	// boot treats as "rebuild instead").
	ArenaVersion = 1
	// arenaHeaderSize is the fixed byte length of the header, including
	// its trailing CRC32C. It is a multiple of 8 so the first column
	// frame starts aligned.
	arenaHeaderSize = 72
	// arenaFlagSigs marks files carrying the keyword-signature columns.
	arenaFlagSigs = 1 << 0
)

// arenaCastagnoli is the CRC32C table shared by the header and every
// column frame — the same polynomial the WAL uses.
var arenaCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ArenaMeta is the engine-level metadata stamped into an arena file's
// header alongside the snapshot's own geometry.
type ArenaMeta struct {
	// LSN is the WAL position the snapshot is consistent with; boot only
	// maps arena files whose LSN matches the checkpoint it restored.
	LSN uint64
	// MaxDist is the SDist normalization constant of the collection at
	// save time (the space diagonal, dead rows included).
	MaxDist float64
	// Vocab is the complete keyword vocabulary in ID order. It is
	// embedded in the file because every keyword column stores dense IDs:
	// a later process re-interns this exact list first, which pins each
	// saved ID to the same word.
	Vocab []string
}

// ArenaCodec serializes the type-parameterized columns of a Flat — the
// leaf items and the node augmentations — that the generic layer cannot
// lay out itself. Each index family provides one; the POD columns are
// handled by the format directly.
//
// Decode methods must validate everything they read (lengths, offsets,
// ID ranges, sort invariants): the framing CRC catches bit rot, but a
// decoder must never index out of bounds or hand back a value that
// violates the family's invariants, no matter the bytes.
type ArenaCodec[L, A any] interface {
	// AppendItems appends the leaf-item column for entries to dst.
	AppendItems(dst []byte, entries []LeafEntry[L]) []byte
	// DecodeItems reconstructs the n leaf entries (item AND rect) from
	// the column payload. blob may alias an mmap'd file: decoded values
	// may sub-slice it but must never write to it.
	DecodeItems(blob []byte, n int) ([]LeafEntry[L], error)
	// AppendAugs appends the node-augmentation column for augs to dst.
	AppendAugs(dst []byte, augs []A) []byte
	// DecodeAugs reconstructs the nodes augmentation values from the
	// column payload, under the same aliasing rules as DecodeItems.
	DecodeAugs(blob []byte, nodes int) ([]A, error)
}

// arenaHeader is the decoded fixed header of an arena file.
type arenaHeader struct {
	flags      uint32
	nodes      uint32
	entries    uint32
	generation uint64
	lsn        uint64
	maxDist    float64
	vocabCount uint32
}

func (h *arenaHeader) hasSigs() bool { return h.flags&arenaFlagSigs != 0 }

// appendArenaHeader encodes h at the end of dst, CRC included.
func appendArenaHeader(dst []byte, h arenaHeader) []byte {
	base := len(dst)
	dst = append(dst, arenaMagic...)
	var b8 [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		dst = append(dst, b8[:4]...)
	}
	p64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		dst = append(dst, b8[:]...)
	}
	p32(ArenaVersion)
	p32(h.flags)
	p32(h.nodes)
	p32(h.entries)
	p32(h.vocabCount)
	p32(0) // reserved
	p64(h.generation)
	p64(h.lsn)
	p64(math.Float64bits(h.maxDist))
	// Reserved tail: pads the header to its fixed 72 bytes (a multiple
	// of 8, so the first column payload lands aligned) and leaves room
	// for future versions to add fields without moving the columns.
	dst = append(dst, make([]byte, arenaHeaderSize-4-(len(dst)-base))...)
	p32(crc32.Checksum(dst[base:], arenaCastagnoli))
	return dst
}

// corruptArena builds the typed corruption error every arena-format
// failure surfaces: it matches wal.ErrCorrupt, which recovery treats as
// "this file is unusable — rebuild", never as data.
func corruptArena(path string, off int64, format string, args ...any) error {
	return &wal.CorruptionError{Path: path, Offset: off, Detail: fmt.Sprintf(format, args...)}
}

// parseArenaHeader decodes and verifies the fixed header.
func parseArenaHeader(path string, data []byte) (arenaHeader, error) {
	var h arenaHeader
	if len(data) < arenaHeaderSize {
		return h, corruptArena(path, 0, "file truncated inside header: %d bytes", len(data))
	}
	hdr := data[:arenaHeaderSize]
	if string(hdr[:8]) != arenaMagic {
		return h, corruptArena(path, 0, "bad magic %q", hdr[:8])
	}
	sum := binary.LittleEndian.Uint32(hdr[arenaHeaderSize-4:])
	if got := crc32.Checksum(hdr[:arenaHeaderSize-4], arenaCastagnoli); got != sum {
		return h, corruptArena(path, 0, "header CRC mismatch: stored %08x, computed %08x", sum, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != ArenaVersion {
		return h, corruptArena(path, 8, "unsupported arena version %d (want %d)", v, ArenaVersion)
	}
	h.flags = binary.LittleEndian.Uint32(hdr[12:])
	h.nodes = binary.LittleEndian.Uint32(hdr[16:])
	h.entries = binary.LittleEndian.Uint32(hdr[20:])
	h.vocabCount = binary.LittleEndian.Uint32(hdr[24:])
	h.generation = binary.LittleEndian.Uint64(hdr[32:])
	h.lsn = binary.LittleEndian.Uint64(hdr[40:])
	h.maxDist = math.Float64frombits(binary.LittleEndian.Uint64(hdr[48:]))
	return h, nil
}

// appendColumn appends one framed column: u32 payload length, u32
// CRC32C of the payload, the payload, then zero padding to the next
// 8-byte boundary (so the following frame — and therefore the following
// payload — stays aligned for zero-copy slice aliasing).
func appendColumn(dst, payload []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(payload)))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint32(b[:], crc32.Checksum(payload, arenaCastagnoli))
	dst = append(dst, b[:]...)
	dst = append(dst, payload...)
	for len(dst)%8 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

// readColumn verifies the framed column at data[off:] and returns its
// payload (aliasing data) and the offset of the next frame.
func readColumn(path string, data []byte, off int) ([]byte, int, error) {
	if off+8 > len(data) {
		return nil, 0, corruptArena(path, int64(off), "file truncated inside column frame")
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if off+8+n > len(data) || n < 0 {
		return nil, 0, corruptArena(path, int64(off), "column length %d overruns file", n)
	}
	payload := data[off+8 : off+8+n]
	if got := crc32.Checksum(payload, arenaCastagnoli); got != sum {
		return nil, 0, corruptArena(path, int64(off), "column CRC mismatch: stored %08x, computed %08x", sum, got)
	}
	next := off + 8 + n
	for next%8 != 0 {
		next++
	}
	return payload, next, nil
}

// appendRects encodes the node-MBR column: 4 little-endian float64s per
// node (MinX MinY MaxX MaxY).
func appendRects(dst []byte, rects []geo.Rect) []byte {
	var b [8]byte
	for _, r := range rects {
		for _, v := range [4]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// appendInt32s encodes one int32 range column, little-endian.
func appendInt32s(dst []byte, vs []int32) []byte {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// appendSigs encodes a signature column: vocab.SigWords little-endian
// uint64s per signature.
func appendSigs(dst []byte, sigs []vocab.Signature) []byte {
	var b [8]byte
	for i := range sigs {
		for _, w := range sigs[i] {
			binary.LittleEndian.PutUint64(b[:], w)
			dst = append(dst, b[:]...)
		}
	}
	return dst
}

// appendVocab encodes the embedded vocabulary column: each word as a
// u32 byte length followed by its UTF-8 bytes, in keyword-ID order.
func appendVocab(dst []byte, words []string) []byte {
	var b [4]byte
	for _, w := range words {
		binary.LittleEndian.PutUint32(b[:], uint32(len(w)))
		dst = append(dst, b[:]...)
		dst = append(dst, w...)
	}
	return dst
}

// decodeVocab parses the embedded vocabulary column.
func decodeVocab(path string, blob []byte, count uint32) ([]string, error) {
	words := make([]string, 0, count)
	off := 0
	for i := uint32(0); i < count; i++ {
		if off+4 > len(blob) {
			return nil, corruptArena(path, int64(off), "vocab column truncated at word %d", i)
		}
		n := int(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
		if n < 0 || off+n > len(blob) {
			return nil, corruptArena(path, int64(off), "vocab word %d length %d overruns column", i, n)
		}
		words = append(words, string(blob[off:off+n]))
		off += n
	}
	if off != len(blob) {
		return nil, corruptArena(path, int64(off), "vocab column has %d trailing bytes", len(blob)-off)
	}
	return words, nil
}

// AppendArena serializes the snapshot to dst in the arena file format:
// header, then the framed columns in fixed order — node MBRs,
// childStart, childEnd, entryStart, entryEnd, node signatures, entry
// signatures (both empty when the snapshot has none), the codec's leaf
// items, the codec's node augmentations, and the embedded vocabulary.
func (f *Flat[L, A]) AppendArena(dst []byte, codec ArenaCodec[L, A], meta ArenaMeta) []byte {
	h := arenaHeader{
		nodes:      uint32(len(f.rects)),
		entries:    uint32(len(f.entries)),
		generation: f.gen,
		lsn:        meta.LSN,
		maxDist:    meta.MaxDist,
		vocabCount: uint32(len(meta.Vocab)),
	}
	if f.HasSigs() {
		h.flags |= arenaFlagSigs
	}
	dst = appendArenaHeader(dst, h)
	dst = appendColumn(dst, appendRects(nil, f.rects))
	dst = appendColumn(dst, appendInt32s(nil, f.childStart))
	dst = appendColumn(dst, appendInt32s(nil, f.childEnd))
	dst = appendColumn(dst, appendInt32s(nil, f.entryStart))
	dst = appendColumn(dst, appendInt32s(nil, f.entryEnd))
	dst = appendColumn(dst, appendSigs(nil, f.sigs))
	dst = appendColumn(dst, appendSigs(nil, f.entrySigs))
	dst = appendColumn(dst, codec.AppendItems(nil, f.entries))
	dst = appendColumn(dst, codec.AppendAugs(nil, f.augs))
	dst = appendColumn(dst, appendVocab(nil, meta.Vocab))
	return dst
}

// RawArena is a verified, still-typed-column view of one mapped arena
// file: the header plus every column payload, CRC-checked, with the POD
// columns already aliased as Go slices of the mapping. BuildFlat turns
// it into a servable *Flat once the codec's inputs (the object
// collection, for the engine's families) exist.
//
// Close unmaps the file; only call it on a RawArena whose slices were
// never handed to a published Flat (the load-failure and test paths).
// Mapped arenas that reached publication stay mapped for the process
// lifetime — in-flight queries may hold their slices at any time.
type RawArena struct {
	path    string
	data    []byte
	unmap   func() error
	hdr     arenaHeader
	rects   []geo.Rect
	cStart  []int32
	cEnd    []int32
	eStart  []int32
	eEnd    []int32
	sigs    []vocab.Signature
	eSigs   []vocab.Signature
	items   []byte
	augs    []byte
	vocab   []string
	mapped  bool
	retired bool
}

// Path returns the file the arena was mapped from.
func (r *RawArena) Path() string { return r.path }

// LSN returns the WAL position stamped at save time.
func (r *RawArena) LSN() uint64 { return r.hdr.lsn }

// MaxDist returns the SDist normalization constant stamped at save time.
func (r *RawArena) MaxDist() float64 { return r.hdr.maxDist }

// HasSigs reports whether the file carries the signature columns.
func (r *RawArena) HasSigs() bool { return r.hdr.hasSigs() }

// Vocab returns the embedded vocabulary in keyword-ID order.
func (r *RawArena) Vocab() []string { return r.vocab }

// Bytes returns the mapped file size.
func (r *RawArena) Bytes() int64 { return int64(len(r.data)) }

// Mapped reports whether the file is served by a real memory mapping
// (false on platforms without mmap, where the file was read into heap
// memory instead — same layout, same semantics, one copy).
func (r *RawArena) Mapped() bool { return r.mapped }

// Close releases the mapping. See the type comment for when this is
// safe; it is idempotent.
func (r *RawArena) Close() error {
	if r.retired || r.unmap == nil {
		return nil
	}
	r.retired = true
	return r.unmap()
}

// OpenArena maps the arena file at path and verifies its header, every
// column CRC, and the structural invariants of the POD columns (range
// bounds, the contiguous breadth-first layout). Every failure is a
// *wal.CorruptionError matching wal.ErrCorrupt; the caller falls back
// to an index rebuild — a damaged arena file can cost time, never
// correctness.
//
// The typed-column decode (leaf items, augmentations) happens later in
// BuildFlat, because it needs the restored object collection.
func OpenArena(path string) (*RawArena, error) {
	if !hostLittleEndian {
		// The format is always little-endian; a big-endian host cannot
		// alias the columns. Not corruption — just "rebuild instead".
		return nil, fmt.Errorf("rtree: arena mapping unsupported on big-endian hosts")
	}
	data, unmap, mapped, err := mapArenaFile(path)
	if err != nil {
		return nil, err
	}
	r := &RawArena{path: path, data: data, unmap: unmap, mapped: mapped}
	if err := r.parse(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// parse verifies the header and frames, then aliases the POD columns.
func (r *RawArena) parse() error {
	h, err := parseArenaHeader(r.path, r.data)
	if err != nil {
		return err
	}
	r.hdr = h
	off := arenaHeaderSize
	col := func() ([]byte, error) {
		payload, next, err := readColumn(r.path, r.data, off)
		off = next
		return payload, err
	}
	rects, err := colSized(r.path, col, "rects", int(h.nodes)*32)
	if err != nil {
		return err
	}
	r.rects = aliasSlice[geo.Rect](rects, 32)
	ranges := [4]*[]int32{&r.cStart, &r.cEnd, &r.eStart, &r.eEnd}
	for i, name := range [4]string{"childStart", "childEnd", "entryStart", "entryEnd"} {
		p, err := colSized(r.path, col, name, int(h.nodes)*4)
		if err != nil {
			return err
		}
		*ranges[i] = aliasSlice[int32](p, 4)
	}
	sigBytes := 0
	if h.hasSigs() {
		sigBytes = vocab.SigWords * 8
	}
	sigs, err := colSized(r.path, col, "sigs", int(h.nodes)*sigBytes)
	if err != nil {
		return err
	}
	eSigs, err := colSized(r.path, col, "entrySigs", int(h.entries)*sigBytes)
	if err != nil {
		return err
	}
	if h.hasSigs() {
		r.sigs = aliasSlice[vocab.Signature](sigs, vocab.SigWords*8)
		r.eSigs = aliasSlice[vocab.Signature](eSigs, vocab.SigWords*8)
	}
	if r.items, err = col(); err != nil {
		return err
	}
	if r.augs, err = col(); err != nil {
		return err
	}
	vb, err := col()
	if err != nil {
		return err
	}
	if r.vocab, err = decodeVocab(r.path, vb, h.vocabCount); err != nil {
		return err
	}
	if off != len(r.data) {
		return corruptArena(r.path, int64(off), "%d trailing bytes after last column", len(r.data)-off)
	}
	return r.validateShape()
}

// colSized reads the next column and enforces its exact byte length.
func colSized(path string, col func() ([]byte, error), name string, want int) ([]byte, error) {
	p, err := col()
	if err != nil {
		return nil, err
	}
	if len(p) != want {
		return nil, &wal.CorruptionError{Path: path,
			Detail: fmt.Sprintf("column %s is %d bytes, want %d", name, len(p), want)}
	}
	return p, nil
}

// validateShape checks the structural invariants the traversals rely on
// — bounded, contiguous, forward-pointing breadth-first ranges — so a
// file that passed its CRCs still cannot send a query out of bounds or
// into a cycle.
func (r *RawArena) validateShape() error {
	nodes := int32(r.hdr.nodes)
	entries := int32(r.hdr.entries)
	if nodes == 0 {
		if entries != 0 {
			return corruptArena(r.path, 0, "%d entries with no nodes", entries)
		}
		return nil
	}
	nextChild, nextEntry := int32(1), int32(0)
	for i := int32(0); i < nodes; i++ {
		cs, ce := r.cStart[i], r.cEnd[i]
		es, ee := r.eStart[i], r.eEnd[i]
		switch {
		case cs != ce: // internal node
			if cs != nextChild || ce < cs || ce > nodes || cs <= i {
				return corruptArena(r.path, 0,
					"node %d child range [%d,%d) breaks BFS layout (next %d, nodes %d)", i, cs, ce, nextChild, nodes)
			}
			if es != 0 || ee != 0 {
				return corruptArena(r.path, 0, "internal node %d has entry range [%d,%d)", i, es, ee)
			}
			nextChild = ce
		default: // leaf
			if es != nextEntry || ee < es || ee > entries {
				return corruptArena(r.path, 0,
					"leaf %d entry range [%d,%d) breaks layout (next %d, entries %d)", i, es, ee, nextEntry, entries)
			}
			nextEntry = ee
		}
	}
	if nextChild != nodes {
		return corruptArena(r.path, 0, "child ranges cover %d of %d nodes", nextChild, nodes)
	}
	if nextEntry != entries {
		return corruptArena(r.path, 0, "entry ranges cover %d of %d entries", nextEntry, entries)
	}
	return nil
}

// BuildFlat decodes the typed columns through the family codec and
// assembles the servable snapshot. The returned Flat's POD columns
// alias the mapping; it has no source tree (never stale), a fresh Stats
// collector, and a zero epoch — publishing it (rtree.NewMappedPublisher)
// stamps the epoch exactly like any other published arena.
func BuildFlat[L, A any](r *RawArena, codec ArenaCodec[L, A]) (*Flat[L, A], error) {
	entries, err := codec.DecodeItems(r.items, int(r.hdr.entries))
	if err != nil {
		return nil, err
	}
	if len(entries) != int(r.hdr.entries) {
		return nil, corruptArena(r.path, 0, "codec decoded %d items, want %d", len(entries), r.hdr.entries)
	}
	augs, err := codec.DecodeAugs(r.augs, int(r.hdr.nodes))
	if err != nil {
		return nil, err
	}
	if len(augs) != int(r.hdr.nodes) {
		return nil, corruptArena(r.path, 0, "codec decoded %d augs, want %d", len(augs), r.hdr.nodes)
	}
	return &Flat[L, A]{
		rects:      r.rects,
		augs:       augs,
		childStart: r.cStart,
		childEnd:   r.cEnd,
		entryStart: r.eStart,
		entryEnd:   r.eEnd,
		entries:    entries,
		sigs:       r.sigs,
		entrySigs:  r.eSigs,
		size:       len(entries),
		stats:      &Stats{},
		gen:        r.hdr.generation,
	}, nil
}

// WriteArenaFile writes data to path with the same atomicity protocol
// as checkpoints: temp file in the same directory, write, fsync, close,
// rename into place, fsync the directory. A crash leaves either the old
// file set or the new one, never a torn arena under the final name.
func WriteArenaFile(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".arena-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncArenaDir(dir)
}

// readArenaFile is the no-mmap fallback loader: the whole file in one
// heap slice (Go heap slices of this size are 8-byte aligned, which the
// column aliasing relies on).
func readArenaFile(path string) (data []byte, unmap func() error, mapped bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return nil }, false, nil
}

// syncArenaDir fsyncs the directory so the rename itself is durable.
func syncArenaDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
